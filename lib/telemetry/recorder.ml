type event =
  | Span of Span.t
  | Trial of {
      track : string;
      protocol : string;
      seed : int;
      ok : bool;
      msgs : int;
      bits : int;
      rounds : int;
      start_ns : int64;
      dur_ns : int64;
    }
  | Job of { pool : string; worker : int; start_ns : int64; dur_ns : int64; wait_ns : int64 }
  | Heartbeat of { at_ns : int64; completed : int; failed : int; total : int }

type t = {
  on : bool;
  epoch : float;  (* Unix time of creation; event times are relative ns *)
  lock : Mutex.t;
  mutable events_rev : event list;
  registry : Registry.t;
}

let create () =
  {
    on = true;
    epoch = Unix.gettimeofday ();
    lock = Mutex.create ();
    events_rev = [];
    registry = Registry.create ();
  }

(* Shared no-op recorder: [enabled] is a field read, [now_ns] never
   touches the clock, [emit] drops the event before building anything —
   callers keep unconditional instrumentation with telemetry off. *)
let disabled =
  {
    on = false;
    epoch = 0.;
    lock = Mutex.create ();
    events_rev = [];
    registry = Registry.disabled;
  }

let enabled t = t.on
let registry t = t.registry

let now_ns t =
  if not t.on then 0L else Int64.of_float ((Unix.gettimeofday () -. t.epoch) *. 1e9)

let emit t e =
  if t.on then begin
    Mutex.lock t.lock;
    t.events_rev <- e :: t.events_rev;
    Mutex.unlock t.lock
  end

let events t =
  Mutex.lock t.lock;
  let es = t.events_rev in
  Mutex.unlock t.lock;
  List.rev es
