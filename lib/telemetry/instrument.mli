(** Instrumentation glue: adapters feeding engine results and pool
    activity into a {!Recorder}. *)

val metric_prefix : string
(** ["ftc_"] — prepended to every registry metric name. *)

val pool_monitor : Recorder.t -> string -> Ftc_parallel.Pool.monitor option
(** A pool monitor recording queue depth, queue wait, and per-worker
    busy time into the recorder's registry, plus one [Job] event per
    executed job. [None] when the recorder is disabled — the pool then
    runs with zero telemetry overhead. *)

val record_run :
  Recorder.t ->
  protocol:string ->
  seed:int ->
  ok:bool ->
  phases:(string * int) list ->
  rounds_used:int ->
  per_round_msgs:int array ->
  per_round_bits:int array ->
  msgs:int ->
  bits:int ->
  dropped:int ->
  lost_link:int ->
  queue_dropped:int ->
  ecn_marked:int ->
  per_round_queue_peak:int array ->
  unroutable:int ->
  round_ns:int64 array ->
  start_ns:int64 ->
  unit
(** Record one finished trial: a [Trial] event on track ["seed-N"], one
    [Span] per protocol phase (cut along [phases]), and the standard
    counters/histograms ([ftc_msgs_total], [ftc_trial_wall_ns],
    [ftc_round_msgs], ...). Congestion series: [queue_dropped] and
    [ecn_marked] feed [ftc_msgs_dropped_queue_total] /
    [ftc_msgs_ecn_marked_total], and each nonzero entry of
    [per_round_queue_peak] is one [ftc_queue_occupancy] histogram
    sample. No-op on a disabled recorder. *)
