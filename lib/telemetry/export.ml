module Json = Ftc_journal.Json

(* ------------------------------------------------------------------ *)
(* Event/metric <-> JSON codecs, one object per line in events.jsonl.  *)

let i64 v = Json.Int (Int64.to_int v)

let span_to_json (s : Span.t) =
  Json.Obj
    [
      ("ev", Json.String "span");
      ("protocol", Json.String s.protocol);
      ("track", Json.String s.track);
      ("phase", Json.String s.phase);
      ("start_round", Json.Int s.start_round);
      ("end_round", Json.Int s.end_round);
      ("msgs", Json.Int s.msgs);
      ("bits", Json.Int s.bits);
      ("start_ns", i64 s.start_ns);
      ("dur_ns", i64 s.dur_ns);
    ]

let event_to_json = function
  | Recorder.Span s -> span_to_json s
  | Recorder.Trial { track; protocol; seed; ok; msgs; bits; rounds; start_ns; dur_ns } ->
      Json.Obj
        [
          ("ev", Json.String "trial");
          ("track", Json.String track);
          ("protocol", Json.String protocol);
          ("seed", Json.Int seed);
          ("ok", Json.Bool ok);
          ("msgs", Json.Int msgs);
          ("bits", Json.Int bits);
          ("rounds", Json.Int rounds);
          ("start_ns", i64 start_ns);
          ("dur_ns", i64 dur_ns);
        ]
  | Recorder.Job { pool; worker; start_ns; dur_ns; wait_ns } ->
      Json.Obj
        [
          ("ev", Json.String "job");
          ("pool", Json.String pool);
          ("worker", Json.Int worker);
          ("start_ns", i64 start_ns);
          ("dur_ns", i64 dur_ns);
          ("wait_ns", i64 wait_ns);
        ]
  | Recorder.Heartbeat { at_ns; completed; failed; total } ->
      Json.Obj
        [
          ("ev", Json.String "heartbeat");
          ("at_ns", i64 at_ns);
          ("completed", Json.Int completed);
          ("failed", Json.Int failed);
          ("total", Json.Int total);
        ]

let get_int k j = Option.bind (Json.member k j) Json.to_int
let get_str k j = Option.bind (Json.member k j) Json.to_str
let get_bool k j = Option.bind (Json.member k j) Json.to_bool
let get_i64 k j = Option.map Int64.of_int (get_int k j)

let ( let* ) = Option.bind

let event_of_json j =
  let* ev = get_str "ev" j in
  match ev with
  | "span" ->
      let* protocol = get_str "protocol" j in
      let* track = get_str "track" j in
      let* phase = get_str "phase" j in
      let* start_round = get_int "start_round" j in
      let* end_round = get_int "end_round" j in
      let* msgs = get_int "msgs" j in
      let* bits = get_int "bits" j in
      let* start_ns = get_i64 "start_ns" j in
      let* dur_ns = get_i64 "dur_ns" j in
      Some
        (Recorder.Span
           { Span.protocol; track; phase; start_round; end_round; msgs; bits; start_ns; dur_ns })
  | "trial" ->
      let* track = get_str "track" j in
      let* protocol = get_str "protocol" j in
      let* seed = get_int "seed" j in
      let* ok = get_bool "ok" j in
      let* msgs = get_int "msgs" j in
      let* bits = get_int "bits" j in
      let* rounds = get_int "rounds" j in
      let* start_ns = get_i64 "start_ns" j in
      let* dur_ns = get_i64 "dur_ns" j in
      Some (Recorder.Trial { track; protocol; seed; ok; msgs; bits; rounds; start_ns; dur_ns })
  | "job" ->
      let* pool = get_str "pool" j in
      let* worker = get_int "worker" j in
      let* start_ns = get_i64 "start_ns" j in
      let* dur_ns = get_i64 "dur_ns" j in
      let* wait_ns = get_i64 "wait_ns" j in
      Some (Recorder.Job { pool; worker; start_ns; dur_ns; wait_ns })
  | "heartbeat" ->
      let* at_ns = get_i64 "at_ns" j in
      let* completed = get_int "completed" j in
      let* failed = get_int "failed" j in
      let* total = get_int "total" j in
      Some (Recorder.Heartbeat { at_ns; completed; failed; total })
  | _ -> None

let metric_to_json (name, value) =
  match value with
  | Registry.Counter v ->
      Json.Obj
        [ ("ev", Json.String "metric"); ("name", Json.String name);
          ("kind", Json.String "counter"); ("value", Json.Int v) ]
  | Registry.Gauge v ->
      Json.Obj
        [ ("ev", Json.String "metric"); ("name", Json.String name);
          ("kind", Json.String "gauge"); ("value", Json.Int v) ]
  | Registry.Hist h ->
      Json.Obj
        [
          ("ev", Json.String "metric");
          ("name", Json.String name);
          ("kind", Json.String "histogram");
          ("count", Json.Int (Hist.count h));
          ("sum", Json.Int (Hist.sum h));
          ("min", Json.Int (Hist.min_value h));
          ("max", Json.Int (Hist.max_value h));
          ("buckets", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) (Hist.buckets h))));
        ]

let metric_of_json j =
  let* name = get_str "name" j in
  let* kind = get_str "kind" j in
  match kind with
  | "counter" ->
      let* v = get_int "value" j in
      Some (name, Registry.Counter v)
  | "gauge" ->
      let* v = get_int "value" j in
      Some (name, Registry.Gauge v)
  | "histogram" ->
      let* count = get_int "count" j in
      let* sum = get_int "sum" j in
      let* min_value = get_int "min" j in
      let* max_value = get_int "max" j in
      let* buckets = Json.member "buckets" j in
      let* bs =
        match buckets with
        | Json.List l when List.length l = Hist.n_buckets ->
            let ints = List.filter_map Json.to_int l in
            if List.length ints = Hist.n_buckets then Some (Array.of_list ints) else None
        | _ -> None
      in
      Some (name, Registry.Hist (Hist.of_parts ~count ~sum ~min_value ~max_value bs))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* events.jsonl: header line, then metric lines, then event lines.     *)

let jsonl_magic = "ftc-telemetry"
let jsonl_version = 1

let events_jsonl ~metrics ~events =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [ ("magic", Json.String jsonl_magic); ("version", Json.Int jsonl_version) ]);
  List.iter (fun m -> line (metric_to_json m)) metrics;
  List.iter (fun e -> line (event_to_json e)) events;
  Buffer.contents buf

let parse_events_jsonl content =
  let lines =
    String.split_on_char '\n' content |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "events.jsonl: empty"
  | header :: rest -> (
      match Json.of_string header with
      | Error e -> Error ("events.jsonl: bad header: " ^ e)
      | Ok h when get_str "magic" h <> Some jsonl_magic ->
          Error "events.jsonl: missing magic header"
      | Ok _ ->
          let metrics = ref [] and events = ref [] and bad = ref 0 in
          List.iter
            (fun l ->
              match Json.of_string l with
              | Error _ -> incr bad
              | Ok j -> (
                  match get_str "ev" j with
                  | Some "metric" -> (
                      match metric_of_json j with
                      | Some m -> metrics := m :: !metrics
                      | None -> incr bad)
                  | Some _ -> (
                      match event_of_json j with
                      | Some e -> events := e :: !events
                      | None -> incr bad)
                  | None -> incr bad))
            rest;
          if !bad > 0 then Error (Printf.sprintf "events.jsonl: %d malformed lines" !bad)
          else Ok (List.rev !metrics, List.rev !events))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (Perfetto-loadable).                        *)

let us_of_ns ns = Int64.to_int (Int64.div ns 1_000L)

(* Perfetto collapses 0-duration complete events to invisibility; clamp
   to 1us so every span renders. *)
let dur_us_of_ns ns = max 1 (us_of_ns ns)

let chrome_trace events =
  (* One tid per track, assigned in first-appearance order over the
     timestamp-sorted events so the numbering is stable for a given log. *)
  let tids = Hashtbl.create 16 in
  let next_tid = ref 1 in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some tid -> tid
    | None ->
        let tid = !next_tid in
        incr next_tid;
        Hashtbl.replace tids track tid;
        tid
  in
  let start_of = function
    | Recorder.Span s -> s.Span.start_ns
    | Recorder.Trial { start_ns; _ } -> start_ns
    | Recorder.Job { start_ns; _ } -> start_ns
    | Recorder.Heartbeat { at_ns; _ } -> at_ns
  in
  let events = List.stable_sort (fun a b -> Int64.compare (start_of a) (start_of b)) events in
  let complete ~name ~cat ~tid ~ts_ns ~dur_ns args =
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String cat);
        ("ph", Json.String "X");
        ("ts", Json.Int (us_of_ns ts_ns));
        ("dur", Json.Int (dur_us_of_ns dur_ns));
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let body =
    List.map
      (fun e ->
        match e with
        | Recorder.Span s ->
            complete ~name:s.Span.phase ~cat:"phase" ~tid:(tid_of s.Span.track)
              ~ts_ns:s.Span.start_ns ~dur_ns:s.Span.dur_ns
              [
                ("protocol", Json.String s.Span.protocol);
                ("rounds",
                 Json.String (Printf.sprintf "[%d,%d)" s.Span.start_round s.Span.end_round));
                ("msgs", Json.Int s.Span.msgs);
                ("bits", Json.Int s.Span.bits);
              ]
        | Recorder.Trial { track; protocol; seed; ok; msgs; bits; rounds; start_ns; dur_ns } ->
            complete ~name:protocol ~cat:"trial" ~tid:(tid_of track) ~ts_ns:start_ns ~dur_ns
              [
                ("seed", Json.Int seed);
                ("ok", Json.Bool ok);
                ("msgs", Json.Int msgs);
                ("bits", Json.Int bits);
                ("rounds", Json.Int rounds);
              ]
        | Recorder.Job { pool; worker; start_ns; dur_ns; wait_ns } ->
            complete ~name:"job" ~cat:"pool"
              ~tid:(tid_of (Printf.sprintf "%s-worker-%d" pool worker))
              ~ts_ns:start_ns ~dur_ns
              [ ("wait_us", Json.Int (us_of_ns wait_ns)) ]
        | Recorder.Heartbeat { at_ns; completed; failed; total } ->
            Json.Obj
              [
                ("name", Json.String "sweep-progress");
                ("ph", Json.String "C");
                ("ts", Json.Int (us_of_ns at_ns));
                ("pid", Json.Int 1);
                ("args",
                 Json.Obj
                   [
                     ("completed", Json.Int completed);
                     ("failed", Json.Int failed);
                     ("remaining", Json.Int (max 0 (total - completed - failed)));
                   ]);
              ])
      events
  in
  (* Thread-name metadata gives each trial/worker its own labelled
     Perfetto track. *)
  let names =
    Hashtbl.fold (fun track tid acc -> (tid, track) :: acc) tids []
    |> List.sort compare
    |> List.map (fun (tid, track) ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.String track) ]);
             ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (names @ body));
      ("displayTimeUnit", Json.String "ms");
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.                                         *)

(* Metric names arrive as dotted paths; Prometheus wants [a-zA-Z0-9_:]. *)
let prom_name name =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let prometheus metrics =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, value) ->
      let n = prom_name name in
      match value with
      | Registry.Counter v ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v)
      | Registry.Gauge v ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n v)
      | Registry.Hist h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              (* Only emit boundaries up to the populated range to keep
                 the snapshot readable; the +Inf bucket always closes. *)
              if !cumulative > 0 || i = 0 then
                if i < Hist.n_buckets - 1 then
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n
                       (Hist.upper_bound i - 1)
                       !cumulative))
            (Hist.buckets h);
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Hist.count h));
          Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Hist.sum h));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Hist.count h)))
    metrics;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Directory layout: events.jsonl + trace.json + metrics.prom.         *)

let events_file = "events.jsonl"
let trace_file = "trace.json"
let prom_file = "metrics.prom"

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mkdir_p dir =
  let rec mk d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let export_files ~dir ~metrics ~events =
  mkdir_p dir;
  write_file (Filename.concat dir events_file) (events_jsonl ~metrics ~events);
  write_file (Filename.concat dir trace_file) (Json.to_string (chrome_trace events));
  write_file (Filename.concat dir prom_file) (prometheus metrics)

let write_dir ~dir recorder =
  export_files ~dir
    ~metrics:(Registry.snapshot (Recorder.registry recorder))
    ~events:(Recorder.events recorder)

let load_dir ~dir =
  let path = Filename.concat dir events_file in
  if not (Sys.file_exists path) then Error (path ^ ": not found")
  else
    match read_file path with
    | exception Sys_error e -> Error e
    | content -> parse_events_jsonl content

(* ------------------------------------------------------------------ *)
(* Summary: per-(protocol, phase) cost table from the span events.     *)

type phase_row = {
  row_protocol : string;
  row_phase : string;
  row_first_round : int;  (* calendar position, for ordering *)
  mutable row_spans : int;
  mutable row_rounds : int;
  mutable row_msgs : int;
  mutable row_bits : int;
  mutable row_ns : int64;
}

let phase_rows events =
  let tbl : (string * string, phase_row) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match e with
      | Recorder.Span s ->
          let key = (s.Span.protocol, s.Span.phase) in
          let row =
            match Hashtbl.find_opt tbl key with
            | Some r -> r
            | None ->
                let r =
                  {
                    row_protocol = s.Span.protocol;
                    row_phase = s.Span.phase;
                    row_first_round = s.Span.start_round;
                    row_spans = 0;
                    row_rounds = 0;
                    row_msgs = 0;
                    row_bits = 0;
                    row_ns = 0L;
                  }
                in
                Hashtbl.replace tbl key r;
                r
          in
          row.row_spans <- row.row_spans + 1;
          row.row_rounds <- row.row_rounds + (s.Span.end_round - s.Span.start_round);
          row.row_msgs <- row.row_msgs + s.Span.msgs;
          row.row_bits <- row.row_bits + s.Span.bits;
          row.row_ns <- Int64.add row.row_ns s.Span.dur_ns
      | _ -> ())
    events;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare a.row_protocol b.row_protocol with
         | 0 -> (
             match compare a.row_first_round b.row_first_round with
             | 0 -> compare a.row_phase b.row_phase
             | c -> c)
         | c -> c)

let summary ~metrics ~events =
  let buf = Buffer.create 1024 in
  let rows = phase_rows events in
  let trials, failed =
    List.fold_left
      (fun (t, f) e ->
        match e with
        | Recorder.Trial { ok; _ } -> (t + 1, if ok then f else f + 1)
        | _ -> (t, f))
      (0, 0) events
  in
  Buffer.add_string buf (Printf.sprintf "trials: %d (%d failed)\n" trials failed);
  if rows = [] then Buffer.add_string buf "no phase spans recorded\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-32s %-22s %8s %8s %12s %14s %10s\n" "protocol" "phase" "spans"
         "rounds" "msgs" "bits" "wall-ms");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%-32s %-22s %8d %8d %12d %14d %10.2f\n" r.row_protocol r.row_phase
             r.row_spans r.row_rounds r.row_msgs r.row_bits
             (Int64.to_float r.row_ns /. 1e6)))
      rows
  end;
  (match
     List.filter_map
       (fun (name, v) -> match v with Registry.Hist h -> Some (name, h) | _ -> None)
       metrics
   with
  | [] -> ()
  | hists ->
      Buffer.add_string buf
        (Printf.sprintf "\n%-40s %8s %12s %12s %12s\n" "histogram" "count" "mean" "p90" "max");
      List.iter
        (fun (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s %8d %12.1f %12d %12d\n" name (Hist.count h) (Hist.mean h)
               (Hist.quantile h 0.90) (Hist.max_value h)))
        hists);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validation of exported artifacts (used by `ftc trace summary`).     *)

let validate_trace_json content =
  match Json.of_string content with
  | Error e -> Error ("trace.json: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          let ok_event e =
            match (Json.member "ph" e, Json.member "ts" e) with
            | Some (Json.String ph), Some (Json.Int _) ->
                (* complete events must carry a duration *)
                ph <> "X" || Json.member "dur" e <> None
            | Some (Json.String "M"), None -> true
            | _ -> false
          in
          let bad = List.filter (fun e -> not (ok_event e)) evs in
          if bad <> [] then
            Error (Printf.sprintf "trace.json: %d events missing ph/ts/dur" (List.length bad))
          else Ok (List.length evs)
      | _ -> Error "trace.json: no traceEvents array")

let validate_prometheus content =
  let lines = String.split_on_char '\n' content |> List.filter (fun l -> l <> "") in
  let samples =
    List.filter (fun l -> String.length l > 0 && l.[0] <> '#') lines
  in
  let well_formed l =
    match String.rindex_opt l ' ' with
    | None -> false
    | Some i ->
        let v = String.sub l (i + 1) (String.length l - i - 1) in
        (match int_of_string_opt v with Some _ -> true | None -> float_of_string_opt v <> None)
  in
  match List.filter (fun l -> not (well_formed l)) samples with
  | [] -> if samples = [] then Error "metrics.prom: no samples" else Ok (List.length samples)
  | bad -> Error (Printf.sprintf "metrics.prom: %d malformed lines" (List.length bad))
