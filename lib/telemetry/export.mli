(** Exporters for a {!Recorder}'s registry snapshot and event log, all
    built on the journal's JSON codec ({!Ftc_journal.Json}):

    - [events.jsonl] — one JSON object per line: a header, every metric,
      every event. The source of truth; the other two artifacts can be
      regenerated from it ([ftc trace export]).
    - [trace.json] — Chrome trace-event JSON (Perfetto-loadable): one
      track per trial/worker, complete ([ph = "X"]) slices for trials,
      phase spans and pool jobs, counter events for sweep heartbeats.
    - [metrics.prom] — Prometheus-style text snapshot; histograms as
      cumulative power-of-two [le] buckets. *)

val event_to_json : Recorder.event -> Ftc_journal.Json.t
val event_of_json : Ftc_journal.Json.t -> Recorder.event option
val metric_to_json : string * Registry.value -> Ftc_journal.Json.t
val metric_of_json : Ftc_journal.Json.t -> (string * Registry.value) option

val events_jsonl :
  metrics:(string * Registry.value) list -> events:Recorder.event list -> string

val parse_events_jsonl :
  string -> ((string * Registry.value) list * Recorder.event list, string) result

val chrome_trace : Recorder.event list -> Ftc_journal.Json.t
val prometheus : (string * Registry.value) list -> string

val events_file : string
val trace_file : string
val prom_file : string

val export_files :
  dir:string ->
  metrics:(string * Registry.value) list ->
  events:Recorder.event list ->
  unit
(** Write all three artifacts into [dir] (created if missing). *)

val write_dir : dir:string -> Recorder.t -> unit
(** {!export_files} on the recorder's current snapshot and events. *)

val load_dir : dir:string -> ((string * Registry.value) list * Recorder.event list, string) result
(** Read back [dir/events.jsonl]. *)

val summary :
  metrics:(string * Registry.value) list -> events:Recorder.event list -> string
(** Human-readable per-(protocol, phase) cost table — spans, rounds,
    msgs, bits, wall-clock — plus trial totals and histogram digests.
    Rows are sorted (protocol, calendar position), so the output is
    deterministic up to the wall-clock columns. *)

val validate_trace_json : string -> (int, string) result
(** Check a [trace.json] body: parses, has a [traceEvents] array, every
    event carries [ph]/[ts] (and [dur] for complete events). Returns the
    event count. *)

val validate_prometheus : string -> (int, string) result
(** Check a [metrics.prom] body: non-empty, every sample line ends in a
    number. Returns the sample count. *)
