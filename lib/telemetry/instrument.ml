(* Glue between the recorder and the rest of the stack. Lives here so
   neither [ftc_sim] nor [ftc_parallel] needs to know about telemetry:
   the engine exposes plain arrays and a clock hook, the pool a monitor
   record, and this module folds both into the recorder. *)

let metric_prefix = "ftc_"

(* Adapter: a pool monitor feeding queue-depth/wait/busy histograms and
   per-worker job slices into the recorder. [None] when the recorder is
   disabled, so an unmonitored pool never reads a clock. *)
let pool_monitor recorder pool_name =
  if not (Recorder.enabled recorder) then None
  else begin
    let reg = Recorder.registry recorder in
    let depth_metric = metric_prefix ^ "pool_queue_depth" in
    let wait_metric = metric_prefix ^ "pool_queue_wait_ns" in
    let busy_metric = metric_prefix ^ "pool_worker_busy_ns" in
    Some
      {
        Ftc_parallel.Pool.now_ns = (fun () -> Recorder.now_ns recorder);
        enqueued =
          (fun ~depth ->
            Registry.observe reg depth_metric depth;
            Registry.gauge_max reg (metric_prefix ^ "pool_queue_depth_peak") depth);
        job_done =
          (fun ~worker ~enqueued_ns ~started_ns ~finished_ns ->
            let wait_ns = Int64.max 0L (Int64.sub started_ns enqueued_ns) in
            let dur_ns = Int64.max 0L (Int64.sub finished_ns started_ns) in
            Registry.observe reg wait_metric (Int64.to_int wait_ns);
            Registry.observe reg busy_metric (Int64.to_int dur_ns);
            Recorder.emit recorder
              (Recorder.Job { pool = pool_name; worker; start_ns = started_ns; dur_ns; wait_ns }))
      }
  end

(* Record one finished trial: the whole-trial event, its phase spans cut
   along the protocol's calendar, and the standard counter/histogram
   feed. Everything arrives as plain values so callers in any layer
   (expt runner, chaos case) can use it. *)
let record_run recorder ~protocol ~seed ~ok ~phases ~rounds_used ~per_round_msgs
    ~per_round_bits ~msgs ~bits ~dropped ~lost_link ~queue_dropped ~ecn_marked
    ~per_round_queue_peak ~unroutable ~round_ns ~start_ns =
  if Recorder.enabled recorder then begin
    let track = Printf.sprintf "seed-%d" seed in
    let dur_ns = Int64.sub (Recorder.now_ns recorder) start_ns in
    Recorder.emit recorder
      (Recorder.Trial { track; protocol; seed; ok; msgs; bits; rounds = rounds_used; start_ns; dur_ns });
    List.iter
      (fun s -> Recorder.emit recorder (Recorder.Span s))
      (Span.cut ~protocol ~track ~phases ~rounds_used ~per_round_msgs ~per_round_bits ~round_ns
         ~start_ns);
    let reg = Recorder.registry recorder in
    Registry.incr reg (metric_prefix ^ "trials_total") 1;
    if not ok then Registry.incr reg (metric_prefix ^ "trials_failed_total") 1;
    Registry.incr reg (metric_prefix ^ "msgs_total") msgs;
    Registry.incr reg (metric_prefix ^ "bits_total") bits;
    Registry.incr reg (metric_prefix ^ "msgs_dropped_total") dropped;
    Registry.incr reg (metric_prefix ^ "msgs_lost_link_total") lost_link;
    Registry.incr reg (metric_prefix ^ "msgs_dropped_queue_total") queue_dropped;
    Registry.incr reg (metric_prefix ^ "msgs_ecn_marked_total") ecn_marked;
    Registry.incr reg (metric_prefix ^ "msgs_unroutable_total") unroutable;
    Registry.observe reg (metric_prefix ^ "trial_msgs") msgs;
    Registry.observe reg (metric_prefix ^ "trial_bits") bits;
    Registry.observe reg (metric_prefix ^ "trial_rounds") rounds_used;
    Registry.observe reg (metric_prefix ^ "trial_wall_ns") (Int64.to_int dur_ns);
    Array.iter (fun m -> Registry.observe reg (metric_prefix ^ "round_msgs") m) per_round_msgs;
    (* Queue occupancy histogram: one sample per round that saw a nonzero
       ingress-queue peak, so queue-less runs add no series at all. *)
    Array.iter
      (fun d -> if d > 0 then Registry.observe reg (metric_prefix ^ "queue_occupancy") d)
      per_round_queue_peak
  end
