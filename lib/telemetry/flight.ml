module Json = Ftc_journal.Json

type ev =
  | Admitted of { ticket : int; id : string; protocol : string; n : int; seed : int }
  | Shed of { id : string; hint_ms : int; draining : bool }
  | Started of { ticket : int; attempt : int; worker : int }
  | Round of { ticket : int; round : int }
  | Decided of { ticket : int; class_ : string; ok : bool }
  | Requeued of { ticket : int; attempt : int }
  | Reaped of { worker : int; ticket : int option; detail : string }
  | Respawned of { worker : int; ticket : int option }
  | Budget_exhausted of { ticket : int }
  | Injected of { kind : string; ticket : int }
  | Trial of { seed : int; class_ : string }
  | Note of string

type entry = { seq : int; at_ns : int64; ev : ev }

type t = {
  on : bool;
  cap : int;
  epoch : float;
  lock : Mutex.t;
  evs : ev array;
  stamps : int64 array;
  mutable written : int;  (* lifetime event count *)
}

let create ~capacity =
  let cap = max 1 capacity in
  {
    on = true;
    cap;
    epoch = Unix.gettimeofday ();
    lock = Mutex.create ();
    evs = Array.make cap (Note "");
    stamps = Array.make cap 0L;
    written = 0;
  }

(* Shared no-op ring: [record] drops the event after one field read, so
   instrumented paths stay unconditional (same shape as Recorder.disabled). *)
let disabled =
  {
    on = false;
    cap = 0;
    epoch = 0.;
    lock = Mutex.create ();
    evs = [||];
    stamps = [||];
    written = 0;
  }

let enabled t = t.on
let capacity t = t.cap

let record t ev =
  if t.on then begin
    let at = Int64.of_float ((Unix.gettimeofday () -. t.epoch) *. 1e9) in
    Mutex.lock t.lock;
    let slot = t.written mod t.cap in
    t.evs.(slot) <- ev;
    t.stamps.(slot) <- at;
    t.written <- t.written + 1;
    Mutex.unlock t.lock
  end

let total t =
  if not t.on then 0
  else begin
    Mutex.lock t.lock;
    let n = t.written in
    Mutex.unlock t.lock;
    n
  end

let dropped t = max 0 (total t - t.cap)

let snapshot t =
  if not t.on then []
  else begin
    Mutex.lock t.lock;
    let written = t.written in
    let live = min written t.cap in
    let first = written - live in
    let out =
      List.init live (fun i ->
          let seq = first + i in
          let slot = seq mod t.cap in
          { seq; at_ns = t.stamps.(slot); ev = t.evs.(slot) })
    in
    Mutex.unlock t.lock;
    out
  end

let ticket_of = function
  | Admitted { ticket; _ }
  | Started { ticket; _ }
  | Round { ticket; _ }
  | Decided { ticket; _ }
  | Requeued { ticket; _ }
  | Budget_exhausted { ticket }
  | Injected { ticket; _ } ->
      Some ticket
  | Reaped { ticket; _ } | Respawned { ticket; _ } -> ticket
  | Shed _ | Trial _ | Note _ -> None

let ev_kind = function
  | Admitted _ -> "admitted"
  | Shed _ -> "shed"
  | Started _ -> "started"
  | Round _ -> "round"
  | Decided _ -> "decided"
  | Requeued _ -> "requeued"
  | Reaped _ -> "reaped"
  | Respawned _ -> "respawned"
  | Budget_exhausted _ -> "budget-exhausted"
  | Injected _ -> "injected"
  | Trial _ -> "trial"
  | Note _ -> "note"

let pp_ev = function
  | Admitted { ticket; id; protocol; n; seed } ->
      Printf.sprintf "admitted ticket=%d id=%s protocol=%s n=%d seed=%d" ticket id protocol
        n seed
  | Shed { id; hint_ms; draining } ->
      Printf.sprintf "shed id=%s retry_after_ms=%d%s" id hint_ms
        (if draining then " (draining)" else "")
  | Started { ticket; attempt; worker } ->
      Printf.sprintf "started ticket=%d attempt=%d on worker %d" ticket attempt worker
  | Round { ticket; round } -> Printf.sprintf "round ticket=%d round=%d" ticket round
  | Decided { ticket; class_; ok } ->
      Printf.sprintf "decided ticket=%d class=%s ok=%b" ticket class_ ok
  | Requeued { ticket; attempt } ->
      Printf.sprintf "requeued ticket=%d after attempt %d" ticket attempt
  | Reaped { worker; ticket; detail } ->
      Printf.sprintf "reaped worker %d%s: %s" worker
        (match ticket with Some k -> Printf.sprintf " (ticket %d)" k | None -> " (idle)")
        detail
  | Respawned { worker; ticket } ->
      Printf.sprintf "respawned worker %d%s" worker
        (match ticket with
        | Some k -> Printf.sprintf " (was running ticket %d)" k
        | None -> "")
  | Budget_exhausted { ticket } -> Printf.sprintf "crash budget exhausted ticket=%d" ticket
  | Injected { kind; ticket } -> Printf.sprintf "injected %s ticket=%d" kind ticket
  | Trial { seed; class_ } -> Printf.sprintf "trial seed=%d class=%s" seed class_
  | Note s -> Printf.sprintf "note %s" s

(* ---- JSON codec ------------------------------------------------------- *)

let opt_ticket = function
  | Some k -> [ ("ticket", Json.Int k) ]
  | None -> []

let ev_to_json ev =
  let tag rest = Json.Obj (("ev", Json.String (ev_kind ev)) :: rest) in
  match ev with
  | Admitted { ticket; id; protocol; n; seed } ->
      tag
        [
          ("ticket", Json.Int ticket);
          ("id", Json.String id);
          ("protocol", Json.String protocol);
          ("n", Json.Int n);
          ("seed", Json.Int seed);
        ]
  | Shed { id; hint_ms; draining } ->
      tag
        [
          ("id", Json.String id);
          ("hint_ms", Json.Int hint_ms);
          ("draining", Json.Bool draining);
        ]
  | Started { ticket; attempt; worker } ->
      tag
        [
          ("ticket", Json.Int ticket);
          ("attempt", Json.Int attempt);
          ("worker", Json.Int worker);
        ]
  | Round { ticket; round } -> tag [ ("ticket", Json.Int ticket); ("round", Json.Int round) ]
  | Decided { ticket; class_; ok } ->
      tag
        [
          ("ticket", Json.Int ticket); ("class", Json.String class_); ("ok", Json.Bool ok);
        ]
  | Requeued { ticket; attempt } ->
      tag [ ("ticket", Json.Int ticket); ("attempt", Json.Int attempt) ]
  | Reaped { worker; ticket; detail } ->
      tag
        (("worker", Json.Int worker)
        :: (opt_ticket ticket @ [ ("detail", Json.String detail) ]))
  | Respawned { worker; ticket } -> tag (("worker", Json.Int worker) :: opt_ticket ticket)
  | Budget_exhausted { ticket } -> tag [ ("ticket", Json.Int ticket) ]
  | Injected { kind; ticket } ->
      tag [ ("kind", Json.String kind); ("ticket", Json.Int ticket) ]
  | Trial { seed; class_ } ->
      tag [ ("seed", Json.Int seed); ("class", Json.String class_) ]
  | Note s -> tag [ ("text", Json.String s) ]

let ev_of_json j =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let bool k = Option.bind (Json.member k j) Json.to_bool in
  let decoded =
    let* kind = str "ev" in
    match kind with
    | "admitted" ->
        let* ticket = int "ticket" in
        let* id = str "id" in
        let* protocol = str "protocol" in
        let* n = int "n" in
        let* seed = int "seed" in
        Some (Admitted { ticket; id; protocol; n; seed })
    | "shed" ->
        let* id = str "id" in
        let* hint_ms = int "hint_ms" in
        let* draining = bool "draining" in
        Some (Shed { id; hint_ms; draining })
    | "started" ->
        let* ticket = int "ticket" in
        let* attempt = int "attempt" in
        let* worker = int "worker" in
        Some (Started { ticket; attempt; worker })
    | "round" ->
        let* ticket = int "ticket" in
        let* round = int "round" in
        Some (Round { ticket; round })
    | "decided" ->
        let* ticket = int "ticket" in
        let* class_ = str "class" in
        let* ok = bool "ok" in
        Some (Decided { ticket; class_; ok })
    | "requeued" ->
        let* ticket = int "ticket" in
        let* attempt = int "attempt" in
        Some (Requeued { ticket; attempt })
    | "reaped" ->
        let* worker = int "worker" in
        let* detail = str "detail" in
        Some (Reaped { worker; ticket = int "ticket"; detail })
    | "respawned" ->
        let* worker = int "worker" in
        Some (Respawned { worker; ticket = int "ticket" })
    | "budget-exhausted" ->
        let* ticket = int "ticket" in
        Some (Budget_exhausted { ticket })
    | "injected" ->
        let* kind = str "kind" in
        let* ticket = int "ticket" in
        Some (Injected { kind; ticket })
    | "trial" ->
        let* seed = int "seed" in
        let* class_ = str "class" in
        Some (Trial { seed; class_ })
    | "note" ->
        let* text = str "text" in
        Some (Note text)
    | _ -> None
  in
  match decoded with
  | Some ev -> Ok ev
  | None -> Error (Printf.sprintf "bad flight event: %s" (Json.to_string j))

(* ---- Black-box files -------------------------------------------------- *)

let file_version = 1

type dump = {
  version : int;
  reason : string;
  capacity_ : int;
  recorded : int;
  dropped_ : int;
  entries : entry list;
}

let entry_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("at_ns", Json.Int (Int64.to_int e.at_ns));
      ("event", ev_to_json e.ev);
    ]

let entry_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int in
  match (int "seq", int "at_ns", Json.member "event" j) with
  | Some seq, Some at, Some evj -> (
      match ev_of_json evj with
      | Ok ev -> Ok { seq; at_ns = Int64.of_int at; ev }
      | Error e -> Error e)
  | _ -> Error (Printf.sprintf "bad flight entry: %s" (Json.to_string j))

let dump t ~path ~reason =
  if t.on then begin
    let entries = snapshot t in
    let recorded = total t in
    let header =
      Json.Obj
        [
          ("blackbox", Json.Int file_version);
          ("reason", Json.String reason);
          ("capacity", Json.Int t.cap);
          ("recorded", Json.Int recorded);
          ("dropped", Json.Int (max 0 (recorded - t.cap)));
        ]
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Json.to_string header);
    Buffer.add_char buf '\n';
    List.iter
      (fun e ->
        Buffer.add_string buf (Json.to_string (entry_to_json e));
        Buffer.add_char buf '\n')
      entries;
    Ftc_journal.Journal.write_atomic ~path (Buffer.contents buf)
  end

let read_lines path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> Ok (List.rev acc)
        in
        go [])
  with Sys_error e -> Error e

let load ~path =
  let ( let* ) = Result.bind in
  let* lines = read_lines path in
  match lines with
  | [] -> Error "empty black-box file"
  | header :: rest ->
      let* hj = Json.of_string header in
      let int k = Option.bind (Json.member k hj) Json.to_int in
      let str k = Option.bind (Json.member k hj) Json.to_str in
      let* version =
        match int "blackbox" with
        | Some v -> Ok v
        | None -> Error "missing black-box header"
      in
      let* () =
        if version = file_version then Ok ()
        else Error (Printf.sprintf "unsupported black-box version %d" version)
      in
      let* reason = Option.to_result ~none:"header missing reason" (str "reason") in
      let* capacity_ = Option.to_result ~none:"header missing capacity" (int "capacity") in
      let* recorded = Option.to_result ~none:"header missing recorded" (int "recorded") in
      let* dropped_ = Option.to_result ~none:"header missing dropped" (int "dropped") in
      let* entries =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* j = Json.of_string line in
            let* e = entry_of_json j in
            Ok (e :: acc))
          (Ok []) rest
      in
      Ok { version; reason; capacity_; recorded; dropped_; entries = List.rev entries }

let check d =
  let n = List.length d.entries in
  if d.recorded - d.dropped_ <> n then
    Error
      (Printf.sprintf "entry count %d does not match recorded %d - dropped %d" n d.recorded
         d.dropped_)
  else
    let rec seqs expect = function
      | [] -> Ok ()
      | e :: rest ->
          if e.seq <> expect then
            Error (Printf.sprintf "sequence gap: expected %d, found %d" expect e.seq)
          else seqs (expect + 1) rest
    in
    seqs d.dropped_ d.entries

let timeline entries ~ticket =
  List.filter (fun e -> ticket_of e.ev = Some ticket) entries
