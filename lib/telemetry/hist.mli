(** Log-scale (power-of-two) histogram of non-negative integer samples.

    Fixed [n_buckets] buckets: bucket [0] holds every value [<= 0];
    bucket [i] for [1 <= i <= n_buckets - 2] holds the half-open range
    [[2^(i-1), 2^i)]; the last bucket is the overflow and holds every
    value [>= 2^(n_buckets-2)]. A record is a few shifts and adds — no
    allocation — so histograms are safe on per-round hot paths. Not
    thread-safe by itself; {!Registry} serialises access. *)

type t

val n_buckets : int

val create : unit -> t

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val lower_bound : int -> int
(** Inclusive lower bound of a bucket ([min_int] for bucket 0). *)

val upper_bound : int -> int
(** Exclusive upper bound of a bucket ([max_int] for the overflow). *)

val record : t -> int -> unit

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float

val buckets : t -> int array
(** A copy. *)

val copy : t -> t

val of_parts : count:int -> sum:int -> min_value:int -> max_value:int -> int array -> t
(** Rebuild a histogram from exported parts (bucket array length must be
    [n_buckets]); used by the JSONL importer. *)

val quantile : t -> float -> int
(** Approximate (bucket-resolution) quantile, clamped to the observed
    maximum; 0 when empty. *)
