(** The central telemetry handle: an event log plus a {!Registry}.

    A recorder is either live ({!create}) or the shared {!disabled}
    no-op. Code under instrumentation takes the recorder unconditionally
    and calls {!emit}/{!registry} operations; with the disabled recorder
    each call is one immediate bool test, so tier-1 hot paths stay at
    near-zero cost and bit-identical output. All operations are
    domain-safe — trials running on pool workers share one recorder.

    Timestamps are nanoseconds relative to the recorder's creation
    (wall clock): small, positive, and directly usable as Chrome-trace
    [ts] offsets. *)

type event =
  | Span of Span.t  (** One protocol phase of one trial. *)
  | Trial of {
      track : string;
      protocol : string;
      seed : int;
      ok : bool;
      msgs : int;
      bits : int;
      rounds : int;
      start_ns : int64;
      dur_ns : int64;
    }  (** Whole-trial summary; its spans nest under it on the same track. *)
  | Job of { pool : string; worker : int; start_ns : int64; dur_ns : int64; wait_ns : int64 }
      (** One pool job as executed by a worker domain. *)
  | Heartbeat of { at_ns : int64; completed : int; failed : int; total : int }
      (** Sweep progress tick from the supervisor. *)

type t

val create : unit -> t
val disabled : t
val enabled : t -> bool
val registry : t -> Registry.t

val now_ns : t -> int64
(** Nanoseconds since the recorder was created; [0L] when disabled (the
    clock is never read). *)

val emit : t -> event -> unit

val events : t -> event list
(** Events in emission order. With multiple domains emitting, the
    interleaving is scheduling-dependent — exporters must not rely on
    it (the summary sorts; the trace orders by timestamp). *)
