(* A phase span: one protocol phase of one trial, with the message/bit
   mass and wall-clock time attributed to its round range. *)

type t = {
  protocol : string;
  track : string;  (* trace track the span renders on, e.g. "seed-42" *)
  phase : string;
  start_round : int;
  end_round : int;  (* exclusive *)
  msgs : int;
  bits : int;
  start_ns : int64;  (* relative to the recorder epoch *)
  dur_ns : int64;
}

let sum_range a lo hi =
  let hi = min hi (Array.length a) in
  let acc = ref 0 in
  for i = lo to hi - 1 do
    acc := !acc + a.(i)
  done;
  !acc

let sum_range64 a lo hi =
  let hi = min hi (Array.length a) in
  let acc = ref 0L in
  for i = lo to hi - 1 do
    acc := Int64.add !acc a.(i)
  done;
  !acc

(* Cut a trial's per-round series into phase spans along the protocol's
   calendar. Phases not starting at round 0 get a synthetic leading
   "run" phase; ranges that end up empty (the run stopped before they
   began, or two phases share a round) are dropped. When the engine ran
   without a round clock ([round_ns = [||]]) spans carry zero duration
   at the trial's start offset — counts are still exact. *)
let cut ~protocol ~track ~phases ~rounds_used ~per_round_msgs ~per_round_bits ~round_ns
    ~start_ns =
  let phases = match phases with (_, 0) :: _ -> phases | ps -> ("run", 0) :: ps in
  let rec ranges = function
    | [] -> []
    | (name, s) :: rest ->
        let e = match rest with (_, s') :: _ -> s' | [] -> rounds_used in
        (name, s, min e rounds_used) :: ranges rest
  in
  ranges phases
  |> List.filter_map (fun (phase, s, e) ->
         if s >= e then None
         else
           Some
             {
               protocol;
               track;
               phase;
               start_round = s;
               end_round = e;
               msgs = sum_range per_round_msgs s e;
               bits = sum_range per_round_bits s e;
               start_ns = Int64.add start_ns (sum_range64 round_ns 0 s);
               dur_ns = sum_range64 round_ns s e;
             })
