type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_value : int;
  mutable max_value : int;
  buckets : int array;
}

let n_buckets = 32

let create () =
  { count = 0; sum = 0; min_value = 0; max_value = 0; buckets = Array.make n_buckets 0 }

(* Bucket 0 holds v <= 0; bucket i in [1, n_buckets-2] holds
   [2^(i-1), 2^i); the last bucket is the overflow, v >= 2^(n_buckets-2).
   Power-of-two boundaries keep [bucket_of] a handful of shifts — cheap
   enough for per-round hot paths. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 and x = ref v in
    while !x > 0 do
      incr bits;
      x := !x lsr 1
    done;
    min !bits (n_buckets - 1)
  end

let lower_bound i =
  if i <= 0 then min_int else if i >= n_buckets then max_int else 1 lsl (i - 1)

let upper_bound i = if i < 0 then min_int else if i >= n_buckets - 1 then max_int else 1 lsl i

let record t v =
  if t.count = 0 then begin
    t.min_value <- v;
    t.max_value <- v
  end
  else begin
    if v < t.min_value then t.min_value <- v;
    if v > t.max_value then t.max_value <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count
let sum t = t.sum
let min_value t = t.min_value
let max_value t = t.max_value
let buckets t = Array.copy t.buckets

let copy t =
  {
    count = t.count;
    sum = t.sum;
    min_value = t.min_value;
    max_value = t.max_value;
    buckets = Array.copy t.buckets;
  }

let of_parts ~count ~sum ~min_value ~max_value buckets =
  if Array.length buckets <> n_buckets then invalid_arg "Hist.of_parts: wrong bucket count";
  { count; sum; min_value; max_value; buckets = Array.copy buckets }

(* Approximate quantile: the smallest bucket upper bound covering at
   least [q] of the recorded mass, clamped to the observed maximum so an
   all-in-one-bucket histogram reports something tight. *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int t.count)) in
    let target = if target < 1 then 1 else if target > t.count then t.count else target in
    let acc = ref 0 and b = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= target then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    let hi = upper_bound !b in
    if hi = max_int || hi > t.max_value then t.max_value else hi - 1
  end

let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count
