(** Mutex-guarded registry of named metrics.

    Three kinds: monotonically increasing counters, last/peak-value
    gauges, and log-scale {!Hist} histograms. A metric springs into
    existence on first use and keeps the kind of that first operation;
    mixing kinds under one name raises [Invalid_argument].

    The {!disabled} registry makes every recording operation a single
    immediate bool test — hot paths keep their instrumentation calls
    unconditionally and pay (near) nothing when telemetry is off.
    All operations are domain-safe. *)

type value = Counter of int | Gauge of int | Hist of Hist.t

type t

val create : unit -> t
(** A fresh enabled registry. *)

val disabled : t
(** The shared no-op registry: recording is a bool test, {!snapshot} is
    always empty. *)

val enabled : t -> bool

val incr : t -> string -> int -> unit
(** Add to a counter (creating it at the given value). *)

val set_gauge : t -> string -> int -> unit
(** Set a gauge. *)

val gauge_max : t -> string -> int -> unit
(** Raise a gauge to [v] if [v] is larger (peak tracking). *)

val observe : t -> string -> int -> unit
(** Record one sample into a histogram. *)

val import : t -> string -> value -> unit
(** Overwrite a metric with an exported value; used by the JSONL
    importer when rebuilding a registry from [events.jsonl]. *)

val snapshot : t -> (string * value) list
(** Point-in-time copy of every metric, sorted by name (deterministic
    given deterministic values). *)
