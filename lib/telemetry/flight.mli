(** Flight recorder: a fixed-capacity, allocation-bounded ring buffer of
    structured service events — the "black box" of [ftc serve] and the
    sweep supervisor.

    Like {!Recorder}, a flight ring is either live ({!create}) or the
    shared {!disabled} no-op: instrumentation calls {!record}
    unconditionally and pays one bool test when the ring is off. A live
    ring preallocates its slot arrays at creation and never grows — under
    sustained load old events are overwritten, and the global event count
    keeps increasing so every surviving entry carries a stable, strictly
    monotone sequence number. [dropped] says how many events were
    overwritten before the oldest survivor.

    {!dump} writes the surviving window as a versioned JSONL black-box
    file (one header line, then one entry per line, oldest first) via an
    atomic rename; {!load}/{!check} read one back and verify its
    invariants; {!timeline} filters a window down to the causal history
    of a single ticket. All recording operations are domain-safe. *)

type ev =
  | Admitted of { ticket : int; id : string; protocol : string; n : int; seed : int }
      (** Admission accepted a submit and queued it under [ticket]. *)
  | Shed of { id : string; hint_ms : int; draining : bool }
      (** Admission refused a submit (bound hit, or draining) with a
          retry-after hint. *)
  | Started of { ticket : int; attempt : int; worker : int }
      (** A worker domain began executing an attempt of the ticket. *)
  | Round of { ticket : int; round : int }
      (** Watchdog-poll heartbeat: the instance reached engine round
          [round] (counted in watchdog polls). *)
  | Decided of { ticket : int; class_ : string; ok : bool }
      (** Terminal reply sent for the ticket. [class_] is ["ok"] for a
          result or the failure class ([Wire.failed_*]). *)
  | Requeued of { ticket : int; attempt : int }
      (** Supervisor put the ticket back at the front of the queue after
          a worker crash; [attempt] is the count already consumed. *)
  | Reaped of { worker : int; ticket : int option; detail : string }
      (** Supervisor observed a dead worker domain and collected it. *)
  | Respawned of { worker : int; ticket : int option }
      (** Supervisor started a replacement domain in the same slot. *)
  | Budget_exhausted of { ticket : int }
      (** The ticket consumed its full crash budget. *)
  | Injected of { kind : string; ticket : int }
      (** A fault-injection decision fired ({!Ftc_serve.Inject} kind
          name). *)
  | Trial of { seed : int; class_ : string }
      (** Sweep-supervisor trial outcome (["completed"], a failure
          class, or ["skipped"]). *)
  | Note of string  (** Free-form lifecycle marker. *)

type entry = { seq : int; at_ns : int64; ev : ev }

type t

val create : capacity:int -> t
(** A live ring with [capacity] slots (clamped to at least 1).
    Timestamps are nanoseconds since creation. *)

val disabled : t
(** Shared no-op ring: {!record} is one bool test, {!snapshot} is []. *)

val enabled : t -> bool
val capacity : t -> int

val record : t -> ev -> unit

val total : t -> int
(** Events recorded over the ring's lifetime (including overwritten). *)

val dropped : t -> int
(** [max 0 (total - capacity)]: events overwritten and no longer in the
    window. *)

val snapshot : t -> entry list
(** The surviving window, oldest first. Sequence numbers are global:
    the first surviving entry has [seq = dropped t]. *)

val ticket_of : ev -> int option
(** The ticket an event attributes to, when it has one. *)

val ev_kind : ev -> string
(** The JSONL discriminator string for the event. *)

val pp_ev : ev -> string
(** Human one-line rendering (used by [ftc blackbox timeline]). *)

(** {1 Black-box files} *)

val file_version : int
(** Version stamped in the header line; bump on any schema change. *)

type dump = {
  version : int;
  reason : string;
  capacity_ : int;
  recorded : int;  (** lifetime total at dump time *)
  dropped_ : int;
  entries : entry list;  (** oldest first *)
}

val dump : t -> path:string -> reason:string -> unit
(** Write the current window atomically as JSONL. A disabled ring writes
    nothing. [reason] is one of the dump triggers (e.g. ["watchdog"],
    ["worker-crash"], ["ledger-residue"], ["sigquit"], ["clean-drain"],
    ["sweep-end"]). *)

val load : path:string -> (dump, string) result
(** Parse a black-box file. Fails on unreadable files, bad JSON, an
    unknown version, or a malformed entry. *)

val check : dump -> (unit, string) result
(** Verify invariants: entry count matches [recorded - dropped_] and
    sequence numbers are contiguous starting at [dropped_]. (Timestamps
    need not be monotone — producer domains race for slots.) *)

val timeline : entry list -> ticket:int -> entry list
(** Entries attributable to [ticket], in sequence order. *)

val ev_to_json : ev -> Ftc_journal.Json.t
val ev_of_json : Ftc_journal.Json.t -> (ev, string) result
