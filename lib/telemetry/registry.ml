type value = Counter of int | Gauge of int | Hist of Hist.t

type metric = M_counter of int ref | M_gauge of int ref | M_hist of Hist.t

type t = {
  on : bool;
  lock : Mutex.t;
  metrics : (string, metric) Hashtbl.t;
}

let create () = { on = true; lock = Mutex.create (); metrics = Hashtbl.create 64 }

(* The disabled registry is a shared singleton every operation bails out
   of after one immediate bool test — the near-zero-cost "off" switch. *)
let disabled = { on = false; lock = Mutex.create (); metrics = Hashtbl.create 1 }

let enabled t = t.on

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let wrong_kind name = invalid_arg (Printf.sprintf "Registry: %s registered with another kind" name)

let incr t name v =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.metrics name with
        | Some (M_counter r) -> r := !r + v
        | Some _ -> wrong_kind name
        | None -> Hashtbl.replace t.metrics name (M_counter (ref v)))

let set_gauge t name v =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.metrics name with
        | Some (M_gauge r) -> r := v
        | Some _ -> wrong_kind name
        | None -> Hashtbl.replace t.metrics name (M_gauge (ref v)))

let gauge_max t name v =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.metrics name with
        | Some (M_gauge r) -> if v > !r then r := v
        | Some _ -> wrong_kind name
        | None -> Hashtbl.replace t.metrics name (M_gauge (ref v)))

let observe t name v =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.metrics name with
        | Some (M_hist h) -> Hist.record h v
        | Some _ -> wrong_kind name
        | None ->
            let h = Hist.create () in
            Hist.record h v;
            Hashtbl.replace t.metrics name (M_hist h))

let import t name value =
  if t.on then
    locked t (fun () ->
        match value with
        | Counter v -> Hashtbl.replace t.metrics name (M_counter (ref v))
        | Gauge v -> Hashtbl.replace t.metrics name (M_gauge (ref v))
        | Hist h -> Hashtbl.replace t.metrics name (M_hist (Hist.copy h)))

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | M_counter r -> Counter !r
            | M_gauge r -> Gauge !r
            | M_hist h -> Hist (Hist.copy h)
          in
          (name, v) :: acc)
        t.metrics [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)
