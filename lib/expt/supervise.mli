(** Crash-safe sweep supervision: the layer between "run this seed list"
    and the CLI.

    Three concerns, composable and all off by default:

    - {b Journal}: every completed trial is appended (and flushed) to a
      write-ahead JSONL journal ({!Ftc_journal.Journal}) keyed by a hash
      of the sweep spec. A sweep killed at any point — SIGKILL included —
      can be resumed against its journal: journaled seeds are skipped,
      missing ones run, and because each trial is a pure function of its
      seed the resumed sweep's output is bit-identical to an
      uninterrupted run.
    - {b Watchdog}: a per-trial wall-clock budget enforced cooperatively
      by the engine (see {!Ftc_sim.Engine.config.watchdog}).
    - {b Quarantine}: under keep-going, failed trials are recorded in a
      quarantine file (one JSON object per line, each embedding a chaos
      replay document where one exists) instead of aborting the sweep;
      [ftc replay --quarantine] re-executes them.

    The supervisor is generic in the trial payload ['a]: [ftc sweep] uses
    it with rendered per-seed reports, the expt driver with bare metric
    records ({!run_many_journaled}). *)

type failure_class = Violation | Timed_out | Watchdog_expired | Exception

val class_to_string : failure_class -> string
(** ["violation" | "timeout" | "watchdog" | "exception"] — the spelling
    used in quarantine files and reports. *)

val class_of_string : string -> failure_class option

type failure = { seed : int; class_ : failure_class; detail : string }

type 'a trial =
  | Completed of 'a
  | Failed of failure
  | Skipped
      (** Fail-fast only: a failure elsewhere aborted the sweep before
          this seed started. Never produced under keep-going. *)

type config = {
  jobs : int;
  keep_going : bool;  (** Failures quarantine instead of aborting. *)
  journal : string option;  (** Journal path to write (and read, if [resume]). *)
  resume : bool;
      (** [journal] is an existing journal from an interrupted run of the
          {e same} spec: load it, skip its seeds, append the rest. *)
  quarantine : string option;  (** Where failed trials are recorded. *)
  trial_timeout : float option;  (** Per-trial wall-clock budget, seconds. *)
  recorder : Ftc_telemetry.Recorder.t;
      (** Sweep telemetry sink: one [Heartbeat] event and outcome
          counter per finished trial, plus a pool monitor on the
          worker pool. Default: the disabled recorder (zero cost). *)
  flight : Ftc_telemetry.Flight.t;
      (** Flight-recorder ring: one [Trial] event per finished trial
          (outcome class), recorded from the pool workers. The driver
          dumps the ring as a black box next to the telemetry
          artifacts. Default: the disabled ring (one bool test). *)
  stop : unit -> bool;
      (** Polled before each queued trial starts; once true, remaining
          trials come back [Skipped] while running ones finish and are
          journaled — a cooperative drain, the sweep counterpart of the
          serve front-end's SIGTERM handling. The journal needs no extra
          checkpoint: every completed trial was already flushed. Default:
          never stop. *)
}

val default_config : config
(** [jobs = 1], everything else off. *)

exception Resume_error of string
(** A journal could not be used for resume: unreadable, corrupt beyond
    the torn tail, or recorded under a different spec hash. The CLI maps
    this to exit code 2 — a usage error, not a trial failure. *)

type 'a sweep = {
  trials : (int * 'a trial) list;  (** Every requested seed, in seed-list order. *)
  completed : int;  (** Trials with a payload, resumed ones included. *)
  failed : failure list;  (** In seed-list order. *)
  skipped : int;
  resumed : int;  (** Of [completed], how many came from the journal. *)
  quarantined : string option;
      (** The quarantine file written this run ([None] when no failures
          or no quarantine path configured). *)
}

val run :
  config ->
  spec_hash:string ->
  encode:(int -> 'a -> Ftc_journal.Json.t) ->
  decode:(Ftc_journal.Json.t -> (int * 'a) option) ->
  ?replay_doc:(int -> string option) ->
  run_trial:(int -> ('a, failure_class * string) result) ->
  seeds:int list ->
  unit ->
  'a sweep
(** Run every seed not already in the journal through [run_trial] on a
    pool of [config.jobs] domains.

    [encode]/[decode] fix the journal record format for payload ['a];
    a journal entry [decode] rejects is corruption ({!Resume_error}).
    [replay_doc seed] (keep-going, failed trials only) supplies the chaos
    replay text embedded in the quarantine record, so a quarantined trial
    is re-executable in isolation. An exception escaping [run_trial] is
    captured as an [Exception]-class failure, never propagated — the
    sweep itself cannot be torn down by one trial.

    Fail-fast (the default): the first failure sets an abort flag; queued
    trials come back [Skipped] (which seeds, under [jobs > 1], depends on
    timing — only keep-going sweeps promise a deterministic trial list).
    Journaled appends happen the moment a trial completes, under a lock,
    so even an aborted or killed sweep keeps every finished trial.

    @raise Resume_error per above; never raises from trial work. *)

val exit_code : ok:bool -> 'a sweep -> int
(** The process exit code a supervised sweep reports: [0] — every trial
    completed and the caller's own check [ok] passed; [3] — partial
    results (some trials failed or were skipped but at least one
    completed); [1] — nothing completed, or [ok] was false on a complete
    sweep. *)

val classify_outcome : Runner.outcome -> (failure_class * string) option
(** The standard failure taxonomy over an engine outcome: model
    violations ([Violation], with every violation spelled out), then
    [Watchdog_expired], then [Timed_out]; [None] for a clean outcome. *)

(** {1 The expt-driver journal}

    [ftc expt] runs {e many} sweeps (one per experiment point) in one
    process, so they share one journal, with records distinguished by a
    caller-chosen key string. *)

type shared

val open_shared : path:string -> resume:bool -> spec_hash:string -> shared
(** Create ([resume = false]) or load-and-reopen ([resume = true]) a
    shared journal. @raise Resume_error as {!run}. *)

val close_shared : shared -> unit

val run_many_journaled :
  jobs:int ->
  journal:shared option ->
  key:string ->
  ok:(Runner.outcome -> bool) ->
  Runner.spec ->
  seeds:int list ->
  Runner.trial_stats list
(** The journaled equivalent of
    [List.map (Runner.stats_of ~ok) (Runner.run_many_par ~jobs spec ~seeds)]:
    seeds whose [(key, seed)] record is already journaled are not re-run —
    their stats come from the journal — and every freshly completed trial
    is appended before anything can raise. Violating seeds raise the same
    {!Runner.Model_violation} (first in seed order) the plain path would,
    but only after the clean trials of the batch were journaled. With
    [journal = None] this {e is} the plain path. Stats are returned in
    seed order, so aggregates are bit-identical however the run was
    interrupted and resumed. *)
