module Engine = Ftc_sim.Engine
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

type input_gen = Zeros | All_ones | Random_bits of float | Exact of int array

type spec = {
  protocol : (module Ftc_sim.Protocol.S);
  n : int;
  alpha : float;
  inputs : input_gen;
  adversary : unit -> Ftc_sim.Adversary.t;
  link : unit -> Ftc_sim.Link.t;
  queue : Ftc_sim.Queue_model.config option;
  transport : Ftc_transport.Transport.config option;
  congest : bool;
  record_trace : bool;
  trial_timeout : float option;
  fast_protocol : (module Ftc_sim.Fast_protocol.S) option;
      (** When set, trials run on the struct-of-arrays fast engine with
          this codec-based port instead of [protocol]'s closure engine.
          The port must be the fast twin of [protocol] (same name, same
          semantics — pinned by the differential suite); [protocol] is
          still consulted for telemetry naming and callers' predicates.
          Incompatible with [transport]: the wrapper is a classic
          protocol transformer. *)
}

let default_spec protocol ~n ~alpha =
  {
    protocol;
    n;
    alpha;
    inputs = Zeros;
    adversary = Ftc_fault.Strategy.none;
    link = (fun () -> Ftc_sim.Link.reliable);
    queue = None;
    transport = None;
    congest = true;
    record_trace = false;
    trial_timeout = None;
    fast_protocol = None;
  }

type outcome = {
  result : Engine.result;
  inputs_used : int array;
  seed : int;
  transport_stats : Ftc_transport.Transport.stats option;
}

exception
  Model_violation of {
    protocol : string;
    n : int;
    alpha : float;
    seed : int;
    violations : Ftc_sim.Violation.t list;
  }

let () =
  Printexc.register_printer (function
    | Model_violation { protocol; n; alpha; seed; violations } ->
        Some
          (Printf.sprintf "model violations in %s (n=%d alpha=%.2f seed=%d):\n  %s" protocol n
             alpha seed
             (String.concat "\n  " (List.map Ftc_sim.Violation.to_string violations)))
    | _ -> None)

let materialize_inputs spec ~seed =
  match spec.inputs with
  | Zeros -> Array.make spec.n 0
  | All_ones -> Array.make spec.n 1
  | Exact a ->
      if Array.length a <> spec.n then
        invalid_arg
          (Printf.sprintf "Runner.materialize_inputs: Exact inputs length %d <> spec.n = %d"
             (Array.length a) spec.n);
      a
  | Random_bits p ->
      (* A distinct stream from the engine's seed, so inputs do not
         correlate with node coins. *)
      let rng = Rng.create (seed lxor 0x5bd1e995) in
      Array.init spec.n (fun _ -> if Dist.bernoulli rng p then 1 else 0)

let run ?(recorder = Ftc_telemetry.Recorder.disabled) spec ~seed =
  (* Transport framing lets a data message and an ack share an edge-round,
     so wrapped runs get double the paper's per-edge budget — the framing
     itself is O(log n), so the doubling is honest. *)
  let protocol, transport_stats, congest_factor =
    match spec.transport with
    | None -> (spec.protocol, None, 1)
    | Some config ->
        let wrapped, stats = Ftc_transport.Transport.wrap ~config spec.protocol in
        (wrapped, Some stats, 2)
  in
  let (module P : Ftc_sim.Protocol.S) = protocol in
  let inputs = materialize_inputs spec ~seed in
  let telemetry_on = Ftc_telemetry.Recorder.enabled recorder in
  let start_ns = Ftc_telemetry.Recorder.now_ns recorder in
  let cfg =
    {
      Engine.n = spec.n;
      alpha = spec.alpha;
      seed;
      inputs = Some inputs;
      adversary = spec.adversary ();
      link = spec.link ();
      queue = spec.queue;
      congest_limit =
        (if spec.congest then Some (congest_factor * Ftc_sim.Congest.default_limit ~n:spec.n)
         else None);
      record_trace = spec.record_trace;
      max_rounds_override = None;
      watchdog =
        (* Wall-clock deadline, armed when the trial starts. The engine
           polls it between rounds; the simulation itself stays a pure
           function of the seed — only how far it got can differ. *)
        (match spec.trial_timeout with
        | None -> None
        | Some limit ->
            let start = Unix.gettimeofday () in
            Some (fun () -> Unix.gettimeofday () -. start >= limit));
      round_clock =
        (if telemetry_on then Some (fun () -> Ftc_telemetry.Recorder.now_ns recorder)
         else None);
    }
  in
  let result =
    match spec.fast_protocol with
    | Some fm ->
        if spec.transport <> None then
          invalid_arg "Runner.run: the fast engine does not support transport wrapping";
        let module FP = (val fm : Ftc_sim.Fast_protocol.S) in
        let module FE = Ftc_sim.Fast_engine.Make (FP) in
        FE.run cfg
    | None ->
        let module E = Engine.Make (P) in
        E.run cfg
  in
  if telemetry_on then begin
    let m = result.Engine.metrics in
    (* [ok] here is the model-level health of the run, not the
       experiment's statistical success predicate (which belongs to the
       caller): violations, timeout, or a watchdog stop mark a trial
       failed in telemetry. *)
    let ok =
      result.Engine.violations = []
      && (not result.Engine.timed_out)
      && not result.Engine.watchdog_expired
    in
    Ftc_telemetry.Instrument.record_run recorder ~protocol:P.name ~seed ~ok
      ~phases:(P.phases ~n:spec.n ~alpha:spec.alpha)
      ~rounds_used:result.Engine.rounds_used
      ~per_round_msgs:m.Ftc_sim.Metrics.per_round_msgs
      ~per_round_bits:m.Ftc_sim.Metrics.per_round_bits ~msgs:m.Ftc_sim.Metrics.msgs_sent
      ~bits:m.Ftc_sim.Metrics.bits_sent ~dropped:m.Ftc_sim.Metrics.msgs_dropped
      ~lost_link:m.Ftc_sim.Metrics.msgs_lost_link
      ~queue_dropped:m.Ftc_sim.Metrics.msgs_dropped_queue
      ~ecn_marked:m.Ftc_sim.Metrics.msgs_ecn_marked
      ~per_round_queue_peak:m.Ftc_sim.Metrics.per_round_queue_peak
      ~unroutable:m.Ftc_sim.Metrics.msgs_unroutable ~round_ns:result.Engine.round_ns
      ~start_ns
  end;
  { result; inputs_used = inputs; seed; transport_stats }

let violations o = o.result.Engine.violations

let ensure_clean spec o =
  match violations o with
  | [] -> ()
  | vs ->
      let (module P : Ftc_sim.Protocol.S) = spec.protocol in
      raise
        (Model_violation
           { protocol = P.name; n = spec.n; alpha = spec.alpha; seed = o.seed; violations = vs })

let run_exn ?recorder spec ~seed =
  let o = run ?recorder spec ~seed in
  ensure_clean spec o;
  o

let run_many ?recorder spec ~seeds = List.map (fun seed -> run_exn ?recorder spec ~seed) seeds

(* Trials are independent by construction — every run builds its own rng
   tree from its seed, and the adversary/link/transport factories are
   invoked per run — so a parallel map over seeds produces bit-identical
   outcomes to the sequential path. The violation check happens after the
   map, walking outcomes in seed order, so the caller observes the same
   exception (the first violating seed's) as [run_many] would. *)
let run_many_par ?(recorder = Ftc_telemetry.Recorder.disabled) ~jobs spec ~seeds =
  if jobs < 1 then invalid_arg "Runner.run_many_par: jobs must be >= 1";
  let outcomes =
    Ftc_parallel.Pool.run_map
      ?monitor:(Ftc_telemetry.Instrument.pool_monitor recorder "trials")
      ~jobs
      (fun seed -> run ~recorder spec ~seed)
      seeds
  in
  List.iter (ensure_clean spec) outcomes;
  outcomes

let run_many_par_raw ?(recorder = Ftc_telemetry.Recorder.disabled) ~jobs spec ~seeds =
  if jobs < 1 then invalid_arg "Runner.run_many_par_raw: jobs must be >= 1";
  Ftc_parallel.Pool.run_map
    ?monitor:(Ftc_telemetry.Instrument.pool_monitor recorder "trials")
    ~jobs
    (fun seed -> run ~recorder spec ~seed)
    seeds

type trial_stats = { success : bool; msgs : int; bits : int; rounds : int }

let stats_of ~ok o =
  let m = o.result.Engine.metrics in
  {
    success = ok o;
    msgs = m.Ftc_sim.Metrics.msgs_sent;
    bits = m.Ftc_sim.Metrics.bits_sent;
    rounds = o.result.Engine.rounds_used;
  }

type aggregate = {
  trials : int;
  successes : int;
  success_rate : float;
  msgs : Ftc_analysis.Stats.summary;
  bits : Ftc_analysis.Stats.summary;
  rounds : Ftc_analysis.Stats.summary;
}

let empty_aggregate =
  let e = Ftc_analysis.Stats.empty in
  { trials = 0; successes = 0; success_rate = 0.; msgs = e; bits = e; rounds = e }

(* One pass over the stats: counts and the three metric series are
   accumulated together (reversed, then re-reversed so the summaries see
   trial order and float accumulation is unchanged). An empty sweep — every
   trial failed or was skipped under --keep-going — aggregates to the
   structured zero rather than raising, so partial reports always render. *)
let aggregate_stats stats =
  let trials = ref 0 and successes = ref 0 in
  let msgs = ref [] and bits = ref [] and rounds = ref [] in
  List.iter
    (fun s ->
      incr trials;
      if s.success then incr successes;
      msgs := float_of_int s.msgs :: !msgs;
      bits := float_of_int s.bits :: !bits;
      rounds := float_of_int s.rounds :: !rounds)
    stats;
  if !trials = 0 then empty_aggregate
  else
    {
      trials = !trials;
      successes = !successes;
      success_rate = float_of_int !successes /. float_of_int !trials;
      msgs = Ftc_analysis.Stats.summarize (List.rev !msgs);
      bits = Ftc_analysis.Stats.summarize (List.rev !bits);
      rounds = Ftc_analysis.Stats.summarize (List.rev !rounds);
    }

let aggregate ~ok outcomes = aggregate_stats (List.map (stats_of ~ok) outcomes)

let seeds ~base ~count = List.init count (fun i -> base + (1009 * i))
