module Stats = Ftc_analysis.Stats
module Table = Ftc_analysis.Table
module Params = Ftc_core.Params

let params = Params.default

let f11 =
  {
    Def.id = "F11";
    title = "adversary gallery: correctness under every crash strategy";
    paper = "Section II model: static selection, adaptive timing, arbitrary drops";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 256 | Def.Full -> 1024 in
        let alpha = 0.5 in
        let trials = Def.trials ctx ~quick:8 ~full:20 in
        let rows = ref [] in
        List.iter
          (fun (adv_name, adv) ->
            let le_spec =
              {
                (Runner.default_spec (Ftc_core.Leader_election.make params) ~n ~alpha) with
                adversary = adv;
              }
            in
            let le =
              Runner.aggregate
                ~ok:(fun o -> (Ftc_core.Properties.check_implicit_election o.result).ok)
                (Runner.run_many_par ~jobs:ctx.jobs le_spec
                   ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
            in
            let ag_spec =
              {
                (Runner.default_spec (Ftc_core.Agreement.make params) ~n ~alpha) with
                inputs = Runner.Random_bits 0.5;
                adversary = adv;
              }
            in
            let ag =
              Runner.aggregate
                ~ok:(fun o ->
                  (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result)
                    .ok)
                (Runner.run_many_par ~jobs:ctx.jobs ag_spec
                   ~seeds:(Runner.seeds ~base:(ctx.base_seed + 3) ~count:trials))
            in
            rows :=
              [
                adv_name;
                Printf.sprintf "%d/%d" le.Runner.successes le.Runner.trials;
                Table.fmt_int (int_of_float le.Runner.msgs.Stats.mean);
                Printf.sprintf "%d/%d" ag.Runner.successes ag.Runner.trials;
                Table.fmt_int (int_of_float ag.Runner.msgs.Stats.mean);
              ]
              :: !rows)
          (Ftc_fault.Strategy.all ());
        Def.section "F11" "adversary gallery"
          (String.concat "\n"
             [
               Printf.sprintf "n = %d, alpha = %.2f: up to half the network is faulty." n alpha;
               Table.render
                 ~aligns:[ Table.Left ]
                 ~headers:[ "adversary"; "LE ok"; "LE msgs"; "AGR ok"; "AGR msgs" ]
                 ~rows:(List.rev !rows) ();
             ]));
  }

let f12 =
  {
    Def.id = "F12";
    title = "fault-free comparison: matching Kutten et al. / Augustine et al.";
    paper = "Sec. I-A: at constant alpha the bounds match the fault-free ones";
    run =
      (fun ctx ->
        let ns =
          match ctx.scale with
          | Def.Quick -> [ 512; 2048 ]
          | Def.Full -> [ 1024; 4096; 16384 ]
        in
        let trials = Def.trials ctx ~quick:5 ~full:10 in
        let rows = ref [] in
        List.iter
          (fun n ->
            let measure label protocol ok inputs =
              let spec =
                { (Runner.default_spec protocol ~n ~alpha:1.0) with inputs }
              in
              let agg =
                Runner.aggregate ~ok
                  (Runner.run_many_par ~jobs:ctx.jobs spec
                     ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
              in
              [
                string_of_int n;
                label;
                Table.fmt_int (int_of_float agg.Runner.msgs.Stats.mean);
                Table.fmt_float ~digits:1 agg.Runner.rounds.Stats.mean;
                Printf.sprintf "%d/%d" agg.Runner.successes agg.Runner.trials;
              ]
            in
            let le_ok (o : Runner.outcome) =
              (Ftc_core.Properties.check_implicit_election o.result).ok
            in
            let ag_ok (o : Runner.outcome) =
              (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result).ok
            in
            rows :=
              measure "this paper LE (alpha=1)" (Ftc_core.Leader_election.make params) le_ok
                Runner.Zeros
              :: !rows;
            rows :=
              measure "Kutten et al. LE" (Ftc_baselines.Kutten_le.make ()) le_ok Runner.Zeros
              :: !rows;
            rows :=
              measure "this paper AGR (alpha=1)" (Ftc_core.Agreement.make params) ag_ok
                (Runner.Random_bits 0.5)
              :: !rows;
            rows :=
              measure "Augustine et al. AGR" (Ftc_baselines.Amp_agreement.make ()) ag_ok
                (Runner.Random_bits 0.5)
              :: !rows)
          ns;
        Def.section "F12" "fault-free yardsticks (alpha = 1)"
          (String.concat "\n"
             [
               "Same sublinear Õ(sqrt n) message shape expected for the crash-\n\
                tolerant protocols at alpha = 1 and their fault-free ancestors;\n\
                the fault-tolerant versions pay an extra polylog for the iterated\n\
                confirmation machinery.";
               Table.render
                 ~aligns:[ Table.Right; Table.Left ]
                 ~headers:[ "n"; "protocol"; "messages"; "rounds"; "ok" ]
                 ~rows:(List.rev !rows) ();
             ]));
  }
