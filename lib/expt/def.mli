(** Experiment definitions: one value of type {!t} per table/figure of
    DESIGN.md's experiment index. *)

type scale =
  | Quick  (** Small n, few trials — smoke-check the shapes in seconds. *)
  | Full  (** The sizes and trial counts used for EXPERIMENTS.md. *)

type ctx = {
  scale : scale;
  base_seed : int;
  jobs : int;
      (** Worker domains for the trial loops ({!Runner.run_many_par});
          1 = sequential. Outcomes are identical at any value. *)
  journal : Supervise.shared option;
      (** When set, experiments journal each completed trial through
          {!Supervise.run_many_journaled} and skip trials already
          journaled — crash-safe resume for [ftc expt]. [None] runs
          exactly as before. Experiments that treat violations as data
          (lossy raw, Byzantine probe) ignore it. *)
  queue : Ftc_sim.Queue_model.config option;
      (** [ftc expt --queue-cap/--queue-model] override, honoured by the
          queue-aware experiments (F14 pins its capacity sweep to this
          single point). Other experiments ignore it; [None] leaves each
          experiment's own grid in force. *)
  fast_engine : bool;
      (** [ftc expt --engine fast]: run trials on the struct-of-arrays
          fast engine where a protocol port exists (bit-identical to the
          classic engine by the differential suite's contract) and
          unlock the sweep points only tractable there — F1/F2's
          extended decades up to n = 10^6. *)
}

type t = {
  id : string;  (** e.g. "T1", "F9"; stable, used by the CLI and bench. *)
  title : string;
  paper : string;  (** The paper artefact this reproduces. *)
  run : ctx -> string;  (** Produces the printable report. *)
}

val trials : ctx -> quick:int -> full:int -> int
val section : string -> string -> string -> string
(** [section id title body] formats a report block. *)
