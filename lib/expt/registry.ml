let all =
  [
    Table1.t1;
    Scaling.f1;
    Scaling.f2;
    Scaling.f3;
    Scaling.f4;
    Scaling.f5;
    Lemmas.f6;
    Lemmas.f7;
    Lemmas.f8;
    Lower_bound.f9;
    Scaling.f10;
    Gallery.f11;
    Gallery.f12;
    Lossy.f13;
    Congestion.f14;
    Ablations.a1;
    Ablations.a2;
    Ablations.a3;
    Byzantine.a4;
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.Def.id = String.lowercase_ascii id) all

let ids () = List.map (fun e -> e.Def.id) all
