module Stats = Ftc_analysis.Stats
module Table = Ftc_analysis.Table
module Params = Ftc_core.Params

let base = Params.default

let le_ok (o : Runner.outcome) = (Ftc_core.Properties.check_implicit_election o.result).ok

let ag_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result).ok

let a1 =
  {
    Def.id = "A1";
    title = "ablation: candidate-probability constant (Lemmas 1-2)";
    paper = "Sec. IV-A: candidate probability 6 ln n / (alpha n)";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 256 | Def.Full -> 1024 in
        let alpha = 0.5 in
        let trials = Def.trials ctx ~quick:10 ~full:20 in
        let coeffs = [ 0.1; 0.25; 0.5; 1.0; 2.0; 6.0 ] in
        let rows =
          List.map
            (fun coeff ->
              let params = { base with Params.candidate_coeff = coeff } in
              (* The eager adversary crashes every faulty node at round 0:
                 the run only survives if the committee caught a
                 non-faulty member (Lemma 2). *)
              let le_spec =
                {
                  (Runner.default_spec (Ftc_core.Leader_election.make params) ~n ~alpha) with
                  adversary = Ftc_fault.Strategy.eager;
                }
              in
              let le =
                Runner.aggregate ~ok:le_ok
                  (Runner.run_many_par ~jobs:ctx.jobs le_spec
                     ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
              in
              let ag_spec =
                {
                  (Runner.default_spec (Ftc_core.Agreement.make params) ~n ~alpha) with
                  inputs = Runner.Random_bits 0.5;
                  adversary = Ftc_fault.Strategy.eager;
                }
              in
              let ag =
                Runner.aggregate ~ok:ag_ok
                  (Runner.run_many_par ~jobs:ctx.jobs ag_spec
                     ~seeds:(Runner.seeds ~base:(ctx.base_seed + 5) ~count:trials))
              in
              [
                Table.fmt_float ~digits:1 coeff;
                Table.fmt_float ~digits:1
                  (Params.expected_candidates { base with Params.candidate_coeff = coeff } ~n
                     ~alpha);
                Printf.sprintf "%d/%d" le.Runner.successes le.Runner.trials;
                Table.fmt_int (int_of_float le.Runner.msgs.Stats.mean);
                Printf.sprintf "%d/%d" ag.Runner.successes ag.Runner.trials;
                Table.fmt_int (int_of_float ag.Runner.msgs.Stats.mean);
              ])
            coeffs
        in
        Def.section "A1" "candidate-probability constant ablation"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d, alpha = %.2f, eager adversary (all faulty crash at round 0).\n\
                  The paper's constant is 6; below ~2 the committee often contains\n\
                  no live candidate and both protocols fail, exactly as Lemma 2\n\
                  predicts."
                 n alpha;
               Table.render
                 ~headers:[ "coeff"; "E|C|"; "LE ok"; "LE msgs"; "AGR ok"; "AGR msgs" ]
                 ~rows ();
             ]));
  }

let a2 =
  {
    Def.id = "A2";
    title = "extension: multi-valued min-agreement cost";
    paper = "extension beyond the paper (binary Sec. V-A generalised)";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 512 | Def.Full -> 2048 in
        let alpha = 0.6 in
        let trials = Def.trials ctx ~quick:5 ~full:12 in
        let value_bounds = [ 2; 4; 16; 256; 65536 ] in
        let binary_spec =
          {
            (Runner.default_spec (Ftc_core.Agreement.make base) ~n ~alpha) with
            inputs = Runner.Random_bits 0.5;
            adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
          }
        in
        let binary =
          Runner.aggregate ~ok:ag_ok
            (Runner.run_many_par ~jobs:ctx.jobs binary_spec
               ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
        in
        let rows =
          List.map
            (fun bound ->
              let seeds = Runner.seeds ~base:(ctx.base_seed + bound) ~count:trials in
              let outcomes =
                Ftc_parallel.Pool.run_map ~jobs:ctx.jobs
                  (fun seed ->
                    let rng = Ftc_rng.Rng.create (seed lxor 0x9e37) in
                    let inputs = Array.init n (fun _ -> Ftc_rng.Rng.int rng bound) in
                    Runner.run
                      {
                        (Runner.default_spec (Ftc_core.Min_agreement.make base) ~n ~alpha) with
                        inputs = Runner.Exact inputs;
                        adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
                      }
                      ~seed)
                  seeds
              in
              let agg = Runner.aggregate ~ok:ag_ok outcomes in
              [
                Table.fmt_int bound;
                Printf.sprintf "%d/%d" agg.Runner.successes agg.Runner.trials;
                Table.fmt_int (int_of_float agg.Runner.msgs.Stats.mean);
                Table.fmt_float ~digits:2
                  (agg.Runner.msgs.Stats.mean /. binary.Runner.msgs.Stats.mean);
                Table.fmt_float ~digits:1 agg.Runner.rounds.Stats.mean;
              ])
            value_bounds
        in
        Def.section "A2" "multi-valued min-agreement (extension)"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d, alpha = %.2f, uniform inputs in [0, bound); binary protocol\n\
                  baseline: %s msgs. The overhead factor tracks the improvement-chain\n\
                  length (harmonic in the number of distinct values), far below the\n\
                  |C| worst case."
                 n alpha
                 (Table.fmt_int (int_of_float binary.Runner.msgs.Stats.mean));
               Table.render
                 ~headers:[ "value bound"; "ok"; "messages"; "x binary"; "rounds" ]
                 ~rows ();
             ]));
  }

let a3 =
  {
    Def.id = "A3";
    title = "ablation: early-decision quiet threshold";
    paper = "implementation choice (safety must be threshold-independent)";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 256 | Def.Full -> 1024 in
        let alpha = 0.5 in
        let trials = Def.trials ctx ~quick:10 ~full:20 in
        let rows =
          List.map
            (fun quiet ->
              let params = { base with Params.quiet_iterations_to_decide = quiet } in
              let spec =
                {
                  (Runner.default_spec (Ftc_core.Leader_election.make params) ~n ~alpha) with
                  adversary = (fun () -> Ftc_fault.Strategy.targeted_min_rank ());
                }
              in
              let agg =
                Runner.aggregate ~ok:le_ok
                  (Runner.run_many_par ~jobs:ctx.jobs spec
                     ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
              in
              [
                string_of_int quiet;
                Printf.sprintf "%d/%d" agg.Runner.successes agg.Runner.trials;
                Table.fmt_float ~digits:1 agg.Runner.rounds.Stats.mean;
                Table.fmt_int (int_of_float agg.Runner.msgs.Stats.mean);
              ])
            [ 1; 2; 3; 5 ]
        in
        Def.section "A3" "early-decision quiet-threshold ablation"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d, alpha = %.2f, targeted-min-rank adversary. Deciding early\n\
                  never halts a node, so success must hold at every threshold; the\n\
                  threshold only trades rounds for confidence in quietness."
                 n alpha;
               Table.render ~headers:[ "quiet iters"; "ok"; "rounds"; "messages" ] ~rows ();
             ]));
  }
