module Stats = Ftc_analysis.Stats
module Table = Ftc_analysis.Table
module Influence = Ftc_analysis.Influence
module Params = Ftc_core.Params
module Decision = Ftc_sim.Decision

let starved_params s =
  {
    Params.default with
    Params.candidate_coeff = Params.default.Params.candidate_coeff *. s;
    referee_coeff = Params.default.Params.referee_coeff *. s;
  }

type probe = {
  msgs : float;
  ok : bool;
  disjoint_deciding : int;
}

let probe_agreement ~n ~alpha ~seed s =
  let spec =
    {
      (Runner.default_spec (Ftc_core.Agreement.make (starved_params s)) ~n ~alpha) with
      inputs = Runner.Random_bits 0.5;
      record_trace = true;
    }
  in
  let o = Runner.run spec ~seed in
  let rep = Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result in
  let disjoint_deciding =
    match o.result.Ftc_sim.Engine.trace with
    | None -> 0
    | Some trace ->
        let infl = Influence.of_trace ~n trace in
        let decided =
          Array.map
            (fun d -> match d with Decision.Agreed _ -> true | _ -> false)
            o.result.Ftc_sim.Engine.decisions
        in
        let deciding = Influence.deciding_clouds infl ~decided in
        Influence.disjoint_cloud_count
          { infl with Influence.clouds = deciding }
  in
  {
    msgs = float_of_int o.result.Ftc_sim.Engine.metrics.Ftc_sim.Metrics.msgs_sent;
    ok = rep.ok;
    disjoint_deciding;
  }

let probe_election ~n ~alpha ~seed s =
  let spec =
    Runner.default_spec (Ftc_core.Leader_election.make (starved_params s)) ~n ~alpha
  in
  let o = Runner.run spec ~seed in
  let rep = Ftc_core.Properties.check_implicit_election o.result in
  {
    msgs = float_of_int o.result.Ftc_sim.Engine.metrics.Ftc_sim.Metrics.msgs_sent;
    ok = rep.ok;
    disjoint_deciding = 0;
  }

let summarise_probes probes =
  let k = List.length probes in
  let oks = List.length (List.filter (fun p -> p.ok) probes) in
  let msgs = Stats.summarize (List.map (fun p -> p.msgs) probes) in
  let multi =
    List.length (List.filter (fun p -> p.disjoint_deciding >= 2) probes)
  in
  (k, oks, msgs, multi)

let f9 =
  {
    Def.id = "F9";
    title = "lower bounds: starved protocols split into disjoint clouds";
    paper = "Thm 4.2 / Thm 5.2: Omega(sqrt(n)/alpha^(3/2)) messages";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 1024 | Def.Full -> 2048 in
        let alpha = 0.5 in
        let trials = Def.trials ctx ~quick:15 ~full:30 in
        let threshold = sqrt (float_of_int n) /. (alpha ** 1.5) in
        let scales = [ 0.03; 0.06; 0.12; 0.25; 1.0 ] in
        let seeds = Runner.seeds ~base:ctx.base_seed ~count:trials in
        let ag_rows =
          List.map
            (fun s ->
              let probes =
                Ftc_parallel.Pool.run_map ~jobs:ctx.Def.jobs
                  (fun seed -> probe_agreement ~n ~alpha ~seed s)
                  seeds
              in
              let k, oks, msgs, multi = summarise_probes probes in
              [
                Table.fmt_float ~digits:2 s;
                Table.fmt_int (int_of_float msgs.Stats.mean);
                Table.fmt_float ~digits:2 (msgs.Stats.mean /. threshold);
                Printf.sprintf "%d/%d" oks k;
                Printf.sprintf "%d/%d" multi k;
              ])
            scales
        in
        let le_rows =
          List.map
            (fun s ->
              let probes =
                Ftc_parallel.Pool.run_map ~jobs:ctx.Def.jobs
                  (fun seed -> probe_election ~n ~alpha ~seed s)
                  seeds
              in
              let k, oks, msgs, _ = summarise_probes probes in
              [
                Table.fmt_float ~digits:2 s;
                Table.fmt_int (int_of_float msgs.Stats.mean);
                Table.fmt_float ~digits:2 (msgs.Stats.mean /. threshold);
                Printf.sprintf "%d/%d" oks k;
              ])
            scales
        in
        Def.section "F9" "message lower bounds (Theorems 4.2 / 5.2)"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d, alpha = %.2f, lower-bound threshold sqrt(n)/alpha^1.5 = %.0f\n\
                  messages. Both sampling constants scaled by s; fault-free network\n\
                  (the bounds hold even with zero crashes)."
                 n alpha threshold;
               "";
               "Agreement (Thm 5.2). '>=2 clouds' counts runs whose deciding";
               "influence clouds contain two pairwise-disjoint ones:";
               Table.render
                 ~headers:[ "s"; "messages"; "msgs/threshold"; "agreement ok"; ">=2 clouds" ]
                 ~rows:ag_rows ();
               "";
               "Leader election (Thm 4.2):";
               Table.render
                 ~headers:[ "s"; "messages"; "msgs/threshold"; "election ok" ]
                 ~rows:le_rows ();
             ]));
  }
