module Stats = Ftc_analysis.Stats
module Table = Ftc_analysis.Table
module Params = Ftc_core.Params

type contender = {
  label : string;
  model : string;
  paper_row : string;  (** The complexity Table I claims for this protocol. *)
  protocol : (module Ftc_sim.Protocol.S);
  check : Runner.outcome -> bool;
}

let implicit_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result).ok

let explicit_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_explicit_agreement ~inputs:o.inputs_used o.result).ok

let contenders () =
  let params = Params.default in
  [
    {
      label = "this paper (implicit)";
      model = "KT0";
      paper_row = "O~(sqrt n / a^1.5) msgs, O(log n / a) rounds, f <= n - log^2 n";
      protocol = Ftc_core.Agreement.make params;
      check = implicit_ok;
    };
    {
      label = "this paper (explicit)";
      model = "KT0";
      paper_row = "O(n log n / a) msgs, O(log n / a) rounds";
      protocol = Ftc_core.Agreement.make ~explicit:true params;
      check = explicit_ok;
    };
    {
      label = "Gilbert-Kowalski'10*";
      model = "KT1";
      paper_row = "O(n) msgs, O(log n) rounds, f < n/2";
      protocol = Ftc_baselines.Tree_agreement.make ();
      check = explicit_ok;
    };
    {
      label = "Chlebus-Kowalski'09*";
      model = "KT0";
      paper_row = "O(n log n) expected msgs, O(log n) expected rounds";
      protocol = Ftc_baselines.Gossip.make ();
      check = explicit_ok;
    };
    {
      label = "rotating coordinator";
      model = "KT1";
      paper_row = "O(n f) msgs, O(f) rounds (deterministic)";
      protocol = Ftc_baselines.Rotating.make ();
      check = explicit_ok;
    };
    {
      label = "FloodSet";
      model = "KT0";
      paper_row = "O(n^2) msgs, O(f) rounds (deterministic)";
      protocol = Ftc_baselines.Floodset.make ();
      check = explicit_ok;
    };
  ]

let t1 =
  {
    Def.id = "T1";
    title = "Table I: agreement protocol comparison";
    paper = "Table I of the paper";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 512 | Def.Full -> 1024 in
        let alphas = match ctx.scale with Def.Quick -> [ 0.9; 0.5 ] | Def.Full -> [ 0.9; 0.7; 0.5; 0.3 ] in
        let trials = Def.trials ctx ~quick:5 ~full:10 in
        let rows = ref [] in
        List.iter
          (fun alpha ->
            List.iter
              (fun c ->
                let spec =
                  {
                    (Runner.default_spec c.protocol ~n ~alpha) with
                    inputs = Runner.Random_bits 0.5;
                    adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
                  }
                in
                let agg =
                  Runner.aggregate ~ok:c.check
                    (Runner.run_many_par ~jobs:ctx.jobs spec
                       ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
                in
                rows :=
                  [
                    c.label;
                    c.model;
                    Table.fmt_float ~digits:2 alpha;
                    string_of_int (Ftc_sim.Engine.max_faulty ~n ~alpha);
                    Table.fmt_int (int_of_float agg.Runner.msgs.Stats.mean);
                    Table.fmt_int (int_of_float agg.Runner.bits.Stats.mean);
                    Table.fmt_float ~digits:1 agg.Runner.rounds.Stats.mean;
                    Printf.sprintf "%d/%d" agg.Runner.successes agg.Runner.trials;
                  ]
                  :: !rows)
              (contenders ()))
          alphas;
        let claims =
          List.map (fun c -> Printf.sprintf "  %-24s %s" c.label c.paper_row) (contenders ())
        in
        Def.section "T1" "agreement comparison (empirical Table I)"
          (String.concat "\n"
             ([
                Printf.sprintf
                  "n = %d, random half-and-half inputs, random crashes; f = max faulty." n;
                "* = shape-faithful stand-in, see DESIGN.md substitutions.";
                Table.render
                  ~aligns:[ Table.Left; Table.Left ]
                  ~headers:[ "protocol"; "model"; "alpha"; "f"; "messages"; "bits"; "rounds"; "ok" ]
                  ~rows:(List.rev !rows) ();
                "";
                "Paper's asymptotic rows for reference:";
              ]
             @ claims)));
  }
