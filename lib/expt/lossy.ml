(* F13 — the robustness experiment: what omission faults do to the
   paper's protocols, raw versus wrapped in the reliable transport.

   The paper's model loses messages only by crashing their sender. Here
   live links drop each message i.i.d. with a swept rate: the raw
   protocols absorb moderate loss (their sampling is redundant) but
   collapse at high rates — multiple leaders elected — while the
   transport-wrapped runs see only the residual rate^(budget+1) loss and
   stay safe deep into the collapse regime, buying reliability with
   measured overhead: extra messages (acks + retransmissions) and a
   window factor in rounds. *)

module Stats = Ftc_analysis.Stats
module Table = Ftc_analysis.Table
module Omission = Ftc_fault.Omission
module Transport = Ftc_transport.Transport

let le_ok (o : Runner.outcome) = (Ftc_core.Properties.check_implicit_election o.result).ok

let ag_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result).ok

(* Lossy raw runs are outside the protocols' model, so violations are not
   fatal here: use the raw runner and fold failures into the success
   column. *)
let outcomes ~jobs spec ~seeds = Runner.run_many_par_raw ~jobs spec ~seeds

let mean_retx outs =
  let xs =
    List.filter_map
      (fun (o : Runner.outcome) ->
        Option.map (fun s -> float_of_int s.Transport.retransmissions) o.transport_stats)
      outs
  in
  if xs = [] then 0. else List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let total_gave_up outs =
  List.fold_left
    (fun acc (o : Runner.outcome) ->
      match o.transport_stats with Some s -> acc + s.Transport.gave_up | None -> acc)
    0 outs

let sweep ~jobs ~protocol ~inputs ~ok ~n ~alpha ~rates ~trials ~base_seed =
  List.map
    (fun rate ->
      let loss = if rate = 0. then Omission.No_loss else Omission.Uniform rate in
      let spec variant =
        {
          (Runner.default_spec (protocol ()) ~n ~alpha) with
          Runner.inputs;
          link = (fun () -> Omission.to_link loss);
          transport = variant;
        }
      in
      let seeds = Runner.seeds ~base:base_seed ~count:trials in
      let raw = outcomes ~jobs (spec None) ~seeds in
      let wrapped = outcomes ~jobs (spec (Some Transport.default_config)) ~seeds in
      let agg outs = Runner.aggregate ~ok outs in
      let ra = agg raw and wa = agg wrapped in
      let overhead =
        if ra.Runner.msgs.Stats.mean > 0. then wa.Runner.msgs.Stats.mean /. ra.Runner.msgs.Stats.mean
        else 0.
      in
      [
        Table.fmt_float ~digits:2 rate;
        Printf.sprintf "%d/%d" ra.Runner.successes ra.Runner.trials;
        Table.fmt_int (int_of_float ra.Runner.msgs.Stats.mean);
        Table.fmt_int (int_of_float ra.Runner.rounds.Stats.mean);
        Printf.sprintf "%d/%d" wa.Runner.successes wa.Runner.trials;
        Table.fmt_int (int_of_float wa.Runner.msgs.Stats.mean);
        Table.fmt_int (int_of_float wa.Runner.rounds.Stats.mean);
        Table.fmt_float ~digits:1 overhead;
        Table.fmt_int (int_of_float (mean_retx wrapped));
        Table.fmt_int (total_gave_up wrapped);
      ])
    rates

let headers =
  [ "loss"; "raw ok"; "msgs"; "rounds"; "wrap ok"; "msgs"; "rounds"; "msg x"; "retx"; "gaveup" ]

let f13 =
  {
    Def.id = "F13";
    title = "omission faults: raw protocols vs the reliable transport";
    paper = "beyond the paper's crash-only model (Sec. II); transport = Ftc_transport";
    run =
      (fun ctx ->
        let n = match ctx.Def.scale with Def.Quick -> 96 | Def.Full -> 256 in
        let alpha = 0.7 in
        let trials = Def.trials ctx ~quick:5 ~full:10 in
        (* The grid must reach the collapse regime: raw election is loss
           tolerant well past 0.4 (its sampling is redundant), but safety
           breaks around 0.8 — where the wrapped runs, facing an effective
           per-message loss of rate^(budget+1), are still comfortably in
           the safe zone. *)
        let rates =
          match ctx.Def.scale with
          | Def.Quick -> [ 0.; 0.3; 0.8 ]
          | Def.Full -> [ 0.; 0.1; 0.2; 0.4; 0.6; 0.8 ]
        in
        let params = Ftc_core.Params.default in
        let le_rows =
          sweep ~jobs:ctx.Def.jobs
            ~protocol:(fun () -> Ftc_core.Leader_election.make params)
            ~inputs:Runner.Zeros ~ok:le_ok ~n ~alpha ~rates ~trials ~base_seed:ctx.Def.base_seed
        in
        let ag_rows =
          sweep ~jobs:ctx.Def.jobs
            ~protocol:(fun () -> Ftc_core.Agreement.make params)
            ~inputs:(Runner.Random_bits 0.5) ~ok:ag_ok ~n ~alpha ~rates ~trials
            ~base_seed:(ctx.Def.base_seed + 7)
        in
        Def.section "F13" "omission faults and the reliable transport"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d, alpha = %.2f, %d trials per cell, uniform i.i.d. loss on live links.\n\
                  raw = the paper's protocol as-is; wrap = the same protocol under the\n\
                  ack/retransmit transport (window %d rounds, %d retransmissions, CONGEST\n\
                  budget doubled for framing). 'msg x' is wrapped/raw message overhead;\n\
                  'gaveup' counts messages abandoned unacked across all wrapped trials."
                 n alpha trials
                 (Transport.window Transport.default_config)
                 Transport.default_config.Transport.budget;
               "";
               "leader election:";
               Table.render ~headers ~rows:le_rows ();
               "";
               "agreement:";
               Table.render ~headers ~rows:ag_rows ();
             ]));
  }
