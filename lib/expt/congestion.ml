(* F14 — the congestion experiment: what bounded ingress queues do to
   the paper's protocols, raw versus wrapped in the reliable transport.

   The paper's CONGEST model gives links unbounded capacity. Here each
   destination's access link absorbs at most [capacity] messages per
   round (Queue_model): the election protocol funnels referee replies
   into the currently-best candidate, so that hotspot saturates first —
   raw runs lose the replies outright and elect badly, while the
   transport retries across rounds (spreading arrivals over fresh
   queues) and backs its calendar off on inferred congestion, restoring
   success at the cost of retransmissions. The ecn table shows the
   lossless variant: nothing is dropped, marks propagate to the wrapped
   receivers and show up as ECN backoffs. *)

module Table = Ftc_analysis.Table
module Queue_model = Ftc_sim.Queue_model
module Transport = Ftc_transport.Transport

let le_ok (o : Runner.outcome) = (Ftc_core.Properties.check_implicit_election o.result).ok

let ag_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result).ok

let total f outs = List.fold_left (fun acc (o : Runner.outcome) -> acc + f o) 0 outs
let queue_drops (o : Runner.outcome) = o.result.Ftc_sim.Engine.metrics.Ftc_sim.Metrics.msgs_dropped_queue
let ecn_marks (o : Runner.outcome) = o.result.Ftc_sim.Engine.metrics.Ftc_sim.Metrics.msgs_ecn_marked

let tstat f (o : Runner.outcome) =
  match o.transport_stats with Some s -> f s | None -> 0

(* Congested raw runs are outside the protocols' model, so violations
   are folded into the success column, exactly as F13 treats loss. *)
let sweep ~jobs ~protocol ~inputs ~ok ~n ~alpha ~configs ~trials ~base_seed =
  List.map
    (fun (q : Queue_model.config) ->
      let spec variant =
        {
          (Runner.default_spec (protocol ()) ~n ~alpha) with
          Runner.inputs;
          queue = Some q;
          transport = variant;
        }
      in
      let seeds = Runner.seeds ~base:base_seed ~count:trials in
      let raw = Runner.run_many_par_raw ~jobs (spec None) ~seeds in
      let wrapped = Runner.run_many_par_raw ~jobs (spec (Some Transport.default_config)) ~seeds in
      let ra = Runner.aggregate ~ok raw and wa = Runner.aggregate ~ok wrapped in
      [
        string_of_int q.Queue_model.capacity;
        Printf.sprintf "%d/%d" ra.Runner.successes ra.Runner.trials;
        Table.fmt_int (total queue_drops raw);
        Table.fmt_int (total ecn_marks raw);
        Printf.sprintf "%d/%d" wa.Runner.successes wa.Runner.trials;
        Table.fmt_int (total queue_drops wrapped);
        Table.fmt_int (total ecn_marks wrapped);
        Table.fmt_int (total (tstat (fun s -> s.Transport.retransmissions)) wrapped);
        Table.fmt_int (total (tstat (fun s -> s.Transport.ecn_backoffs)) wrapped);
        Table.fmt_int (total (tstat (fun s -> s.Transport.congestion_drops)) wrapped);
      ])
    configs

let headers =
  [ "cap"; "raw ok"; "qdrop"; "mark"; "wrap ok"; "qdrop"; "mark"; "retx"; "ecnboff"; "cdrop" ]

let f14 =
  {
    Def.id = "F14";
    title = "congestion: bounded ingress queues, RED early drop and ECN backoff";
    paper = "beyond the paper's unbounded-link model (Sec. II); queues = Ftc_sim.Queue_model";
    run =
      (fun ctx ->
        let n = match ctx.Def.scale with Def.Quick -> 96 | Def.Full -> 256 in
        let alpha = 0.7 in
        let trials = Def.trials ctx ~quick:5 ~full:10 in
        (* The grid must straddle the saturation point of the election
           hotspot (referee replies funnelling into the best candidate).
           Below ~n/16 the hotspot starves raw and wrapped alike —
           retransmissions re-enter the same full queue — so the grid
           starts where the transport's cross-round spreading can still
           win, and ends where the link is effectively the paper's
           unbounded one again. *)
        let caps =
          match ctx.Def.scale with
          | Def.Quick -> [ 6; 8; 12; 16 ]
          | Def.Full -> [ 8; 12; 16; 24; 32 ]
        in
        let grid d = List.map (fun c -> Queue_model.make ~capacity:c ~discipline:d ()) caps in
        (* --queue-cap/--queue-model pin the sweep to that single point
           (its table only; the other discipline's table is skipped). *)
        let red_configs, ecn_configs =
          match ctx.Def.queue with
          | Some q when q.Queue_model.discipline = Queue_model.Ecn -> ([], [ q ])
          | Some q -> ([ q ], [])
          | None -> (grid Queue_model.Red, grid Queue_model.Ecn)
        in
        let params = Ftc_core.Params.default in
        let table ~title ~protocol ~inputs ~ok ~configs ~seed_offset =
          if configs = [] then []
          else begin
            let rows =
              sweep ~jobs:ctx.Def.jobs ~protocol ~inputs ~ok ~n ~alpha ~configs ~trials
                ~base_seed:(ctx.Def.base_seed + seed_offset)
            in
            [ ""; title; Table.render ~headers ~rows () ]
          end
        in
        Def.section "F14" "bounded queues: raw protocols vs the congestion-aware transport"
          (String.concat "\n"
             ([
                Printf.sprintf
                  "n = %d, alpha = %.2f, %d trials per cell; every destination's ingress queue\n\
                   holds at most 'cap' messages per round. red = probabilistic early drop\n\
                   between the RED thresholds (lossy); ecn = congestion marks instead of drops\n\
                   (lossless). Totals are across all trials of a cell: 'qdrop' queue drops,\n\
                   'mark' ECN marks, 'ecnboff' transport ECN backoffs, 'cdrop' transport\n\
                   repeated-drop inferences (each widening that message's calendar)."
                  n alpha trials;
              ]
             @ table ~title:"leader election, red:"
                 ~protocol:(fun () -> Ftc_core.Leader_election.make params)
                 ~inputs:Runner.Zeros ~ok:le_ok ~configs:red_configs ~seed_offset:0
             @ table ~title:"agreement, red:"
                 ~protocol:(fun () -> Ftc_core.Agreement.make params)
                 ~inputs:(Runner.Random_bits 0.5) ~ok:ag_ok ~configs:red_configs ~seed_offset:7
             @ table ~title:"leader election, ecn:"
                 ~protocol:(fun () -> Ftc_core.Leader_election.make params)
                 ~inputs:Runner.Zeros ~ok:le_ok ~configs:ecn_configs ~seed_offset:13)));
  }
