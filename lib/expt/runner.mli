(** Shared driver for the experiments: runs a protocol (as a first-class
    module) over many seeds and aggregates results. *)

type input_gen =
  | Zeros
  | All_ones
  | Random_bits of float  (** Each input is 1 with this probability. *)
  | Exact of int array

type spec = {
  protocol : (module Ftc_sim.Protocol.S);
  n : int;
  alpha : float;
  inputs : input_gen;
  adversary : unit -> Ftc_sim.Adversary.t;
  link : unit -> Ftc_sim.Link.t;  (** Fresh omission model per run. *)
  queue : Ftc_sim.Queue_model.config option;
      (** Bounded per-destination ingress queues; [None] = unbounded. *)
  transport : Ftc_transport.Transport.config option;
      (** [Some _] wraps the protocol in the reliable transport (and doubles
          the CONGEST budget: data and ack can share an edge-round). *)
  congest : bool;  (** false = LOCAL (no per-edge bit budget). *)
  record_trace : bool;
  trial_timeout : float option;
      (** Wall-clock budget in seconds for one trial. When set, {!run}
          arms a cooperative watchdog ({!Ftc_sim.Engine.config.watchdog})
          that stops the engine at the first round boundary past the
          deadline; the outcome comes back with
          [result.watchdog_expired = true] and the supervisor classifies
          the trial as [Watchdog_expired]. [None] (default) = no budget. *)
  fast_protocol : (module Ftc_sim.Fast_protocol.S) option;
      (** When set, trials run on the struct-of-arrays fast engine
          ({!Ftc_sim.Fast_engine}) with this codec-based port instead of
          [protocol]'s closure engine — bit-identical results, pinned by
          the differential suite. [protocol] is still consulted for
          telemetry naming and callers' predicates. Incompatible with
          [transport] ({!run} raises [Invalid_argument]): the transport
          wrapper is a classic protocol transformer. *)
}

val default_spec : (module Ftc_sim.Protocol.S) -> n:int -> alpha:float -> spec
(** Zero inputs, no adversary, reliable links, no queue, no transport,
    CONGEST on, no trace. *)

type outcome = {
  result : Ftc_sim.Engine.result;
  inputs_used : int array;
  seed : int;
  transport_stats : Ftc_transport.Transport.stats option;
      (** The wrapper's overhead breakdown — [Some] iff the spec asked for
          the transport. *)
}

exception
  Model_violation of {
    protocol : string;
    n : int;
    alpha : float;
    seed : int;
    violations : Ftc_sim.Violation.t list;
  }
(** Raised by {!run_exn}; carries {e every} violation of the run, not just
    the first. A printer is registered, so an uncaught one reads well. *)

val run : ?recorder:Ftc_telemetry.Recorder.t -> spec -> seed:int -> outcome
(** Input generation is seeded by [seed], so an outcome is reproducible
    from [(spec, seed)] alone. Never raises on model violations — inspect
    {!violations} (the chaos harness treats them as findings).

    With a live [recorder] (default: the disabled one), the trial is
    instrumented: the engine's round clock is armed, a [Trial] event and
    per-phase [Span]s (cut along the protocol's
    {!Ftc_sim.Protocol.S.phases} calendar) are emitted on track
    ["seed-N"], and the standard counters/histograms are fed. The
    simulation result is bit-identical either way. *)

val violations : outcome -> Ftc_sim.Violation.t list

val ensure_clean : spec -> outcome -> unit
(** Raise {!Model_violation} iff the outcome recorded any violation. This
    is the check {!run_exn} applies; the supervisor calls it per trial so
    a violating seed fails (or quarantines) just that trial. *)

val run_exn : ?recorder:Ftc_telemetry.Recorder.t -> spec -> seed:int -> outcome
(** As {!run}, but raises {!Model_violation} when the engine reported any
    violation — experiments must be model-clean. *)

val run_many : ?recorder:Ftc_telemetry.Recorder.t -> spec -> seeds:int list -> outcome list
(** Runs every seed through {!run_exn}. *)

val run_many_par :
  ?recorder:Ftc_telemetry.Recorder.t -> jobs:int -> spec -> seeds:int list -> outcome list
(** As {!run_many}, but the trials run on a pool of [jobs] domains
    ({!Ftc_parallel.Pool}). The determinism contract: per-trial outcomes
    are bit-identical to the sequential path — trials share no state, so
    only the execution interleaving differs, and results are returned in
    seed order regardless. On violations, raises the same
    {!Model_violation} (first violating seed) the sequential path would.
    [jobs = 1] is exactly [run_many] (no domains spawned). Raises
    [Invalid_argument] when [jobs < 1]. A live [recorder] additionally
    installs a pool monitor, so queue wait and per-domain busy time are
    recorded alongside the trials. *)

val run_many_par_raw :
  ?recorder:Ftc_telemetry.Recorder.t -> jobs:int -> spec -> seeds:int list -> outcome list
(** As {!run_many_par}, but through {!run}: violations stay in the
    outcomes, never raised — for experiments (lossy raw, Byzantine probe)
    that treat model violations as data. *)

type trial_stats = { success : bool; msgs : int; bits : int; rounds : int }
(** The per-trial facts an aggregate is built from — exactly what the
    trial journal records, so a resumed sweep aggregates journaled trials
    and fresh ones identically. *)

val stats_of : ok:(outcome -> bool) -> outcome -> trial_stats

type aggregate = {
  trials : int;
  successes : int;
  success_rate : float;
  msgs : Ftc_analysis.Stats.summary;
  bits : Ftc_analysis.Stats.summary;
  rounds : Ftc_analysis.Stats.summary;
}

val empty_aggregate : aggregate
(** [trials = 0], [success_rate = 0.], every summary {!Ftc_analysis.Stats.empty}. *)

val aggregate_stats : trial_stats list -> aggregate
(** Aggregate per-trial stats in list order (float accumulation order is
    part of the determinism contract). An empty list yields
    {!empty_aggregate} instead of raising — a sweep whose every trial
    failed under [--keep-going] still reports structure. *)

val aggregate : ok:(outcome -> bool) -> outcome list -> aggregate
(** [aggregate_stats (List.map (stats_of ~ok) outcomes)]. Empty input
    yields {!empty_aggregate}. *)

val seeds : base:int -> count:int -> int list
