type scale = Quick | Full

type ctx = {
  scale : scale;
  base_seed : int;
  jobs : int;
  journal : Supervise.shared option;
  queue : Ftc_sim.Queue_model.config option;
  fast_engine : bool;
      (* Run trials on the struct-of-arrays fast engine where a port
         exists (bit-identical by the differential suite), and unlock
         the sweep points that are only tractable there (F1/F2's
         extended decades up to n = 10^6). *)
}

type t = { id : string; title : string; paper : string; run : ctx -> string }

let trials ctx ~quick ~full = match ctx.scale with Quick -> quick | Full -> full

let section id title body =
  let header = Printf.sprintf "== %s: %s ==" id title in
  let bar = String.make (String.length header) '=' in
  String.concat "\n" [ bar; header; bar; body; "" ]
