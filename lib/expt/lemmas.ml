module Stats = Ftc_analysis.Stats
module Table = Ftc_analysis.Table
module Params = Ftc_core.Params
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

let params = Params.default

(* F6: Lemma 1 — candidate count concentration, sampled directly from the
   selection distribution (no engine needed). *)
let f6 =
  {
    Def.id = "F6";
    title = "Lemma 1: candidate-set size concentration";
    paper = "Lemma 1: |C| in [2 ln n / alpha, 12 ln n / alpha] w.h.p.";
    run =
      (fun ctx ->
        let trials = Def.trials ctx ~quick:200 ~full:2000 in
        let grid =
          match ctx.scale with
          | Def.Quick -> [ (1024, 0.5); (4096, 0.8) ]
          | Def.Full -> [ (1024, 0.3); (1024, 0.7); (4096, 0.5); (16384, 0.8); (65536, 0.5) ]
        in
        let rows =
          List.map
            (fun (n, alpha) ->
              let p = Params.candidate_prob params ~n ~alpha in
              let lo = 2. *. Float.log (float_of_int n) /. alpha in
              let hi = 12. *. Float.log (float_of_int n) /. alpha in
              let rng = Rng.create (ctx.base_seed + n) in
              let sizes =
                List.init trials (fun _ -> float_of_int (Dist.binomial rng ~n ~p))
              in
              let inside =
                List.length (List.filter (fun s -> s >= lo && s <= hi) sizes)
              in
              let s = Stats.summarize sizes in
              [
                string_of_int n;
                Table.fmt_float ~digits:2 alpha;
                Table.fmt_float ~digits:1 (Params.expected_candidates params ~n ~alpha);
                Table.fmt_float ~digits:1 s.Stats.mean;
                Table.fmt_float ~digits:1 s.Stats.min;
                Table.fmt_float ~digits:1 s.Stats.max;
                Printf.sprintf "[%.0f, %.0f]" lo hi;
                Printf.sprintf "%d/%d" inside trials;
              ])
            grid
        in
        Def.section "F6" "candidate-set size concentration (Lemma 1)"
          (Table.render
             ~headers:[ "n"; "alpha"; "E|C|"; "mean"; "min"; "max"; "whp band"; "inside" ]
             ~rows ()));
  }

(* F7: Lemma 2 / Thm 4.1 — elected leader quality. *)
let f7 =
  {
    Def.id = "F7";
    title = "leader quality: P(non-faulty leader) >= alpha";
    paper = "Thm 4.1: elected leader non-faulty with probability >= alpha";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 256 | Def.Full -> 512 in
        let trials = Def.trials ctx ~quick:20 ~full:50 in
        let alphas = [ 0.4; 0.6; 0.8 ] in
        let adversaries =
          [
            ("dormant (worst for quality)", Ftc_fault.Strategy.dormant);
            ("eager (all crash at once)", Ftc_fault.Strategy.eager);
          ]
        in
        let rows = ref [] in
        List.iter
          (fun alpha ->
            List.iter
              (fun (adv_name, adv) ->
                let spec =
                  {
                    (Runner.default_spec (Ftc_core.Leader_election.make params) ~n ~alpha) with
                    adversary = adv;
                  }
                in
                let outcomes =
                  Runner.run_many_par ~jobs:ctx.jobs spec
                    ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials)
                in
                let elected = ref 0 and non_faulty = ref 0 and ok = ref 0 in
                List.iter
                  (fun (o : Runner.outcome) ->
                    let rep = Ftc_core.Properties.check_implicit_election o.result in
                    if rep.ok then incr ok;
                    match rep.leader_was_faulty with
                    | Some f ->
                        incr elected;
                        if not f then incr non_faulty
                    | None -> ())
                  outcomes;
                let rate =
                  if !elected = 0 then 0.
                  else float_of_int !non_faulty /. float_of_int !elected
                in
                let lo, hi =
                  if !elected = 0 then (0., 0.)
                  else Stats.wilson_interval ~successes:!non_faulty ~trials:!elected
                in
                rows :=
                  [
                    Table.fmt_float ~digits:2 alpha;
                    adv_name;
                    Printf.sprintf "%d/%d" !ok trials;
                    Table.fmt_float ~digits:2 rate;
                    Printf.sprintf "[%.2f, %.2f]" lo hi;
                    (if rate >= alpha -. 0.12 then "holds" else "VIOLATED");
                  ]
                  :: !rows)
              adversaries)
          alphas;
        Def.section "F7" "leader quality (Lemma 2 / Theorem 4.1)"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d. With a dormant adversary faulty nodes campaign normally,\n\
                  so P(non-faulty leader) should sit near alpha; crashing adversaries\n\
                  only remove faulty candidates and push it towards 1." n;
               Table.render
                 ~aligns:[ Table.Right; Table.Left ]
                 ~headers:
                   [ "alpha"; "adversary"; "election ok"; "P(good leader)"; "95% CI"; ">= alpha?" ]
                 ~rows:(List.rev !rows) ();
             ]));
  }

(* F8: Lemma 3 — pairwise common non-faulty referees, plus the ablation on
   the sampling constant. Sampling is simulated directly, then the ablated
   constant is run through the full protocol. *)
let pair_coverage rng ~n ~alpha ~coeff =
  let cand_count =
    max 2 (int_of_float (Float.round (Params.expected_candidates params ~n ~alpha)))
  in
  let k =
    let raw =
      coeff *. sqrt (float_of_int n *. Float.log (float_of_int n) /. alpha)
    in
    min (n - 1) (max 1 (int_of_float (ceil raw)))
  in
  let f = Ftc_sim.Engine.max_faulty ~n ~alpha in
  let faulty = Array.make n false in
  Array.iter (fun v -> faulty.(v) <- true) (Dist.sample_without_replacement rng ~n ~k:f);
  let sets =
    Array.init cand_count (fun _ ->
        let s = Dist.sample_without_replacement rng ~n ~k in
        let tbl = Hashtbl.create k in
        Array.iter (fun v -> if not faulty.(v) then Hashtbl.replace tbl v ()) s;
        tbl)
  in
  let covered = ref true in
  Array.iteri
    (fun i si ->
      for j = i + 1 to cand_count - 1 do
        if !covered then begin
          let sj = sets.(j) in
          let small, large =
            if Hashtbl.length si <= Hashtbl.length sj then (si, sj) else (sj, si)
          in
          let common = Hashtbl.fold (fun v () acc -> acc || Hashtbl.mem large v) small false in
          if not common then covered := false
        end
      done)
    sets;
  !covered

let f8 =
  {
    Def.id = "F8";
    title = "Lemma 3: common non-faulty referees (+ constant ablation)";
    paper = "Lemma 3: any candidate pair shares a non-faulty referee w.h.p.";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 1024 | Def.Full -> 4096 in
        let alpha = 0.5 in
        let trials = Def.trials ctx ~quick:40 ~full:100 in
        let proto_trials = Def.trials ctx ~quick:8 ~full:25 in
        let coeffs = [ 0.25; 0.5; 1.0; 2.0 ] in
        let rng = Rng.create ctx.base_seed in
        let rows =
          List.map
            (fun coeff ->
              let covered =
                List.length
                  (List.filter Fun.id
                     (List.init trials (fun _ -> pair_coverage rng ~n ~alpha ~coeff)))
              in
              (* The same constant, through the full leader election. *)
              let abl_params = { params with Params.referee_coeff = coeff } in
              let spec =
                {
                  (Runner.default_spec (Ftc_core.Leader_election.make abl_params)
                     ~n:(n / 4) ~alpha) with
                  adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
                }
              in
              let agg =
                Runner.aggregate
                  ~ok:(fun o -> (Ftc_core.Properties.check_implicit_election o.result).ok)
                  (Runner.run_many_par ~jobs:ctx.jobs spec
                     ~seeds:(Runner.seeds ~base:(ctx.base_seed + 31) ~count:proto_trials))
              in
              [
                Table.fmt_float ~digits:2 coeff;
                Printf.sprintf "%d/%d" covered trials;
                Printf.sprintf "%d/%d" agg.Runner.successes agg.Runner.trials;
                Table.fmt_int (int_of_float agg.Runner.msgs.Stats.mean);
              ])
            coeffs
        in
        Def.section "F8" "referee overlap (Lemma 3) and sampling-constant ablation"
          (String.concat "\n"
             [
               Printf.sprintf
                 "sampling check at n = %d, alpha = %.2f; election at n = %d (paper's\n\
                  constant is coeff = 2.0; below it, pairs lose their common referee\n\
                  and the election's success degrades while messages shrink)."
                 n alpha (n / 4);
               Table.render
                 ~headers:[ "referee coeff"; "pairs covered"; "election ok"; "election msgs" ]
                 ~rows ();
             ]));
  }
