module Stats = Ftc_analysis.Stats
module Fit = Ftc_analysis.Fit
module Table = Ftc_analysis.Table
module Params = Ftc_core.Params

let params = Params.default

(* [fast] routes the trials through the struct-of-arrays engine — the
   outcomes are bit-identical (pinned by the differential suite), so
   every aggregate below is engine-independent; only the reachable n
   changes. *)
let le_spec ?(explicit = false) ?(fast = false) ~n ~alpha () =
  {
    (Runner.default_spec (Ftc_core.Leader_election.make ~explicit params) ~n ~alpha) with
    adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
    fast_protocol =
      (if fast then Some (Ftc_core.Leader_election_fast.make ~explicit params) else None);
  }

let ag_spec ?(explicit = false) ?(fast = false) ~n ~alpha () =
  {
    (Runner.default_spec (Ftc_core.Agreement.make ~explicit params) ~n ~alpha) with
    inputs = Runner.Random_bits 0.5;
    adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
    fast_protocol =
      (if fast then Some (Ftc_core.Agreement_fast.make ~explicit params) else None);
  }

let le_ok (o : Runner.outcome) = (Ftc_core.Properties.check_implicit_election o.result).ok
let le_explicit_ok (o : Runner.outcome) = (Ftc_core.Properties.check_explicit_election o.result).ok

let ag_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_implicit_agreement ~inputs:o.inputs_used o.result).ok

let ag_explicit_ok (o : Runner.outcome) =
  (Ftc_core.Properties.check_explicit_agreement ~inputs:o.inputs_used o.result).ok

type point = { x : float; agg : Runner.aggregate }

(* Each sweep point runs through the journaled path: with no journal in
   the ctx it degrades to the plain parallel runner; with one, completed
   trials are recorded under a key naming the experiment and the x value
   (17 significant digits, so the key is bit-stable) and an interrupted
   [ftc expt --journal]/[--resume] run re-runs only the missing trials. *)
let sweep ~(ctx : Def.ctx) ~id ~spec_of ~ok ~xs ~trials ?(base_seed_offset = 0) () =
  List.map
    (fun x ->
      let spec = spec_of x in
      let key = Printf.sprintf "%s:x=%.17g" id x in
      let stats =
        Supervise.run_many_journaled ~jobs:ctx.Def.jobs ~journal:ctx.Def.journal ~key ~ok spec
          ~seeds:(Runner.seeds ~base:(ctx.Def.base_seed + base_seed_offset) ~count:trials)
      in
      { x; agg = Runner.aggregate_stats stats })
    xs

let row_of_point label fmt_x p =
  [
    fmt_x p.x;
    Table.fmt_int (int_of_float p.agg.Runner.msgs.Stats.mean);
    Table.fmt_int (int_of_float p.agg.Runner.bits.Stats.mean);
    Table.fmt_float ~digits:1 p.agg.Runner.rounds.Stats.mean;
    Printf.sprintf "%d/%d" p.agg.Runner.successes p.agg.Runner.trials;
    label;
  ]

let render_points ~x_header ~label ~fmt_x points =
  Table.render
    ~headers:[ x_header; "messages"; "bits"; "rounds"; "success"; "protocol" ]
    ~rows:(List.map (row_of_point label fmt_x) points)
    ()

let fit_line ~what ~expect ~(fit : Fit.t) =
  Printf.sprintf "fit: %s ~ x^%.3f (R^2 = %.3f); paper predicts exponent %s" what fit.exponent
    fit.r2 expect

let metric_pairs points metric =
  List.map (fun p -> (p.x, metric p.agg)) points

let msgs_mean (a : Runner.aggregate) = a.msgs.Stats.mean
let bits_mean (a : Runner.aggregate) = a.bits.Stats.mean

(* F1: leader-election messages vs n at constant alpha. *)
let f1 =
  {
    Def.id = "F1";
    title = "LE messages vs n (Theorem 4.1)";
    paper = "Thm 4.1: O(n^(1/2) log^(5/2) n / alpha^(5/2)) messages";
    run =
      (fun ctx ->
        let ns =
          match ctx.scale with
          | Def.Quick -> [ 128; 256; 512; 1024 ]
          | Def.Full -> [ 256; 512; 1024; 2048; 4096; 8192 ]
        in
        (* The fast engine unlocks two more decades of n — the regime
           where the paper's sublinear scaling separates visually from
           the Theta(n^2) baselines. Classic runs keep the historical
           point set (and byte-identical output). *)
        let ns =
          if ctx.fast_engine && ctx.scale = Def.Full then ns @ [ 65536; 262144; 1048576 ]
          else ns
        in
        let trials = Def.trials ctx ~quick:3 ~full:8 in
        let alpha = 0.7 in
        let points =
          sweep ~ctx ~id:"F1"
            ~spec_of:(fun n -> le_spec ~fast:ctx.fast_engine ~n:(int_of_float n) ~alpha ())
            ~ok:le_ok ~xs:(List.map float_of_int ns) ~trials ()
        in
        let fit =
          Fit.power_law_divided_polylog ~log_power:2.5 (metric_pairs points msgs_mean)
        in
        let raw = Fit.power_law (metric_pairs points msgs_mean) in
        Def.section "F1" "leader election: messages vs n"
          (String.concat "\n"
             [
               Printf.sprintf "alpha = %.2f, adversary = random crashes" alpha;
               render_points ~x_header:"n" ~label:"ft-leader-election"
                 ~fmt_x:(fun x -> string_of_int (int_of_float x))
                 points;
               fit_line ~what:"messages / ln^2.5 n" ~expect:"1/2" ~fit;
               fit_line ~what:"messages (raw)" ~expect:"1/2 + polylog drift" ~fit:raw;
             ]));
  }

(* F2: leader-election messages vs alpha at constant n. *)
let f2 =
  {
    Def.id = "F2";
    title = "LE messages vs alpha (Theorem 4.1)";
    paper = "Thm 4.1: messages scale as alpha^(-5/2)";
    run =
      (fun ctx ->
        (* Under the fast engine the Full-scale alpha sweep moves two
           decades right in n, into fast-engine-only territory. *)
        let n =
          match ctx.scale with
          | Def.Quick -> 256
          | Def.Full -> if ctx.fast_engine then 131072 else 1024
        in
        let alphas = [ 0.3; 0.4; 0.5; 0.65; 0.8; 1.0 ] in
        let trials = Def.trials ctx ~quick:3 ~full:8 in
        let points =
          sweep ~ctx ~id:"F2"
            ~spec_of:(fun alpha -> le_spec ~fast:ctx.fast_engine ~n ~alpha ())
            ~ok:le_ok ~xs:alphas ~trials ()
        in
        let fit = Fit.power_law (metric_pairs points msgs_mean) in
        Def.section "F2" "leader election: messages vs alpha"
          (String.concat "\n"
             [
               Printf.sprintf "n = %d, adversary = random crashes" n;
               render_points ~x_header:"alpha" ~label:"ft-leader-election"
                 ~fmt_x:(Table.fmt_float ~digits:2) points;
               fit_line ~what:"messages" ~expect:"-5/2 (to -3 at finite n: the\n\
                  preprocessing term |C|^2 R^2 / n carries alpha^-3)" ~fit;
             ]));
  }

(* F3: round complexity of both protocols. *)
let f3 =
  {
    Def.id = "F3";
    title = "rounds: O(log n / alpha) (Theorems 4.1, 5.1)";
    paper = "Thm 4.1 and Thm 5.1: O(log n / alpha) rounds";
    run =
      (fun ctx ->
        let trials = Def.trials ctx ~quick:3 ~full:8 in
        let ns =
          match ctx.scale with
          | Def.Quick -> [ 128; 512 ]
          | Def.Full -> [ 256; 1024; 4096 ]
        in
        let alphas = [ 0.4; 0.7; 1.0 ] in
        let rows = ref [] in
        List.iter
          (fun n ->
            List.iter
              (fun alpha ->
                let le =
                  Runner.aggregate_stats
                    (Supervise.run_many_journaled ~jobs:ctx.jobs ~journal:ctx.journal
                       ~key:(Printf.sprintf "F3:le:n=%d:alpha=%.17g" n alpha)
                       ~ok:le_ok (le_spec ~fast:ctx.fast_engine ~n ~alpha ())
                       ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials))
                in
                let ag =
                  Runner.aggregate_stats
                    (Supervise.run_many_journaled ~jobs:ctx.jobs ~journal:ctx.journal
                       ~key:(Printf.sprintf "F3:ag:n=%d:alpha=%.17g" n alpha)
                       ~ok:ag_ok (ag_spec ~fast:ctx.fast_engine ~n ~alpha ())
                       ~seeds:(Runner.seeds ~base:(ctx.base_seed + 7) ~count:trials))
                in
                let budget = Float.log (float_of_int n) /. alpha in
                rows :=
                  [
                    string_of_int n;
                    Table.fmt_float ~digits:2 alpha;
                    Table.fmt_float ~digits:1 le.Runner.rounds.Stats.mean;
                    Table.fmt_float ~digits:2 (le.Runner.rounds.Stats.mean /. budget);
                    Table.fmt_float ~digits:1 ag.Runner.rounds.Stats.mean;
                    Table.fmt_float ~digits:2 (ag.Runner.rounds.Stats.mean /. budget);
                  ]
                  :: !rows)
              alphas)
          ns;
        Def.section "F3" "round complexity"
          (String.concat "\n"
             [
               "Both protocols must stay within O(log n / alpha) rounds; the";
               "ratio columns (rounds normalised by ln n / alpha) must stay bounded";
               "as n grows and alpha shrinks.";
               Table.render
                 ~headers:
                   [ "n"; "alpha"; "LE rounds"; "LE/(ln n/a)"; "AGR rounds"; "AGR/(ln n/a)" ]
                 ~rows:(List.rev !rows) ();
             ]));
  }

(* F4: agreement bits vs n. *)
let f4 =
  {
    Def.id = "F4";
    title = "agreement message bits vs n (Theorem 5.1)";
    paper = "Thm 5.1: O(n^(1/2) log^(3/2) n / alpha^(3/2)) message bits";
    run =
      (fun ctx ->
        let ns =
          match ctx.scale with
          | Def.Quick -> [ 128; 256; 512; 1024 ]
          | Def.Full -> [ 256; 512; 1024; 2048; 4096; 8192 ]
        in
        let trials = Def.trials ctx ~quick:3 ~full:8 in
        let alpha = 0.7 in
        let points =
          sweep ~ctx ~id:"F4"
            ~spec_of:(fun n -> ag_spec ~fast:ctx.fast_engine ~n:(int_of_float n) ~alpha ())
            ~ok:ag_ok ~xs:(List.map float_of_int ns) ~trials ()
        in
        let fit =
          Fit.power_law_divided_polylog ~log_power:1.5 (metric_pairs points bits_mean)
        in
        Def.section "F4" "agreement: message bits vs n"
          (String.concat "\n"
             [
               Printf.sprintf "alpha = %.2f, random half-and-half inputs, random crashes" alpha;
               render_points ~x_header:"n" ~label:"ft-agreement"
                 ~fmt_x:(fun x -> string_of_int (int_of_float x))
                 points;
               fit_line ~what:"bits / ln^1.5 n" ~expect:"1/2" ~fit;
             ]));
  }

(* F5: agreement messages vs alpha. *)
let f5 =
  {
    Def.id = "F5";
    title = "agreement messages vs alpha (Theorem 5.1)";
    paper = "Thm 5.1: messages scale as alpha^(-3/2)";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 256 | Def.Full -> 1024 in
        let alphas = [ 0.3; 0.4; 0.5; 0.65; 0.8; 1.0 ] in
        let trials = Def.trials ctx ~quick:3 ~full:8 in
        let points =
          sweep ~ctx ~id:"F5"
            ~spec_of:(fun alpha -> ag_spec ~fast:ctx.fast_engine ~n ~alpha ())
            ~ok:ag_ok ~xs:alphas ~trials ()
        in
        let fit = Fit.power_law (metric_pairs points msgs_mean) in
        Def.section "F5" "agreement: messages vs alpha"
          (String.concat "\n"
             [
               Printf.sprintf "n = %d, random half-and-half inputs, random crashes" n;
               render_points ~x_header:"alpha" ~label:"ft-agreement"
                 ~fmt_x:(Table.fmt_float ~digits:2) points;
               fit_line ~what:"messages" ~expect:"-3/2" ~fit;
             ]));
  }

(* F10: explicit extensions. *)
let f10 =
  {
    Def.id = "F10";
    title = "explicit extensions: Theta(n log n / alpha) messages";
    paper = "Sec. IV-A / V-A: explicit versions in O(n log n / alpha) messages, +O(1) rounds";
    run =
      (fun ctx ->
        let ns =
          match ctx.scale with
          | Def.Quick -> [ 128; 256; 512 ]
          | Def.Full -> [ 256; 512; 1024; 2048; 4096 ]
        in
        let trials = Def.trials ctx ~quick:3 ~full:6 in
        let alpha = 0.7 in
        let le_points =
          sweep ~ctx ~id:"F10:le"
            ~spec_of:(fun n -> le_spec ~explicit:true ~fast:ctx.fast_engine ~n:(int_of_float n) ~alpha ())
            ~ok:le_explicit_ok ~xs:(List.map float_of_int ns) ~trials ()
        in
        let ag_points =
          sweep ~ctx ~id:"F10:ag"
            ~spec_of:(fun n -> ag_spec ~explicit:true ~fast:ctx.fast_engine ~n:(int_of_float n) ~alpha ())
            ~ok:ag_explicit_ok ~xs:(List.map float_of_int ns) ~trials ~base_seed_offset:13 ()
        in
        let le_fit = Fit.power_law (metric_pairs le_points msgs_mean) in
        let ag_fit = Fit.power_law (metric_pairs ag_points msgs_mean) in
        Def.section "F10" "explicit leader election and agreement"
          (String.concat "\n"
             [
               Printf.sprintf "alpha = %.2f, random crashes" alpha;
               render_points ~x_header:"n" ~label:"explicit LE"
                 ~fmt_x:(fun x -> string_of_int (int_of_float x))
                 le_points;
               fit_line ~what:"LE messages" ~expect:"1 (linear, up to log factor)" ~fit:le_fit;
               render_points ~x_header:"n" ~label:"explicit agreement"
                 ~fmt_x:(fun x -> string_of_int (int_of_float x))
                 ag_points;
               fit_line ~what:"AGR messages" ~expect:"1 (linear, up to log factor)" ~fit:ag_fit;
             ]));
  }
