module Table = Ftc_analysis.Table
module Decision = Ftc_sim.Decision

let a4 =
  {
    Def.id = "A4";
    title = "Byzantine probe: one forged 0 breaks validity (open question 3)";
    paper = "Sec. VI open question 3: sublinear agreement under Byzantine faults";
    run =
      (fun ctx ->
        let n = match ctx.scale with Def.Quick -> 512 | Def.Full -> 1024 in
        let alpha = 0.8 in
        let trials = Def.trials ctx ~quick:10 ~full:25 in
        let attacker_counts = [ 0; 1; 2; 8 ] in
        let rows =
          List.map
            (fun b ->
              let violated = ref 0 and decided_zero_total = ref 0 and msgs = ref 0 in
              (* Honest nodes all hold 1; attackers are marked by the
                 sentinel input. *)
              let inputs = Array.make n 1 in
              for i = 0 to b - 1 do
                inputs.(i) <- Ftc_core.Byzantine_probe.byzantine_input
              done;
              let spec =
                {
                  (Runner.default_spec
                     (Ftc_core.Byzantine_probe.make Ftc_core.Params.default)
                     ~n ~alpha)
                  with
                  inputs = Runner.Exact inputs;
                }
              in
              let outcomes =
                Runner.run_many_par_raw ~jobs:ctx.jobs spec
                  ~seeds:(Runner.seeds ~base:ctx.base_seed ~count:trials)
              in
              List.iter
                (fun (o : Runner.outcome) ->
                  msgs := !msgs + o.result.Ftc_sim.Engine.metrics.Ftc_sim.Metrics.msgs_sent;
                  let honest_zero = ref 0 in
                  Array.iteri
                    (fun i d ->
                      if
                        inputs.(i) <> Ftc_core.Byzantine_probe.byzantine_input
                        && (not o.result.Ftc_sim.Engine.crashed.(i))
                        && Decision.equal d (Decision.Agreed 0)
                      then incr honest_zero)
                    o.result.Ftc_sim.Engine.decisions;
                  decided_zero_total := !decided_zero_total + !honest_zero;
                  if !honest_zero > 0 then incr violated)
                outcomes;
              [
                string_of_int b;
                Printf.sprintf "%d/%d" !violated trials;
                string_of_int (!decided_zero_total / trials);
                Table.fmt_int (!msgs / trials);
              ])
            attacker_counts
        in
        Def.section "A4" "Byzantine probe (open question 3)"
          (String.concat "\n"
             [
               Printf.sprintf
                 "n = %d, alpha = %.2f, all honest inputs = 1, b attackers forge a 0.\n\
                  Validity is violated whenever any live honest node decides 0: the\n\
                  crash-fault machinery offers no Byzantine protection, so the\n\
                  violation rate jumps to ~1 at b = 1 while the attack stays\n\
                  sublinear in cost."
                 n alpha;
               Table.render
                 ~headers:[ "attackers"; "validity violated"; "honest 0-deciders"; "messages" ]
                 ~rows ();
             ]));
  }
