module Json = Ftc_journal.Json
module Journal = Ftc_journal.Journal
module Engine = Ftc_sim.Engine

type failure_class = Violation | Timed_out | Watchdog_expired | Exception

let class_to_string = function
  | Violation -> "violation"
  | Timed_out -> "timeout"
  | Watchdog_expired -> "watchdog"
  | Exception -> "exception"

let class_of_string = function
  | "violation" -> Some Violation
  | "timeout" -> Some Timed_out
  | "watchdog" -> Some Watchdog_expired
  | "exception" -> Some Exception
  | _ -> None

type failure = { seed : int; class_ : failure_class; detail : string }

type 'a trial = Completed of 'a | Failed of failure | Skipped

type config = {
  jobs : int;
  keep_going : bool;
  journal : string option;
  resume : bool;
  quarantine : string option;
  trial_timeout : float option;
  recorder : Ftc_telemetry.Recorder.t;
  flight : Ftc_telemetry.Flight.t;
  stop : unit -> bool;
}

let default_config =
  {
    jobs = 1;
    keep_going = false;
    journal = None;
    resume = false;
    quarantine = None;
    trial_timeout = None;
    recorder = Ftc_telemetry.Recorder.disabled;
    flight = Ftc_telemetry.Flight.disabled;
    stop = (fun () -> false);
  }

exception Resume_error of string

let () =
  Printexc.register_printer (function
    | Resume_error msg -> Some ("cannot resume: " ^ msg)
    | _ -> None)

type 'a sweep = {
  trials : (int * 'a trial) list;
  completed : int;
  failed : failure list;
  skipped : int;
  resumed : int;
  quarantined : string option;
}

(* Load a journal for resume, enforcing the spec-hash contract, and
   return its decoded records plus a handle re-opened for append. *)
let load_for_resume ~path ~spec_hash ~decode =
  match Journal.load ~path with
  | Error e -> raise (Resume_error (Printf.sprintf "%s: %s" path e))
  | Ok { header; entries; torn_tail = _ } ->
      if header.Journal.spec_hash <> spec_hash then
        raise
          (Resume_error
             (Printf.sprintf
                "%s was recorded for a different sweep (journal spec %s, current spec %s)" path
                header.Journal.spec_hash spec_hash));
      let decoded =
        List.map
          (fun j ->
            match decode j with
            | Some kv -> kv
            | None ->
                raise
                  (Resume_error
                     (Printf.sprintf "%s: unreadable record %s" path (Json.to_string j))))
          entries
      in
      (decoded, Journal.reopen ~path)

let run config ~spec_hash ~encode ~decode ?(replay_doc = fun _ -> None) ~run_trial ~seeds () =
  let journaled, handle =
    match config.journal with
    | None -> ([], None)
    | Some path when config.resume ->
        let decoded, h = load_for_resume ~path ~spec_hash ~decode in
        (decoded, Some h)
    | Some path -> ([], Some (Journal.create ~path ~spec_hash))
  in
  let cache = Hashtbl.create 64 in
  List.iter (fun (seed, v) -> Hashtbl.replace cache seed v) journaled;
  let to_run = List.filter (fun s -> not (Hashtbl.mem cache s)) seeds in
  let abort = Atomic.make false in
  let journal_lock = Mutex.create () in
  let record seed payload =
    match handle with
    | None -> ()
    | Some h ->
        Mutex.lock journal_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock journal_lock)
          (fun () -> Journal.append h (encode seed payload))
  in
  (* Sweep progress telemetry: per-trial outcome counters and one
     heartbeat event per finished trial (the atomics make the running
     totals race-free across pool workers). Journaled resume hits count
     as already completed. *)
  let recorder = config.recorder in
  let reg = Ftc_telemetry.Recorder.registry recorder in
  let total = List.length seeds in
  let done_count = Atomic.make (total - List.length to_run) in
  let failed_count = Atomic.make 0 in
  let heartbeat outcome =
    if Ftc_telemetry.Recorder.enabled recorder then begin
      (match outcome with
      | Completed _ ->
          Atomic.incr done_count;
          Ftc_telemetry.Registry.incr reg "ftc_sweep_trials_completed_total" 1
      | Failed f ->
          Atomic.incr failed_count;
          Ftc_telemetry.Registry.incr reg "ftc_sweep_trials_failed_total" 1;
          Ftc_telemetry.Registry.incr reg
            ("ftc_sweep_failures_" ^ class_to_string f.class_ ^ "_total")
            1
      | Skipped -> Ftc_telemetry.Registry.incr reg "ftc_sweep_trials_skipped_total" 1);
      Ftc_telemetry.Recorder.emit recorder
        (Ftc_telemetry.Recorder.Heartbeat
           {
             at_ns = Ftc_telemetry.Recorder.now_ns recorder;
             completed = Atomic.get done_count;
             failed = Atomic.get failed_count;
             total;
           })
    end
  in
  let record_flight seed outcome =
    Ftc_telemetry.Flight.record config.flight
      (Ftc_telemetry.Flight.Trial
         {
           seed;
           class_ =
             (match outcome with
             | Completed _ -> "completed"
             | Failed f -> class_to_string f.class_
             | Skipped -> "skipped");
         })
  in
  let one seed =
    if Atomic.get abort || config.stop () then begin
      heartbeat Skipped;
      record_flight seed Skipped;
      (seed, Skipped)
    end
    else
      let outcome =
        match run_trial seed with
        | Ok payload ->
            record seed payload;
            Completed payload
        | Error (class_, detail) -> Failed { seed; class_; detail }
        | exception e ->
            let detail =
              Printf.sprintf "%s%s" (Printexc.to_string e)
                (match Printexc.get_backtrace () with "" -> "" | bt -> "\n" ^ bt)
            in
            Failed { seed; class_ = Exception; detail }
      in
      (match outcome with
      | Failed _ when not config.keep_going -> Atomic.set abort true
      | _ -> ());
      heartbeat outcome;
      record_flight seed outcome;
      (seed, outcome)
  in
  let fresh =
    Ftc_parallel.Pool.run_map
      ?monitor:(Ftc_telemetry.Instrument.pool_monitor recorder "sweep")
      ~jobs:config.jobs one to_run
  in
  (match handle with None -> () | Some h -> Journal.close h);
  let fresh_tbl = Hashtbl.create 64 in
  List.iter (fun (seed, t) -> Hashtbl.replace fresh_tbl seed t) fresh;
  let trials =
    List.map
      (fun seed ->
        match Hashtbl.find_opt cache seed with
        | Some payload -> (seed, Completed payload)
        | None -> (seed, Hashtbl.find fresh_tbl seed))
      seeds
  in
  let completed = ref 0 and skipped = ref 0 and resumed = ref 0 in
  let failed = ref [] in
  List.iter
    (fun (seed, t) ->
      match t with
      | Completed _ ->
          incr completed;
          if Hashtbl.mem cache seed then incr resumed
      | Failed f -> failed := f :: !failed
      | Skipped -> incr skipped)
    trials;
  let failed = List.rev !failed in
  let quarantined =
    match (config.quarantine, failed) with
    | None, _ | _, [] -> None
    | Some path, _ :: _ ->
        let line f =
          let base =
            [
              ("seed", Json.Int f.seed);
              ("class", Json.String (class_to_string f.class_));
              ("detail", Json.String f.detail);
            ]
          in
          let fields =
            match replay_doc f.seed with
            | None -> base
            | Some doc -> base @ [ ("replay", Json.String doc) ]
          in
          Json.to_string (Json.Obj fields) ^ "\n"
        in
        Journal.write_atomic ~path (String.concat "" (List.map line failed));
        Some path
  in
  {
    trials;
    completed = !completed;
    failed;
    skipped = !skipped;
    resumed = !resumed;
    quarantined;
  }

let exit_code ~ok sweep =
  if sweep.failed = [] && sweep.skipped = 0 then if ok then 0 else 1
  else if sweep.completed > 0 then 3
  else 1

let classify_outcome (o : Runner.outcome) =
  match Runner.violations o with
  | _ :: _ as vs ->
      Some
        ( Violation,
          String.concat "; " (List.map Ftc_sim.Violation.to_string vs) )
  | [] ->
      if o.result.Engine.watchdog_expired then
        Some
          ( Watchdog_expired,
            Printf.sprintf "trial exceeded its wall-clock budget after %d rounds"
              o.result.Engine.rounds_used )
      else if o.result.Engine.timed_out then
        Some
          ( Timed_out,
            Printf.sprintf "round budget exhausted with messages still in flight (%d rounds)"
              o.result.Engine.rounds_used )
      else None

(* ---- the expt-driver shared journal ---- *)

type shared = {
  handle : Journal.t;
  lock : Mutex.t;
  cache : (string * int, Runner.trial_stats) Hashtbl.t;
}

let encode_stats ~key ~seed (s : Runner.trial_stats) =
  Json.Obj
    [
      ("key", Json.String key);
      ("seed", Json.Int seed);
      ("success", Json.Bool s.Runner.success);
      ("msgs", Json.Int s.Runner.msgs);
      ("bits", Json.Int s.Runner.bits);
      ("rounds", Json.Int s.Runner.rounds);
    ]

let decode_stats j =
  let ( let* ) = Option.bind in
  let* key = Option.bind (Json.member "key" j) Json.to_str in
  let* seed = Option.bind (Json.member "seed" j) Json.to_int in
  let* success = Option.bind (Json.member "success" j) Json.to_bool in
  let* msgs = Option.bind (Json.member "msgs" j) Json.to_int in
  let* bits = Option.bind (Json.member "bits" j) Json.to_int in
  let* rounds = Option.bind (Json.member "rounds" j) Json.to_int in
  Some ((key, seed), { Runner.success; msgs; bits; rounds })

let open_shared ~path ~resume ~spec_hash =
  let cache = Hashtbl.create 256 in
  let handle =
    if resume then begin
      let decoded, h = load_for_resume ~path ~spec_hash ~decode:decode_stats in
      List.iter (fun (k, v) -> Hashtbl.replace cache k v) decoded;
      h
    end
    else Journal.create ~path ~spec_hash
  in
  { handle; lock = Mutex.create (); cache }

let close_shared sh = Journal.close sh.handle

let run_many_journaled ~jobs ~journal ~key ~ok spec ~seeds =
  match journal with
  | None ->
      List.map (Runner.stats_of ~ok) (Runner.run_many_par ~jobs spec ~seeds)
  | Some sh ->
      let cached s = Hashtbl.find_opt sh.cache (key, s) in
      let to_run = List.filter (fun s -> cached s = None) seeds in
      let outcomes = Runner.run_many_par_raw ~jobs spec ~seeds:to_run in
      (* Journal every clean trial of the batch first, so a violation —
         which aborts the whole expt run — loses none of the batch's
         completed work; then raise for the first violating seed in seed
         order, exactly as [run_many_par] would have. *)
      let stats_tbl = Hashtbl.create 64 in
      List.iter
        (fun (o : Runner.outcome) ->
          if Runner.violations o = [] then begin
            let s = Runner.stats_of ~ok o in
            Mutex.lock sh.lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock sh.lock)
              (fun () -> Journal.append sh.handle (encode_stats ~key ~seed:o.Runner.seed s));
            Hashtbl.replace sh.cache (key, o.Runner.seed) s;
            Hashtbl.replace stats_tbl o.Runner.seed s
          end)
        outcomes;
      List.iter (Runner.ensure_clean spec) outcomes;
      List.map
        (fun s ->
          match cached s with
          | Some st -> st
          | None -> Hashtbl.find stats_tbl s)
        seeds
