(** Counterexample shrinking by delta-debugging over the crash plan.

    Given a failing case and a predicate [still_fails] (typically "the
    re-run reproduces at least one of the original oracle findings", see
    {!Oracle.same_oracle}), greedily minimise along three axes, repeated
    to a fixpoint:

    - {b drop schedule entries} — windows of decreasing size, then
      singletons, so irrelevant crashes vanish fast;
    - {b reduce n} — smallest candidate network first, truncating inputs
      and discarding plan entries that address removed nodes. Never goes
      below [n_floor]: the oracles encode w.h.p. guarantees, so below the
      fuzzed network sizes a "failure" can be intrinsic to the protocol
      at tiny n rather than related to the original counterexample;
    - {b earlier rounds} — each surviving crash is pulled towards round
      0, binary-searching downwards;
    - {b simpler loss} — drop the omission model (and the transport
      wrapper) entirely if the failure survives, else halve the loss rate
      to a fixpoint.

    Every candidate is checked by a full deterministic re-run, so the
    result is always a genuine reproducer, never an extrapolation. *)

type stats = { attempts : int }

val shrink :
  ?max_attempts:int ->
  ?n_floor:int ->
  still_fails:(Case.t -> bool) ->
  Case.t ->
  Case.t * stats
(** [shrink ~still_fails case] assumes [still_fails case = true] and
    returns a case on which it still holds. [max_attempts] (default 500)
    bounds the number of re-runs; [n_floor] (default 2) bounds the
    network reduction from below. *)
