type kind = Election | Agreement

type input_kind = No_inputs | Bits | Values of int

type entry = {
  name : string;
  make : unit -> (module Ftc_sim.Protocol.S);
  kind : kind;
  explicit : bool;
  inputs : input_kind;
  crash_tolerant : bool;
  quiesces : bool;
}

let params = Ftc_core.Params.default

let all =
  [
    {
      name = "ft-leader-election";
      make = (fun () -> Ftc_core.Leader_election.make params);
      kind = Election;
      explicit = false;
      inputs = No_inputs;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-leader-election-explicit";
      make = (fun () -> Ftc_core.Leader_election.make ~explicit:true params);
      kind = Election;
      explicit = true;
      inputs = No_inputs;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-agreement";
      make = (fun () -> Ftc_core.Agreement.make params);
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-agreement-explicit";
      make = (fun () -> Ftc_core.Agreement.make ~explicit:true params);
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-min-agreement";
      make = (fun () -> Ftc_core.Min_agreement.make params);
      kind = Agreement;
      explicit = false;
      inputs = Values 50;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "floodset";
      make = (fun () -> Ftc_baselines.Floodset.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "rotating-coordinator";
      make = (fun () -> Ftc_baselines.Rotating.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "push-gossip";
      make = (fun () -> Ftc_baselines.Gossip.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "tree-agreement";
      make = (fun () -> Ftc_baselines.Tree_agreement.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "kutten-leader-election";
      make = (fun () -> Ftc_baselines.Kutten_le.make ());
      kind = Election;
      explicit = false;
      inputs = No_inputs;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "amp-agreement";
      make = (fun () -> Ftc_baselines.Amp_agreement.make ());
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all
