type kind = Election | Agreement

type input_kind = No_inputs | Bits | Values of int

type entry = {
  name : string;
  make : unit -> (module Ftc_sim.Protocol.S);
  kind : kind;
  explicit : bool;
  inputs : input_kind;
  crash_tolerant : bool;
  quiesces : bool;
}

let params = Ftc_core.Params.default

let all =
  [
    {
      name = "ft-leader-election";
      make = (fun () -> Ftc_core.Leader_election.make params);
      kind = Election;
      explicit = false;
      inputs = No_inputs;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-leader-election-explicit";
      make = (fun () -> Ftc_core.Leader_election.make ~explicit:true params);
      kind = Election;
      explicit = true;
      inputs = No_inputs;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-agreement";
      make = (fun () -> Ftc_core.Agreement.make params);
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-agreement-explicit";
      make = (fun () -> Ftc_core.Agreement.make ~explicit:true params);
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-min-agreement";
      make = (fun () -> Ftc_core.Min_agreement.make params);
      kind = Agreement;
      explicit = false;
      inputs = Values 50;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "floodset";
      make = (fun () -> Ftc_baselines.Floodset.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "rotating-coordinator";
      make = (fun () -> Ftc_baselines.Rotating.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "push-gossip";
      make = (fun () -> Ftc_baselines.Gossip.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "tree-agreement";
      make = (fun () -> Ftc_baselines.Tree_agreement.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "kutten-leader-election";
      make = (fun () -> Ftc_baselines.Kutten_le.make ());
      kind = Election;
      explicit = false;
      inputs = No_inputs;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "amp-agreement";
      make = (fun () -> Ftc_baselines.Amp_agreement.make ());
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
  ]

(* A deliberately broken protocol: declares KT0 but addresses by node id
   in round 0, so the engine reports one [Kt0_node_addressing] violation
   per node on every seed. It exists to exercise the failure path end to
   end — sweep supervision, quarantine, replay — deterministically, the
   way a real model bug would. *)
module Faulty_probe = struct
  type state = unit
  type msg = unit

  let name = "faulty-probe"
  let knowledge = `KT0
  let msg_bits ~n:_ () = 1
  let max_rounds ~n:_ ~alpha:_ = 2
  let phases = Ftc_sim.Protocol.single_phase
  let init _ = ()

  let step _ () ~round ~inbox:_ =
    if round = 0 then ((), [ { Ftc_sim.Protocol.dest = Ftc_sim.Protocol.Node 0; payload = () } ])
    else ((), [])

  let decide () = Ftc_sim.Decision.Agreed 0

  let observe () =
    { Ftc_sim.Observation.role = Ftc_sim.Observation.Bystander; rank = None; has_decided = true }
end

(* Runnable via [find] (so [ftc sweep]/[ftc replay] can name them) but
   deliberately NOT in [all]: the fuzzer cycles deterministically through
   [all], and growing that list would silently reshuffle every recorded
   fuzz stream. *)
let extras =
  [
    {
      name = "faulty-probe";
      make = (fun () -> (module Faulty_probe : Ftc_sim.Protocol.S));
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) (all @ extras)

let names () = List.map (fun e -> e.name) (all @ extras)
