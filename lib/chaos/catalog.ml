type kind = Election | Agreement

type input_kind = No_inputs | Bits | Values of int

type entry = {
  name : string;
  make : unit -> (module Ftc_sim.Protocol.S);
  fast : (unit -> (module Ftc_sim.Fast_protocol.S)) option;
  kind : kind;
  explicit : bool;
  inputs : input_kind;
  crash_tolerant : bool;
  quiesces : bool;
}

let params = Ftc_core.Params.default

let all =
  [
    {
      name = "ft-leader-election";
      make = (fun () -> Ftc_core.Leader_election.make params);
      fast = Some (fun () -> Ftc_core.Leader_election_fast.make params);
      kind = Election;
      explicit = false;
      inputs = No_inputs;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-leader-election-explicit";
      make = (fun () -> Ftc_core.Leader_election.make ~explicit:true params);
      fast = Some (fun () -> Ftc_core.Leader_election_fast.make ~explicit:true params);
      kind = Election;
      explicit = true;
      inputs = No_inputs;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-agreement";
      make = (fun () -> Ftc_core.Agreement.make params);
      fast = Some (fun () -> Ftc_core.Agreement_fast.make params);
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-agreement-explicit";
      make = (fun () -> Ftc_core.Agreement.make ~explicit:true params);
      fast = Some (fun () -> Ftc_core.Agreement_fast.make ~explicit:true params);
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "ft-min-agreement";
      make = (fun () -> Ftc_core.Min_agreement.make params);
      fast = None;
      kind = Agreement;
      explicit = false;
      inputs = Values 50;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "floodset";
      make = (fun () -> Ftc_baselines.Floodset.make ());
      fast = None;
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "rotating-coordinator";
      make = (fun () -> Ftc_baselines.Rotating.make ());
      fast = None;
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
    {
      name = "push-gossip";
      make = (fun () -> Ftc_baselines.Gossip.make ());
      fast = Some (fun () -> Ftc_baselines.Gossip_fast.make ());
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "tree-agreement";
      make = (fun () -> Ftc_baselines.Tree_agreement.make ());
      fast = None;
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "kutten-leader-election";
      make = (fun () -> Ftc_baselines.Kutten_le.make ());
      fast = None;
      kind = Election;
      explicit = false;
      inputs = No_inputs;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "amp-agreement";
      make = (fun () -> Ftc_baselines.Amp_agreement.make ());
      fast = None;
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
  ]

(* A deliberately broken protocol: declares KT0 but addresses by node id
   in round 0, so the engine reports one [Kt0_node_addressing] violation
   per node on every seed. It exists to exercise the failure path end to
   end — sweep supervision, quarantine, replay — deterministically, the
   way a real model bug would. *)
module Faulty_probe = struct
  type state = unit
  type msg = unit

  let name = "faulty-probe"
  let knowledge = `KT0
  let msg_bits ~n:_ () = 1
  let max_rounds ~n:_ ~alpha:_ = 2
  let phases = Ftc_sim.Protocol.single_phase
  let init _ = ()

  let step _ () ~round ~inbox:_ =
    if round = 0 then ((), [ { Ftc_sim.Protocol.dest = Ftc_sim.Protocol.Node 0; payload = () } ])
    else ((), [])

  let decide () = Ftc_sim.Decision.Agreed 0

  let observe () =
    { Ftc_sim.Observation.role = Ftc_sim.Observation.Bystander; rank = None; has_decided = true }
end

(* A deliberately crash-*fragile* binary agreement protocol: correct in
   every fault-free run, deterministically wrong under partial round-0
   delivery. Round 0 each node broadcasts its input bit; round 1 each
   node computes the minimum bit it has seen and a tally of received
   messages, then decides that minimum when the tally is full (n - 1)
   and the complement otherwise. Fault-free every node sees everything
   and agrees on the global minimum (valid). A round-0 crash keeping a
   k-message prefix (0 < k < n - 1) splits the live nodes into full-tally
   and short-tally groups that decide opposite bits — and crash-drop-all
   on all-equal inputs makes everyone decide the complement of every
   input, violating validity. The verifier's demo target: its minimal
   counterexample (one crash, round 0, keep-prefix 1, all-zero inputs)
   sits at the very front of the BFS order, and no later schedule or
   relabelling fails differently, so the exhaustive sweep is cheap to
   pin in tests and CI. *)
module Crash_probe = struct
  type state = { n : int; input : int; tally : int option; min_seen : int }
  type msg = int

  let name = "crash-probe"
  let knowledge = `KT0
  let msg_bits ~n:_ _ = 1
  let max_rounds ~n:_ ~alpha:_ = 3
  let phases = Ftc_sim.Protocol.single_phase

  let init (ctx : Ftc_sim.Protocol.ctx) =
    let input = ctx.input land 1 in
    { n = ctx.n; input; tally = None; min_seen = input }

  let step _ st ~round ~inbox =
    match round with
    | 0 ->
        ( st,
          List.init (st.n - 1) (fun _ ->
              { Ftc_sim.Protocol.dest = Ftc_sim.Protocol.Fresh_port; payload = st.input }) )
    | 1 ->
        let tally = List.length inbox in
        let min_seen =
          List.fold_left
            (fun acc (m : msg Ftc_sim.Protocol.incoming) -> min acc m.payload)
            st.min_seen inbox
        in
        ({ st with tally = Some tally; min_seen }, [])
    | _ -> (st, [])

  let decide st =
    match st.tally with
    | None -> Ftc_sim.Decision.Undecided
    | Some t ->
        Ftc_sim.Decision.Agreed (if t = st.n - 1 then st.min_seen else 1 - st.min_seen)

  let observe st =
    {
      Ftc_sim.Observation.role = Ftc_sim.Observation.Bystander;
      rank = None;
      has_decided = st.tally <> None;
    }
end

(* Runnable via [find] (so [ftc sweep]/[ftc replay] can name them) but
   deliberately NOT in [all]: the fuzzer cycles deterministically through
   [all], and growing that list would silently reshuffle every recorded
   fuzz stream. *)
let extras =
  [
    {
      name = "faulty-probe";
      make = (fun () -> (module Faulty_probe : Ftc_sim.Protocol.S));
      fast = None;
      kind = Agreement;
      explicit = true;
      inputs = Bits;
      crash_tolerant = false;
      quiesces = true;
    };
    {
      name = "crash-probe";
      make = (fun () -> (module Crash_probe : Ftc_sim.Protocol.S));
      fast = None;
      kind = Agreement;
      explicit = false;
      inputs = Bits;
      crash_tolerant = true;
      quiesces = true;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) (all @ extras)

let names () = List.map (fun e -> e.name) (all @ extras)

(* Same xor tweak as [Ftc_expt.Runner.materialize_inputs]: inputs come
   from a stream distinct from the engine's own coins for the seed. *)
let gen_inputs entry ~n ~seed =
  let rng = Ftc_rng.Rng.create (seed lxor 0x5bd1e995) in
  match entry.inputs with
  | No_inputs -> Array.make n 0
  | Bits -> Array.init n (fun _ -> if Ftc_rng.Rng.bool rng then 1 else 0)
  | Values bound -> Array.init n (fun _ -> Ftc_rng.Rng.int rng (bound + 1))
