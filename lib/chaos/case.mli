(** One fuzz case: everything needed to re-execute a run bit-for-bit.

    A case is a pure description — protocol id, network shape, root seed,
    explicit inputs, and a deterministic crash plan in the format of
    {!Ftc_fault.Strategy.scheduled}. Running the same case twice yields
    the same execution, which is what makes shrinking and replay sound. *)

type t = {
  protocol : string;  (** A {!Catalog} entry name. *)
  n : int;
  alpha : float;
  seed : int;
  inputs : int array;  (** Always length [n]; all-zero for elections. *)
  plan : (int * int * Ftc_sim.Adversary.drop_rule) list;
      (** [(node, round, rule)] triples; empty = fault-free. *)
  adversary : string option;
      (** A named {!Ftc_fault.Strategy} adversary ([Strategy.all] name)
          instead of an explicit plan. The adversary draws its own coins
          from the case seed, so the case is still fully reproducible.
          Mutually exclusive with a non-empty [plan]; used by [ftc sweep]
          where trials run under randomized adversaries but must remain
          replayable from the quarantine file. *)
  loss : Ftc_fault.Omission.spec;  (** Omission model on live links. *)
  queue : Ftc_sim.Queue_model.config option;
      (** Bounded per-destination ingress queues ([None] = unbounded).
          A droppy discipline ([drop-tail], [red]) downgrades raw cases
          to the accounting oracles exactly as injected loss does; the
          lossless [ecn] discipline downgrades nothing. *)
  transport : bool;
      (** Run the protocol wrapped in {!Ftc_transport.Transport} (with a
          doubled CONGEST budget for the framing). *)
}

val equal : t -> t -> bool

type error = Unknown_protocol of string | Invalid_case of string

val error_to_string : error -> string

val validate : t -> (Catalog.entry, error) result
(** Checks the case shape, the loss spec, the queue config, and the crash
    plan against the protocol's fault budget and round range — the
    {e wrapped} round range when the case uses the transport — without
    running anything. *)

val run :
  ?watchdog:(unit -> bool) ->
  ?recorder:Ftc_telemetry.Recorder.t ->
  t ->
  (Ftc_sim.Engine.result * Oracle.finding list, error) result
(** Deterministically executes the case (with tracing, so the
    trace-metrics oracle applies) and judges it against every applicable
    oracle. A lossy case without the transport is judged by the accounting
    oracles only (see {!Oracle.check}'s [lossy_raw]). [watchdog] is passed
    through to {!Ftc_sim.Engine.config.watchdog}: the sweep supervisor's
    per-trial wall-clock budget; it never changes what the simulation
    computes, only whether it is cut short. A live [recorder] (default:
    disabled) instruments the run exactly as {!Ftc_expt.Runner.run}
    does: trial event, phase spans along the protocol's calendar, and
    the standard metric feed — a case marked [ok] iff the oracles found
    nothing. *)

val run_fast :
  ?watchdog:(unit -> bool) ->
  t ->
  (Ftc_sim.Engine.result * Oracle.finding list, error) result
(** As {!run}, but on the struct-of-arrays fast engine
    ({!Ftc_sim.Fast_engine}) via the catalog entry's [fast] port —
    bit-identical results by the differential suite's contract. Errors
    with [Invalid_case] when the protocol has no fast port or the case
    asks for the transport wrapper (a classic-engine protocol
    transformer). *)

val findings : t -> Oracle.finding list
(** [findings c] = oracle findings of [run c], [[]] if the case itself is
    invalid. The shrinker's re-check predicate. *)

val rule_to_string : Ftc_sim.Adversary.drop_rule -> string
(** ["drop-all"], ["drop-none"], ["drop-random <p>"], ["keep-prefix <k>"]
    — the replay-file spelling. *)

val pp : Format.formatter -> t -> unit
