module Engine = Ftc_sim.Engine
module Adversary = Ftc_sim.Adversary
module Omission = Ftc_fault.Omission
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

type config = {
  budget : int;
  seed : int;
  protocols : string list option;
  n_min : int;
  n_max : int;
  omission : bool;
  queue : Ftc_sim.Queue_model.config option;
}

let default_config =
  {
    budget = 100;
    seed = 1;
    protocols = None;
    n_min = 32;
    n_max = 96;
    omission = false;
    queue = None;
  }

type failure = {
  case : Case.t;
  findings : Oracle.finding list;
  shrunk : Case.t;
  shrunk_findings : Oracle.finding list;
  shrink_attempts : int;
}

type report = { cases_run : int; failure : failure option }

let gen_rule rng =
  match Rng.int rng 4 with
  | 0 -> Adversary.Drop_all
  | 1 -> Adversary.Drop_none
  | 2 -> Adversary.Drop_random (Rng.float rng)
  | _ -> Adversary.Keep_prefix (Rng.int rng 4)

let gen_inputs rng (entry : Catalog.entry) ~n =
  match entry.inputs with
  | Catalog.No_inputs -> Array.make n 0
  | Catalog.Bits -> Array.init n (fun _ -> if Rng.bool rng then 1 else 0)
  | Catalog.Values bound -> Array.init n (fun _ -> Rng.int rng (bound + 1))

(* Raw cases may be hit hard: the oracles degrade to accounting-only for
   them. Wrapped cases are held to the full correctness oracles, so their
   loss stays small enough that a default transport masks it w.h.p.
   (uniform 5%: five straight losses needed to kill a message). Targeted
   starvation is only generated raw — it is built to exceed any budget. *)
let gen_loss rng =
  match Rng.int rng 6 with
  | 0 -> (Omission.No_loss, false)
  | 1 -> (Omission.Uniform (0.5 *. Rng.float rng), false)
  | 2 ->
      ( Omission.Burst
          { rate = 0.4 *. Rng.float rng; mean_len = 1. +. float_of_int (Rng.int rng 4) },
        false )
  | 3 -> (Omission.Targeted (0.5 +. (0.5 *. Rng.float rng)), false)
  | 4 -> (Omission.Uniform (0.05 *. Rng.float rng), true)
  | _ -> (Omission.Burst { rate = 0.03 *. Rng.float rng; mean_len = 2. }, true)

let gen_plan rng (entry : Catalog.entry) ~n ~alpha ~transport =
  if not entry.crash_tolerant then []
  else begin
    let f = Engine.max_faulty ~n ~alpha in
    if f = 0 then []
    else begin
      (* Validate the plan against the rounds the case will actually run:
         the wrapped calendar is a window-factor longer. *)
      let (module P : Ftc_sim.Protocol.S) =
        if transport then fst (Ftc_transport.Transport.wrap (entry.make ()))
        else entry.make ()
      in
      let max_round = P.max_rounds ~n ~alpha - 1 in
      (* Crashes late in a long calendar are no-ops; bias towards the
         active early window without excluding the tail entirely. *)
      let horizon = min max_round (if Rng.int rng 4 = 0 then max_round else 48) in
      let k = Rng.int rng (f + 1) in
      Dist.sample_without_replacement rng ~n ~k
      |> Array.to_list
      |> List.map (fun v -> (v, Rng.int rng (horizon + 1), gen_rule rng))
    end
  end

let gen_case ?(omission = false) ?queue rng (entry : Catalog.entry) ~n_min ~n_max =
  let n = Rng.int_in rng n_min n_max in
  let alpha = 0.5 +. (0.1 *. float_of_int (Rng.int rng 5)) in
  let seed = Rng.int rng 1_000_000_000 in
  let inputs = gen_inputs rng entry ~n in
  (* Loss drawn before the plan: omission-off configs consume the exact
     rng stream of configs recorded before omission fuzzing existed. *)
  let loss, transport = if omission then gen_loss rng else (Omission.No_loss, false) in
  let plan = gen_plan rng entry ~n ~alpha ~transport in
  (* The queue axis is a fixed config, not a random draw (no new rng
     consumption: recorded fuzz streams stay valid). A droppy discipline
     rides on raw cases only — those are judged by the accounting oracles
     — so a full queue can never fail a correctness oracle spuriously;
     the lossless ecn discipline rides on every case. *)
  let queue =
    match queue with
    | Some q when Ftc_sim.Queue_model.can_drop q && transport -> None
    | q -> q
  in
  {
    Case.protocol = entry.name;
    n;
    alpha;
    seed;
    inputs;
    plan;
    adversary = None;
    loss;
    queue;
    transport;
  }

let shrink_failure ?(n_floor = default_config.n_min) case findings =
  let still_fails c = Oracle.same_oracle findings (Case.findings c) in
  let shrunk, stats = Shrink.shrink ~n_floor ~still_fails case in
  {
    case;
    findings;
    shrunk;
    shrunk_findings = Case.findings shrunk;
    shrink_attempts = stats.Shrink.attempts;
  }

let run ?(log = ignore) ?(jobs = 1) config =
  if jobs < 1 then invalid_arg "Fuzz.run: jobs must be >= 1";
  let entries =
    match config.protocols with
    | None -> Catalog.all
    | Some names -> List.filter (fun (e : Catalog.entry) -> List.mem e.name names) Catalog.all
  in
  if entries = [] then invalid_arg "Fuzz.run: no protocols selected";
  let rng = Rng.create config.seed in
  let entries = Array.of_list entries in
  (* Case generation stays on the single fuzzer rng stream; only the
     (pure) case executions fan out, a chunk at a time. Chunk results are
     then scanned in generation order, so the report — cases_run, the
     failing case, its findings — is identical at every job count, and
     identical to what the pre-parallel sequential sweep produced. The
     only parallel overshoot is inside the failing chunk: at most
     [chunk - 1] cases past the first failure run and are discarded. *)
  let chunk_size = if jobs = 1 then 1 else 4 * jobs in
  let failure_of i case findings =
    log
      (Format.asprintf "case %d FAILED: %a — %s" i Case.pp case
         (String.concat "; " (List.map (Format.asprintf "%a" Oracle.pp) findings)));
    log "shrinking...";
    let failure = shrink_failure ~n_floor:config.n_min case findings in
    { cases_run = i + 1; failure = Some failure }
  in
  let rec go i =
    if i >= config.budget then { cases_run = i; failure = None }
    else begin
      let chunk = min chunk_size (config.budget - i) in
      let cases =
        List.init chunk (fun k ->
            let entry = entries.((i + k) mod Array.length entries) in
            gen_case ~omission:config.omission ?queue:config.queue rng entry
              ~n_min:config.n_min ~n_max:config.n_max)
      in
      let results =
        Ftc_parallel.Pool.run_map ~jobs (fun case -> (case, Case.run case)) cases
      in
      let rec scan k = function
        | [] -> go (i + chunk)
        | (_, Error e) :: _ ->
            (* Generated cases are valid by construction; treat this as a
               generator bug and surface it loudly. *)
            invalid_arg ("Fuzz.run: generated an invalid case: " ^ Case.error_to_string e)
        | (_, Ok (_, [])) :: rest ->
            if (i + k + 1) mod 25 = 0 then
              log (Printf.sprintf "%d/%d cases clean" (i + k + 1) config.budget);
            scan (k + 1) rest
        | (case, Ok (_, findings)) :: _ -> failure_of (i + k) case findings
      in
      scan 0 results
    end
  in
  go 0
