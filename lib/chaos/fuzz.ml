module Engine = Ftc_sim.Engine
module Adversary = Ftc_sim.Adversary
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

type config = {
  budget : int;
  seed : int;
  protocols : string list option;
  n_min : int;
  n_max : int;
}

let default_config = { budget = 100; seed = 1; protocols = None; n_min = 32; n_max = 96 }

type failure = {
  case : Case.t;
  findings : Oracle.finding list;
  shrunk : Case.t;
  shrunk_findings : Oracle.finding list;
  shrink_attempts : int;
}

type report = { cases_run : int; failure : failure option }

let gen_rule rng =
  match Rng.int rng 4 with
  | 0 -> Adversary.Drop_all
  | 1 -> Adversary.Drop_none
  | 2 -> Adversary.Drop_random (Rng.float rng)
  | _ -> Adversary.Keep_prefix (Rng.int rng 4)

let gen_inputs rng (entry : Catalog.entry) ~n =
  match entry.inputs with
  | Catalog.No_inputs -> Array.make n 0
  | Catalog.Bits -> Array.init n (fun _ -> if Rng.bool rng then 1 else 0)
  | Catalog.Values bound -> Array.init n (fun _ -> Rng.int rng (bound + 1))

let gen_plan rng (entry : Catalog.entry) ~n ~alpha =
  if not entry.crash_tolerant then []
  else begin
    let f = Engine.max_faulty ~n ~alpha in
    if f = 0 then []
    else begin
      let (module P : Ftc_sim.Protocol.S) = entry.make () in
      let max_round = P.max_rounds ~n ~alpha - 1 in
      (* Crashes late in a long calendar are no-ops; bias towards the
         active early window without excluding the tail entirely. *)
      let horizon = min max_round (if Rng.int rng 4 = 0 then max_round else 48) in
      let k = Rng.int rng (f + 1) in
      Dist.sample_without_replacement rng ~n ~k
      |> Array.to_list
      |> List.map (fun v -> (v, Rng.int rng (horizon + 1), gen_rule rng))
    end
  end

let gen_case rng (entry : Catalog.entry) ~n_min ~n_max =
  let n = Rng.int_in rng n_min n_max in
  let alpha = 0.5 +. (0.1 *. float_of_int (Rng.int rng 5)) in
  let seed = Rng.int rng 1_000_000_000 in
  let inputs = gen_inputs rng entry ~n in
  let plan = gen_plan rng entry ~n ~alpha in
  { Case.protocol = entry.name; n; alpha; seed; inputs; plan }

let shrink_failure ?(n_floor = default_config.n_min) case findings =
  let still_fails c = Oracle.same_oracle findings (Case.findings c) in
  let shrunk, stats = Shrink.shrink ~n_floor ~still_fails case in
  {
    case;
    findings;
    shrunk;
    shrunk_findings = Case.findings shrunk;
    shrink_attempts = stats.Shrink.attempts;
  }

let run ?(log = ignore) config =
  let entries =
    match config.protocols with
    | None -> Catalog.all
    | Some names -> List.filter (fun (e : Catalog.entry) -> List.mem e.name names) Catalog.all
  in
  if entries = [] then invalid_arg "Fuzz.run: no protocols selected";
  let rng = Rng.create config.seed in
  let entries = Array.of_list entries in
  let rec go i =
    if i >= config.budget then { cases_run = i; failure = None }
    else begin
      let entry = entries.(i mod Array.length entries) in
      let case = gen_case rng entry ~n_min:config.n_min ~n_max:config.n_max in
      match Case.run case with
      | Error e ->
          (* Generated cases are valid by construction; treat this as a
             generator bug and surface it loudly. *)
          invalid_arg ("Fuzz.run: generated an invalid case: " ^ Case.error_to_string e)
      | Ok (_, []) ->
          if (i + 1) mod 25 = 0 then log (Printf.sprintf "%d/%d cases clean" (i + 1) config.budget);
          go (i + 1)
      | Ok (_, findings) ->
          log
            (Format.asprintf "case %d FAILED: %a — %s" i Case.pp case
               (String.concat "; "
                  (List.map (Format.asprintf "%a" Oracle.pp) findings)));
          log "shrinking...";
          let failure = shrink_failure ~n_floor:config.n_min case findings in
          { cases_run = i + 1; failure = Some failure }
    end
  in
  go 0
