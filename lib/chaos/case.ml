module Engine = Ftc_sim.Engine
module Adversary = Ftc_sim.Adversary
module Strategy = Ftc_fault.Strategy
module Omission = Ftc_fault.Omission
module Transport = Ftc_transport.Transport

type t = {
  protocol : string;
  n : int;
  alpha : float;
  seed : int;
  inputs : int array;
  plan : (int * int * Adversary.drop_rule) list;
  adversary : string option;
  loss : Omission.spec;
  queue : Ftc_sim.Queue_model.config option;
  transport : bool;
}

let equal a b =
  a.protocol = b.protocol && a.n = b.n && a.alpha = b.alpha && a.seed = b.seed
  && a.inputs = b.inputs && a.plan = b.plan && a.adversary = b.adversary && a.loss = b.loss
  && a.queue = b.queue && a.transport = b.transport

type error = Unknown_protocol of string | Invalid_case of string

let error_to_string = function
  | Unknown_protocol p ->
      Printf.sprintf "unknown protocol %s (known: %s)" p
        (String.concat ", " (Catalog.names ()))
  | Invalid_case msg -> "invalid case: " ^ msg

(* The module a case actually executes: the catalog entry, wrapped in the
   reliable transport when the case asks for it. *)
let materialize (entry : Catalog.entry) case =
  if case.transport then fst (Transport.wrap (entry.make ())) else entry.make ()

let queue_error case =
  match case.queue with
  | None -> None
  | Some q -> (
      match Ftc_sim.Queue_model.validate q with Ok () -> None | Error msg -> Some msg)

let validate case =
  match Catalog.find case.protocol with
  | None -> Error (Unknown_protocol case.protocol)
  | Some entry ->
      if case.n < 2 then Error (Invalid_case "n must be at least 2")
      else if case.alpha <= 0. || case.alpha > 1. then
        Error (Invalid_case "alpha must be in (0, 1]")
      else if Array.length case.inputs <> case.n then
        Error
          (Invalid_case
             (Printf.sprintf "inputs length %d <> n = %d" (Array.length case.inputs) case.n))
      else begin
        match Omission.validate case.loss with
        | Error msg -> Error (Invalid_case msg)
        | Ok () when Option.is_some (queue_error case) ->
            Error (Invalid_case (Option.get (queue_error case)))
        | Ok () -> (
            match case.adversary with
            | Some name when case.plan <> [] ->
                Error
                  (Invalid_case
                     (Printf.sprintf
                        "adversary %s and an explicit crash plan are mutually exclusive" name))
            | Some name when not (List.mem_assoc name (Strategy.all ())) ->
                Error
                  (Invalid_case
                     (Printf.sprintf "unknown adversary %s (known: %s)" name
                        (String.concat ", " (List.map fst (Strategy.all ())))))
            | _ ->
                let (module P : Ftc_sim.Protocol.S) = materialize entry case in
                let f = Engine.max_faulty ~n:case.n ~alpha:case.alpha in
                let max_round = P.max_rounds ~n:case.n ~alpha:case.alpha - 1 in
                (match Strategy.validate_plan ~n:case.n ~f ~max_round case.plan with
                | Error msg -> Error (Invalid_case msg)
                | Ok () -> Ok entry))
      end

let run ?watchdog ?(recorder = Ftc_telemetry.Recorder.disabled) case =
  match validate case with
  | Error _ as e -> e
  | Ok entry ->
      let (module P : Ftc_sim.Protocol.S) = materialize entry case in
      let module E = Engine.Make (P) in
      let adversary =
        match case.adversary with
        | Some name -> (List.assoc name (Strategy.all ())) ()
        | None -> if case.plan = [] then Adversary.none else Strategy.scheduled case.plan ()
      in
      (* Wrapped runs get double the per-edge budget: transport framing
         lets a data message and an ack share an edge-round. *)
      let congest_factor = if case.transport then 2 else 1 in
      let telemetry_on = Ftc_telemetry.Recorder.enabled recorder in
      let start_ns = Ftc_telemetry.Recorder.now_ns recorder in
      let result =
        E.run
          {
            Engine.n = case.n;
            alpha = case.alpha;
            seed = case.seed;
            inputs = Some case.inputs;
            adversary;
            link = Omission.to_link case.loss;
            queue = case.queue;
            congest_limit = Some (congest_factor * Ftc_sim.Congest.default_limit ~n:case.n);
            record_trace = true;
            max_rounds_override = None;
            watchdog;
            round_clock =
              (if telemetry_on then Some (fun () -> Ftc_telemetry.Recorder.now_ns recorder)
               else None);
          }
      in
      (* A droppy queue downgrades raw runs the same way injected loss
         does: delivery-dependent oracles cannot be expected to hold.
         ECN queues never lose messages, so they downgrade nothing. *)
      let queue_can_drop =
        match case.queue with Some q -> Ftc_sim.Queue_model.can_drop q | None -> false
      in
      let lossy_raw =
        (case.loss <> Omission.No_loss || queue_can_drop) && not case.transport
      in
      let findings = Oracle.check ~lossy_raw entry ~inputs:case.inputs result in
      if telemetry_on then begin
        let m = result.Engine.metrics in
        Ftc_telemetry.Instrument.record_run recorder ~protocol:P.name ~seed:case.seed
          ~ok:(findings = [])
          ~phases:(P.phases ~n:case.n ~alpha:case.alpha)
          ~rounds_used:result.Engine.rounds_used
          ~per_round_msgs:m.Ftc_sim.Metrics.per_round_msgs
          ~per_round_bits:m.Ftc_sim.Metrics.per_round_bits ~msgs:m.Ftc_sim.Metrics.msgs_sent
          ~bits:m.Ftc_sim.Metrics.bits_sent ~dropped:m.Ftc_sim.Metrics.msgs_dropped
          ~lost_link:m.Ftc_sim.Metrics.msgs_lost_link
          ~queue_dropped:m.Ftc_sim.Metrics.msgs_dropped_queue
          ~ecn_marked:m.Ftc_sim.Metrics.msgs_ecn_marked
          ~per_round_queue_peak:m.Ftc_sim.Metrics.per_round_queue_peak
          ~unroutable:m.Ftc_sim.Metrics.msgs_unroutable ~round_ns:result.Engine.round_ns
          ~start_ns
      end;
      Ok (result, findings)

(* The same execution on the struct-of-arrays fast engine. Kept
   deliberately parallel to [run]: identical adversary materialization,
   identical config, identical oracle pass — the result is bit-identical
   to [run]'s by the differential suite's contract, so the two share
   expectations (pinned fixture metrics included). Transport cases are
   rejected: the wrapper is a classic protocol transformer. *)
let run_fast ?watchdog case =
  match validate case with
  | Error _ as e -> e
  | Ok entry -> (
      match entry.Catalog.fast with
      | None ->
          Error
            (Invalid_case
               (Printf.sprintf "protocol %s has no fast-engine port" case.protocol))
      | Some _ when case.transport ->
          Error (Invalid_case "the fast engine does not support the transport wrapper")
      | Some mk_fast ->
          let (module FP : Ftc_sim.Fast_protocol.S) = mk_fast () in
          let module FE = Ftc_sim.Fast_engine.Make (FP) in
          let adversary =
            match case.adversary with
            | Some name -> (List.assoc name (Strategy.all ())) ()
            | None ->
                if case.plan = [] then Adversary.none else Strategy.scheduled case.plan ()
          in
          let result =
            FE.run
              {
                Engine.n = case.n;
                alpha = case.alpha;
                seed = case.seed;
                inputs = Some case.inputs;
                adversary;
                link = Omission.to_link case.loss;
                queue = case.queue;
                congest_limit = Some (Ftc_sim.Congest.default_limit ~n:case.n);
                record_trace = true;
                max_rounds_override = None;
                watchdog;
                round_clock = None;
              }
          in
          let queue_can_drop =
            match case.queue with
            | Some q -> Ftc_sim.Queue_model.can_drop q
            | None -> false
          in
          let lossy_raw = case.loss <> Omission.No_loss || queue_can_drop in
          let findings = Oracle.check ~lossy_raw entry ~inputs:case.inputs result in
          Ok (result, findings))

let findings case = match run case with Error _ -> [] | Ok (_, fs) -> fs

let rule_to_string = function
  | Adversary.Drop_all -> "drop-all"
  | Adversary.Drop_none -> "drop-none"
  | Adversary.Drop_random p -> Printf.sprintf "drop-random %.17g" p
  | Adversary.Keep_prefix k -> Printf.sprintf "keep-prefix %d" k

let pp ppf case =
  Format.fprintf ppf "%s n=%d alpha=%g seed=%d plan=[%s]%s loss=%s%s transport=%b"
    case.protocol case.n case.alpha case.seed
    (String.concat "; "
       (List.map
          (fun (v, r, rule) -> Printf.sprintf "%d@r%d %s" v r (rule_to_string rule))
          case.plan))
    (match case.adversary with None -> "" | Some a -> " adversary=" ^ a)
    (Omission.spec_to_string case.loss)
    (match case.queue with
    | None -> ""
    | Some q -> " queue=" ^ Ftc_sim.Queue_model.to_string q)
    case.transport
