(** The adversary fuzzer: sweeps generated crash schedules, inputs and
    seeds across every registered protocol, judges each run with the
    {!Oracle} layer, and shrinks the first failure to a minimal
    reproducer.

    The whole sweep is a deterministic function of [config.seed]: case
    [i] of a given budget is always the same case, so a CI failure is
    reproducible locally by seed alone even before the replay file is
    examined. *)

type config = {
  budget : int;  (** Total number of fuzz cases across all protocols. *)
  seed : int;
  protocols : string list option;  (** Restrict to these catalog names. *)
  n_min : int;
  n_max : int;
  omission : bool;
      (** Also fuzz link-loss models: raw protocols under heavy loss
          (accounting oracles only) and transport-wrapped protocols under
          light loss (every oracle). Off by default, so existing seeds
          reproduce the exact crash-only sweeps. *)
  queue : Ftc_sim.Queue_model.config option;
      (** Apply this ingress-queue config to generated cases — a fixed
          axis, never a random draw, so any seed's case stream is
          byte-identical with the axis on or off. A droppy discipline is
          applied to raw cases only (they are judged by the accounting
          oracles); the lossless [ecn] discipline to every case. [None]
          (default) fuzzes without queues. *)
}

val default_config : config
(** budget 100, seed 1, every protocol, n in [32, 96], no omission, no
    queue. *)

type failure = {
  case : Case.t;  (** The original failing case. *)
  findings : Oracle.finding list;
  shrunk : Case.t;  (** Minimal case still failing the same oracle. *)
  shrunk_findings : Oracle.finding list;
  shrink_attempts : int;
}

type report = { cases_run : int; failure : failure option }

val gen_case :
  ?omission:bool ->
  ?queue:Ftc_sim.Queue_model.config ->
  Ftc_rng.Rng.t ->
  Catalog.entry ->
  n_min:int ->
  n_max:int ->
  Case.t
(** One random case: n, alpha in [0.5, 0.9], fresh seed, inputs matching
    the protocol's input kind, and — for crash-tolerant protocols — a
    random crash plan within the fault budget ([[]] for the fault-free
    baselines). With [~omission:true], also a loss model and possibly the
    transport. [queue] attaches the fixed queue axis per the
    {!config.queue} rules, consuming no randomness. Exposed for tests. *)

val shrink_failure : ?n_floor:int -> Case.t -> Oracle.finding list -> failure
(** Shrink a known-failing case against {!Oracle.same_oracle}. [n_floor]
    (default [default_config.n_min]) keeps the reducer inside the fuzzed
    network-size regime, where the w.h.p. oracles are meaningful. *)

val run : ?log:(string -> unit) -> ?jobs:int -> config -> report
(** Stops at the first failing case (after shrinking it); [failure =
    None] means every case came back clean. Raises [Invalid_argument] if
    [protocols] selects nothing, or if [jobs < 1].

    [jobs] (default 1) fans case execution out over that many domains, a
    chunk at a time; generation stays on the single seed-derived rng
    stream and chunk results are scanned in generation order, so the
    report is identical at every job count. *)
