module Adversary = Ftc_sim.Adversary
module Omission = Ftc_fault.Omission

let magic = "ftc-chaos-replay"
let version = 4

(* The smallest format version whose grammar can express the case.
   Feature introduction order: v2 added [loss]/[transport], v3 the named
   [adversary], v4 the [queue] line. *)
let version_of (case : Case.t) =
  if case.queue <> None then 4
  else if case.adversary <> None then 3
  else if case.loss <> Omission.No_loss || case.transport then 2
  else 1

let to_string ?version:(v = version) ?(expect = []) (case : Case.t) =
  if v < 1 || v > version then
    invalid_arg (Printf.sprintf "Replay.to_string: unsupported version %d" v);
  let need = version_of case in
  if v < need then
    invalid_arg
      (Printf.sprintf "Replay.to_string: case needs format version %d, asked for %d" need v);
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s %d" magic v;
  line "protocol %s" case.protocol;
  line "n %d" case.n;
  line "alpha %.17g" case.alpha;
  line "seed %d" case.seed;
  line "inputs %s"
    (String.concat " " (Array.to_list (Array.map string_of_int case.inputs)));
  List.iter
    (fun (v, r, rule) -> line "crash %d %d %s" v r (Case.rule_to_string rule))
    case.plan;
  (match case.adversary with None -> () | Some a -> line "adversary %s" a);
  if case.loss <> Omission.No_loss then line "loss %s" (Omission.spec_to_string case.loss);
  (match case.queue with
  | None -> ()
  | Some q -> line "queue %s" (Ftc_sim.Queue_model.to_string q));
  if case.transport then line "transport on";
  List.iter (fun o -> line "expect %s" o) expect;
  Buffer.contents b

let rule_of_tokens = function
  | [ "drop-all" ] -> Ok Adversary.Drop_all
  | [ "drop-none" ] -> Ok Adversary.Drop_none
  | [ "drop-random"; p ] -> (
      match float_of_string_opt p with
      | Some p -> Ok (Adversary.Drop_random p)
      | None -> Error ("bad drop-random probability: " ^ p))
  | [ "keep-prefix"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Adversary.Keep_prefix k)
      | None -> Error ("bad keep-prefix count: " ^ k))
  | toks -> Error ("unknown drop rule: " ^ String.concat " " toks)

let loss_of_tokens toks =
  let rate name v k =
    match float_of_string_opt v with
    | Some r -> k r
    | None -> Error (Printf.sprintf "bad %s rate: %s" name v)
  in
  match toks with
  | [ "none" ] -> Ok Omission.No_loss
  | [ "uniform"; p ] -> rate "uniform" p (fun r -> Ok (Omission.Uniform r))
  | [ "burst"; p; len ] ->
      rate "burst" p (fun rate ->
          match float_of_string_opt len with
          | Some mean_len -> Ok (Omission.Burst { rate; mean_len })
          | None -> Error ("bad burst mean length: " ^ len))
  | [ "targeted"; p ] -> rate "targeted" p (fun r -> Ok (Omission.Targeted r))
  | toks -> Error ("unknown loss model: " ^ String.concat " " toks)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let protocol = ref None
  and n = ref None
  and alpha = ref None
  and seed = ref None
  and inputs = ref None
  and plan = ref []
  and adversary = ref None
  and loss = ref Omission.No_loss
  and queue = ref None
  and transport = ref false
  and expect = ref [] in
  let int_field name v store =
    match int_of_string_opt v with
    | Some i ->
        store := Some i;
        Ok ()
    | None -> Error (Printf.sprintf "bad %s: %s" name v)
  in
  let parse_line l =
    match String.split_on_char ' ' l |> List.filter (fun t -> t <> "") with
    | m :: v :: _ when m = magic -> (
        (* Each version's files are a strict subset of the next: v1 has
           no loss or transport lines, v2 no adversary line, v3 no queue
           line — so all four parse with the same grammar. *)
        match int_of_string_opt v with
        | Some 1 | Some 2 | Some 3 | Some 4 -> Ok ()
        | _ -> Error ("unsupported replay version " ^ v))
    | [ "protocol"; p ] ->
        protocol := Some p;
        Ok ()
    | [ "n"; v ] -> int_field "n" v n
    | [ "seed"; v ] -> int_field "seed" v seed
    | [ "alpha"; v ] -> (
        match float_of_string_opt v with
        | Some a ->
            alpha := Some a;
            Ok ()
        | None -> Error ("bad alpha: " ^ v))
    | "inputs" :: vals -> (
        match List.map int_of_string_opt vals with
        | parsed when List.for_all Option.is_some parsed ->
            inputs := Some (Array.of_list (List.map Option.get parsed));
            Ok ()
        | _ -> Error ("bad inputs line: " ^ l))
    | "crash" :: v :: r :: rule_toks -> (
        match (int_of_string_opt v, int_of_string_opt r, rule_of_tokens rule_toks) with
        | Some v, Some r, Ok rule ->
            plan := (v, r, rule) :: !plan;
            Ok ()
        | _, _, Error e -> Error e
        | _ -> Error ("bad crash line: " ^ l))
    | [ "adversary"; a ] ->
        adversary := Some a;
        Ok ()
    | "loss" :: toks -> (
        match loss_of_tokens toks with
        | Ok spec ->
            loss := spec;
            Ok ()
        | Error _ as e -> e)
    | "queue" :: toks -> (
        match Ftc_sim.Queue_model.of_tokens toks with
        | Some q ->
            queue := Some q;
            Ok ()
        | None -> Error ("bad queue line: " ^ l))
    | [ "transport"; "on" ] ->
        transport := true;
        Ok ()
    | [ "transport"; "off" ] ->
        transport := false;
        Ok ()
    | [ "expect"; o ] ->
        expect := o :: !expect;
        Ok ()
    | _ -> Error ("unrecognised line: " ^ l)
  in
  let rec go = function
    | [] -> Ok ()
    | l :: rest -> ( match parse_line l with Ok () -> go rest | Error _ as e -> e)
  in
  match lines with
  | [] -> Error "empty replay file"
  | first :: _ when not (String.length first >= String.length magic
                         && String.sub first 0 (String.length magic) = magic) ->
      Error (Printf.sprintf "not a %s file" magic)
  | _ -> (
      match go lines with
      | Error _ as e -> e
      | Ok () -> (
          match (!protocol, !n, !alpha, !seed) with
          | Some protocol, Some n, Some alpha, Some seed ->
              let inputs = match !inputs with Some a -> a | None -> Array.make n 0 in
              Ok
                ( {
                    Case.protocol;
                    n;
                    alpha;
                    seed;
                    inputs;
                    plan = List.rev !plan;
                    adversary = !adversary;
                    loss = !loss;
                    queue = !queue;
                    transport = !transport;
                  },
                  List.rev !expect )
          | _ -> Error "missing protocol/n/alpha/seed header"))

let save ?expect path case =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?expect case))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
  |> of_string
