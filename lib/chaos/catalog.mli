(** The protocols the chaos fuzzer sweeps, with the metadata the oracles
    need to judge them fairly.

    Every protocol in the repository is registered, but the fuzzer only
    feeds generated crash plans to the [crash_tolerant] ones: the
    fault-free baselines (Kutten et al. leader election, AMP agreement,
    push-gossip, tree-agreement) have {e documented} failure modes under
    crashes — T1 measures those rates — so fuzzing them with faults would
    only rediscover known behaviour. They are still fuzzed fault-free,
    where their guarantees must hold, and still run through the
    model/CONGEST/trace oracles. *)

type kind = Election | Agreement

type input_kind =
  | No_inputs  (** Election protocols: inputs are ignored (all zero). *)
  | Bits  (** Binary agreement: inputs drawn from {0, 1}. *)
  | Values of int  (** Multi-valued agreement: inputs uniform on [0, bound]. *)

type entry = {
  name : string;  (** Stable id, used in replay files. *)
  make : unit -> (module Ftc_sim.Protocol.S);
  fast : (unit -> (module Ftc_sim.Fast_protocol.S)) option;
      (** The protocol's struct-of-arrays twin for
          {!Ftc_sim.Fast_engine}, when one has been ported. The twin is
          bit-identical to [make] by the differential suite's contract;
          [None] means the protocol only runs on the classic engine. *)
  kind : kind;
  explicit : bool;  (** Hold the protocol to the explicit variant's oracle. *)
  inputs : input_kind;
  crash_tolerant : bool;  (** Fuzz with generated crash plans. *)
  quiesces : bool;
      (** The protocol is expected to stop sending before its calendar
          runs out; when set, [timed_out] is a violation. *)
}

val all : entry list
(** The fuzzable protocols. The fuzzer's deterministic case stream cycles
    through this list by index, so its membership and order are part of
    the reproducibility contract — never grow it for a protocol that is
    not meant to be fuzzed; that is what {!extras} is for. *)

val extras : entry list
(** Runnable-but-not-fuzzed entries: diagnostic protocols such as
    [faulty-probe] (a KT0 protocol that addresses by node id, violating
    the model on every seed — the deterministic failure generator the
    supervision tests and the quarantine CI demo are built on) and
    [crash-probe] (a crash-fragile binary agreement protocol that is
    correct fault-free and deterministically violates agreement or
    validity under partial round-0 delivery — the exhaustive verifier's
    demo target). {!find}/{!names} see them; the fuzzer never does. *)

val find : string -> entry option
(** Searches [all] then [extras]. *)

val names : unit -> string list

val gen_inputs : entry -> n:int -> seed:int -> int array
(** Per-seed inputs for [entry]'s {!input_kind}, drawn from a stream
    distinct from the engine's (the [Runner.materialize_inputs] xor
    tweak), so the same seed feeds the protocol the same inputs whether
    the case comes from [ftc sweep] or the serve front-end. *)
