module Omission = Ftc_fault.Omission

type stats = { attempts : int }

(* Remove [size]-wide windows of plan entries, left to right, keeping any
   removal under which the case still fails. *)
let remove_pass check case size =
  let changed = ref false in
  let cur = ref case in
  let i = ref 0 in
  let len () = List.length (!cur).Case.plan in
  while !i < len () do
    let keep = List.filteri (fun j _ -> j < !i || j >= !i + size) (!cur).Case.plan in
    if List.length keep < len () && check { !cur with Case.plan = keep } then begin
      cur := { !cur with Case.plan = keep };
      changed := true
      (* do not advance: the window now covers fresh entries *)
    end
    else incr i
  done;
  (!cur, !changed)

let drop_entries check case =
  let changed = ref false in
  let cur = ref case in
  let size = ref (max 1 (List.length case.Case.plan / 2)) in
  while !size >= 1 do
    let c, ch = remove_pass check !cur !size in
    cur := c;
    if ch then changed := true;
    size := (if !size = 1 then 0 else !size / 2)
  done;
  (!cur, !changed)

(* Try smaller networks, smallest first. Inputs are truncated; plan
   entries addressing removed nodes are dropped, but only if dropping
   them alone keeps the failure (otherwise the semantics changed too
   much and the candidate simply fails the check). *)
let reduce_n ~n_floor check case =
  let shrink_to n' =
    {
      case with
      Case.n = n';
      inputs = Array.sub case.Case.inputs 0 n';
      plan = List.filter (fun (v, _, _) -> v < n') case.Case.plan;
    }
  in
  let candidates =
    List.filter
      (fun n' -> n' >= max 2 n_floor && n' < case.Case.n)
      [ 2; 4; 8; 16; 24; 32; 48; 64; case.Case.n / 2; case.Case.n * 3 / 4; case.Case.n - 1 ]
    |> List.sort_uniq compare
  in
  let rec first = function
    | [] -> (case, false)
    | n' :: rest ->
        let cand = shrink_to n' in
        if check cand then (cand, true) else first rest
  in
  first candidates

(* Pull every crash earlier: for each entry try round 0, then halvings. *)
let reduce_rounds check case =
  let changed = ref false in
  let cur = ref case in
  let entry_count = List.length case.Case.plan in
  for idx = 0 to entry_count - 1 do
    let try_round r' =
      let plan' =
        List.mapi
          (fun j (v, r, rule) -> if j = idx then (v, r', rule) else (v, r, rule))
          (!cur).Case.plan
      in
      let cand = { !cur with Case.plan = plan' } in
      if check cand then begin
        cur := cand;
        changed := true;
        true
      end
      else false
    in
    match List.nth_opt (!cur).Case.plan idx with
    | None -> ()
    | Some (_, r, _) ->
        if r > 0 && not (try_round 0) then begin
          let r' = ref (r / 2) in
          let continue_ = ref true in
          while !continue_ && !r' > 0 && !r' < r do
            if try_round !r' then continue_ := false else r' := (!r' + r) / 2;
            if !r' >= r then continue_ := false
          done
        end
  done;
  (!cur, !changed)

(* Simplify the omission/congestion dimension: no loss and no queue at
   all beats everything, then dropping the queue or the transport wrapper
   alone, then ever-gentler rates. A candidate that changes what the
   oracles measure (e.g. raw+lossy skips correctness) simply fails the
   check and is rejected. *)
let reduce_loss check case =
  let changed = ref false in
  let cur = ref case in
  let try_ cand =
    if Case.equal cand !cur then false
    else if check cand then begin
      cur := cand;
      changed := true;
      true
    end
    else false
  in
  ignore (try_ { case with Case.loss = Omission.No_loss; queue = None; transport = false });
  ignore (try_ { !cur with Case.loss = Omission.No_loss });
  ignore (try_ { !cur with Case.queue = None });
  ignore (try_ { !cur with Case.transport = false });
  let halve = function
    | Omission.No_loss -> None
    | Omission.Uniform r -> if r < 1e-3 then None else Some (Omission.Uniform (r /. 2.))
    | Omission.Burst { rate; mean_len } ->
        if rate < 1e-3 then None else Some (Omission.Burst { rate = rate /. 2.; mean_len })
    | Omission.Targeted r -> if r < 1e-3 then None else Some (Omission.Targeted (r /. 2.))
  in
  let continue_ = ref true in
  while !continue_ do
    match halve (!cur).Case.loss with
    | None -> continue_ := false
    | Some loss -> if not (try_ { !cur with Case.loss = loss }) then continue_ := false
  done;
  (!cur, !changed)

let shrink ?(max_attempts = 500) ?(n_floor = 2) ~still_fails case =
  let attempts = ref 0 in
  let check c =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      still_fails c
    end
  in
  let rec fix case rounds_left =
    if rounds_left = 0 then case
    else begin
      let c, ch1 = drop_entries check case in
      let c, ch2 = reduce_n ~n_floor check c in
      let c, ch3 = reduce_rounds check c in
      let c, ch4 = reduce_loss check c in
      if ch1 || ch2 || ch3 || ch4 then fix c (rounds_left - 1) else c
    end
  in
  let shrunk = fix case 8 in
  (shrunk, { attempts = !attempts })
