module Engine = Ftc_sim.Engine
module Trace = Ftc_sim.Trace
module Violation = Ftc_sim.Violation
module Props = Ftc_core.Properties

type finding = { oracle : string; detail : string }

let finding oracle fmt = Format.kasprintf (fun detail -> { oracle; detail }) fmt

let check_model (r : Engine.result) =
  match r.violations with
  | [] -> []
  | vs ->
      [
        finding "model" "%d model violation(s): %s" (List.length vs)
          (String.concat "; " (List.map Violation.to_string vs));
      ]

let check_congest (r : Engine.result) =
  if r.metrics.congest_violations = 0 then []
  else [ finding "congest" "%d CONGEST budget violations" r.metrics.congest_violations ]

let check_termination (entry : Catalog.entry) (r : Engine.result) =
  if entry.quiesces && r.timed_out then
    [ finding "termination" "run hit the round budget (%d) with messages in flight" r.rounds_used ]
  else []

let check_trace_metrics (r : Engine.result) =
  match r.trace with
  | None -> []
  | Some t ->
      let sends = ref 0
      and undelivered = ref 0
      and bits = ref 0
      and crashes = ref 0
      and link_lost = ref 0
      and queue_dropped = ref 0
      and ecn_marked = ref 0
      and unroutable = ref 0 in
      List.iter
        (function
          | Trace.Send { bits = b; delivered; _ } ->
              incr sends;
              bits := !bits + b;
              if not delivered then incr undelivered
          | Trace.Crash _ -> incr crashes
          | Trace.Link_lost _ -> incr link_lost
          | Trace.Queue_dropped _ -> incr queue_dropped
          | Trace.Ecn_marked _ -> incr ecn_marked
          | Trace.Unroutable _ -> incr unroutable)
        (Trace.events t);
      let mismatch what a b = finding "trace-metrics" "%s: trace %d <> metrics %d" what a b in
      let crashed_count = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 r.crashed in
      (* Every link loss and queue drop is also an undelivered Send event,
         so the trace's undelivered count must cover all three loss causes
         the metrics track. *)
      let m = r.metrics in
      List.concat
        [
          (if !sends <> m.msgs_sent then [ mismatch "sends" !sends m.msgs_sent ] else []);
          (if !bits <> m.bits_sent then [ mismatch "bits" !bits m.bits_sent ] else []);
          (if !undelivered <> m.msgs_dropped + m.msgs_lost_link + m.msgs_dropped_queue then
             [
               mismatch "undelivered" !undelivered
                 (m.msgs_dropped + m.msgs_lost_link + m.msgs_dropped_queue);
             ]
           else []);
          (if !link_lost <> m.msgs_lost_link then
             [ mismatch "link-losses" !link_lost m.msgs_lost_link ]
           else []);
          (if !queue_dropped <> m.msgs_dropped_queue then
             [ mismatch "queue-drops" !queue_dropped m.msgs_dropped_queue ]
           else []);
          (if !ecn_marked <> m.msgs_ecn_marked then
             [ mismatch "ecn-marks" !ecn_marked m.msgs_ecn_marked ]
           else []);
          (if !unroutable <> m.msgs_unroutable then
             [ mismatch "unroutable" !unroutable m.msgs_unroutable ]
           else []);
          (if !crashes <> crashed_count then [ mismatch "crashes" !crashes crashed_count ] else []);
        ]

let check_election ~explicit (r : Engine.result) =
  if explicit then begin
    let rep = Props.check_explicit_election r in
    if rep.ok then []
    else
      [
        finding "election-explicit"
          "live leaders %d, live undecided %d, unaware %d, named ranks %d" rep.base.live_leaders
          rep.base.live_undecided rep.live_unaware rep.distinct_named_ranks;
      ]
  end
  else begin
    let rep = Props.check_implicit_election r in
    if rep.ok then []
    else
      [
        finding "election" "live leaders %d, live undecided %d" rep.live_leaders
          rep.live_undecided;
      ]
  end

let check_agreement ~explicit ~inputs (r : Engine.result) =
  let rep =
    if explicit then Props.check_explicit_agreement ~inputs r
    else Props.check_implicit_agreement ~inputs r
  in
  if rep.ok then []
  else
    [
      finding
        (if explicit then "agreement-explicit" else "agreement")
        "deciders %d, undecided %d, values [%s], valid %b" rep.live_deciders rep.live_undecided
        (String.concat "," (List.map string_of_int rep.distinct_values))
        rep.valid;
    ]

let check ?(lossy_raw = false) (entry : Catalog.entry) ~inputs (r : Engine.result) =
  List.concat
    [
      check_model r;
      check_congest r;
      check_trace_metrics r;
      (* A raw (transport-less) protocol under omission faults is outside
         its own model: failing to elect/agree/terminate is measured
         degradation, not a bug. Accounting invariants still apply. *)
      (if lossy_raw then []
       else
         List.concat
           [
             check_termination entry r;
             (match entry.kind with
             | Catalog.Election -> check_election ~explicit:entry.explicit r
             | Catalog.Agreement -> check_agreement ~explicit:entry.explicit ~inputs r);
           ]);
    ]

let pp ppf f = Format.fprintf ppf "[%s] %s" f.oracle f.detail

let same_oracle (a : finding list) (b : finding list) =
  List.exists (fun f -> List.exists (fun g -> g.oracle = f.oracle) a) b
