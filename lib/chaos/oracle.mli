(** The property-oracle layer: post-run safety checks a chaos case must
    pass.

    Five oracle families, each with a stable id used in replay files:

    - ["model"] — the engine reported no {!Ftc_sim.Violation.t};
    - ["congest"] — no per-edge-per-round CONGEST budget violation;
    - ["termination"] — the run did not exhaust its round budget with
      messages in flight (only for protocols that promise quiescence);
    - ["trace-metrics"] — the trace and the metrics describe the same
      execution: send/drop/bit/crash counts agree;
    - ["election"] / ["election-explicit"] / ["agreement"] /
      ["agreement-explicit"] — the problem specification (Definitions 1
      and 2 of the paper) via {!Ftc_core.Properties}.

    The correctness oracles are with-high-probability statements, so a
    finding is not automatically a code bug — but it is always worth a
    look, and because a case is a pure function of its seed, every
    finding is replayable and shrinkable. *)

type finding = { oracle : string; detail : string }

val check :
  Catalog.entry -> inputs:int array -> Ftc_sim.Engine.result -> finding list
(** All applicable oracles, in a deterministic order; [[]] = clean run.
    The trace oracle only fires when the run recorded a trace. *)

val pp : Format.formatter -> finding -> unit

val same_oracle : finding list -> finding list -> bool
(** [same_oracle original now]: does [now] reproduce at least one oracle
    id of [original]? The shrinker's notion of "still fails the same
    way". *)
