(** The property-oracle layer: post-run safety checks a chaos case must
    pass.

    Five oracle families, each with a stable id used in replay files:

    - ["model"] — the engine reported no {!Ftc_sim.Violation.t};
    - ["congest"] — no per-edge-per-round CONGEST budget violation;
    - ["termination"] — the run did not exhaust its round budget with
      messages in flight (only for protocols that promise quiescence);
    - ["trace-metrics"] — the trace and the metrics describe the same
      execution: send/bit/crash counts agree, undelivered sends reconcile
      with crash drops plus link losses, and the [Link_lost] /
      [Unroutable] markers match their metric counters;
    - ["election"] / ["election-explicit"] / ["agreement"] /
      ["agreement-explicit"] — the problem specification (Definitions 1
      and 2 of the paper) via {!Ftc_core.Properties}.

    The correctness oracles are with-high-probability statements, so a
    finding is not automatically a code bug — but it is always worth a
    look, and because a case is a pure function of its seed, every
    finding is replayable and shrinkable. *)

type finding = { oracle : string; detail : string }

val check :
  ?lossy_raw:bool ->
  Catalog.entry ->
  inputs:int array ->
  Ftc_sim.Engine.result ->
  finding list
(** All applicable oracles, in a deterministic order; [[]] = clean run.
    The trace oracle only fires when the run recorded a trace.
    [~lossy_raw:true] (a raw protocol run under an omission model it was
    never designed for) keeps only the accounting oracles — model, congest,
    trace-metrics — since failing to elect or agree under loss is measured
    degradation, not a bug. Transport-wrapped runs must pass everything. *)

val pp : Format.formatter -> finding -> unit

val same_oracle : finding list -> finding list -> bool
(** [same_oracle original now]: does [now] reproduce at least one oracle
    id of [original]? The shrinker's notion of "still fails the same
    way". *)
