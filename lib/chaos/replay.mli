(** Replay files: a failing case serialized to a small, human-editable
    text format, loadable by [ftc replay].

    Format (one item per line, [#] comments and blank lines ignored):
    {v
    ftc-chaos-replay 4
    protocol ft-agreement
    n 64
    alpha 0.69999999999999996
    seed 123456789
    inputs 0 1 1 0 ...
    crash <node> <round> drop-all|drop-none|drop-random <p>|keep-prefix <k>
    adversary <strategy-name>
    loss none|uniform <p>|burst <p> <len>|targeted <p>
    queue drop-tail|red|ecn <capacity> <min_th> <max_th>
    transport on|off
    expect <oracle-id>
    v}

    [expect] lines record which oracle(s) the case violated when it was
    saved, so a replay can report whether the failure still reproduces.
    Alpha and loss rates are printed with 17 significant digits, so the
    parsed case is bit-identical to the saved one and the replay is exact.
    Every earlier version's files still load: version 1 has no
    [loss]/[transport] lines (reliable links, no wrapper), version 2 no
    [adversary] line, version 3 no [queue] line (unbounded links). *)

val to_string : ?version:int -> ?expect:string list -> Case.t -> string
(** [version] (default: the current format, 4) selects which format
    version to emit — old versions are still written by the round-trip
    tests that pin the v1–v4 grammar. Raises [Invalid_argument] when the
    version is unknown or cannot express the case (see {!version_of}). *)

val version_of : Case.t -> int
(** The smallest format version whose grammar expresses the case: 4 with
    a queue, 3 with a named adversary, 2 with loss or the transport,
    1 otherwise. *)

val of_string : string -> (Case.t * string list, string) result
(** Returns the case and its expected oracle ids. *)

val save : ?expect:string list -> string -> Case.t -> unit
(** [save path case] writes the replay file; raises [Sys_error] on IO
    failure. *)

val load : string -> (Case.t * string list, string) result
