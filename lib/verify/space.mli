(** The schedule space [ftc verify] enumerates, with symmetry reduction.

    For one protocol at one (n, alpha), a {e schedule} fixes everything
    the adversary (and the input assignment) may choose:

    - the environment: one of a fixed list of loss/queue/transport grid
      points (the pure paper model alone unless the caller asks for the
      chaos catalog's grid);
    - per node, an input value from the protocol's input domain;
    - per node, optionally a crash: a round in [0, horizon) and a
      final-round delivery rule drawn from the fixed severity ladder
      [drop-none, keep-prefix 1 .. keep-prefix K, drop-all] — with at
      most [f = Engine.max_faulty] crashed nodes in total.

    The network is anonymous (KT0), so schedules that differ only by a
    permutation of node identities are the same adversary behaviour. A
    schedule is summarised by its per-node {!label}s; the {e canonical
    form} sorts the label vector, and the verifier explores one
    representative per orbit, weighting it by {!orbit_size}. To keep the
    quotient sound the representative's execution must not depend on
    which orbit member named it: {!to_case} therefore derives the engine
    seed from the canonical encoding (FNV-1a, xor the caller's base
    seed), never from raw node positions.

    Enumeration ({!states}) is a lazy {!Seq.t} in BFS order — grid point,
    then crash count, then crash-label multiset (round-major, mildest
    rule first), then input multiset — so the first violating state met
    is a minimal counterexample by construction, and spaces far larger
    than memory can stream through the explorer. {!count} is closed-form
    (multiset coefficients), never by enumeration. *)

type env = {
  loss : Ftc_fault.Omission.spec;
  queue : Ftc_sim.Queue_model.config option;
  transport : bool;
}

val pure_env : env
(** The paper model: reliable links, unbounded queues, no transport. *)

val grid_envs : env list
(** The fixed chaos-catalog grid points added by [--grid], after
    {!pure_env}: lossless ECN queue (cap 2), droppy drop-tail queue
    (cap 2), heavy raw uniform loss (25%), and light uniform loss (5%)
    under the retransmitting transport. Droppy raw points are judged by
    the accounting oracles only, exactly as in the fuzzer. *)

val env_to_string : env -> string

type label = { input : int; crash : (int * int) option }
(** One node's schedule role: its input, and [Some (round, rule_index)]
    if it crashes ([rule_index] into {!t.rules}). *)

type state = { env : int; labels : label array }
(** One schedule: an index into {!t.envs} and one label per node. *)

type t = {
  entry : Ftc_chaos.Catalog.entry;
  protocol : string;
  n : int;
  alpha : float;
  f : int;  (** Fault budget, [Engine.max_faulty ~n ~alpha]. *)
  horizon : int;  (** Crash rounds range over [0, horizon). *)
  rules : Ftc_sim.Adversary.drop_rule array;
      (** The severity ladder; index order is the BFS order. *)
  envs : env array;
  inputs : int array;  (** The per-node input domain, ascending. *)
  fixed_inputs : int array option;
      (** When set (a sorted multiset of length [n]), only schedules
          whose joint input multiset equals it are enumerated — the test
          hook behind the qcheck-over-inputs soundness property. *)
}

val make :
  ?keep_prefix_max:int ->
  ?grid:bool ->
  ?horizon:int ->
  ?fixed_inputs:int array ->
  protocol:string ->
  n:int ->
  alpha:float ->
  unit ->
  (t, string) result
(** Build the space. [keep_prefix_max] (default 2) is K in the rule
    ladder; [horizon] 0 (the default) means the protocol's full round
    calendar; [grid] (default false) appends {!grid_envs}. Errors on an
    unknown protocol, n outside [2, 8] (the closed-form counters and
    orbit factorials assume small n), a horizon beyond the calendar, or
    malformed [fixed_inputs]. *)

val label_compare : label -> label -> int
(** Non-crashed before crashed; non-crashed by input; crashed by
    (round, rule index, input). *)

val canonicalize : state -> state
(** Sort the label vector by {!label_compare}. Idempotent, and invariant
    across every permutation of an orbit. *)

val orbit_size : t -> state -> int
(** How many distinct labelled schedules map to this state's canonical
    form: n! / prod (multiplicity!) over equal labels. *)

type counts = { canonical : int; schedules : int }

val count : t -> counts
(** Closed form: [canonical] distinct canonical states, [schedules]
    labelled schedules (= sum of orbit sizes). With [fixed_inputs] the
    closed form does not apply and both are computed by folding
    {!states} — test-scale only. *)

val states : t -> state Seq.t
(** Every canonical state, lazily, in BFS order. *)

val all_states : t -> state Seq.t
(** Every labelled schedule (no symmetry reduction), lazily: the
    reference enumeration the soundness tests compare against. Order is
    env-major, then lexicographic over per-node label indices; crash
    budget and [fixed_inputs] filters apply as in {!states}. *)

val encode : t -> state -> string
(** Stable one-line encoding of a state (protocol, env, labels) — the
    journal/report spelling, and the string the seed is derived from
    (after {!canonicalize}). *)

val derive_seed : t -> base_seed:int -> seed_index:int -> state -> int
(** FNV-1a over [encode (canonicalize state)] and [seed_index], xor
    [base_seed], masked non-negative. Equal across an orbit. *)

val to_case : t -> base_seed:int -> seed_index:int -> state -> Ftc_chaos.Case.t
(** Materialise the state as a chaos case: node [i] takes label [i]'s
    input and crash entry, the env supplies loss/queue/transport, and
    the seed comes from {!derive_seed} — so every orbit member builds a
    case with the same seed, and running the canonical representative
    stands for the whole orbit. *)
