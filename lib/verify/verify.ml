module Case = Ftc_chaos.Case
module Oracle = Ftc_chaos.Oracle
module Replay = Ftc_chaos.Replay
module Journal = Ftc_journal.Journal
module Json = Ftc_journal.Json
module Recorder = Ftc_telemetry.Recorder
module Registry = Ftc_telemetry.Registry
module Pool = Ftc_parallel.Pool

(* Chunking is part of the determinism story: states are journaled in
   fixed-size chunks and fanned out in fixed-size slices, both
   independent of [--jobs], so the exploration order, the journal and
   the report never depend on the worker count. *)
let chunk_states = 512
let slice_states = 64

type config = {
  protocol : string;
  n : int;
  alpha : float;
  horizon : int;
  keep_prefix_max : int;
  grid : bool;
  seeds_per_state : int;
  base_seed : int;
  reduction : bool;
  problem_oracles : bool;
  max_states : int option;
  keep_going : bool;
  jobs : int;
}

let default_config ~protocol =
  {
    protocol;
    n = 4;
    alpha = 0.5;
    horizon = 0;
    keep_prefix_max = 2;
    grid = false;
    seeds_per_state = 1;
    base_seed = 1;
    reduction = true;
    problem_oracles = true;
    max_states = None;
    keep_going = false;
    jobs = 1;
  }

type violation = {
  index : int;
  state : string;
  seed_index : int;
  case : Case.t;
  oracles : string list;
  details : string list;
}

type report = {
  config : config;
  horizon : int;
  rules : int;
  envs : int;
  total_states : int;
  total_schedules : int;
  planned_states : int;
  explored_states : int;
  covered_schedules : int;
  violations : violation list;
  resumed_states : int;
  complete : bool;
}

let ( let* ) = Result.bind
let accounting = [ "model"; "congest"; "termination"; "trace-metrics" ]

let space_of_config cfg =
  Space.make ~keep_prefix_max:cfg.keep_prefix_max ~grid:cfg.grid ~horizon:cfg.horizon
    ~protocol:cfg.protocol ~n:cfg.n ~alpha:cfg.alpha ()

(* The canonical spec description behind the journal's hash: resuming
   against a journal written under any other configuration is refused. *)
let spec_description cfg ~horizon =
  Printf.sprintf
    "ftc-verify 1 protocol=%s n=%d alpha=%.17g horizon=%d keep-prefix-max=%d grid=%b \
     seeds=%d base-seed=%d reduction=%b problem-oracles=%b max-states=%s keep-going=%b \
     chunk=%d"
    cfg.protocol cfg.n cfg.alpha horizon cfg.keep_prefix_max cfg.grid cfg.seeds_per_state
    cfg.base_seed cfg.reduction cfg.problem_oracles
    (match cfg.max_states with None -> "none" | Some m -> string_of_int m)
    cfg.keep_going chunk_states

(* Judge one state: try its seeds in order, return the first failing
   one. Runs on pool workers — everything it touches is immutable. *)
let eval space cfg state =
  let rec go si =
    if si >= cfg.seeds_per_state then None
    else
      let case = Space.to_case space ~base_seed:cfg.base_seed ~seed_index:si state in
      match Case.run case with
      | Error e -> Some (si, [ "case" ], [ "case: " ^ Case.error_to_string e ])
      | Ok (_result, findings) ->
          let findings =
            if cfg.problem_oracles then findings
            else
              List.filter
                (fun (f : Oracle.finding) -> List.mem f.oracle accounting)
                findings
          in
          if findings = [] then go (si + 1)
          else
            let ids =
              List.fold_left
                (fun acc (f : Oracle.finding) ->
                  if List.mem f.oracle acc then acc else acc @ [ f.oracle ])
                [] findings
            in
            let details =
              List.map (fun (f : Oracle.finding) -> f.oracle ^ ": " ^ f.detail) findings
            in
            Some (si, ids, details)
  in
  go 0

(* --- journal codec ---------------------------------------------------- *)

let violation_to_json v =
  Json.Obj
    [
      ("index", Json.Int v.index);
      ("seed_index", Json.Int v.seed_index);
      ("state", Json.String v.state);
      ("oracles", Json.List (List.map (fun s -> Json.String s) v.oracles));
      ("details", Json.List (List.map (fun s -> Json.String s) v.details));
      ("replay", Json.String (Replay.to_string ~expect:v.oracles v.case));
    ]

let strings_of_json = function
  | Json.List xs ->
      let ss = List.filter_map Json.to_str xs in
      if List.length ss = List.length xs then Some ss else None
  | _ -> None

let violation_of_json j =
  match
    ( Option.bind (Json.member "index" j) Json.to_int,
      Option.bind (Json.member "seed_index" j) Json.to_int,
      Option.bind (Json.member "state" j) Json.to_str,
      Option.bind (Json.member "oracles" j) strings_of_json,
      Option.bind (Json.member "details" j) strings_of_json,
      Option.bind (Json.member "replay" j) Json.to_str )
  with
  | Some index, Some seed_index, Some state, Some oracles, Some details, Some replay -> (
      match Replay.of_string replay with
      | Ok (case, _expect) -> Some { index; state; seed_index; case; oracles; details }
      | Error _ -> None)
  | _ -> None

let chunk_record ~chunk ~explored ~orbits viols =
  Json.Obj
    [
      ("chunk", Json.Int chunk);
      ("explored", Json.Int explored);
      ("orbits", Json.Int orbits);
      ("violations", Json.List (List.map violation_to_json viols));
    ]

let chunk_of_json j =
  match
    ( Option.bind (Json.member "chunk" j) Json.to_int,
      Option.bind (Json.member "explored" j) Json.to_int,
      Option.bind (Json.member "orbits" j) Json.to_int,
      Json.member "violations" j )
  with
  | Some chunk, Some explored, Some orbits, Some (Json.List vs) ->
      let viols = List.map violation_of_json vs in
      if List.exists Option.is_none viols then None
      else Some (chunk, explored, orbits, List.filter_map Fun.id viols)
  | _ -> None

(* Load a journal for resume: spec hash must match, chunk ids must be
   the consecutive prefix 0..k-1. Returns (records, states, orbit sum,
   violations in BFS order). *)
let load_journal ~path ~spec =
  let* loaded = Journal.load ~path in
  let header = loaded.Journal.header in
  let* () =
    if header.Journal.spec_hash <> spec then
      Error
        "journal spec mismatch: the journal was written by a different verify \
         configuration (refusing to mix explorations)"
    else Ok ()
  in
  let rec go k states orbits viols = function
    | [] -> Ok (k, states, orbits, List.rev viols)
    | e :: rest -> (
        match chunk_of_json e with
        | Some (chunk, explored, chunk_orbits, chunk_viols) when chunk = k ->
            go (k + 1) (states + explored) (orbits + chunk_orbits)
              (List.rev_append chunk_viols viols)
            rest
        | Some _ -> Error "corrupt verify journal: chunk records out of sequence"
        | None -> Error "corrupt verify journal: malformed chunk record")
  in
  go 0 0 0 [] loaded.Journal.entries

(* --- exploration ------------------------------------------------------ *)

let take k seq =
  let rec go k acc seq =
    if k = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, tl) -> go (k - 1) (x :: acc) tl
  in
  go k [] seq

let rec slice_up k = function
  | [] -> []
  | xs ->
      let rec split i acc = function
        | rest when i = k -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (i + 1) (x :: acc) rest
      in
      let head, rest = split 0 [] xs in
      head :: slice_up k rest

let with_runner ~recorder ~jobs f =
  if jobs = 1 then f (fun g xs -> List.map g xs)
  else
    let monitor = Ftc_telemetry.Instrument.pool_monitor recorder "verify" in
    Pool.with_pool ?monitor ~jobs (fun pool -> f (fun g xs -> Pool.map pool g xs))

let run ?(recorder = Recorder.disabled) ?journal ?(resume = false) ?(log = fun _ -> ())
    cfg =
  let* () = if cfg.jobs < 1 then Error "jobs must be >= 1" else Ok () in
  let* () =
    if cfg.seeds_per_state < 1 then Error "seeds-per-state must be >= 1" else Ok ()
  in
  let* () =
    match cfg.max_states with
    | Some m when m < 1 -> Error "max-states must be >= 1"
    | _ -> Ok ()
  in
  let* () =
    if resume && journal = None then Error "--resume requires --journal" else Ok ()
  in
  let* space = space_of_config cfg in
  let horizon = space.Space.horizon in
  let counts = Space.count space in
  let total_states =
    if cfg.reduction then counts.Space.canonical else counts.Space.schedules
  in
  let total_schedules = counts.Space.schedules in
  let planned =
    match cfg.max_states with None -> total_states | Some m -> min m total_states
  in
  let spec = Journal.spec_hash (spec_description cfg ~horizon) in
  let* resumed_records, resumed_states, resumed_orbits, resumed_viols =
    if resume then load_journal ~path:(Option.get journal) ~spec else Ok (0, 0, 0, [])
  in
  if resumed_states > 0 then
    log
      (Printf.sprintf "verify %s: resumed %d state(s) from %d journaled chunk(s)"
         cfg.protocol resumed_states resumed_records);
  let jhandle =
    match journal with
    | None -> None
    | Some path ->
        if resume then Some (Journal.reopen ~path)
        else Some (Journal.create ~path ~spec_hash:spec)
  in
  let reg = Recorder.registry recorder in
  let start_ns = Recorder.now_ns recorder in
  let explored = ref resumed_states in
  let covered = ref resumed_orbits in
  let violations = ref (List.rev resumed_viols) in
  let nviols = ref (List.length resumed_viols) in
  let stop = ref (resumed_viols <> [] && not cfg.keep_going) in
  let chunk_id = ref resumed_records in
  let seq =
    ref
      (Seq.drop resumed_states
         (if cfg.reduction then Space.states space else Space.all_states space))
  in
  with_runner ~recorder ~jobs:cfg.jobs (fun map_slices ->
      while (not !stop) && !explored < planned do
        let offset = !explored in
        let chunk, rest = take (min chunk_states (planned - offset)) !seq in
        seq := rest;
        if chunk = [] then stop := true
        else begin
          let results =
            List.concat
              (map_slices
                 (fun sl -> List.map (fun s -> eval space cfg s) sl)
                 (slice_up slice_states chunk))
          in
          (* Scan in submission order; without --keep-going, truncate the
             chunk at the first violation so the counterexample is the
             BFS-minimal one and later (already computed) states are
             discarded as if never explored. *)
          let rec scan i states rs acc_expl acc_orbs acc_viols =
            match (states, rs) with
            | [], [] -> (acc_expl, acc_orbs, List.rev acc_viols, false)
            | s :: ss, r :: rr -> (
                let orb = if cfg.reduction then Space.orbit_size space s else 1 in
                let acc_expl = acc_expl + 1 and acc_orbs = acc_orbs + orb in
                match r with
                | None -> scan (i + 1) ss rr acc_expl acc_orbs acc_viols
                | Some (si, ids, details) ->
                    let v =
                      {
                        index = offset + i;
                        state = Space.encode space s;
                        seed_index = si;
                        case =
                          Space.to_case space ~base_seed:cfg.base_seed ~seed_index:si s;
                        oracles = ids;
                        details;
                      }
                    in
                    if cfg.keep_going then
                      scan (i + 1) ss rr acc_expl acc_orbs (v :: acc_viols)
                    else (acc_expl, acc_orbs, List.rev (v :: acc_viols), true))
            | _ -> assert false
          in
          let chunk_expl, chunk_orbs, chunk_viols, hit = scan 0 chunk results 0 0 [] in
          explored := !explored + chunk_expl;
          covered := !covered + chunk_orbs;
          violations := List.rev_append chunk_viols !violations;
          nviols := !nviols + List.length chunk_viols;
          if hit then stop := true;
          Option.iter
            (fun h ->
              Journal.append h
                (chunk_record ~chunk:!chunk_id ~explored:chunk_expl ~orbits:chunk_orbs
                   chunk_viols))
            jhandle;
          incr chunk_id;
          Registry.incr reg "ftc_verify_states" chunk_expl;
          if chunk_viols <> [] then
            Registry.incr reg "ftc_verify_violations" (List.length chunk_viols);
          Registry.set_gauge reg "ftc_verify_coverage_permille"
            (if total_states = 0 then 1000 else 1000 * !explored / total_states);
          if Recorder.enabled recorder then begin
            let now = Recorder.now_ns recorder in
            let elapsed = Int64.to_float (Int64.sub now start_ns) /. 1e9 in
            if elapsed > 0. then
              Registry.set_gauge reg "ftc_verify_states_per_sec"
                (int_of_float (float_of_int (!explored - resumed_states) /. elapsed));
            Recorder.emit recorder
              (Recorder.Heartbeat
                 { at_ns = now; completed = !explored; failed = !nviols; total = planned })
          end;
          if !chunk_id mod 16 = 0 then
            log
              (Printf.sprintf "verify %s: %d/%d states, %d violation(s)" cfg.protocol
                 !explored planned !nviols)
        end
      done);
  Option.iter Journal.close jhandle;
  Ok
    {
      config = cfg;
      horizon;
      rules = Array.length space.Space.rules;
      envs = Array.length space.Space.envs;
      total_states;
      total_schedules;
      planned_states = planned;
      explored_states = !explored;
      covered_schedules = !covered;
      violations = List.rev !violations;
      resumed_states;
      complete = !explored >= total_states;
    }

let exit_code r = if r.violations <> [] then 1 else if r.complete then 0 else 3

let summary r =
  let b = Buffer.create 256 in
  let pct =
    if r.total_states = 0 then 100.
    else 100. *. float_of_int r.explored_states /. float_of_int r.total_states
  in
  Printf.bprintf b "verify %s: n=%d alpha=%g horizon=%d rules=%d envs=%d seeds/state=%d\n"
    r.config.protocol r.config.n r.config.alpha r.horizon r.rules r.envs
    r.config.seeds_per_state;
  if r.config.reduction then
    Printf.bprintf b "  states:     %d canonical / %d schedules (%.1fx reduction)\n"
      r.total_states r.total_schedules
      (if r.total_states = 0 then 1.
       else float_of_int r.total_schedules /. float_of_int r.total_states)
  else Printf.bprintf b "  states:     %d schedules (no reduction)\n" r.total_states;
  Printf.bprintf b "  explored:   %d (%.1f%% of the space) covering %d schedules\n"
    r.explored_states pct r.covered_schedules;
  Printf.bprintf b "  violations: %d\n" (List.length r.violations);
  Printf.bprintf b "  verdict:    %s"
    (if r.violations <> [] then "violated"
     else if r.complete then "exhaustive-clean"
     else "partial-clean");
  Buffer.contents b
