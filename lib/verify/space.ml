type env = {
  loss : Ftc_fault.Omission.spec;
  queue : Ftc_sim.Queue_model.config option;
  transport : bool;
}

let pure_env = { loss = Ftc_fault.Omission.No_loss; queue = None; transport = false }

(* The chaos catalog's fixed grid points (fuzzer loss axes + the F14
   queue axis), as pure grid coordinates rather than random draws. *)
let grid_envs =
  [
    {
      loss = Ftc_fault.Omission.No_loss;
      queue =
        Some (Ftc_sim.Queue_model.make ~capacity:2 ~discipline:Ftc_sim.Queue_model.Ecn ());
      transport = false;
    };
    {
      loss = Ftc_fault.Omission.No_loss;
      queue =
        Some
          (Ftc_sim.Queue_model.make ~capacity:2 ~discipline:Ftc_sim.Queue_model.Drop_tail ());
      transport = false;
    };
    { loss = Ftc_fault.Omission.Uniform 0.25; queue = None; transport = false };
    { loss = Ftc_fault.Omission.Uniform 0.05; queue = None; transport = true };
  ]

let env_to_string e =
  Printf.sprintf "loss=%s queue=%s transport=%s"
    (Ftc_fault.Omission.spec_to_string e.loss)
    (match e.queue with
    | None -> "none"
    | Some q -> Ftc_sim.Queue_model.to_string q)
    (if e.transport then "on" else "off")

type label = { input : int; crash : (int * int) option }
type state = { env : int; labels : label array }

type t = {
  entry : Ftc_chaos.Catalog.entry;
  protocol : string;
  n : int;
  alpha : float;
  f : int;
  horizon : int;
  rules : Ftc_sim.Adversary.drop_rule array;
  envs : env array;
  inputs : int array;
  fixed_inputs : int array option;
}

let ( let* ) = Result.bind

let make ?(keep_prefix_max = 2) ?(grid = false) ?(horizon = 0) ?fixed_inputs ~protocol ~n
    ~alpha () =
  let* entry =
    match Ftc_chaos.Catalog.find protocol with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
  in
  let* () =
    if n < 2 || n > 8 then Error (Printf.sprintf "n must be in [2, 8] (got %d)" n) else Ok ()
  in
  let* () =
    if alpha <= 0. || alpha > 1. then
      Error (Printf.sprintf "alpha must be in (0, 1] (got %g)" alpha)
    else Ok ()
  in
  let* () =
    if keep_prefix_max < 0 || keep_prefix_max > n then
      Error (Printf.sprintf "keep-prefix-max must be in [0, n] (got %d)" keep_prefix_max)
    else Ok ()
  in
  let (module P : Ftc_sim.Protocol.S) = entry.make () in
  let calendar = P.max_rounds ~n ~alpha in
  let* horizon =
    if horizon = 0 then Ok calendar
    else if horizon < 0 || horizon > calendar then
      Error
        (Printf.sprintf "horizon must be in [1, %d] for %s at n=%d (got %d)" calendar
           protocol n horizon)
    else Ok horizon
  in
  let inputs =
    match entry.inputs with
    | Ftc_chaos.Catalog.No_inputs -> [| 0 |]
    | Ftc_chaos.Catalog.Bits | Ftc_chaos.Catalog.Values _ ->
        (* [Values b] is verified over {0, 1}: exhausting [0, b]^n is
           hopeless and the interesting splits are already binary. *)
        [| 0; 1 |]
  in
  let* fixed_inputs =
    match fixed_inputs with
    | None -> Ok None
    | Some xs ->
        if Array.length xs <> n then
          Error (Printf.sprintf "fixed inputs must have length n=%d" n)
        else if Array.exists (fun x -> not (Array.mem x inputs)) xs then
          Error "fixed inputs outside the protocol's input domain"
        else begin
          let sorted = Array.copy xs in
          Array.sort compare sorted;
          Ok (Some sorted)
        end
  in
  let rules =
    Array.of_list
      (Ftc_sim.Adversary.Drop_none
      :: (List.init keep_prefix_max (fun k -> Ftc_sim.Adversary.Keep_prefix (k + 1))
         @ [ Ftc_sim.Adversary.Drop_all ]))
  in
  let envs = Array.of_list (pure_env :: (if grid then grid_envs else [])) in
  Ok
    {
      entry;
      protocol;
      n;
      alpha;
      f = Ftc_sim.Engine.max_faulty ~n ~alpha;
      horizon;
      rules;
      envs;
      inputs;
      fixed_inputs;
    }

let label_compare a b =
  match (a.crash, b.crash) with
  | None, None -> compare a.input b.input
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some (ra, ka), Some (rb, kb) -> compare (ra, ka, a.input) (rb, kb, b.input)

let canonicalize s =
  let labels = Array.copy s.labels in
  Array.sort label_compare labels;
  { s with labels }

let rec factorial k = if k <= 1 then 1 else k * factorial (k - 1)

let orbit_size t s =
  let sorted = (canonicalize s).labels in
  let denom = ref 1 and run = ref 1 in
  for i = 1 to t.n - 1 do
    if label_compare sorted.(i - 1) sorted.(i) = 0 then incr run
    else begin
      denom := !denom * factorial !run;
      run := 1
    end
  done;
  denom := !denom * factorial !run;
  factorial t.n / !denom

(* --- enumeration ------------------------------------------------------ *)

(* Non-decreasing index sequences of length [k] over [lo, m), in
   lexicographic order. *)
let rec multisets ~m k lo : int list Seq.t =
  if k = 0 then Seq.return []
  else
    Seq.concat_map
      (fun i -> Seq.map (fun rest -> i :: rest) (multisets ~m (k - 1) i))
      (Seq.init (max 0 (m - lo)) (fun d -> lo + d))

(* Crash labels are flattened round-major, then rule, then input, so the
   multiset order is the BFS severity order. *)
let crash_label_count t = t.horizon * Array.length t.rules * Array.length t.inputs

let crash_label t idx =
  let ni = Array.length t.inputs and nr = Array.length t.rules in
  let input = t.inputs.(idx mod ni) in
  let k = idx / ni mod nr in
  let r = idx / (ni * nr) in
  { input; crash = Some (r, k) }

let input_multiset_matches t labels =
  match t.fixed_inputs with
  | None -> true
  | Some want ->
      let got = Array.map (fun l -> l.input) labels in
      Array.sort compare got;
      got = want

let states t : state Seq.t =
  let ni = Array.length t.inputs in
  Seq.concat_map
    (fun env ->
      Seq.concat_map
        (fun c ->
          Seq.concat_map
            (fun crash_idxs ->
              Seq.filter_map
                (fun input_idxs ->
                  let live =
                    List.map (fun i -> { input = t.inputs.(i); crash = None }) input_idxs
                  in
                  let crashed = List.map (crash_label t) crash_idxs in
                  let labels = Array.of_list (live @ crashed) in
                  if input_multiset_matches t labels then Some { env; labels } else None)
                (multisets ~m:ni (t.n - c) 0))
            (multisets ~m:(crash_label_count t) c 0))
          (Seq.init (t.f + 1) Fun.id))
    (Seq.init (Array.length t.envs) Fun.id)

let all_states t : state Seq.t =
  (* Per-node label index: 0 .. ni-1 are live inputs, then crash labels. *)
  let ni = Array.length t.inputs in
  let total = ni + crash_label_count t in
  let label_of i = if i < ni then { input = t.inputs.(i); crash = None } else crash_label t (i - ni) in
  let rec vectors k : int list Seq.t =
    if k = 0 then Seq.return []
    else
      Seq.concat_map
        (fun i -> Seq.map (fun rest -> i :: rest) (vectors (k - 1)))
        (Seq.init total Fun.id)
  in
  Seq.concat_map
    (fun env ->
      Seq.filter_map
        (fun idxs ->
          let labels = Array.of_list (List.map label_of idxs) in
          let crashes =
            Array.fold_left (fun acc l -> if l.crash = None then acc else acc + 1) 0 labels
          in
          if crashes <= t.f && input_multiset_matches t labels then Some { env; labels }
          else None)
        (vectors t.n))
    (Seq.init (Array.length t.envs) Fun.id)

(* --- counting --------------------------------------------------------- *)

type counts = { canonical : int; schedules : int }

let binom m k =
  if k < 0 || k > m then 0
  else begin
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (m - k + i) / i
    done;
    !acc
  end

(* Multisets of size k from an alphabet of m symbols. *)
let multichoose m k = binom (m + k - 1) k

let rec power b e = if e = 0 then 1 else b * power b (e - 1)

let count t =
  match t.fixed_inputs with
  | Some _ ->
      Seq.fold_left
        (fun acc s ->
          { canonical = acc.canonical + 1; schedules = acc.schedules + orbit_size t s })
        { canonical = 0; schedules = 0 }
        (states t)
  | None ->
      let ni = Array.length t.inputs in
      let l = crash_label_count t in
      let canonical = ref 0 and schedules = ref 0 in
      for c = 0 to t.f do
        canonical := !canonical + (multichoose ni (t.n - c) * multichoose l c);
        schedules := !schedules + (binom t.n c * power l c * power ni (t.n - c))
      done;
      let e = Array.length t.envs in
      { canonical = e * !canonical; schedules = e * !schedules }

(* --- materialisation -------------------------------------------------- *)

let label_to_string t l =
  match l.crash with
  | None -> string_of_int l.input
  | Some (r, k) ->
      Printf.sprintf "%d!%d:%s" l.input r (Ftc_chaos.Case.rule_to_string t.rules.(k))

let encode t s =
  Printf.sprintf "%s n=%d env=%d:%s [%s]" t.protocol t.n s.env
    (env_to_string t.envs.(s.env))
    (String.concat " " (Array.to_list (Array.map (label_to_string t) s.labels)))

let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

let derive_seed t ~base_seed ~seed_index s =
  let key = encode t (canonicalize s) ^ "#" ^ string_of_int seed_index in
  (Int64.to_int (fnv64 key) lxor base_seed) land max_int

let to_case t ~base_seed ~seed_index s =
  let inputs = Array.map (fun l -> l.input) s.labels in
  let plan =
    Array.to_list s.labels
    |> List.mapi (fun v l -> Option.map (fun (r, k) -> (v, r, t.rules.(k))) l.crash)
    |> List.filter_map Fun.id
  in
  let e = t.envs.(s.env) in
  {
    Ftc_chaos.Case.protocol = t.protocol;
    n = t.n;
    alpha = t.alpha;
    seed = derive_seed t ~base_seed ~seed_index s;
    inputs;
    plan;
    adversary = None;
    loss = e.loss;
    queue = e.queue;
    transport = e.transport;
  }
