(** The bounded exhaustive explorer behind [ftc verify].

    Streams every canonical schedule of a {!Space.t} (BFS order, so the
    first violation met is minimal by construction), materialises each
    as a chaos case, runs it through the engine and judges it with
    {!Ftc_chaos.Oracle.check} — all deterministically, so two runs of
    the same config produce byte-identical reports whatever [--jobs]
    says.

    Execution is chunked: states are consumed in fixed-size chunks
    (independent of the worker count), each chunk fans its fixed
    sub-slices out over {!Ftc_parallel.Pool}, results are scanned in
    submission order, and one JSONL record per completed chunk goes
    through the {!Ftc_journal} write-ahead log. A SIGKILLed run resumed
    with the same config replays the journaled chunk prefix (validated
    by spec hash and consecutive chunk ids) without re-executing it and
    continues from the first unexplored state — the resumed report, and
    hence the CLI's stdout, is byte-identical to an uninterrupted run.

    Exit-code contract (the sweep supervisor's): 0 = explored the whole
    space, no violations; 1 = violation found (a minimal counterexample
    exists); 3 = partial clean sweep ([--max-states] cap hit first);
    2 (CLI side, from [Error _]) = usage or resume mismatch. *)

type config = {
  protocol : string;
  n : int;
  alpha : float;
  horizon : int;  (** 0 = the protocol's full round calendar. *)
  keep_prefix_max : int;
  grid : bool;
  seeds_per_state : int;
      (** Coin assignments tried per canonical state; any failing seed
          makes the state a violation. *)
  base_seed : int;
  reduction : bool;  (** false = enumerate raw label vectors instead. *)
  problem_oracles : bool;
      (** false = keep only the accounting oracles (model, congest,
          termination, trace-metrics), so w.h.p. election/agreement
          findings do not stop an exhaustive model sweep. *)
  max_states : int option;
  keep_going : bool;  (** Collect every violation instead of stopping. *)
  jobs : int;
}

val default_config : protocol:string -> config
(** n = 4, alpha = 0.5, full horizon, keep-prefix-max 2, pure env,
    1 seed/state, base seed 1, reduction on, every oracle, no cap,
    stop at first violation, jobs 1. *)

type violation = {
  index : int;  (** BFS position of the violating state. *)
  state : string;  (** {!Space.encode} of the state. *)
  seed_index : int;
  case : Ftc_chaos.Case.t;
  oracles : string list;  (** Distinct violated oracle ids, check order. *)
  details : string list;  (** ["oracle: detail"] lines. *)
}

type report = {
  config : config;
  horizon : int;  (** Resolved (calendar rounds when config said 0). *)
  rules : int;
  envs : int;
  total_states : int;
  total_schedules : int;
  planned_states : int;  (** [min total_states max_states]. *)
  explored_states : int;
  covered_schedules : int;  (** Sum of explored orbit sizes. *)
  violations : violation list;  (** In BFS order. *)
  resumed_states : int;  (** Restored from the journal, not re-run. *)
  complete : bool;  (** Every state of the space was explored. *)
}

val run :
  ?recorder:Ftc_telemetry.Recorder.t ->
  ?journal:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  config ->
  (report, string) result
(** Explore. [journal] arms per-chunk checkpointing; [resume] (requires
    [journal]) loads the journaled prefix first and errors on a spec
    hash mismatch or a corrupt record sequence. [log] receives progress
    lines (stderr material — never part of the deterministic stdout).
    The recorder gets states/sec heartbeats, an [ftc_verify_coverage_permille]
    gauge and violation/state counters; individual case runs are not
    instrumented (a space has hundreds of thousands). *)

val exit_code : report -> int
(** 1 if violations, else 0 if complete, else 3. *)

val summary : report -> string
(** The pinned human summary (states, reduction factor, coverage,
    violations, verdict). Deterministic; golden-tested. *)
