(** A gallery of crash adversaries.

    All of them are *static in selection* (the faulty set is fixed before
    the run, uniformly at random unless stated otherwise) and differ in how
    adaptively they time the crashes — the paper's model allows full
    adaptivity of timing and of which final-round messages are lost.

    Every constructor returns a fresh value; adversaries carry per-run
    mutable state inside closures, so never reuse one value across runs. *)

val none : unit -> Ftc_sim.Adversary.t
(** No faults (the fault-free alpha = 1 baselines). *)

val dormant : unit -> Ftc_sim.Adversary.t
(** Faulty set is chosen but nobody ever crashes. Exercises the paper's
    footnote 3: faulty nodes may execute correctly until after the
    election, so the leader is non-faulty only with probability alpha. *)

val eager : unit -> Ftc_sim.Adversary.t
(** Every faulty node crashes in round 0 losing all messages — the
    strongest non-adaptive schedule; tests that protocols tolerate a
    network that is effectively only [alpha n] nodes from the start. *)

val random_crashes : ?drop_prob:float -> ?horizon:int -> unit -> Ftc_sim.Adversary.t
(** Each faulty node crashes at a round chosen uniformly in
    [0, horizon) (default: the run's natural length via a large window),
    losing each of its final messages independently with [drop_prob]
    (default 0.5). *)

val targeted_min_rank : ?period:int -> unit -> Ftc_sim.Adversary.t
(** The paper's worst case for the leader-election analysis: at the start
    of each [period]-round window (default 4, one protocol iteration),
    crash the alive faulty *candidate* with the minimum rank, losing a
    random half of its pending messages — so its proposal reaches only
    part of the committee. One crash per window makes the "a single node
    may crash in each iteration" schedule of Section IV-A concrete. *)

val first_send : ?budget_per_round:int -> unit -> Ftc_sim.Adversary.t
(** Crash a faulty node in the first round it attempts to send, losing a
    random half of those messages (at most [budget_per_round] crashes per
    round, default 3). Targets initiators, the object of Lemma 4. *)

val silence_candidates : unit -> Ftc_sim.Adversary.t
(** Crash every faulty node that becomes a candidate as soon as its role
    is visible, losing everything it was about to send. Stresses Lemma 2:
    the candidate set must still contain a non-faulty node w.h.p. *)

val validate_plan :
  n:int ->
  f:int ->
  max_round:int ->
  (int * int * Ftc_sim.Adversary.drop_rule) list ->
  (unit, string) result
(** Full validation of a crash plan against a concrete run shape: node ids
    in [0, n), at most [f] distinct crashed nodes, every crash round
    [<= max_round], plus the structural checks of {!scheduled}. *)

val scheduled :
  (int * int * Ftc_sim.Adversary.drop_rule) list -> unit -> Ftc_sim.Adversary.t
(** [scheduled plan ()] crashes node [v] at round [r] with rule [rule] for
    every [(v, r, rule)] in [plan]; the faulty set is exactly the planned
    nodes. Deterministic; for unit tests and the chaos fuzzer.

    Structural validity (non-negative nodes and rounds, probabilities in
    [0,1], no node crashing twice) is checked here, at construction, and
    raises [Invalid_argument]. The parts that need the run shape — node
    ids below [n], fault budget [f] — are checked when the engine first
    asks for the faulty set, again raising [Invalid_argument] instead of
    surfacing budget overruns as runtime engine violations. *)

val all : unit -> (string * (unit -> Ftc_sim.Adversary.t)) list
(** Every named strategy above (except [scheduled]), for sweep drivers. *)
