module Adversary = Ftc_sim.Adversary
module Observation = Ftc_sim.Observation
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

let uniform_faulty rng ~n ~f = Array.to_list (Dist.sample_without_replacement rng ~n ~k:f)

let none () = Adversary.none

let dormant () =
  {
    Adversary.name = "dormant";
    pick_faulty = uniform_faulty;
    decide_crashes = (fun _ _ -> []);
  }

let eager () =
  {
    Adversary.name = "eager";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        if view.Adversary.round = 0 then
          List.map
            (fun nv -> (nv.Adversary.node, Adversary.Drop_all))
            view.Adversary.alive_faulty
        else []);
  }

let random_crashes ?(drop_prob = 0.5) ?(horizon = 256) () =
  (* Crash rounds are drawn lazily, one geometric-free way: each alive
     faulty node crashes this round with probability 1/horizon, giving a
     near-uniform crash time over the first [horizon] rounds. *)
  let per_round_prob = 1. /. float_of_int (max 1 horizon) in
  {
    Adversary.name = "random";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun rng view ->
        List.filter_map
          (fun nv ->
            if Dist.bernoulli rng per_round_prob then
              Some (nv.Adversary.node, Adversary.Drop_random drop_prob)
            else None)
          view.Adversary.alive_faulty);
  }

let targeted_min_rank ?(period = 4) () =
  {
    Adversary.name = "targeted-min-rank";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        if view.Adversary.round mod period <> 0 then []
        else begin
          (* Find the alive faulty candidate with the smallest rank; kill
             it mid-send so only part of the committee hears from it. *)
          let best = ref None in
          List.iter
            (fun nv ->
              let obs = nv.Adversary.observation in
              match (obs.Observation.role, obs.Observation.rank) with
              | Observation.Candidate, Some rank -> (
                  match !best with
                  | Some (_, best_rank) when best_rank <= rank -> ()
                  | _ -> best := Some (nv.Adversary.node, rank))
              | _ -> ())
            view.Adversary.alive_faulty;
          match !best with
          | None -> []
          | Some (node, _) -> [ (node, Adversary.Drop_random 0.5) ]
        end);
  }

let first_send ?(budget_per_round = 3) () =
  {
    Adversary.name = "first-send";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        let taken = ref 0 in
        List.filter_map
          (fun nv ->
            if !taken < budget_per_round && nv.Adversary.pending <> [] then begin
              incr taken;
              Some (nv.Adversary.node, Adversary.Drop_random 0.5)
            end
            else None)
          view.Adversary.alive_faulty);
  }

let silence_candidates () =
  {
    Adversary.name = "silence-candidates";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        List.filter_map
          (fun nv ->
            match nv.Adversary.observation.Observation.role with
            | Observation.Candidate -> Some (nv.Adversary.node, Adversary.Drop_all)
            | Observation.Referee | Observation.Bystander | Observation.Coordinator -> None)
          view.Adversary.alive_faulty);
  }

let check_entry (v, r, rule) =
  if v < 0 then Error (Printf.sprintf "negative node %d" v)
  else if r < 0 then Error (Printf.sprintf "node %d: negative round %d" v r)
  else
    match rule with
    | Adversary.Drop_all | Adversary.Drop_none -> Ok ()
    | Adversary.Drop_random p ->
        if p < 0. || p > 1. then
          Error (Printf.sprintf "node %d: Drop_random probability %g outside [0,1]" v p)
        else Ok ()
    | Adversary.Keep_prefix k ->
        if k < 0 then Error (Printf.sprintf "node %d: negative Keep_prefix %d" v k) else Ok ()

let plan_nodes plan = List.sort_uniq compare (List.map (fun (v, _, _) -> v) plan)

let check_structure plan =
  let rec first_error = function
    | [] -> Ok ()
    | e :: rest -> ( match check_entry e with Error _ as err -> err | Ok () -> first_error rest)
  in
  match first_error plan with
  | Error _ as err -> err
  | Ok () ->
      let nodes = List.map (fun (v, _, _) -> v) plan in
      if List.length (List.sort_uniq compare nodes) <> List.length nodes then
        Error "a node is scheduled to crash more than once"
      else Ok ()

let validate_plan ~n ~f ~max_round plan =
  match check_structure plan with
  | Error _ as err -> err
  | Ok () ->
      let nodes = plan_nodes plan in
      if List.exists (fun v -> v >= n) nodes then
        Error (Printf.sprintf "plan crashes node >= n = %d" n)
      else if List.length nodes > f then
        Error
          (Printf.sprintf "plan crashes %d nodes, fault budget is %d" (List.length nodes) f)
      else if List.exists (fun (_, r, _) -> r > max_round) plan then
        Error (Printf.sprintf "plan schedules a crash after round %d" max_round)
      else Ok ()

let scheduled plan () =
  (match check_structure plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Strategy.scheduled: " ^ e));
  let nodes = plan_nodes plan in
  {
    Adversary.name = "scheduled";
    pick_faulty =
      (fun _ ~n ~f ->
        (* n and f are only known here; failing loudly beats surfacing
           budget overruns as accumulated engine violations. *)
        (match validate_plan ~n ~f ~max_round:max_int plan with
        | Ok () -> ()
        | Error e -> invalid_arg ("Strategy.scheduled: " ^ e));
        nodes);
    decide_crashes =
      (fun _ view ->
        List.filter_map
          (fun (v, r, rule) -> if r = view.Adversary.round then Some (v, rule) else None)
          plan);
  }

let all () =
  [
    ("none", none);
    ("dormant", dormant);
    ("eager", eager);
    ("random", (fun () -> random_crashes ()));
    ("targeted-min-rank", (fun () -> targeted_min_rank ()));
    ("first-send", (fun () -> first_send ()));
    ("silence-candidates", silence_candidates);
  ]
