module Link = Ftc_sim.Link
module Observation = Ftc_sim.Observation
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

type spec =
  | No_loss
  | Uniform of float
  | Burst of { rate : float; mean_len : float }
  | Targeted of float

let validate = function
  | No_loss -> Ok ()
  | Uniform rate ->
      if rate < 0. || rate > 1. then
        Error (Printf.sprintf "uniform loss rate %g outside [0,1]" rate)
      else Ok ()
  | Burst { rate; mean_len } ->
      if rate < 0. || rate >= 1. then
        Error (Printf.sprintf "burst loss rate %g outside [0,1)" rate)
      else if mean_len < 1. then
        Error (Printf.sprintf "burst mean length %g below 1" mean_len)
      else Ok ()
  | Targeted rate ->
      if rate < 0. || rate > 1. then
        Error (Printf.sprintf "targeted omission rate %g outside [0,1]" rate)
      else Ok ()

let spec_to_string = function
  | No_loss -> "none"
  | Uniform rate -> Printf.sprintf "uniform %.17g" rate
  | Burst { rate; mean_len } -> Printf.sprintf "burst %.17g %.17g" rate mean_len
  | Targeted rate -> Printf.sprintf "targeted %.17g" rate

let pp_spec ppf s = Format.pp_print_string ppf (spec_to_string s)

let lossy_uniform ~rate () =
  {
    Link.name = Printf.sprintf "lossy-uniform(%g)" rate;
    drop = (fun rng _ -> Dist.bernoulli rng rate);
  }

(* Two-state Gilbert channel per directed edge: a good state that never
   drops, a burst state that always does. Transitions fire per message;
   p_exit = 1/mean_len gives bursts of the requested mean length, and
   p_enter is solved from the stationary equation pi_burst = rate. *)
let lossy_burst ~rate ~mean_len () =
  let p_exit = 1. /. mean_len in
  let p_enter = rate *. p_exit /. (1. -. rate) in
  let in_burst : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  {
    Link.name = Printf.sprintf "lossy-burst(%g,%g)" rate mean_len;
    drop =
      (fun rng view ->
        let edge = (view.Link.src, view.Link.dst) in
        let bursting = Hashtbl.mem in_burst edge in
        let bursting =
          if bursting then begin
            if Dist.bernoulli rng p_exit then Hashtbl.remove in_burst edge;
            true
          end
          else if Dist.bernoulli rng p_enter then begin
            Hashtbl.replace in_burst edge ();
            true
          end
          else false
        in
        bursting);
  }

(* The omission analogue of [Strategy.targeted_min_rank]: instead of
   crashing the best candidate, starve it — drop each referee reply headed
   for the minimum-rank live candidate with probability [rate], without
   crashing anyone. The minimum is recomputed once per round from the same
   omniscient observation view the crash adversary gets. *)
let targeted_omission ?(rate = 0.75) () =
  let cached_round = ref (-1) in
  let cached_target = ref None in
  let target_of view =
    if !cached_round <> view.Link.round then begin
      cached_round := view.Link.round;
      let best = ref None in
      Array.iteri
        (fun node (obs : Observation.t) ->
          match (obs.Observation.role, obs.Observation.rank) with
          | Observation.Candidate, Some rank -> (
              match !best with
              | Some (_, best_rank) when best_rank <= rank -> ()
              | _ -> best := Some (node, rank))
          | _ -> ())
        view.Link.observations;
      cached_target := Option.map fst !best
    end;
    !cached_target
  in
  {
    Link.name = Printf.sprintf "targeted-omission(%g)" rate;
    drop =
      (fun rng view ->
        match target_of view with
        | Some target
          when view.Link.dst = target
               && view.Link.observations.(view.Link.src).Observation.role
                  = Observation.Referee ->
            Dist.bernoulli rng rate
        | _ -> false);
  }

let to_link = function
  | No_loss -> Link.reliable
  | Uniform rate -> lossy_uniform ~rate ()
  | Burst { rate; mean_len } -> lossy_burst ~rate ~mean_len ()
  | Targeted rate -> targeted_omission ~rate ()

let all () =
  [
    ("uniform", fun () -> lossy_uniform ~rate:0.1 ());
    ("burst", fun () -> lossy_burst ~rate:0.1 ~mean_len:3. ());
    ("targeted", fun () -> targeted_omission ());
  ]
