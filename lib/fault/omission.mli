(** Omission adversaries: link-fault models for {!Ftc_sim.Link}.

    Where {!Strategy} times crashes, these lose messages of nodes that
    stay alive — the fault class the paper's model excludes and real
    (permissionless) deployments exhibit. Every constructor returns a
    fresh value carrying per-run mutable state (burst channels, per-round
    target caches), so never reuse one value across runs.

    A {!spec} is the pure, serialisable description of a loss model; the
    chaos replay files and the CLI speak specs, and {!to_link} turns one
    into a live model at run time. *)

type spec =
  | No_loss
  | Uniform of float  (** Each live-link message lost i.i.d. with this rate. *)
  | Burst of { rate : float; mean_len : float }
      (** Gilbert channel per directed edge: stationary loss [rate],
          mean burst length [mean_len] messages. *)
  | Targeted of float
      (** Drop each referee reply to the min-rank live candidate with
          this probability; nobody crashes. *)

val validate : spec -> (unit, string) result
(** Rates in range ([0,1]; burst rate strictly below 1 so the stationary
    equation is solvable), mean burst length at least 1. *)

val spec_to_string : spec -> string
(** ["none"], ["uniform <p>"], ["burst <p> <len>"], ["targeted <p>"] —
    the replay-file spelling. *)

val pp_spec : Format.formatter -> spec -> unit

val to_link : spec -> Ftc_sim.Link.t
(** A fresh live model for one run. [No_loss] maps to {!Ftc_sim.Link.reliable}. *)

val lossy_uniform : rate:float -> unit -> Ftc_sim.Link.t
(** Independent Bernoulli loss on every live-link message. *)

val lossy_burst : rate:float -> mean_len:float -> unit -> Ftc_sim.Link.t
(** Two-state Gilbert channel per directed edge, transitions per message:
    loss comes in runs of mean length [mean_len] while the long-run loss
    fraction stays [rate]. *)

val targeted_omission : ?rate:float -> unit -> Ftc_sim.Link.t
(** The omission analogue of {!Strategy.targeted_min_rank}: starve the
    minimum-rank live candidate of its referees' replies (each dropped
    with [rate], default 0.75) without crashing anyone — the worst case
    for the election's confirmation machinery that the crash model cannot
    express. *)

val all : unit -> (string * (unit -> Ftc_sim.Link.t)) list
(** Representative instances of every named model, for sweep drivers. *)
