module Trace = Ftc_sim.Trace
module ISet = Set.Make (Int)

type cloud = { initiator : int; members : int list }

type t = { initiators : int list; clouds : cloud list; edges : (int * int) list }

let of_trace ~n trace =
  let has_received = Array.make n false in
  let has_sent = Array.make n false in
  let initiators = ref [] in
  (* cloud_members.(i) is meaningful only when i is an initiator. *)
  let member_sets = Hashtbl.create 8 in
  let member_orders = Hashtbl.create 8 in
  let edge_set = Hashtbl.create 64 in
  let edges = ref [] in
  List.iter
    (fun event ->
      match event with
      | Trace.Crash _ | Trace.Link_lost _ | Trace.Queue_dropped _ | Trace.Ecn_marked _
      | Trace.Unroutable _ -> ()
      | Trace.Send { src; dst; delivered; _ } ->
          if (not has_sent.(src)) && not has_received.(src) then begin
            (* First action of src is a send: src is an initiator and
               seeds its own cloud. *)
            initiators := src :: !initiators;
            Hashtbl.replace member_sets src (ref (ISet.singleton src));
            Hashtbl.replace member_orders src (ref [ src ])
          end;
          has_sent.(src) <- true;
          if delivered then begin
            if not (Hashtbl.mem edge_set (src, dst)) then begin
              Hashtbl.replace edge_set (src, dst) ();
              edges := (src, dst) :: !edges
            end;
            has_received.(dst) <- true;
            (* dst joins every cloud src already belongs to. *)
            Hashtbl.iter
              (fun _init set ->
                if ISet.mem src !set && not (ISet.mem dst !set) then begin
                  set := ISet.add dst !set;
                  let order = Hashtbl.find member_orders _init in
                  order := dst :: !order
                end)
              member_sets
          end)
    (Trace.events trace);
  let initiators = List.rev !initiators in
  let clouds =
    List.map
      (fun init -> { initiator = init; members = List.rev !(Hashtbl.find member_orders init) })
      initiators
  in
  { initiators; clouds; edges = List.rev !edges }

let clouds_disjoint a b =
  let sa = ISet.of_list a.members in
  not (List.exists (fun m -> ISet.mem m sa) b.members)

let disjoint_cloud_count t =
  (* Greedy by increasing cloud size: take a cloud if it intersects none
     already taken. *)
  let sorted =
    List.sort (fun a b -> compare (List.length a.members) (List.length b.members)) t.clouds
  in
  let taken = ref [] and covered = ref ISet.empty in
  List.iter
    (fun c ->
      if not (List.exists (fun m -> ISet.mem m !covered) c.members) then begin
        taken := c :: !taken;
        covered := List.fold_left (fun s m -> ISet.add m s) !covered c.members
      end)
    sorted;
  List.length !taken

let deciding_clouds t ~decided =
  List.filter (fun c -> List.exists (fun m -> decided.(m)) c.members) t.clouds
