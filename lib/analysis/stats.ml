type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p10 : float;
  p90 : float;
}

let empty =
  { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; median = 0.; p10 = 0.; p90 = 0. }

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let m = mean xs in
      let var =
        if n < 2 then 0.
        else List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (n - 1)
      in
      {
        count = n;
        mean = m;
        stddev = sqrt var;
        min = a.(0);
        max = a.(n - 1);
        median = quantile a 0.5;
        p10 = quantile a 0.1;
        p90 = quantile a 0.9;
      }

let of_ints xs = summarize (List.map float_of_int xs)

let wilson_interval ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials must be positive";
  let z = 1.96 in
  let nf = float_of_int trials in
  let p = float_of_int successes /. nf in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. nf) in
  let centre = p +. (z2 /. (2. *. nf)) in
  let half = z *. sqrt ((p *. (1. -. p) /. nf) +. (z2 /. (4. *. nf *. nf))) in
  (Float.max 0. ((centre -. half) /. denom), Float.min 1. ((centre +. half) /. denom))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f med=%.2f [%.2f, %.2f]" s.count s.mean s.stddev
    s.median s.min s.max
