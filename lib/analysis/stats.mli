(** Descriptive statistics over experiment samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n - 1 denominator). *)
  min : float;
  max : float;
  median : float;
  p10 : float;
  p90 : float;
}

val empty : summary
(** The zero-sample summary ([count = 0], every statistic [0.]) — what an
    aggregate over no data reports, rather than raising. *)

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val of_ints : int list -> summary

val mean : float list -> float

val quantile : float array -> float -> float
(** [quantile sorted q] with linear interpolation; [sorted] ascending. *)

val wilson_interval : successes:int -> trials:int -> float * float
(** 95% Wilson score interval for a Bernoulli proportion — the right
    interval for success probabilities near 0 or 1, which is where all
    our w.h.p. measurements live. *)

val pp_summary : Format.formatter -> summary -> unit
