module Protocol = Ftc_sim.Protocol
module Congest = Ftc_sim.Congest

type config = { timeout : int; backoff_cap : int; budget : int }

let default_config = { timeout = 2; backoff_cap = 8; budget = 4 }

let validate_config c =
  if c.timeout < 2 then Error (Printf.sprintf "timeout %d below the 2-round ack RTT" c.timeout)
  else if c.backoff_cap < c.timeout then
    Error (Printf.sprintf "backoff cap %d below timeout %d" c.backoff_cap c.timeout)
  else if c.budget < 0 then Error (Printf.sprintf "negative retransmission budget %d" c.budget)
  else begin
    (* The calendar doubles timeouts from [timeout] up to [backoff_cap];
       a cap off the doubling ladder would silently bind one step early.
       Reject it instead of rounding. *)
    let rec on_ladder t = t = c.backoff_cap || (t < c.backoff_cap && on_ladder (2 * t)) in
    if not (on_ladder c.timeout) then
      Error
        (Printf.sprintf
           "backoff cap %d is not a power-of-two multiple of timeout %d (the doubling \
            calendar would skip it)"
           c.backoff_cap c.timeout)
    else Ok ()
  end

(* Offset of transmission i (0-based) within the window: doubling timeouts
   capped at [backoff_cap]. The window is sized so the last permitted
   transmission still arrives before the next inner round is delivered. *)
let window c =
  let off = ref 0 and t = ref c.timeout in
  for _ = 1 to c.budget do
    off := !off + !t;
    t := min c.backoff_cap (2 * !t)
  done;
  !off + 2

let nth_timeout c k =
  let t = ref c.timeout in
  for _ = 1 to max 0 k do
    t := min c.backoff_cap (2 * !t)
  done;
  !t

type stats = {
  mutable data_sent : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable acked : int;
  mutable delivered_unique : int;
  mutable duplicates : int;
  mutable gave_up : int;
  mutable unroutable : int;
  mutable ecn_backoffs : int;
  mutable congestion_drops : int;
  mutable max_timeout : int;
}

let fresh_stats () =
  {
    data_sent = 0;
    retransmissions = 0;
    acks_sent = 0;
    acked = 0;
    delivered_unique = 0;
    duplicates = 0;
    gave_up = 0;
    unroutable = 0;
    ecn_backoffs = 0;
    congestion_drops = 0;
    max_timeout = 0;
  }

(* One line, every field, declaration order — golden-tested so F13/F14
   logs stay machine-greppable across versions. *)
let pp_stats ppf s =
  Format.fprintf ppf
    "data=%d retx=%d acks=%d acked=%d delivered=%d dups=%d gave_up=%d unroutable=%d \
     ecn_backoffs=%d congestion_drops=%d max_timeout=%d"
    s.data_sent s.retransmissions s.acks_sent s.acked s.delivered_unique s.duplicates s.gave_up
    s.unroutable s.ecn_backoffs s.congestion_drops s.max_timeout

(* Sequence numbers ride in every data message and ack; 2 log n bits is
   room for n^2 messages per sender, far beyond the Õ(√n) protocols. *)
let seq_bits ~n = 2 * Congest.id_bits ~n

module Make
    (C : sig
      val config : config
      val stats : stats
    end)
    (P : Protocol.S) : Protocol.S = struct
  let w = window C.config
  let cfg = C.config
  let stats = C.stats

  type msg = Data of { seq : int; payload : P.msg } | Ack of int

  type pending = {
    seq : int;
    retx_dest : Protocol.dest;  (* always Port/Node: re-sends reuse the opened port *)
    payload : P.msg;
    window_end : int;
    mutable next_at : int;
    mutable timeout : int;
    mutable sent : int;  (* transmissions so far, first included *)
    mutable ack_deadline : int;  (* last round an ack for this can still arrive *)
    mutable congested : bool;  (* calendar widened after repeated losses *)
  }

  type state = {
    mutable inner : P.state;
    mutable next_seq : int;
    mutable next_port : int;  (* mirror of the engine's per-node port count *)
    mutable pending : pending list;
    mutable buffer : P.msg Protocol.incoming list;  (* reversed arrival order *)
    seen : (int * int, unit) Hashtbl.t;  (* (from_port, seq) already delivered *)
    mutable congestion : int;  (* ECN backoff exponent, 0..3 *)
    mutable signal_seen : bool;  (* an ECN mark arrived since the last window boundary *)
  }

  let name = P.name ^ "+transport"
  let knowledge = P.knowledge

  let msg_bits ~n = function
    | Data { payload; _ } -> P.msg_bits ~n payload + seq_bits ~n
    | Ack _ -> Congest.tag_bits + seq_bits ~n

  let max_rounds ~n ~alpha = (w * P.max_rounds ~n ~alpha) + 2

  (* Inner round r occupies outer rounds [w*r, w*(r+1)), so the wrapped
     protocol's phase calendar carries over scaled by the window. *)
  let phases ~n ~alpha = List.map (fun (nm, r) -> (nm, w * r)) (P.phases ~n ~alpha)

  let init ctx =
    {
      inner = P.init ctx;
      next_seq = 0;
      next_port = 0;
      pending = [];
      buffer = [];
      seen = Hashtbl.create 64;
      congestion = 0;
      signal_seen = false;
    }

  let record_timeout t = if t > stats.max_timeout then stats.max_timeout <- t

  (* The maximum ECN backoff: timeouts shifted by 3 (x8) still fit a few
     transmissions into the default 24-round window. *)
  let max_congestion = 3

  let step ctx st ~round ~inbox =
    let out = ref [] in
    let emit dest payload = out := { Protocol.dest; payload } :: !out in
    (* 1. Ingest: acks settle pending sends; data is acked, deduplicated,
       and buffered for the next inner round. Receiver-side port openings
       show up here as fresh [from_port] values, keeping the port mirror
       in sync with the engine. *)
    let marked = ref false in
    List.iter
      (fun { Protocol.from_port; payload; ecn } ->
        if from_port >= st.next_port then st.next_port <- from_port + 1;
        if ecn then marked := true;
        match payload with
        | Ack seq ->
            let confirmed, rest = List.partition (fun p -> p.seq = seq) st.pending in
            if confirmed <> [] then begin
              stats.acked <- stats.acked + 1;
              st.pending <- rest
            end
        | Data { seq; payload } ->
            emit (Protocol.Port from_port) (Ack seq);
            stats.acks_sent <- stats.acks_sent + 1;
            if Hashtbl.mem st.seen (from_port, seq) then
              stats.duplicates <- stats.duplicates + 1
            else begin
              Hashtbl.replace st.seen (from_port, seq) ();
              stats.delivered_unique <- stats.delivered_unique + 1;
              st.buffer <- { Protocol.from_port; payload; ecn } :: st.buffer
            end)
      inbox;
    (* ECN reaction: any congestion mark this step escalates the node's
       backoff exponent one level (at most one level per step), widening
       every timeout below — the multiplicative backoff beyond the
       loss-driven doubling. The mark also arms [signal_seen] so the
       exponent holds through the next window boundary. *)
    if !marked then begin
      st.signal_seen <- true;
      if st.congestion < max_congestion then begin
        st.congestion <- st.congestion + 1;
        stats.ecn_backoffs <- stats.ecn_backoffs + 1
      end
    end;
    (* 2. Window boundary: deliver the buffered data as the inner round's
       inbox, and ship the inner protocol's sends with fresh sequence
       numbers. First transmissions keep the inner destination (a
       [Fresh_port] must really open the port); retransmissions go through
       the port the mirror says that send opened. *)
    if round mod w = 0 then begin
      (* A window with no congestion signal decays the ECN exponent one
         level (AIMD-style recovery); one with a signal just re-arms. *)
      if st.signal_seen then st.signal_seen <- false
      else if st.congestion > 0 then st.congestion <- st.congestion - 1;
      let inner_inbox = List.rev st.buffer in
      st.buffer <- [];
      let inner', actions = P.step ctx st.inner ~round:(round / w) ~inbox:inner_inbox in
      st.inner <- inner';
      List.iter
        (fun { Protocol.dest; payload } ->
          let retx_dest =
            match dest with
            | Protocol.Port _ | Protocol.Node _ -> Some dest
            | Protocol.Fresh_port ->
                if st.next_port >= ctx.Protocol.n - 1 then None
                else begin
                  let port = st.next_port in
                  st.next_port <- port + 1;
                  Some (Protocol.Port port)
                end
          in
          match retx_dest with
          | None ->
              (* The engine will count this send as unroutable; there is
                 no port to retransmit through, so nothing to track. *)
              stats.unroutable <- stats.unroutable + 1;
              emit dest (Data { seq = st.next_seq; payload });
              st.next_seq <- st.next_seq + 1
          | Some retx_dest ->
              let seq = st.next_seq in
              st.next_seq <- seq + 1;
              stats.data_sent <- stats.data_sent + 1;
              let eff = cfg.timeout lsl st.congestion in
              record_timeout eff;
              emit dest (Data { seq; payload });
              st.pending <-
                {
                  seq;
                  retx_dest;
                  payload;
                  window_end = round + w;
                  next_at = min (round + eff) (round + w);
                  timeout = cfg.timeout;
                  sent = 1;
                  ack_deadline = round + 2;
                  congested = false;
                }
                :: st.pending)
        actions
    end;
    (* 3. Retransmission calendar: resend every overdue unacked message
       while budget and window allow; drop it for good once neither its
       retransmissions nor their acks can still land. *)
    let still_pending =
      List.filter
        (fun p ->
          if round < p.next_at then true
          else if p.sent <= cfg.budget && round < p.window_end then begin
            emit p.retx_dest (Data { seq = p.seq; payload = p.payload });
            stats.retransmissions <- stats.retransmissions + 1;
            p.sent <- p.sent + 1;
            p.ack_deadline <- round + 2;
            (* Two unacked transmissions suggest a queue is eating them,
               not random loss: widen this message's calendar past the
               plain doubling (quadruple, cap lifted 4x) so later copies
               stop re-filling the queue that dropped the earlier ones. *)
            if p.sent >= 3 && not p.congested then begin
              p.congested <- true;
              stats.congestion_drops <- stats.congestion_drops + 1
            end;
            let growth, cap =
              if p.congested then (4, 4 * cfg.backoff_cap) else (2, cfg.backoff_cap)
            in
            p.timeout <- min cap (growth * p.timeout);
            let eff = p.timeout lsl st.congestion in
            record_timeout eff;
            (* Clamp to the window so the give-up check still reaches the
               entry before the run ends. *)
            p.next_at <- min (round + eff) p.window_end;
            true
          end
          else if round >= p.ack_deadline then begin
            stats.gave_up <- stats.gave_up + 1;
            false
          end
          else true)
        st.pending
    in
    st.pending <- still_pending;
    (st, List.rev !out)

  let decide st = P.decide st.inner
  let observe st = P.observe st.inner
end

let wrap ?(config = default_config) (module P : Protocol.S) =
  (match validate_config config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Transport.wrap: " ^ e));
  let stats = fresh_stats () in
  let module W =
    Make
      (struct
        let config = config
        let stats = stats
      end)
      (P)
  in
  ((module W : Protocol.S), stats)
