(** Reliable delivery over omission-faulty links: an end-to-end
    ack/retransmit layer packaged as a protocol functor.

    {!wrap} turns any protocol [P] into a protocol that simulates [P] over
    lossy links using a window synchronizer: inner round [k] of [P] runs at
    engine round [k * w] (with [w] given by {!window}), and the rounds in
    between carry acks and retransmissions. Every data message gets a
    per-sender sequence number; the receiver acks each copy through the
    reply port, deduplicates, and buffers the payload for the next inner
    round. The sender retransmits on a doubling-timeout calendar (capped at
    [backoff_cap]) until acked, out of budget, or out of window.

    The wrapper preserves KT0 faithfulness: a [Fresh_port] send's first
    transmission really opens the fresh port; the wrapper mirrors the
    engine's deterministic port numbering (dense, in send/arrival order) to
    learn which port that was, and retransmits through it via [Port].

    The overhead is measured exactly, not estimated: the engine's metrics
    charge every ack and retransmission like any other message (so wrapped
    runs need roughly double the per-edge CONGEST budget — a data message
    and an ack can share an edge-round), and {!stats} breaks the overhead
    down by cause.

    The transport is congestion-aware: an incoming ECN mark (set by the
    [ecn] queue discipline, see [Ftc_sim.Queue_model]) escalates a
    per-node backoff exponent that widens every timeout multiplicatively
    (x2 per escalation, up to x8), decaying one level per mark-free
    window; and a message whose first two transmissions both vanish is
    inferred to be feeding a full queue — its own calendar switches from
    doubling to quadrupling with a 4x-lifted cap. Both reactions spread
    retransmissions out in time instead of re-filling the queue that
    dropped them. *)

type config = {
  timeout : int;  (** Rounds before the first retransmission; >= 2 (the ack RTT). *)
  backoff_cap : int;
      (** Timeouts double up to this cap; must be [timeout * 2^k] for
          some [k >= 0], so the cap lies on the doubling ladder. *)
  budget : int;  (** Maximum retransmissions per message; >= 0. *)
}

val default_config : config
(** [{timeout = 2; backoff_cap = 8; budget = 4}] — a 24-round window. *)

val validate_config : config -> (unit, string) result

val window : config -> int
(** Engine rounds per inner round: the last in-budget retransmission's
    offset plus 2, so its ack can land before the next inner round. *)

val nth_timeout : config -> int -> int
(** The [k]-th (0-based) wait on the doubling ladder:
    [min (timeout * 2^k) backoff_cap]. This is the calendar {!window}
    sums — exposed so other retry loops (the serve client's submit
    backoff) share the transport's ladder instead of inventing one. *)

type stats = {
  mutable data_sent : int;  (** First transmissions of tracked data messages. *)
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable acked : int;  (** Distinct messages confirmed at their sender. *)
  mutable delivered_unique : int;  (** Distinct messages delivered to inner inboxes. *)
  mutable duplicates : int;  (** Copies suppressed by receiver-side dedup. *)
  mutable gave_up : int;  (** Messages abandoned unacked (budget or window spent). *)
  mutable unroutable : int;  (** Fresh-port sends past n-1 ports: forwarded untracked. *)
  mutable ecn_backoffs : int;
      (** Escalations of a node's ECN backoff exponent: steps in which a
          congestion-marked message arrived while the exponent was below
          its x8 cap. *)
  mutable congestion_drops : int;
      (** Messages inferred queue-dropped — both of their first two
          transmissions vanished — whose calendars were widened from
          doubling to quadrupling. *)
  mutable max_timeout : int;
      (** Largest effective timeout the calendar ever used, ECN widening
          included. *)
}

val fresh_stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One line, all fields, stable declaration order (golden-tested):
    [data retx acks acked delivered dups gave_up unroutable ecn_backoffs
    congestion_drops max_timeout], each as [name=%d]. *)

val seq_bits : n:int -> int
(** Framing bits added to every data message and ack: [2 * Congest.id_bits]. *)

val wrap :
  ?config:config ->
  (module Ftc_sim.Protocol.S) ->
  (module Ftc_sim.Protocol.S) * stats
(** [wrap (module P)] is [P] over the transport, plus the (initially zero)
    stats record the wrapped module mutates as it runs — aggregate across
    all nodes, valid for one run. The wrapped module keeps [P]'s knowledge
    and decisions; its [max_rounds] is [window * P.max_rounds + 2] and its
    name is [P.name ^ "+transport"]. Raises [Invalid_argument] on an
    invalid config. *)
