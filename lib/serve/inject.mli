(** Service-layer fault injection: the serve counterpart of the chaos
    catalog, aimed at the {e process}, not the simulated network.

    Five fault kinds, each with an independent firing rate:

    - [Kill_instance] — the victim instance's kill flag is raised a few
      rounds into its run; the per-instance watchdog stops the engine
      and the client receives a structured [Failed "killed"] reply.
    - [Kill_worker] — the worker domain executing the victim raises
      mid-run and dies; the supervisor reaps it, requeues the in-flight
      instance, and spawns a replacement.
    - [Delay_frame] — an outgoing reply frame is held back 1–50 ms.
    - [Truncate_frame] — an outgoing reply frame is cut mid-bytes and
      the connection closed: the client sees a torn frame.
    - [Drop_conn] — the connection is closed instead of writing the
      reply: the client sees EOF mid-request.

    Decisions are deterministic: whether fault [kind] fires for event
    [salt] is a pure function of [(seed, kind, salt)], so a seeded
    injection run is reproducible event for event, exactly like a chaos
    case. Under every mix the oracle is unchanged — each accepted
    request terminates in exactly one reply. *)

type kind = Kill_instance | Kill_worker | Delay_frame | Truncate_frame | Drop_conn

val kind_to_string : kind -> string
(** ["kill-instance" | "kill-worker" | "delay-frame" | "truncate-frame"
    | "drop-conn"] — the [--inject] spelling. *)

type t

val none : t
(** No injection; {!active} is false and {!fire} never fires. *)

val catalog : (string * string) list
(** Named presets, mirroring the chaos catalog's role: [worker-kill],
    [instance-kill], [frame-chaos], [conn-chaos], [mayhem] — each maps
    to a rate-spec string {!parse} accepts. *)

val parse : string -> (t, string) result
(** Accepts ["none"], a preset name from {!catalog}, or an explicit
    comma-separated rate list ["kind:rate,kind:rate"] with each rate in
    [0, 1] (e.g. ["kill-worker:0.1,delay-frame:0.05"]). *)

val with_seed : t -> int -> t
(** Fix the decision seed (default 0). *)

val active : t -> bool
val rate : t -> kind -> float

val fire : t -> kind -> salt:int -> bool
(** Does [kind] fire for event [salt]? Pure in [(seed, kind, salt)]. *)

val delay_ms : t -> salt:int -> int
(** Deterministic frame-delay duration, 1–50 ms. *)

val describe : t -> string
(** Round-trips through {!parse}; ["none"] when inactive. *)

(** Per-kind fired counts, shared between the server (frame/connection
    faults) and the supervisor's workers (kill faults). Domain-safe. *)
module Counters : sig
  type t

  val create : unit -> t
  val bump : t -> kind -> unit

  val snapshot : t -> (string * int) list
  (** One entry per kind in {!kind_to_string} order, zeroes included —
      the introspection reply's schema is the same on every server. *)
end
