(** The worker pool behind the serve front-end: restartable domains
    pulling instances off the admission queue, each instance a chaos
    case run under a per-instance watchdog deadline.

    Supervision tree:

    {v
    server loop (domain 0)
      └─ supervisor
           ├─ worker 0 (Respawn)  — take / run / complete, forever
           ├─ ...
           └─ worker W-1
    v}

    Failure handling, bottom-up:

    - {e stuck instance} — the watchdog deadline fires at a round
      boundary; the instance completes with [Watchdog_expired]. A stuck
      instance never wedges its worker for longer than its deadline.
    - {e injected instance kill} — the watchdog closure trips the kill
      flag instead; completes with [Killed].
    - {e worker crash} (injected [Kill_worker], or a genuine escaped
      exception) — the domain dies. {!tick} reaps it, requeues its
      in-flight instance at the front of the queue (bound-neutral, see
      {!Admission.requeue}), and respawns the worker. An instance that
      crashes its worker {!max_attempts} times completes with
      [Crash_budget_exhausted] instead of being requeued again.

    Every instance a worker takes therefore produces exactly one
    {!completion} — the half of the exactly-one-reply oracle that lives
    below the socket layer. *)

type instance = {
  ticket : int;  (** Server-unique; the reply ledger key. *)
  conn : int;  (** Owning connection, for reply routing. *)
  submit : Wire.submit;
  mutable attempts : int;  (** Times taken by a worker, so far. *)
  enqueued_at : float;  (** [Unix.gettimeofday] at admission. *)
}

type outcome =
  | Finished of {
      ok : bool;
      detail : string;
      rounds : int;
      msgs : int;
      bits : int;
    }
  | Watchdog_expired
  | Killed
  | Crash_budget_exhausted of string
  | Exn of string

type completion = { inst : instance; outcome : outcome; service_ms : float }

val max_attempts : int
(** Worker crashes an instance may survive before it fails (3). *)

type t

val create :
  ?flight:Ftc_telemetry.Flight.t ->
  ?counters:Inject.Counters.t ->
  workers:int ->
  queue:instance Admission.t ->
  inject:Inject.t ->
  default_timeout_ms:int ->
  notify:(unit -> unit) ->
  unit ->
  t
(** Spawns [workers] supervised domains immediately. [notify] is called
    after each completion is queued — the server's self-pipe kick; it
    runs on the worker domain and must be async-signal-ish (write to a
    pipe, not take the server's locks). [flight] (default disabled)
    receives started/round/requeue/reap/respawn events; [counters]
    (default private) is bumped when a kill fault fires — pass the
    server's so frame faults and kill faults share one tally. *)

val completions : t -> completion list
(** Drain the completion queue, oldest first. *)

val tick : t -> int
(** Reap crashed workers: requeue or fail their in-flight instances and
    respawn the domain. Returns the number of workers restarted by this
    call. Cheap when nothing died; the server calls it every loop. *)

val restarts : t -> int
(** Total workers restarted over the supervisor's lifetime. *)

val views : t -> Wire.worker_view list
(** Live per-worker state for the introspection plane, slot order.
    Safe from the event-loop domain while workers run: busy/ticket come
    from the worker's published atomic, round from its watchdog-poll
    atomic. *)

val workers_alive : t -> int

val join : t -> grace_ms:int -> bool
(** Drain-time shutdown: keep {!tick}ing until every worker has exited
    (the admission queue must already be draining), at most [grace_ms].
    [true] on a clean join; [false] if the grace expired with workers
    still running (their instances' watchdog deadlines will still bound
    them, but the caller stops waiting). *)
