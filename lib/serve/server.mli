(** The serve front-end: one event loop multiplexing every client
    connection, the admission queue, and the worker pool's completion
    stream over [select].

    Lifecycle: bind → accept/submit/reply steady state → (drain flag
    set, by signal or programmatically) → admission stops, in-flight
    instances finish under their watchdog deadlines, delayed frames
    flush → summary.

    The exactly-one-reply ledger: every admitted submit enters a ledger
    keyed by its ticket; producing the instance's terminal reply removes
    it. Shed/Rejected submits never enter (their terminal was the
    immediate reply). A clean run ends with an empty ledger —
    [summary.lost = 0] — and that holds under every injection mix,
    because worker crashes requeue and the crash budget converts a
    hopeless instance into a [Failed] reply rather than silence. A
    reply whose connection has meanwhile gone is still {e produced}
    (ledger-removed, counted in [orphaned]); the socket write is
    best-effort by design.

    Log lines (one per significant event: accept, admit, shed, restart,
    terminal reply, drain) go through [config.log]; the final summary
    line is the machine-checkable surface CI greps. *)

type addr = Unix_sock of string | Tcp of int

type config = {
  addr : addr;
  workers : int;
  bound : int;  (** Admission bound: max open (pending + in-flight) instances. *)
  default_timeout_ms : int;  (** Per-instance watchdog deadline. *)
  grace_ms : int;  (** Drain: how long to wait for workers after quiescence. *)
  inject : Inject.t;
  recorder : Ftc_telemetry.Recorder.t;
  flight : Ftc_telemetry.Flight.t;
      (** Flight-recorder ring shared with the supervisor's workers. *)
  blackbox : string option;
      (** Where to dump the ring. Triggers: watchdog fire, worker
          crash, SIGQUIT (via [dump_signal]), and at drain —
          ["ledger-residue"] when [lost > 0], ["clean-drain"]
          otherwise. [None] disables dumping (the ring may still
          record). *)
  log : string -> unit;
}

val default_config : addr -> config
(** 4 workers, bound 256, 10 s instance deadline, 30 s grace, no
    injection, disabled recorder, disabled flight ring, silent log. *)

type summary = {
  accepted : int;
  results : int;  (** Terminal [Result] replies produced. *)
  failed : int;  (** Terminal [Failed] replies produced. *)
  sheds : int;
  rejected : int;
  restarts : int;  (** Worker domains restarted after crashes. *)
  injected : int;  (** Injection decisions that fired, all kinds. *)
  orphaned : int;  (** Terminal replies whose connection was gone. *)
  lost : int;  (** Ledger residue at drain: accepted but never replied. *)
  peak_open : int;
  conns : int;
}

val summary_line : summary -> string
(** The one-line machine-checkable form, [serve summary: accepted=…
    … lost=…]. *)

val exit_code : summary -> int
(** [0] iff the drain was clean: [lost = 0] and the workers joined. *)

val run :
  ?drain:bool Atomic.t -> ?dump_signal:bool Atomic.t -> config -> (summary, string) result
(** Bind and serve until [drain] is set (the caller's signal handler or
    a test sets it), then drain and return the summary. Setting
    [dump_signal] (the caller's SIGQUIT handler) makes the next loop
    pass dump the black box without disturbing service. [Error] only
    for startup failures (bind/listen); once serving, every outcome is
    a summary. Ignores SIGPIPE. *)
