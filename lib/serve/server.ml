module Json = Ftc_journal.Json
module Registry = Ftc_telemetry.Registry
module Recorder = Ftc_telemetry.Recorder
module Flight = Ftc_telemetry.Flight
module Hist = Ftc_telemetry.Hist

type addr = Unix_sock of string | Tcp of int

type config = {
  addr : addr;
  workers : int;
  bound : int;
  default_timeout_ms : int;
  grace_ms : int;
  inject : Inject.t;
  recorder : Recorder.t;
  flight : Flight.t;
  blackbox : string option;
  log : string -> unit;
}

let default_config addr =
  {
    addr;
    workers = 4;
    bound = 256;
    default_timeout_ms = 10_000;
    grace_ms = 30_000;
    inject = Inject.none;
    recorder = Recorder.disabled;
    flight = Flight.disabled;
    blackbox = None;
    log = ignore;
  }

type summary = {
  accepted : int;
  results : int;
  failed : int;
  sheds : int;
  rejected : int;
  restarts : int;
  injected : int;
  orphaned : int;
  lost : int;
  peak_open : int;
  conns : int;
}

let summary_line s =
  Printf.sprintf
    "serve summary: accepted=%d results=%d failed=%d sheds=%d rejected=%d restarts=%d injected=%d \
     orphaned=%d peak_open=%d conns=%d lost=%d"
    s.accepted s.results s.failed s.sheds s.rejected s.restarts s.injected s.orphaned s.peak_open
    s.conns s.lost

let exit_code s = if s.lost = 0 then 0 else 1

type conn = { cid : int; fd : Unix.file_descr; decoder : Frame.Decoder.t; mutable open_ : bool }

type delayed = { due_ms : float; dconn : int; bytes : string }

(* Mutable per-run state, all owned by the event-loop domain; the only
   cross-domain edges are the admission queue, the completion queue,
   and the self-pipe. *)
type st = {
  cfg : config;
  queue : Supervisor.instance Admission.t;
  sup : Supervisor.t;
  conns : (int, conn) Hashtbl.t;
  ledger : (int, Supervisor.instance) Hashtbl.t;
  started_ms : float;
  lat : Hist.t;  (* event-loop domain only *)
  icounters : Inject.Counters.t;
  mutable delayed : delayed list;
  mutable next_cid : int;
  mutable next_ticket : int;
  mutable n_accepted : int;
  mutable n_results : int;
  mutable n_failed : int;
  mutable n_sheds : int;
  mutable n_rejected : int;
  mutable n_injected : int;
  mutable n_orphaned : int;
  mutable n_conns : int;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let reg st = Recorder.registry st.cfg.recorder
let count st name by = Registry.incr (reg st) name by
let flight st = st.cfg.flight

(* Black-box dump: every trigger rewrites the file with the current
   window — the newest dump is always the most complete picture. *)
let dump_blackbox st reason =
  match st.cfg.blackbox with
  | None -> ()
  | Some path ->
      Flight.record (flight st) (Flight.Note (Printf.sprintf "dump: %s" reason));
      Flight.dump (flight st) ~path ~reason;
      st.cfg.log (Printf.sprintf "blackbox: dumped %s (reason %s)" path reason)

(* -- socket plumbing -- *)

let bind_listen addr =
  match addr with
  | Unix_sock path ->
      (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64;
         Ok fd
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         Error (Printf.sprintf "bind %s: %s" path (Unix.error_message e)))
  | Tcp port -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      try
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Printf.sprintf "bind 127.0.0.1:%d: %s" port (Unix.error_message e)))

let close_conn st c =
  if c.open_ then begin
    c.open_ <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove st.conns c.cid
  end

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

(* Best-effort frame write: a dead peer closes the connection, it never
   kills the server. *)
let send st c reply =
  if c.open_ then begin
    let bytes = Frame.encode (Wire.reply_to_json reply) in
    try write_all c.fd bytes
    with Unix.Unix_error _ -> close_conn st c
  end

(* -- submit handling -- *)

let max_n = 4096

let validate (s : Wire.submit) =
  if Ftc_chaos.Catalog.find s.protocol = None then
    Error (Printf.sprintf "unknown protocol %S" s.protocol)
  else if s.adversary <> "none" && not (List.mem_assoc s.adversary (Ftc_fault.Strategy.all ()))
  then Error (Printf.sprintf "unknown adversary %S" s.adversary)
  else if s.n < 2 || s.n > max_n then
    Error (Printf.sprintf "n must be in [2, %d] (got %d)" max_n s.n)
  else if not (s.alpha >= 0. && s.alpha < 1.) then
    Error (Printf.sprintf "alpha must be in [0, 1) (got %g)" s.alpha)
  else
    match s.timeout_ms with
    | Some t when t < 1 -> Error "timeout_ms must be positive"
    | _ -> Ok ()

let stats_kvs st =
  [
    ("accepted", st.n_accepted);
    ("results", st.n_results);
    ("failed", st.n_failed);
    ("sheds", st.n_sheds);
    ("rejected", st.n_rejected);
    ("pending", Admission.pending st.queue);
    ("open", Admission.open_count st.queue);
    ("peak_open", Admission.peak_open st.queue);
    ("conns", Hashtbl.length st.conns);
    (* Appended in v2: same (string * int) shape, so v1 consumers that
       pick keys by name keep working and never see these. *)
    ("latency_count", Hist.count st.lat);
    ("latency_p50_ms", Hist.quantile st.lat 0.5);
    ("latency_p90_ms", Hist.quantile st.lat 0.9);
    ("latency_p99_ms", Hist.quantile st.lat 0.99);
  ]

let uptime_ms st = int_of_float (now_ms () -. st.started_ms)

let introspect st =
  {
    Wire.uptime_ms = uptime_ms st;
    version = Wire.protocol_version;
    pending = Admission.pending st.queue;
    open_ = Admission.open_count st.queue;
    peak_open = Admission.peak_open st.queue;
    bound = Admission.bound st.queue;
    ewma_ms = Admission.ewma_ms st.queue;
    lat_count = Hist.count st.lat;
    p50_ms = Hist.quantile st.lat 0.5;
    p90_ms = Hist.quantile st.lat 0.9;
    p99_ms = Hist.quantile st.lat 0.99;
    workers = Supervisor.views st.sup;
    injections = Inject.Counters.snapshot st.icounters;
    counters = stats_kvs st;
  }

let handle_submit st c (s : Wire.submit) =
  match validate s with
  | Error reason ->
      st.n_rejected <- st.n_rejected + 1;
      count st "serve/rejected" 1;
      send st c (Wire.Rejected { id = s.id; reason })
  | Ok () -> (
      let ticket = st.next_ticket in
      st.next_ticket <- ticket + 1;
      let inst =
        {
          Supervisor.ticket;
          conn = c.cid;
          submit = s;
          attempts = 0;
          enqueued_at = Unix.gettimeofday ();
        }
      in
      match Admission.admit st.queue inst with
      | Admission.Admitted ->
          Hashtbl.replace st.ledger ticket inst;
          st.n_accepted <- st.n_accepted + 1;
          count st "serve/accepted" 1;
          Flight.record (flight st)
            (Flight.Admitted { ticket; id = s.id; protocol = s.protocol; n = s.n; seed = s.seed });
          st.cfg.log (Printf.sprintf "admit ticket=%d id=%s protocol=%s" ticket s.id s.protocol);
          send st c (Wire.Accepted { id = s.id; ticket })
      | Admission.Shed_full retry_after_ms ->
          st.n_sheds <- st.n_sheds + 1;
          count st "serve/sheds" 1;
          Flight.record (flight st)
            (Flight.Shed { id = s.id; hint_ms = retry_after_ms; draining = false });
          st.cfg.log (Printf.sprintf "shed id=%s retry_after_ms=%d" s.id retry_after_ms);
          send st c (Wire.Shed { id = s.id; retry_after_ms; draining = false })
      | Admission.Shed_draining retry_after_ms ->
          st.n_sheds <- st.n_sheds + 1;
          count st "serve/sheds" 1;
          Flight.record (flight st)
            (Flight.Shed { id = s.id; hint_ms = retry_after_ms; draining = true });
          send st c (Wire.Shed { id = s.id; retry_after_ms; draining = true }))

let handle_frame st c json =
  match Wire.request_of_json json with
  | Error e ->
      st.n_rejected <- st.n_rejected + 1;
      count st "serve/rejected" 1;
      send st c (Wire.Rejected { id = ""; reason = e })
  | Ok Wire.Ping ->
      send st c (Wire.Pong { uptime_ms = uptime_ms st; version = Wire.protocol_version })
  | Ok Wire.Stats -> send st c (Wire.Stats_reply (stats_kvs st))
  | Ok Wire.Introspect -> send st c (Wire.Introspect_reply (introspect st))
  | Ok (Wire.Submit s) -> handle_submit st c s

let read_conn st c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | 0 -> close_conn st c
  | n ->
      Frame.Decoder.feed c.decoder buf 0 n;
      let rec frames () =
        if c.open_ then
          match Frame.Decoder.next c.decoder with
          | Ok (Some json) ->
              handle_frame st c json;
              frames ()
          | Ok None -> ()
          | Error e ->
              (* Protocol error: the stream is unparseable from here on.
                 Say why, then hang up. *)
              st.cfg.log (Printf.sprintf "conn %d: protocol error: %s" c.cid e);
              send st c (Wire.Rejected { id = ""; reason = "protocol error: " ^ e });
              close_conn st c
      in
      frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn st c

(* -- completions -> terminal replies -- *)

let reply_of_completion (c : Supervisor.completion) =
  let s = c.inst.submit in
  let ticket = c.inst.ticket in
  match c.outcome with
  | Supervisor.Finished { ok; detail; rounds; msgs; bits } ->
      Wire.Result { id = s.id; ticket; ok; detail; rounds; msgs; bits; attempts = c.inst.attempts }
  | Supervisor.Watchdog_expired ->
      Wire.Failed
        { id = s.id; ticket; class_ = Wire.failed_watchdog; detail = "instance deadline expired" }
  | Supervisor.Killed ->
      Wire.Failed
        { id = s.id; ticket; class_ = Wire.failed_killed; detail = "injected instance kill" }
  | Supervisor.Crash_budget_exhausted d ->
      Wire.Failed
        {
          id = s.id;
          ticket;
          class_ = Wire.failed_crashed;
          detail = Printf.sprintf "worker crashed %d times running this instance: %s"
              Supervisor.max_attempts d;
        }
  | Supervisor.Exn d -> Wire.Failed { id = s.id; ticket; class_ = Wire.failed_exception; detail = d }

(* Terminal replies are the injection point for the frame/connection
   faults: dropped, truncated, or delayed on the way out. The ledger
   entry is removed regardless — the reply was produced; what the
   socket does with it is the client's weather. *)
let send_terminal st (comp : Supervisor.completion) reply =
  let salt = (comp.inst.ticket * 8) + 6 in
  let inj = st.cfg.inject in
  match Hashtbl.find_opt st.conns comp.inst.conn with
  | None | Some { open_ = false; _ } ->
      st.n_orphaned <- st.n_orphaned + 1;
      st.cfg.log (Printf.sprintf "ticket %d: reply orphaned (connection gone)" comp.inst.ticket)
  | Some c ->
      let record_fired kind =
        Inject.Counters.bump st.icounters kind;
        Flight.record (flight st)
          (Flight.Injected { kind = Inject.kind_to_string kind; ticket = comp.inst.ticket })
      in
      if Inject.fire inj Inject.Drop_conn ~salt then begin
        st.n_injected <- st.n_injected + 1;
        count st "serve/injected" 1;
        st.n_orphaned <- st.n_orphaned + 1;
        record_fired Inject.Drop_conn;
        st.cfg.log (Printf.sprintf "inject drop-conn conn=%d ticket=%d" c.cid comp.inst.ticket);
        close_conn st c
      end
      else if Inject.fire inj Inject.Truncate_frame ~salt then begin
        st.n_injected <- st.n_injected + 1;
        count st "serve/injected" 1;
        st.n_orphaned <- st.n_orphaned + 1;
        record_fired Inject.Truncate_frame;
        st.cfg.log (Printf.sprintf "inject truncate-frame conn=%d ticket=%d" c.cid comp.inst.ticket);
        let bytes = Frame.encode (Wire.reply_to_json reply) in
        (try write_all c.fd (String.sub bytes 0 (String.length bytes / 2))
         with Unix.Unix_error _ -> ());
        close_conn st c
      end
      else if Inject.fire inj Inject.Delay_frame ~salt then begin
        st.n_injected <- st.n_injected + 1;
        count st "serve/injected" 1;
        record_fired Inject.Delay_frame;
        let delay = Inject.delay_ms inj ~salt in
        st.cfg.log
          (Printf.sprintf "inject delay-frame conn=%d ticket=%d ms=%d" c.cid comp.inst.ticket delay);
        st.delayed <-
          {
            due_ms = now_ms () +. float_of_int delay;
            dconn = c.cid;
            bytes = Frame.encode (Wire.reply_to_json reply);
          }
          :: st.delayed
      end
      else send st c reply

let process_completion st (comp : Supervisor.completion) =
  let reply = reply_of_completion comp in
  Hashtbl.remove st.ledger comp.inst.ticket;
  let latency_ms = int_of_float (now_ms () -. (comp.inst.enqueued_at *. 1000.)) in
  Hist.record st.lat (max 0 latency_ms);
  Registry.observe (reg st) "serve/latency_ms" (max 0 latency_ms);
  (let class_, ok =
     match reply with
     | Wire.Result { ok; _ } -> ("ok", ok)
     | Wire.Failed { class_; _ } -> (class_, false)
     | _ -> ("?", false)
   in
   Flight.record (flight st) (Flight.Decided { ticket = comp.inst.ticket; class_; ok }));
  (match comp.outcome with
  | Supervisor.Watchdog_expired -> dump_blackbox st "watchdog"
  | _ -> ());
  (match comp.outcome with
  | Supervisor.Finished { ok; rounds; msgs; bits; _ } ->
      st.n_results <- st.n_results + 1;
      count st "serve/results" 1;
      if Recorder.enabled st.cfg.recorder then begin
        let dur_ns = Int64.of_float (comp.service_ms *. 1e6) in
        Recorder.emit st.cfg.recorder
          (Recorder.Trial
             {
               track = "serve";
               protocol = comp.inst.submit.protocol;
               seed = comp.inst.submit.seed;
               ok;
               msgs;
               bits;
               rounds;
               start_ns = Int64.sub (Recorder.now_ns st.cfg.recorder) dur_ns;
               dur_ns;
             })
      end
  | _ ->
      st.n_failed <- st.n_failed + 1;
      count st "serve/failed" 1);
  (match comp.outcome with
  | Supervisor.Killed -> st.n_injected <- st.n_injected + 1
  | _ -> ());
  st.cfg.log
    (Printf.sprintf "ticket %d: terminal %s (attempts %d, %.1f ms)" comp.inst.ticket
       (match reply with
       | Wire.Result { ok; _ } -> if ok then "result ok" else "result violation"
       | Wire.Failed { class_; _ } -> "failed " ^ class_
       | _ -> "?")
       comp.inst.attempts comp.service_ms);
  send_terminal st comp reply

let flush_delayed st ~force =
  let now = now_ms () in
  let due, rest =
    List.partition (fun d -> force || d.due_ms <= now) st.delayed
  in
  st.delayed <- rest;
  List.iter
    (fun d ->
      match Hashtbl.find_opt st.conns d.dconn with
      | None | Some { open_ = false; _ } -> st.n_orphaned <- st.n_orphaned + 1
      | Some c -> (
          try write_all c.fd d.bytes with Unix.Unix_error _ -> close_conn st c))
    (List.rev due)

(* -- the event loop -- *)

let run ?(drain = Atomic.make false) ?(dump_signal = Atomic.make false) cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  match bind_listen cfg.addr with
  | Error e -> Error e
  | Ok listen_fd ->
      let pipe_r, pipe_w = Unix.pipe () in
      Unix.set_nonblock pipe_r;
      let notify () = try ignore (Unix.write_substring pipe_w "x" 0 1) with Unix.Unix_error _ -> () in
      let queue = Admission.create ~bound:cfg.bound ~workers:cfg.workers () in
      let icounters = Inject.Counters.create () in
      let sup =
        Supervisor.create ~flight:cfg.flight ~counters:icounters ~workers:cfg.workers ~queue
          ~inject:cfg.inject ~default_timeout_ms:cfg.default_timeout_ms ~notify ()
      in
      let st =
        {
          cfg;
          queue;
          sup;
          conns = Hashtbl.create 64;
          ledger = Hashtbl.create 64;
          started_ms = now_ms ();
          lat = Hist.create ();
          icounters;
          delayed = [];
          next_cid = 0;
          next_ticket = 0;
          n_accepted = 0;
          n_results = 0;
          n_failed = 0;
          n_sheds = 0;
          n_rejected = 0;
          n_injected = 0;
          n_orphaned = 0;
          n_conns = 0;
        }
      in
      Flight.record cfg.flight (Flight.Note "serving");
      cfg.log
        (Printf.sprintf "serving (%s, workers=%d, bound=%d, inject=%s)"
           (match cfg.addr with Unix_sock p -> p | Tcp p -> Printf.sprintf "127.0.0.1:%d" p)
           cfg.workers cfg.bound (Inject.describe cfg.inject));
      let drain_pipe () =
        let buf = Bytes.create 256 in
        let rec go () =
          match Unix.read pipe_r buf 0 256 with
          | 256 -> go ()
          | _ -> ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        in
        go ()
      in
      let rec loop () =
        if Atomic.get drain && not (Admission.draining queue) then begin
          cfg.log "drain: admission stopped, finishing in-flight instances";
          Flight.record cfg.flight (Flight.Note "drain");
          Admission.drain queue
        end;
        if Atomic.exchange dump_signal false then dump_blackbox st "sigquit";
        let draining = Admission.draining queue in
        let restarted = Supervisor.tick sup in
        if restarted > 0 then begin
          st.n_injected <- st.n_injected + restarted;
          count st "serve/restarts" restarted;
          cfg.log
            (Printf.sprintf "restarted worker x%d after crash (total restarts %d)" restarted
               (Supervisor.restarts sup));
          dump_blackbox st "worker-crash"
        end;
        List.iter (process_completion st) (Supervisor.completions sup);
        flush_delayed st ~force:false;
        Registry.set_gauge (reg st) "serve/queue_depth" (Admission.pending queue);
        Registry.gauge_max (reg st) "serve/peak_open" (Admission.peak_open queue);
        if draining && Admission.quiescent queue && st.delayed = [] then ()
        else begin
          let conn_fds = Hashtbl.fold (fun _ c acc -> c.fd :: acc) st.conns [] in
          let rds = (pipe_r :: (if draining then [] else [ listen_fd ])) @ conn_fds in
          let timeout =
            match st.delayed with
            | [] -> 0.05
            | ds ->
                let next = List.fold_left (fun m d -> Float.min m d.due_ms) Float.infinity ds in
                Float.max 0.001 (Float.min 0.05 ((next -. now_ms ()) /. 1000.))
          in
          let readable =
            match Unix.select rds [] [] timeout with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          if List.mem pipe_r readable then drain_pipe ();
          if (not draining) && List.mem listen_fd readable then begin
            match Unix.accept listen_fd with
            | fd, _ ->
                let cid = st.next_cid in
                st.next_cid <- cid + 1;
                st.n_conns <- st.n_conns + 1;
                Hashtbl.replace st.conns cid
                  { cid; fd; decoder = Frame.Decoder.create (); open_ = true };
                cfg.log (Printf.sprintf "conn %d: accepted" cid)
            | exception Unix.Unix_error _ -> ()
          end;
          List.iter
            (fun fd ->
              if fd <> pipe_r && fd <> listen_fd then
                match Hashtbl.fold (fun _ c acc -> if c.fd = fd then Some c else acc) st.conns None with
                | Some c when c.open_ -> read_conn st c
                | _ -> ())
            readable;
          loop ()
        end
      in
      loop ();
      (* Quiescent: join the workers, then drain the last completions
         (all already pushed — see the worker-side ordering). *)
      let joined = Supervisor.join sup ~grace_ms:cfg.grace_ms in
      if not joined then cfg.log "drain: grace expired with workers still running";
      ignore (Supervisor.tick sup);
      List.iter (process_completion st) (Supervisor.completions sup);
      flush_delayed st ~force:true;
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        (Hashtbl.copy st.conns);
      Unix.close listen_fd;
      (try Unix.close pipe_r with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      (match cfg.addr with
      | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ());
      let s =
        {
          accepted = st.n_accepted;
          results = st.n_results;
          failed = st.n_failed;
          sheds = st.n_sheds;
          rejected = st.n_rejected;
          restarts = Supervisor.restarts sup;
          injected = st.n_injected;
          orphaned = st.n_orphaned;
          lost = Hashtbl.length st.ledger;
          peak_open = Admission.peak_open queue;
          conns = st.n_conns;
        }
      in
      Registry.set_gauge (reg st) "serve/lost" s.lost;
      dump_blackbox st (if s.lost > 0 then "ledger-residue" else "clean-drain");
      cfg.log (summary_line s);
      Ok s
