module Transport = Ftc_transport.Transport
module Hist = Ftc_telemetry.Hist

type config = {
  addr : Server.addr;
  total : int;
  rate : float;
  protocol : string;
  n : int;
  alpha : float;
  adversary : string;
  base_seed : int;
  timeout_ms : int option;
  retries : int;
  backoff : Transport.config;
  backoff_unit_ms : int;
  overall_timeout_ms : int;
  log : string -> unit;
}

let default_config addr =
  {
    addr;
    total = 100;
    rate = 0.;
    protocol = "ft-leader-election";
    n = 64;
    alpha = 0.125;
    adversary = "none";
    base_seed = 1;
    timeout_ms = None;
    retries = 4;
    backoff = Transport.default_config;
    backoff_unit_ms = 25;
    overall_timeout_ms = 120_000;
    log = ignore;
  }

type stats = {
  submitted : int;
  accepted : int;
  results : int;
  result_violations : int;
  failures : int;
  shed_retries : int;
  gave_up : int;
  rejected : int;
  abandoned : int;
  reconnects : int;
  p50_ms : int;
  p99_ms : int;
  elapsed_ms : float;
}

let stats_line s =
  Printf.sprintf
    "client: submitted=%d accepted=%d results=%d violations=%d failures=%d shed_retries=%d \
     gave_up=%d rejected=%d abandoned=%d reconnects=%d p50_ms=%d p99_ms=%d elapsed_ms=%.0f"
    s.submitted s.accepted s.results s.result_violations s.failures s.shed_retries s.gave_up
    s.rejected s.abandoned s.reconnects s.p50_ms s.p99_ms s.elapsed_ms

let exit_code s = if s.abandoned = 0 then 0 else 1

(* Per-submit client-side state machine:
   Unsent(due) -> Awaiting_accept -> Awaiting_terminal -> done.
   A shed loops back to Unsent with a later due time; a dead connection
   sends Awaiting_accept back to Unsent (the submit was never admitted)
   and Awaiting_terminal to Abandoned (it was — resubmitting would run
   the instance twice). *)
type istate =
  | Unsent of float  (** due, ms epoch *)
  | Awaiting_accept
  | Awaiting_terminal
  | Done_result of bool
  | Done_failed
  | Done_rejected
  | Gave_up
  | Abandoned

type inst = {
  idx : int;
  mutable state : istate;
  mutable attempts : int;  (** Submission attempts so far. *)
  mutable first_sent_ms : float;  (** First submit write; latency epoch. *)
}

let now_ms () = Unix.gettimeofday () *. 1000.

let connect addr =
  try
    let fd =
      match addr with
      | Server.Unix_sock path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
      | Server.Tcp port ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          fd
    in
    Ok fd
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

let run cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let ladder_ms k = Transport.nth_timeout cfg.backoff k * cfg.backoff_unit_ms in
  let start = now_ms () in
  let deadline = start +. float_of_int cfg.overall_timeout_ms in
  let due_of_schedule i =
    if cfg.rate <= 0. then start else start +. (float_of_int i /. cfg.rate *. 1000.)
  in
  let insts =
    Array.init cfg.total (fun i ->
        { idx = i; state = Unsent (due_of_schedule i); attempts = 0; first_sent_ms = 0. })
  in
  let lat = Hist.create () in
  let submitted = ref 0 in
  let accepted = ref 0 in
  let results = ref 0 in
  let violations = ref 0 in
  let failures = ref 0 in
  let shed_retries = ref 0 in
  let gave_up = ref 0 in
  let rejected = ref 0 in
  let abandoned = ref 0 in
  let reconnects = ref 0 in
  let id_of i = Printf.sprintf "c%d" i in
  let inst_of_id id =
    if String.length id > 1 && id.[0] = 'c' then
      match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
      | Some i when i >= 0 && i < cfg.total -> Some insts.(i)
      | _ -> None
    else None
  in
  let fd = ref None in
  let decoder = ref (Frame.Decoder.create ()) in
  let conn_attempt = ref 0 in
  let conn_retry_at = ref 0. in
  let drop_connection () =
    (match !fd with Some f -> ( try Unix.close f with Unix.Unix_error _ -> ()) | None -> ());
    fd := None;
    decoder := Frame.Decoder.create ();
    let backoff = ladder_ms !conn_attempt in
    incr conn_attempt;
    conn_retry_at := now_ms () +. float_of_int backoff;
    Array.iter
      (fun inst ->
        match inst.state with
        | Awaiting_accept ->
            (* Never admitted: safe to resubmit after the conn backoff. *)
            inst.state <- Unsent (!conn_retry_at)
        | Awaiting_terminal ->
            inst.state <- Abandoned;
            incr abandoned;
            cfg.log (Printf.sprintf "submit %d: abandoned (connection died)" inst.idx)
        | _ -> ())
      insts
  in
  let ensure_conn () =
    match !fd with
    | Some _ -> true
    | None ->
        if now_ms () < !conn_retry_at then false
        else begin
          match connect cfg.addr with
          | Ok f ->
              if !conn_attempt > 0 then incr reconnects;
              conn_attempt := 0;
              fd := Some f;
              true
          | Error e ->
              cfg.log (Printf.sprintf "connect: %s (retrying)" e);
              let backoff = ladder_ms !conn_attempt in
              incr conn_attempt;
              conn_retry_at := now_ms () +. float_of_int backoff;
              false
        end
  in
  let send_submit f inst =
    let s =
      {
        Wire.id = id_of inst.idx;
        protocol = cfg.protocol;
        n = cfg.n;
        alpha = cfg.alpha;
        seed = cfg.base_seed + inst.idx;
        adversary = cfg.adversary;
        timeout_ms = cfg.timeout_ms;
      }
    in
    inst.attempts <- inst.attempts + 1;
    if inst.first_sent_ms = 0. then inst.first_sent_ms <- now_ms ();
    incr submitted;
    match write_all f (Frame.encode (Wire.request_to_json (Wire.Submit s))) with
    | () -> inst.state <- Awaiting_accept
    | exception Unix.Unix_error _ ->
        inst.state <- Unsent (now_ms ());
        inst.attempts <- inst.attempts - 1;
        drop_connection ()
  in
  let terminal inst st =
    Hist.record lat (max 0 (int_of_float (now_ms () -. inst.first_sent_ms)));
    inst.state <- st
  in
  let handle_reply = function
    | Wire.Pong _ | Wire.Stats_reply _ | Wire.Introspect_reply _ -> ()
    | Wire.Accepted { id; _ } -> (
        match inst_of_id id with
        | Some inst when inst.state = Awaiting_accept ->
            incr accepted;
            inst.state <- Awaiting_terminal
        | _ -> ())
    | Wire.Shed { id; retry_after_ms; draining } -> (
        match inst_of_id id with
        | Some inst when inst.state = Awaiting_accept ->
            if draining || inst.attempts > cfg.retries then begin
              incr gave_up;
              inst.state <- Gave_up
            end
            else begin
              incr shed_retries;
              let wait = max retry_after_ms (ladder_ms (inst.attempts - 1)) in
              cfg.log
                (Printf.sprintf "submit %d: shed, retrying in %d ms (attempt %d)" inst.idx wait
                   inst.attempts);
              inst.state <- Unsent (now_ms () +. float_of_int wait)
            end
        | _ -> ())
    | Wire.Rejected { id; reason } -> (
        match inst_of_id id with
        | Some inst when inst.state = Awaiting_accept ->
            incr rejected;
            cfg.log (Printf.sprintf "submit %d: rejected: %s" inst.idx reason);
            inst.state <- Done_rejected
        | _ -> ())
    | Wire.Result { id; ok; _ } -> (
        match inst_of_id id with
        | Some inst when inst.state = Awaiting_terminal ->
            incr results;
            if not ok then incr violations;
            terminal inst (Done_result ok)
        | _ -> ())
    | Wire.Failed { id; class_; detail; _ } -> (
        match inst_of_id id with
        | Some inst when inst.state = Awaiting_terminal ->
            incr failures;
            cfg.log (Printf.sprintf "submit %d: failed (%s): %s" inst.idx class_ detail);
            terminal inst Done_failed
        | _ -> ())
  in
  let all_settled () =
    Array.for_all
      (fun i ->
        match i.state with
        | Done_result _ | Done_failed | Done_rejected | Gave_up | Abandoned -> true
        | _ -> false)
      insts
  in
  let rec loop () =
    if all_settled () then ()
    else if now_ms () > deadline then
      Array.iter
        (fun inst ->
          match inst.state with
          | Unsent _ | Awaiting_accept | Awaiting_terminal ->
              incr abandoned;
              inst.state <- Abandoned
          | _ -> ())
        insts
    else begin
      (if ensure_conn () then
         let f = Option.get !fd in
         let now = now_ms () in
         Array.iter
           (fun inst ->
             match inst.state with
             | Unsent due when due <= now && !fd <> None -> send_submit f inst
             | _ -> ())
           insts);
      (match !fd with
      | None -> Unix.sleepf 0.01
      | Some f -> (
          let readable =
            match Unix.select [ f ] [] [] 0.02 with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          if readable <> [] then
            let buf = Bytes.create 4096 in
            match Unix.read f buf 0 4096 with
            | 0 -> drop_connection ()
            | n ->
                Frame.Decoder.feed !decoder buf 0 n;
                let rec frames () =
                  match Frame.Decoder.next !decoder with
                  | Ok (Some json) ->
                      (match Wire.reply_of_json json with
                      | Ok r -> handle_reply r
                      | Error e -> cfg.log (Printf.sprintf "bad reply frame: %s" e));
                      frames ()
                  | Ok None -> ()
                  | Error e ->
                      cfg.log (Printf.sprintf "reply stream error: %s" e);
                      drop_connection ()
                in
                frames ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error _ -> drop_connection ()));
      loop ()
    end
  in
  match ensure_conn () with
  | false -> Error "cannot connect to server"
  | true ->
      loop ();
      (match !fd with Some f -> ( try Unix.close f with Unix.Unix_error _ -> ()) | None -> ());
      Ok
        {
          submitted = !submitted;
          accepted = !accepted;
          results = !results;
          result_violations = !violations;
          failures = !failures;
          shed_retries = !shed_retries;
          gave_up = !gave_up;
          rejected = !rejected;
          abandoned = !abandoned;
          reconnects = !reconnects;
          p50_ms = Hist.quantile lat 0.5;
          p99_ms = Hist.quantile lat 0.99;
          elapsed_ms = now_ms () -. start;
        }
