module Json = Ftc_journal.Json

type mode = Ansi | Raw | Json

type config = {
  addr : Server.addr;
  interval_ms : int;
  iterations : int;
  mode : mode;
  out : string -> unit;
}

let default_config addr =
  { addr; interval_ms = 1000; iterations = 0; mode = Ansi; out = print_string }

let now_ms () = Unix.gettimeofday () *. 1000.

let connect addr =
  try
    let fd =
      match addr with
      | Server.Unix_sock path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
      | Server.Tcp port ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          fd
    in
    Ok fd
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let spark series =
  match series with
  | [] -> ""
  | _ ->
      let hi = List.fold_left max 1 series in
      series
      |> List.map (fun v ->
             let v = max 0 v in
             blocks.(min 7 (v * 8 / (hi + 1))))
      |> String.concat ""

(* One sample = the pair of replies to one Ping + Introspect write. *)
type sample = { uptime_ms : int; version : int; intro : Wire.introspect; at_ms : float }

let fetch fd decoder ~deadline_ms =
  let req r = Frame.encode (Wire.request_to_json r) in
  match write_all fd (req Wire.Ping ^ req Wire.Introspect) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () ->
      let pong = ref None in
      let intro = ref None in
      let buf = Bytes.create 4096 in
      let rec drain_frames () =
        match Frame.Decoder.next decoder with
        | Ok (Some json) ->
            (match Wire.reply_of_json json with
            | Ok (Wire.Pong { uptime_ms; version }) -> pong := Some (uptime_ms, version)
            | Ok (Wire.Introspect_reply i) -> intro := Some i
            | Ok _ | Error _ -> ());
            drain_frames ()
        | Ok None -> Ok ()
        | Error e -> Error ("reply stream: " ^ e)
      in
      let rec wait () =
        match (!pong, !intro) with
        | Some (uptime_ms, version), Some i ->
            Ok { uptime_ms; version; intro = i; at_ms = now_ms () }
        | _ when now_ms () > deadline_ms -> Error "introspect timed out"
        | _ -> (
            let timeout = Float.max 0.01 ((deadline_ms -. now_ms ()) /. 1000.) in
            match Unix.select [ fd ] [] [] timeout with
            | [], _, _ -> wait ()
            | _ -> (
                match Unix.read fd buf 0 4096 with
                | 0 -> Error "server closed the connection"
                | n -> (
                    Frame.Decoder.feed decoder buf 0 n;
                    match drain_frames () with Ok () -> wait () | Error e -> Error e)
                | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> wait ()
                | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ())
      in
      wait ()

let addr_label = function
  | Server.Unix_sock p -> p
  | Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p

let counter name kvs = Option.value ~default:0 (List.assoc_opt name kvs)

let render cfg ~history ~restart_gap ~rate (s : sample) =
  let i = s.intro in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  if cfg.mode = Ansi then Buffer.add_string b "\x1b[H\x1b[2J";
  if restart_gap then line "-- server restart detected: uptime went backwards, new lifetime --";
  line "ftc top -- %s | uptime %.1f s | protocol v%d" (addr_label cfg.addr)
    (float_of_int s.uptime_ms /. 1000.)
    s.version;
  line "queue   pending %d | open %d/%d | peak %d | ewma %.1f ms" i.pending i.open_ i.bound
    i.peak_open i.ewma_ms;
  line "depth   %s" (spark (List.rev history));
  line "rate    %.1f terminals/s | latency p50 %d ms p90 %d ms p99 %d ms (n=%d)" rate i.p50_ms
    i.p90_ms i.p99_ms i.lat_count;
  line "workers";
  List.iter
    (fun (w : Wire.worker_view) ->
      if w.w_busy then
        line "  w%-3d busy  ticket %-6d round %-5d respawns %d" w.w_idx w.w_ticket w.w_round
          w.w_respawns
      else line "  w%-3d idle  %-20s respawns %d" w.w_idx "" w.w_respawns)
    i.workers;
  line "inject  %s"
    (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) i.injections));
  line "counts  %s"
    (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) i.counters));
  Buffer.contents b

let terminals kvs = counter "results" kvs + counter "failed" kvs

let run ?(stop = Atomic.make false) cfg =
  match connect cfg.addr with
  | Error e -> Error (Printf.sprintf "connect %s: %s" (addr_label cfg.addr) e)
  | Ok fd ->
      let decoder = Frame.Decoder.create () in
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          let history = ref [] in
          let prev = ref None in
          let samples = ref 0 in
          let rec loop () =
            if Atomic.get stop || (cfg.iterations > 0 && !samples >= cfg.iterations) then
              Ok !samples
            else
              let deadline_ms =
                now_ms () +. Float.max 2000. (float_of_int cfg.interval_ms)
              in
              match fetch fd decoder ~deadline_ms with
              | Error e -> if !samples = 0 then Error e else Error (e ^ " (connection lost)")
              | Ok s ->
                  incr samples;
                  (match cfg.mode with
                  | Json ->
                      cfg.out
                        (Json.to_string (Wire.reply_to_json (Wire.Introspect_reply s.intro))
                        ^ "\n")
                  | Ansi | Raw ->
                      let restart_gap, rate =
                        match !prev with
                        | None -> (false, 0.)
                        | Some p ->
                            let dt = Float.max 1. (s.at_ms -. p.at_ms) /. 1000. in
                            ( s.uptime_ms < p.uptime_ms,
                              float_of_int
                                (max 0 (terminals s.intro.counters - terminals p.intro.counters))
                              /. dt )
                      in
                      history := s.intro.pending :: (if restart_gap then [] else !history);
                      if List.length !history > 32 then
                        history := List.filteri (fun i _ -> i < 32) !history;
                      cfg.out (render cfg ~history:!history ~restart_gap ~rate s));
                  prev := Some s;
                  if Atomic.get stop || (cfg.iterations > 0 && !samples >= cfg.iterations) then
                    Ok !samples
                  else begin
                    Unix.sleepf (float_of_int (max 1 cfg.interval_ms) /. 1000.);
                    loop ()
                  end
          in
          loop ())
