module Json = Ftc_journal.Json

type submit = {
  id : string;
  protocol : string;
  n : int;
  alpha : float;
  seed : int;
  adversary : string;
  timeout_ms : int option;
}

type request = Submit of submit | Ping | Stats

type reply =
  | Accepted of { id : string; ticket : int }
  | Shed of { id : string; retry_after_ms : int; draining : bool }
  | Rejected of { id : string; reason : string }
  | Result of {
      id : string;
      ticket : int;
      ok : bool;
      detail : string;
      rounds : int;
      msgs : int;
      bits : int;
      attempts : int;
    }
  | Failed of { id : string; ticket : int; class_ : string; detail : string }
  | Pong
  | Stats_reply of (string * int) list

let failed_watchdog = "watchdog"
let failed_killed = "killed"
let failed_crashed = "crashed"
let failed_exception = "exception"

(* -- encoding -- *)

let request_to_json = function
  | Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Submit s ->
      Json.Obj
        ([
           ("op", Json.String "submit");
           ("id", Json.String s.id);
           ("protocol", Json.String s.protocol);
           ("n", Json.Int s.n);
           ("alpha", Json.Float s.alpha);
           ("seed", Json.Int s.seed);
           ("adversary", Json.String s.adversary);
         ]
        @ match s.timeout_ms with None -> [] | Some t -> [ ("timeout_ms", Json.Int t) ])

let reply_to_json = function
  | Pong -> Json.Obj [ ("op", Json.String "pong") ]
  | Accepted { id; ticket } ->
      Json.Obj [ ("op", Json.String "accepted"); ("id", Json.String id); ("ticket", Json.Int ticket) ]
  | Shed { id; retry_after_ms; draining } ->
      Json.Obj
        [
          ("op", Json.String "shed");
          ("id", Json.String id);
          ("retry_after_ms", Json.Int retry_after_ms);
          ("draining", Json.Bool draining);
        ]
  | Rejected { id; reason } ->
      Json.Obj
        [ ("op", Json.String "rejected"); ("id", Json.String id); ("reason", Json.String reason) ]
  | Result { id; ticket; ok; detail; rounds; msgs; bits; attempts } ->
      Json.Obj
        [
          ("op", Json.String "result");
          ("id", Json.String id);
          ("ticket", Json.Int ticket);
          ("ok", Json.Bool ok);
          ("detail", Json.String detail);
          ("rounds", Json.Int rounds);
          ("msgs", Json.Int msgs);
          ("bits", Json.Int bits);
          ("attempts", Json.Int attempts);
        ]
  | Failed { id; ticket; class_; detail } ->
      Json.Obj
        [
          ("op", Json.String "failed");
          ("id", Json.String id);
          ("ticket", Json.Int ticket);
          ("class", Json.String class_);
          ("detail", Json.String detail);
        ]
  | Stats_reply kvs ->
      Json.Obj
        [
          ("op", Json.String "stats");
          ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs));
        ]

(* -- decoding -- *)

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let ( let* ) = Result.bind

let op j =
  match Option.bind (Json.member "op" j) Json.to_str with
  | Some op -> Ok op
  | None -> Error "missing op"

let request_of_json j =
  let* op = op j in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "submit" ->
      let* id = field "id" Json.to_str j in
      let* protocol = field "protocol" Json.to_str j in
      let* n = field "n" Json.to_int j in
      let* alpha = field "alpha" Json.to_float j in
      let* seed = field "seed" Json.to_int j in
      let* adversary = field "adversary" Json.to_str j in
      let timeout_ms = Option.bind (Json.member "timeout_ms" j) Json.to_int in
      Ok (Submit { id; protocol; n; alpha; seed; adversary; timeout_ms })
  | op -> Error (Printf.sprintf "unknown request op %S" op)

let reply_of_json j =
  let* op = op j in
  match op with
  | "pong" -> Ok Pong
  | "accepted" ->
      let* id = field "id" Json.to_str j in
      let* ticket = field "ticket" Json.to_int j in
      Ok (Accepted { id; ticket })
  | "shed" ->
      let* id = field "id" Json.to_str j in
      let* retry_after_ms = field "retry_after_ms" Json.to_int j in
      let* draining = field "draining" Json.to_bool j in
      Ok (Shed { id; retry_after_ms; draining })
  | "rejected" ->
      let* id = field "id" Json.to_str j in
      let* reason = field "reason" Json.to_str j in
      Ok (Rejected { id; reason })
  | "result" ->
      let* id = field "id" Json.to_str j in
      let* ticket = field "ticket" Json.to_int j in
      let* ok = field "ok" Json.to_bool j in
      let* detail = field "detail" Json.to_str j in
      let* rounds = field "rounds" Json.to_int j in
      let* msgs = field "msgs" Json.to_int j in
      let* bits = field "bits" Json.to_int j in
      let* attempts = field "attempts" Json.to_int j in
      Ok (Result { id; ticket; ok; detail; rounds; msgs; bits; attempts })
  | "failed" ->
      let* id = field "id" Json.to_str j in
      let* ticket = field "ticket" Json.to_int j in
      let* class_ = field "class" Json.to_str j in
      let* detail = field "detail" Json.to_str j in
      Ok (Failed { id; ticket; class_; detail })
  | "stats" -> (
      match Json.member "metrics" j with
      | Some (Json.Obj kvs) ->
          let ints =
            List.filter_map
              (fun (k, v) -> match Json.to_int v with Some i -> Some (k, i) | None -> None)
              kvs
          in
          Ok (Stats_reply ints)
      | _ -> Error "missing or malformed field \"metrics\"")
  | op -> Error (Printf.sprintf "unknown reply op %S" op)

let reply_id = function
  | Accepted { id; _ } | Shed { id; _ } | Rejected { id; _ } | Result { id; _ } | Failed { id; _ }
    ->
      Some id
  | Pong | Stats_reply _ -> None

let is_terminal = function
  | Shed _ | Rejected _ | Result _ | Failed _ -> true
  | Accepted _ | Pong | Stats_reply _ -> false
