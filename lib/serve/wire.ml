module Json = Ftc_journal.Json

type submit = {
  id : string;
  protocol : string;
  n : int;
  alpha : float;
  seed : int;
  adversary : string;
  timeout_ms : int option;
}

type request = Submit of submit | Ping | Stats | Introspect

type worker_view = {
  w_idx : int;
  w_busy : bool;
  w_ticket : int;
  w_round : int;
  w_respawns : int;
}

type introspect = {
  uptime_ms : int;
  version : int;
  pending : int;
  open_ : int;
  peak_open : int;
  bound : int;
  ewma_ms : float;
  lat_count : int;
  p50_ms : int;
  p90_ms : int;
  p99_ms : int;
  workers : worker_view list;
  injections : (string * int) list;
  counters : (string * int) list;
}

type reply =
  | Accepted of { id : string; ticket : int }
  | Shed of { id : string; retry_after_ms : int; draining : bool }
  | Rejected of { id : string; reason : string }
  | Result of {
      id : string;
      ticket : int;
      ok : bool;
      detail : string;
      rounds : int;
      msgs : int;
      bits : int;
      attempts : int;
    }
  | Failed of { id : string; ticket : int; class_ : string; detail : string }
  | Pong of { uptime_ms : int; version : int }
  | Stats_reply of (string * int) list
  | Introspect_reply of introspect

let protocol_version = 2
let failed_watchdog = "watchdog"
let failed_killed = "killed"
let failed_crashed = "crashed"
let failed_exception = "exception"

(* -- encoding -- *)

let request_to_json = function
  | Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Introspect -> Json.Obj [ ("op", Json.String "introspect") ]
  | Submit s ->
      Json.Obj
        ([
           ("op", Json.String "submit");
           ("id", Json.String s.id);
           ("protocol", Json.String s.protocol);
           ("n", Json.Int s.n);
           ("alpha", Json.Float s.alpha);
           ("seed", Json.Int s.seed);
           ("adversary", Json.String s.adversary);
         ]
        @ match s.timeout_ms with None -> [] | Some t -> [ ("timeout_ms", Json.Int t) ])

let worker_view_to_json w =
  Json.Obj
    [
      ("idx", Json.Int w.w_idx);
      ("busy", Json.Bool w.w_busy);
      ("ticket", Json.Int w.w_ticket);
      ("round", Json.Int w.w_round);
      ("respawns", Json.Int w.w_respawns);
    ]

let kvs_to_json kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let reply_to_json = function
  | Pong { uptime_ms; version } ->
      Json.Obj
        [
          ("op", Json.String "pong");
          ("uptime_ms", Json.Int uptime_ms);
          ("version", Json.Int version);
        ]
  | Accepted { id; ticket } ->
      Json.Obj [ ("op", Json.String "accepted"); ("id", Json.String id); ("ticket", Json.Int ticket) ]
  | Shed { id; retry_after_ms; draining } ->
      Json.Obj
        [
          ("op", Json.String "shed");
          ("id", Json.String id);
          ("retry_after_ms", Json.Int retry_after_ms);
          ("draining", Json.Bool draining);
        ]
  | Rejected { id; reason } ->
      Json.Obj
        [ ("op", Json.String "rejected"); ("id", Json.String id); ("reason", Json.String reason) ]
  | Result { id; ticket; ok; detail; rounds; msgs; bits; attempts } ->
      Json.Obj
        [
          ("op", Json.String "result");
          ("id", Json.String id);
          ("ticket", Json.Int ticket);
          ("ok", Json.Bool ok);
          ("detail", Json.String detail);
          ("rounds", Json.Int rounds);
          ("msgs", Json.Int msgs);
          ("bits", Json.Int bits);
          ("attempts", Json.Int attempts);
        ]
  | Failed { id; ticket; class_; detail } ->
      Json.Obj
        [
          ("op", Json.String "failed");
          ("id", Json.String id);
          ("ticket", Json.Int ticket);
          ("class", Json.String class_);
          ("detail", Json.String detail);
        ]
  | Stats_reply kvs ->
      Json.Obj
        [
          ("op", Json.String "stats");
          ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs));
        ]
  | Introspect_reply i ->
      Json.Obj
        [
          ("op", Json.String "introspect");
          ("uptime_ms", Json.Int i.uptime_ms);
          ("version", Json.Int i.version);
          ( "queue",
            Json.Obj
              [
                ("pending", Json.Int i.pending);
                ("open", Json.Int i.open_);
                ("peak_open", Json.Int i.peak_open);
                ("bound", Json.Int i.bound);
                ("ewma_ms", Json.Float i.ewma_ms);
              ] );
          ( "latency",
            Json.Obj
              [
                ("count", Json.Int i.lat_count);
                ("p50_ms", Json.Int i.p50_ms);
                ("p90_ms", Json.Int i.p90_ms);
                ("p99_ms", Json.Int i.p99_ms);
              ] );
          ("workers", Json.List (List.map worker_view_to_json i.workers));
          ("injections", kvs_to_json i.injections);
          ("counters", kvs_to_json i.counters);
        ]

(* -- decoding -- *)

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let ( let* ) = Result.bind

let op j =
  match Option.bind (Json.member "op" j) Json.to_str with
  | Some op -> Ok op
  | None -> Error "missing op"

let request_of_json j =
  let* op = op j in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "introspect" -> Ok Introspect
  | "submit" ->
      let* id = field "id" Json.to_str j in
      let* protocol = field "protocol" Json.to_str j in
      let* n = field "n" Json.to_int j in
      let* alpha = field "alpha" Json.to_float j in
      let* seed = field "seed" Json.to_int j in
      let* adversary = field "adversary" Json.to_str j in
      let timeout_ms = Option.bind (Json.member "timeout_ms" j) Json.to_int in
      Ok (Submit { id; protocol; n; alpha; seed; adversary; timeout_ms })
  | op -> Error (Printf.sprintf "unknown request op %S" op)

let int_kvs name j =
  match Json.member name j with
  | Some (Json.Obj kvs) ->
      Ok
        (List.filter_map
           (fun (k, v) -> match Json.to_int v with Some i -> Some (k, i) | None -> None)
           kvs)
  | _ -> Error (Printf.sprintf "missing or malformed field %S" name)

let worker_view_of_json j =
  let* w_idx = field "idx" Json.to_int j in
  let* w_busy = field "busy" Json.to_bool j in
  let* w_ticket = field "ticket" Json.to_int j in
  let* w_round = field "round" Json.to_int j in
  let* w_respawns = field "respawns" Json.to_int j in
  Ok { w_idx; w_busy; w_ticket; w_round; w_respawns }

let reply_of_json j =
  let* op = op j in
  match op with
  | "pong" ->
      (* Version-1 peers send a bare pong: read the newer fields
         defensively so old captures and old servers still decode. *)
      let opt name = Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int) in
      Ok (Pong { uptime_ms = opt "uptime_ms"; version = opt "version" })
  | "accepted" ->
      let* id = field "id" Json.to_str j in
      let* ticket = field "ticket" Json.to_int j in
      Ok (Accepted { id; ticket })
  | "shed" ->
      let* id = field "id" Json.to_str j in
      let* retry_after_ms = field "retry_after_ms" Json.to_int j in
      let* draining = field "draining" Json.to_bool j in
      Ok (Shed { id; retry_after_ms; draining })
  | "rejected" ->
      let* id = field "id" Json.to_str j in
      let* reason = field "reason" Json.to_str j in
      Ok (Rejected { id; reason })
  | "result" ->
      let* id = field "id" Json.to_str j in
      let* ticket = field "ticket" Json.to_int j in
      let* ok = field "ok" Json.to_bool j in
      let* detail = field "detail" Json.to_str j in
      let* rounds = field "rounds" Json.to_int j in
      let* msgs = field "msgs" Json.to_int j in
      let* bits = field "bits" Json.to_int j in
      let* attempts = field "attempts" Json.to_int j in
      Ok (Result { id; ticket; ok; detail; rounds; msgs; bits; attempts })
  | "failed" ->
      let* id = field "id" Json.to_str j in
      let* ticket = field "ticket" Json.to_int j in
      let* class_ = field "class" Json.to_str j in
      let* detail = field "detail" Json.to_str j in
      Ok (Failed { id; ticket; class_; detail })
  | "stats" -> (
      match Json.member "metrics" j with
      | Some (Json.Obj kvs) ->
          let ints =
            List.filter_map
              (fun (k, v) -> match Json.to_int v with Some i -> Some (k, i) | None -> None)
              kvs
          in
          Ok (Stats_reply ints)
      | _ -> Error "missing or malformed field \"metrics\"")
  | "introspect" ->
      let* uptime_ms = field "uptime_ms" Json.to_int j in
      let* version = field "version" Json.to_int j in
      let* queue = Option.to_result ~none:"missing queue" (Json.member "queue" j) in
      let* pending = field "pending" Json.to_int queue in
      let* open_ = field "open" Json.to_int queue in
      let* peak_open = field "peak_open" Json.to_int queue in
      let* bound = field "bound" Json.to_int queue in
      let* ewma_ms = field "ewma_ms" Json.to_float queue in
      let* latency = Option.to_result ~none:"missing latency" (Json.member "latency" j) in
      let* lat_count = field "count" Json.to_int latency in
      let* p50_ms = field "p50_ms" Json.to_int latency in
      let* p90_ms = field "p90_ms" Json.to_int latency in
      let* p99_ms = field "p99_ms" Json.to_int latency in
      let* workers =
        match Json.member "workers" j with
        | Some (Json.List ws) ->
            List.fold_left
              (fun acc w ->
                let* acc = acc in
                let* v = worker_view_of_json w in
                Ok (v :: acc))
              (Ok []) ws
            |> Result.map List.rev
        | _ -> Error "missing or malformed field \"workers\""
      in
      let* injections = int_kvs "injections" j in
      let* counters = int_kvs "counters" j in
      Ok
        (Introspect_reply
           {
             uptime_ms;
             version;
             pending;
             open_;
             peak_open;
             bound;
             ewma_ms;
             lat_count;
             p50_ms;
             p90_ms;
             p99_ms;
             workers;
             injections;
             counters;
           })
  | op -> Error (Printf.sprintf "unknown reply op %S" op)

let reply_id = function
  | Accepted { id; _ } | Shed { id; _ } | Rejected { id; _ } | Result { id; _ } | Failed { id; _ }
    ->
      Some id
  | Pong _ | Stats_reply _ | Introspect_reply _ -> None

let is_terminal = function
  | Shed _ | Rejected _ | Result _ | Failed _ -> true
  | Accepted _ | Pong _ | Stats_reply _ | Introspect_reply _ -> false
