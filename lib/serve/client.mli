(** [ftc client]: an open-loop load generator for the serve front-end.

    Open-loop means the submission schedule is fixed by [rate] alone —
    submit [i] is due at [i / rate] seconds after start whether or not
    earlier submits have completed — so queue growth at the server is
    driven by offered load, not by the client's patience. ([rate = 0.]
    degenerates to as-fast-as-possible.)

    Retry discipline, per submit: a [Shed] reply schedules a retry at
    [now + max(retry_after_ms, ladder_ms)], where [ladder_ms] is the
    transport's doubling backoff ladder ({!Ftc_transport.Transport.nth_timeout},
    scaled by [backoff_unit_ms]) at the attempt number — the server's
    hint sets the floor, the ladder guarantees the exponential growth.
    After [retries] sheds the submit is given up. Connection failures
    reconnect on the same ladder; a submit whose [Accepted] was already
    seen when the connection died is {e abandoned} (its terminal reply
    died with the connection — the server counts the same event as
    orphaned), never resubmitted, so a client never runs an instance
    twice. *)

type config = {
  addr : Server.addr;
  total : int;  (** Submits to issue. *)
  rate : float;  (** Submits per second; [0.] = no pacing. *)
  protocol : string;
  n : int;
  alpha : float;
  adversary : string;
  base_seed : int;  (** Submit [i] carries seed [base_seed + i]. *)
  timeout_ms : int option;  (** Per-instance server-side deadline override. *)
  retries : int;  (** Max submission attempts per instance. *)
  backoff : Ftc_transport.Transport.config;
  backoff_unit_ms : int;  (** Milliseconds per ladder round (default 25). *)
  overall_timeout_ms : int;  (** Hard wall-clock stop for the whole run. *)
  log : string -> unit;
}

val default_config : Server.addr -> config
(** 100 submits, unpaced, [ft-leader-election] n=64 alpha=0.125,
    adversary [none], 4 retries, transport default ladder at 25 ms per
    round, 120 s overall stop. *)

type stats = {
  submitted : int;  (** Submit frames actually written (retries included). *)
  accepted : int;
  results : int;
  result_violations : int;  (** [Result] replies with [ok = false]. *)
  failures : int;  (** [Failed] terminals, by class. *)
  shed_retries : int;  (** Sheds that were retried. *)
  gave_up : int;  (** Submits that exhausted their retry budget shed. *)
  rejected : int;
  abandoned : int;  (** Accepted submits whose connection died first. *)
  reconnects : int;
  p50_ms : int;  (** Submit-to-terminal latency quantiles, completed only. *)
  p99_ms : int;
  elapsed_ms : float;
}

val stats_line : stats -> string

val exit_code : stats -> int
(** [0] when every submit reached a client-side terminal state and none
    were abandoned; [1] otherwise. *)

val run : config -> (stats, string) result
(** [Error] only when the very first connection cannot be established. *)
