module Respawn = Ftc_parallel.Respawn
module Case = Ftc_chaos.Case
module Catalog = Ftc_chaos.Catalog
module Flight = Ftc_telemetry.Flight

type instance = {
  ticket : int;
  conn : int;
  submit : Wire.submit;
  mutable attempts : int;
  enqueued_at : float;
}

type outcome =
  | Finished of { ok : bool; detail : string; rounds : int; msgs : int; bits : int }
  | Watchdog_expired
  | Killed
  | Crash_budget_exhausted of string
  | Exn of string

type completion = { inst : instance; outcome : outcome; service_ms : float }

let max_attempts = 3

(* The injected worker-death vehicle: raised out of the watchdog
   closure at a round boundary, it escapes the worker body and the
   domain terminates — exactly the shape of a genuine escaped
   exception, which takes the same path. *)
exception Worker_crash of int

type worker = {
  idx : int;
  mutable handle : Respawn.t option;
  current : instance option Atomic.t;
  round : int Atomic.t;  (* watchdog polls of the running instance *)
  mutable respawns : int;  (* written by tick, event-loop domain only *)
}

type t = {
  queue : instance Admission.t;
  inject : Inject.t;
  default_timeout_ms : int;
  notify : unit -> unit;
  flight : Flight.t;
  counters : Inject.Counters.t;
  lock : Mutex.t;
  done_q : completion Queue.t;
  mutable restart_count : int;
  workers : worker array;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let push t c =
  Mutex.lock t.lock;
  Queue.push c t.done_q;
  Mutex.unlock t.lock;
  t.notify ()

let completions t =
  Mutex.lock t.lock;
  let out = List.of_seq (Queue.to_seq t.done_q) in
  Queue.clear t.done_q;
  Mutex.unlock t.lock;
  out

(* One instance = one chaos case, fault-free plan, adversary by name,
   inputs regenerated from the case seed exactly as [ftc sweep] does. *)
let run_instance t w inst =
  let s = inst.submit in
  match Catalog.find s.protocol with
  | None -> Exn (Printf.sprintf "unknown protocol %S" s.protocol)
  | Some entry -> (
      let case =
        {
          Case.protocol = s.protocol;
          n = s.n;
          alpha = s.alpha;
          seed = s.seed;
          inputs = Catalog.gen_inputs entry ~n:s.n ~seed:s.seed;
          plan = [];
          adversary = (if s.adversary = "none" then None else Some s.adversary);
          loss = Ftc_fault.Omission.No_loss;
          queue = None;
          transport = false;
        }
      in
      (* Injection decisions are per (ticket, attempt): a retried
         instance rolls fresh dice, so a worker-killing instance does
         not assassinate every replacement worker in turn. *)
      let salt = (inst.ticket * 8) + inst.attempts in
      let kill_instance = Inject.fire t.inject Inject.Kill_instance ~salt in
      let kill_worker = Inject.fire t.inject Inject.Kill_worker ~salt in
      let deadline =
        now_ms () +. float_of_int (Option.value s.timeout_ms ~default:t.default_timeout_ms)
      in
      let killed = ref false in
      let polls = ref 0 in
      let watchdog () =
        incr polls;
        Atomic.set w.round !polls;
        Flight.record t.flight (Flight.Round { ticket = inst.ticket; round = !polls });
        if kill_worker && !polls >= 3 then begin
          Inject.Counters.bump t.counters Inject.Kill_worker;
          Flight.record t.flight
            (Flight.Injected { kind = Inject.kind_to_string Inject.Kill_worker; ticket = inst.ticket });
          raise (Worker_crash inst.ticket)
        end;
        if kill_instance && !polls >= 2 then begin
          if not !killed then begin
            Inject.Counters.bump t.counters Inject.Kill_instance;
            Flight.record t.flight
              (Flight.Injected
                 { kind = Inject.kind_to_string Inject.Kill_instance; ticket = inst.ticket })
          end;
          killed := true;
          true
        end
        else now_ms () > deadline
      in
      match Case.run ~watchdog case with
      | Error e -> Exn (Case.error_to_string e)
      | Ok ((result : Ftc_sim.Engine.result), findings) ->
          if result.watchdog_expired then if !killed then Killed else Watchdog_expired
          else
            let detail =
              findings
              |> List.map (fun (f : Ftc_chaos.Oracle.finding) -> f.oracle ^ ": " ^ f.detail)
              |> String.concat "; "
            in
            Finished
              {
                ok = findings = [];
                detail;
                rounds = result.rounds_used;
                msgs = result.metrics.msgs_sent;
                bits = result.metrics.bits_sent;
              })

let worker_body t w () =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some inst ->
        inst.attempts <- inst.attempts + 1;
        Atomic.set w.round 0;
        Atomic.set w.current (Some inst);
        Flight.record t.flight
          (Flight.Started { ticket = inst.ticket; attempt = inst.attempts; worker = w.idx });
        let started = now_ms () in
        let outcome = run_instance t w inst in
        let service_ms = now_ms () -. started in
        Atomic.set w.current None;
        (* Publish the completion before releasing the in-flight slot:
           once the queue reads quiescent, every completion is already
           visible to the server. *)
        push t { inst; outcome; service_ms };
        Admission.complete t.queue ~service_ms;
        loop ()
  in
  loop ()

let create ?(flight = Flight.disabled) ?counters ~workers ~queue ~inject ~default_timeout_ms
    ~notify () =
  if workers < 1 then invalid_arg "Supervisor.create: workers must be at least 1";
  let counters = match counters with Some c -> c | None -> Inject.Counters.create () in
  let t =
    {
      queue;
      inject;
      default_timeout_ms;
      notify;
      flight;
      counters;
      lock = Mutex.create ();
      done_q = Queue.create ();
      restart_count = 0;
      workers =
        Array.init workers (fun idx ->
            { idx; handle = None; current = Atomic.make None; round = Atomic.make 0; respawns = 0 });
    }
  in
  Array.iteri
    (fun i w -> w.handle <- Some (Respawn.start ~name:(Printf.sprintf "serve-%d" i) (worker_body t w)))
    t.workers;
  t

let exn_to_string = function
  | Worker_crash ticket -> Printf.sprintf "injected worker kill (ticket %d)" ticket
  | e -> Printexc.to_string e

(* Reap-and-respawn. The crashed worker's in-flight instance goes back
   to the front of the queue — or, past its crash budget, straight to
   a terminal completion, keeping the exactly-one-reply invariant. *)
let tick t =
  let restarted = ref 0 in
  Array.iter
    (fun w ->
      let h = Option.get w.handle in
      match Respawn.state h with
      | Respawn.Running | Respawn.Done -> ()
      | Respawn.Crashed e -> (
          ignore (Respawn.reap h);
          let victim = Atomic.exchange w.current None in
          Flight.record t.flight
            (Flight.Reaped
               {
                 worker = w.idx;
                 ticket = Option.map (fun i -> i.ticket) victim;
                 detail = exn_to_string e;
               });
          (match victim with
          | None -> ()
          | Some inst ->
              if inst.attempts >= max_attempts then begin
                Flight.record t.flight (Flight.Budget_exhausted { ticket = inst.ticket });
                push t
                  {
                    inst;
                    outcome = Crash_budget_exhausted (exn_to_string e);
                    service_ms = now_ms () -. (inst.enqueued_at *. 1000.);
                  };
                Admission.complete t.queue ~service_ms:0.
              end
              else begin
                Flight.record t.flight
                  (Flight.Requeued { ticket = inst.ticket; attempt = inst.attempts });
                Admission.requeue t.queue inst
              end);
          (* Replace the dead worker unless the drain is already over —
             a worker spawned after quiescence would exit immediately. *)
          if not (Admission.quiescent t.queue) then begin
            Respawn.respawn h;
            t.restart_count <- t.restart_count + 1;
            w.respawns <- w.respawns + 1;
            Flight.record t.flight
              (Flight.Respawned
                 { worker = w.idx; ticket = Option.map (fun i -> i.ticket) victim });
            incr restarted
          end))
    t.workers;
  !restarted

let restarts t = t.restart_count

let views t =
  Array.to_list
    (Array.map
       (fun w ->
         match Atomic.get w.current with
         | Some inst ->
             {
               Wire.w_idx = w.idx;
               w_busy = true;
               w_ticket = inst.ticket;
               w_round = Atomic.get w.round;
               w_respawns = w.respawns;
             }
         | None ->
             {
               Wire.w_idx = w.idx;
               w_busy = false;
               w_ticket = -1;
               w_round = 0;
               w_respawns = w.respawns;
             })
       t.workers)

let workers_alive t =
  Array.fold_left
    (fun acc w -> if Respawn.alive (Option.get w.handle) then acc + 1 else acc)
    0 t.workers

let join t ~grace_ms =
  let deadline = now_ms () +. float_of_int grace_ms in
  let rec loop () =
    ignore (tick t);
    if workers_alive t = 0 then begin
      Array.iter (fun w -> Respawn.join (Option.get w.handle)) t.workers;
      true
    end
    else if now_ms () > deadline then false
    else begin
      Unix.sleepf 0.005;
      loop ()
    end
  in
  loop ()
