(** Length-prefixed JSON frames: the serve front-end's wire format.

    One frame is a 4-byte big-endian payload length followed by exactly
    that many bytes of UTF-8 JSON ({!Ftc_journal.Json}). The length
    covers only the payload. Frames self-delimit, so a stream of them
    needs no separators and survives arbitrary segmentation: the
    {!Decoder} accepts bytes in any chunking — including a cut in the
    middle of the length prefix — and yields complete documents only.

    A declared length of zero or beyond {!max_len} is a protocol error:
    the peer is broken or hostile, and the connection must be dropped
    (there is no way to resynchronise a length-prefixed stream). *)

val max_len : int
(** Largest accepted payload, 16 MiB. *)

val encode : Ftc_journal.Json.t -> string
(** The full frame: 4-byte big-endian length + encoded JSON. *)

val write_fd : Unix.file_descr -> Ftc_journal.Json.t -> unit
(** Blocking write of one whole frame, retrying partial writes. Raises
    [Unix.Unix_error] as the underlying writes do (EPIPE included —
    callers own connection teardown). *)

module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf off len] appends [len] bytes of received data. *)

  val feed_string : t -> string -> unit

  val next : t -> (Ftc_journal.Json.t option, string) result
  (** [Ok (Some doc)] — one complete frame was consumed; call again, a
      single feed may complete several frames. [Ok None] — no complete
      frame buffered yet. [Error _] — protocol error (zero/oversized
      length or malformed JSON); the decoder is poisoned and every later
      call returns the same error. *)

  val buffered : t -> int
  (** Bytes received but not yet consumed by a complete frame — non-zero
      at EOF means the peer died mid-frame (a torn frame). *)
end
