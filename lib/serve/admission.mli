(** Bounded admission control: the queue between the socket front-end
    and the worker pool, and the reason the server's memory is bounded
    by configuration instead of by load.

    The bound covers {e open} instances — pending (admitted, waiting
    for a worker) plus in-flight (being executed). A submit that would
    push the open count past the bound is shed with a retry-after hint
    derived from the measured service rate: [open * ewma_ms / workers],
    i.e. roughly how long the backlog ahead of the caller will take to
    clear. Shedding is the only overload response; nothing queues
    beyond the bound, ever.

    State machine: [Accepting] → ({!drain}) → [Draining] → (queue
    empty, {!take} starts returning [None]) → workers exit. Draining
    stops admission ([Shed] with [draining = true]) but keeps serving
    everything already admitted — an accepted instance is a promise.

    Crash-restart support: {!requeue} returns an in-flight instance
    (its worker died) to the {e front} of the pending queue. It moves
    the instance from in-flight back to pending, so the open count —
    and therefore the bound — is unaffected: a crash never creates
    admission capacity and never exceeds it.

    All operations are domain-safe; {!take} blocks on a condition
    variable until work arrives or the queue drains out. *)

type 'a t

val create : bound:int -> workers:int -> unit -> 'a t
(** Raises [Invalid_argument] when [bound < 1] or [workers < 1]. *)

type admit_outcome =
  | Admitted
  | Shed_full of int  (** Bound hit; the retry-after hint, ms. *)
  | Shed_draining of int  (** Admission stopped; hint covers the backlog. *)

val admit : 'a t -> 'a -> admit_outcome

val take : 'a t -> 'a option
(** Next pending instance, front first; blocks while the queue is empty
    and accepting. [None] once draining and empty — the worker's exit
    signal. Taking moves the instance from pending to in-flight. *)

val try_take : 'a t -> 'a option
(** Non-blocking {!take}: [None] when nothing is pending (does not
    distinguish empty from drained). *)

val complete : 'a t -> service_ms:float -> unit
(** The instance a worker took has received its terminal reply: drop it
    from in-flight and feed the service-time EWMA the retry-after hints
    are computed from. *)

val requeue : 'a t -> 'a -> unit
(** Return a crashed worker's in-flight instance to the front of the
    pending queue (see above: bound-neutral). *)

val drain : 'a t -> unit
(** Stop admission and wake every blocked {!take}. Idempotent. *)

val draining : 'a t -> bool

val pending : 'a t -> int

val open_count : 'a t -> int
(** Pending + in-flight. Invariant: never exceeds [bound]. *)

val peak_open : 'a t -> int

val bound : 'a t -> int
(** The configured open-instance bound (constant). *)

val ewma_ms : 'a t -> float
(** The current service-time EWMA the retry-after hints are computed
    from; exposed for the introspection plane. *)

val quiescent : 'a t -> bool
(** Draining, and every admitted instance has completed. *)

val retry_after_ms : 'a t -> int
(** The current backlog-clearance hint (what a shed reply would say). *)
