module Rng = Ftc_rng.Rng

type kind = Kill_instance | Kill_worker | Delay_frame | Truncate_frame | Drop_conn

let kinds = [ Kill_instance; Kill_worker; Delay_frame; Truncate_frame; Drop_conn ]

let kind_to_string = function
  | Kill_instance -> "kill-instance"
  | Kill_worker -> "kill-worker"
  | Delay_frame -> "delay-frame"
  | Truncate_frame -> "truncate-frame"
  | Drop_conn -> "drop-conn"

let kind_of_string = function
  | "kill-instance" -> Some Kill_instance
  | "kill-worker" -> Some Kill_worker
  | "delay-frame" -> Some Delay_frame
  | "truncate-frame" -> Some Truncate_frame
  | "drop-conn" -> Some Drop_conn
  | _ -> None

(* Distinct per-kind constants keep the decision streams independent:
   the same salt firing kill-worker says nothing about delay-frame. *)
let kind_tag = function
  | Kill_instance -> 0x9e3779b1
  | Kill_worker -> 0x85ebca77
  | Delay_frame -> 0xc2b2ae3d
  | Truncate_frame -> 0x27d4eb2f
  | Drop_conn -> 0x165667b1

type t = {
  seed : int;
  ki : float;
  kw : float;
  df : float;
  tf : float;
  dc : float;
}

let none = { seed = 0; ki = 0.; kw = 0.; df = 0.; tf = 0.; dc = 0. }

let rate t = function
  | Kill_instance -> t.ki
  | Kill_worker -> t.kw
  | Delay_frame -> t.df
  | Truncate_frame -> t.tf
  | Drop_conn -> t.dc

let set_rate t kind r =
  match kind with
  | Kill_instance -> { t with ki = r }
  | Kill_worker -> { t with kw = r }
  | Delay_frame -> { t with df = r }
  | Truncate_frame -> { t with tf = r }
  | Drop_conn -> { t with dc = r }

let active t = List.exists (fun k -> rate t k > 0.) kinds
let with_seed t seed = { t with seed }

let catalog =
  [
    ("worker-kill", "kill-worker:0.15");
    ("instance-kill", "kill-instance:0.15");
    ("frame-chaos", "delay-frame:0.2,truncate-frame:0.1");
    ("conn-chaos", "drop-conn:0.15,delay-frame:0.1");
    ("mayhem",
     "kill-instance:0.08,kill-worker:0.08,delay-frame:0.1,truncate-frame:0.05,drop-conn:0.05");
  ]

let parse_rates spec =
  let parts = String.split_on_char ',' spec in
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun t ->
          match String.index_opt part ':' with
          | None -> Error (Printf.sprintf "bad injection term %S (want kind:rate)" part)
          | Some i -> (
              let name = String.sub part 0 i in
              let rate_s = String.sub part (i + 1) (String.length part - i - 1) in
              match (kind_of_string name, float_of_string_opt rate_s) with
              | None, _ ->
                  Error
                    (Printf.sprintf "unknown injection kind %S (known: %s)" name
                       (String.concat ", " (List.map kind_to_string kinds)))
              | _, None -> Error (Printf.sprintf "bad injection rate %S" rate_s)
              | Some k, Some r when r >= 0. && r <= 1. -> Ok (set_rate t k r)
              | _, Some r -> Error (Printf.sprintf "injection rate %g out of [0, 1]" r))))
    (Ok none) parts

let parse spec =
  match spec with
  | "none" | "" -> Ok none
  | _ -> (
      match List.assoc_opt spec catalog with
      | Some expansion -> parse_rates expansion
      | None -> parse_rates spec)

let describe t =
  if not (active t) then "none"
  else
    kinds
    |> List.filter_map (fun k ->
           let r = rate t k in
           if r > 0. then Some (Printf.sprintf "%s:%g" (kind_to_string k) r) else None)
    |> String.concat ","

(* One decision = one fresh generator over a hash of (seed, kind, salt).
   Deterministic and order-independent: replaying the same event stream
   yields the same faults regardless of worker interleaving. *)
let decision_rng t kind ~salt =
  let h = ref (t.seed lxor kind_tag kind) in
  let mix v =
    h := !h lxor (v * 0x9e3779b1);
    h := (!h lxor (!h lsr 16)) * 0x45d9f3b;
    h := !h lxor (!h lsr 13)
  in
  mix salt;
  mix (kind_tag kind);
  Rng.create (!h land max_int)

let fire t kind ~salt =
  let r = rate t kind in
  r > 0. && Rng.below (decision_rng t kind ~salt) r

let delay_ms t ~salt = 1 + Rng.int (decision_rng t Delay_frame ~salt:(salt lxor 0x5f5f)) 50

module Counters = struct
  type nonrec t = int Atomic.t array

  let create () = Array.init (List.length kinds) (fun _ -> Atomic.make 0)

  let idx kind =
    let rec go i = function
      | [] -> 0
      | k :: rest -> if k = kind then i else go (i + 1) rest
    in
    go 0 kinds

  let bump t kind = Atomic.incr t.(idx kind)
  let snapshot t = List.mapi (fun i k -> (kind_to_string k, Atomic.get t.(i))) kinds
end
