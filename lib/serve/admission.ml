type 'a t = {
  bound : int;
  workers : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  pending : 'a Queue.t;
  mutable in_flight : int;
  mutable draining : bool;
  mutable peak_open : int;
  (* Service-time EWMA, ms. Seeded pessimistically so the first hints
     are conservative rather than zero. *)
  mutable ewma_ms : float;
}

let create ~bound ~workers () =
  if bound < 1 then invalid_arg "Admission.create: bound must be at least 1";
  if workers < 1 then invalid_arg "Admission.create: workers must be at least 1";
  {
    bound;
    workers;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    pending = Queue.create ();
    in_flight = 0;
    draining = false;
    peak_open = 0;
    ewma_ms = 50.;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let open_unlocked t = Queue.length t.pending + t.in_flight

(* Hint: time for the backlog ahead of a new arrival to clear at the
   measured per-worker service rate, clamped to [1ms, 30s]. *)
let hint_unlocked t =
  let backlog = float_of_int (max 1 (open_unlocked t)) in
  let ms = backlog *. t.ewma_ms /. float_of_int t.workers in
  int_of_float (Float.min 30_000. (Float.max 1. ms))

type admit_outcome = Admitted | Shed_full of int | Shed_draining of int

let admit t x =
  locked t (fun () ->
      if t.draining then Shed_draining (hint_unlocked t)
      else if open_unlocked t >= t.bound then Shed_full (hint_unlocked t)
      else begin
        Queue.push x t.pending;
        let o = open_unlocked t in
        if o > t.peak_open then t.peak_open <- o;
        Condition.signal t.nonempty;
        Admitted
      end)

let take t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.pending) then begin
          let x = Queue.pop t.pending in
          t.in_flight <- t.in_flight + 1;
          Some x
        end
        else if t.draining then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let try_take t =
  locked t (fun () ->
      if Queue.is_empty t.pending then None
      else begin
        let x = Queue.pop t.pending in
        t.in_flight <- t.in_flight + 1;
        Some x
      end)

let complete t ~service_ms =
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. Float.max 0. service_ms);
      (* Draining workers park in [take]'s wait only while not draining,
         so no wake-up is needed here; quiescence is polled. *)
      if t.in_flight < 0 then t.in_flight <- 0)

let requeue t x =
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      (* Front of the queue: the victim has already waited its turn. *)
      let rest = Queue.copy t.pending in
      Queue.clear t.pending;
      Queue.push x t.pending;
      Queue.transfer rest t.pending;
      Condition.signal t.nonempty)

let drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.nonempty)

let draining t = locked t (fun () -> t.draining)
let bound t = t.bound
let ewma_ms t = locked t (fun () -> t.ewma_ms)
let pending t = locked t (fun () -> Queue.length t.pending)
let open_count t = locked t (fun () -> open_unlocked t)
let peak_open t = locked t (fun () -> t.peak_open)
let quiescent t = locked t (fun () -> t.draining && open_unlocked t = 0)
let retry_after_ms t = locked t (fun () -> hint_unlocked t)
