(** [ftc top]: a polling terminal dashboard over a running server.

    Each sample is one [Ping] + one [Introspect] on a persistent
    connection; the rendering shows per-worker state, a queue-depth
    sparkline over the recent samples, throughput (terminal replies per
    second, from counter deltas), and latency quantiles. A shrinking
    pong uptime means the server restarted between samples — the gap is
    marked in the display rather than silently blending two lifetimes.

    Output goes through [config.out] so tests can capture frames; modes:

    - [Ansi] — clears the terminal before each frame (the live view).
    - [Raw] — frames appended verbatim (pipes, tests, transcripts).
    - [Json] — one line per sample: the raw [Introspect_reply] wire
      JSON, for schema diffing and scripting. *)

type mode = Ansi | Raw | Json

type config = {
  addr : Server.addr;
  interval_ms : int;
  iterations : int;  (** Samples to take; [0] = until [stop] is set. *)
  mode : mode;
  out : string -> unit;
}

val default_config : Server.addr -> config
(** 1000 ms interval, run forever, [Ansi], stdout. *)

val spark : int list -> string
(** Unicode block sparkline of the series, scaled to its own max. *)

val run : ?stop:bool Atomic.t -> config -> (int, string) result
(** Poll until [iterations] samples are rendered or [stop] is set;
    returns the number of samples taken. [Error] when the server can't
    be reached or the connection dies and can't be re-established. *)
