module Json = Ftc_journal.Json

let max_len = 16 * 1024 * 1024

let encode doc =
  let payload = Json.to_string doc in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_fd fd doc =
  let frame = encode doc in
  let len = String.length frame in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd frame !pos (len - !pos)
  done

module Decoder = struct
  (* Received bytes accumulate in [buf]; [pos] is the read cursor. The
     consumed prefix is compacted away once it dominates the buffer, so
     a long-lived connection stays O(one frame) in memory. *)
  type t = {
    mutable buf : Bytes.t;
    mutable pos : int;  (** First unconsumed byte. *)
    mutable len : int;  (** End of valid data. *)
    mutable poisoned : string option;
  }

  let create () = { buf = Bytes.create 4096; pos = 0; len = 0; poisoned = None }

  let compact t =
    if t.pos > 0 && (t.pos = t.len || t.pos > Bytes.length t.buf / 2) then begin
      Bytes.blit t.buf t.pos t.buf 0 (t.len - t.pos);
      t.len <- t.len - t.pos;
      t.pos <- 0
    end

  let feed t src off n =
    if n < 0 || off < 0 || off + n > Bytes.length src then
      invalid_arg "Frame.Decoder.feed: bad slice";
    compact t;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (max 8 (Bytes.length t.buf)) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit src off t.buf t.len n;
    t.len <- t.len + n

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

  let buffered t = t.len - t.pos

  let poison t msg =
    t.poisoned <- Some msg;
    Error msg

  let next t =
    match t.poisoned with
    | Some msg -> Error msg
    | None ->
        if buffered t < 4 then Ok None
        else begin
          let b i = Char.code (Bytes.get t.buf (t.pos + i)) in
          let declared = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
          if declared = 0 then poison t "zero-length frame"
          else if declared > max_len then
            poison t (Printf.sprintf "frame length %d exceeds the %d-byte cap" declared max_len)
          else if buffered t < 4 + declared then Ok None
          else begin
            let payload = Bytes.sub_string t.buf (t.pos + 4) declared in
            t.pos <- t.pos + 4 + declared;
            compact t;
            match Json.of_string payload with
            | Ok doc -> Ok (Some doc)
            | Error e -> poison t ("malformed frame payload: " ^ e)
          end
        end
end
