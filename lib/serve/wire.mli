(** The serve request/reply vocabulary carried inside {!Frame}s.

    Every message is a JSON object with an ["op"] discriminator. The
    codec is total in both directions — the client and the server each
    encode and decode both sides, and the round-trip tests pin the
    format — and decoding is defensive: an unknown op or a missing
    field is an [Error], never an exception.

    Reply taxonomy, which the exactly-one-reply oracle is built on:

    - {e immediate terminals} — [Shed] (admission bound hit; carries a
      retry-after hint) and [Rejected] (malformed submit). The request
      was never accepted; this is its only reply.
    - [Accepted] — the submit was admitted. The server now owes the
      connection {e exactly one} deferred terminal for this instance.
    - {e deferred terminals} — [Result] (the instance ran to its
      verdict) and [Failed] (structured error: watchdog expiry,
      injected kill, worker-crash retries exhausted, exception). *)

type submit = {
  id : string;  (** Client-chosen correlation id, echoed on every reply. *)
  protocol : string;  (** A chaos-catalog protocol name. *)
  n : int;
  alpha : float;
  seed : int;
  adversary : string;  (** A {!Ftc_fault.Strategy} name. *)
  timeout_ms : int option;  (** Per-instance deadline override. *)
}

type request = Submit of submit | Ping | Stats | Introspect

type worker_view = {
  w_idx : int;  (** Pool slot index. *)
  w_busy : bool;
  w_ticket : int;  (** Ticket being executed; [-1] when idle. *)
  w_round : int;  (** Watchdog-poll count of the running instance. *)
  w_respawns : int;  (** Crash-restarts this slot has absorbed. *)
}

(** Deep live snapshot returned for {!Introspect}: queue state,
    latency quantiles from the server's log-scale histogram,
    per-worker execution state, per-kind injection counts, and the
    same counter list [Stats] returns. *)
type introspect = {
  uptime_ms : int;
  version : int;  (** {!protocol_version} of the replying server. *)
  pending : int;
  open_ : int;
  peak_open : int;
  bound : int;
  ewma_ms : float;  (** Admission's service-time EWMA. *)
  lat_count : int;
  p50_ms : int;
  p90_ms : int;
  p99_ms : int;
  workers : worker_view list;
  injections : (string * int) list;  (** Fired count per {!Inject} kind. *)
  counters : (string * int) list;
}

type reply =
  | Accepted of { id : string; ticket : int }
      (** [ticket] is the server's unique instance number — the ledger key. *)
  | Shed of { id : string; retry_after_ms : int; draining : bool }
  | Rejected of { id : string; reason : string }
  | Result of {
      id : string;
      ticket : int;
      ok : bool;  (** No oracle findings: the instance met its spec. *)
      detail : string;  (** Findings summary when [not ok]; [""] otherwise. *)
      rounds : int;
      msgs : int;
      bits : int;
      attempts : int;  (** 1 + how many worker crashes this instance survived. *)
    }
  | Failed of { id : string; ticket : int; class_ : string; detail : string }
  | Pong of { uptime_ms : int; version : int }
      (** [uptime_ms]/[version] decode as [0] from version-1 peers that
          send a bare pong — [ftc top] uses a shrinking uptime to detect
          server restarts. *)
  | Stats_reply of (string * int) list
      (** Registry counter/gauge snapshot, now including latency
          quantile keys ([latency_p50_ms] …). The shape is unchanged
          from version 1 — old parsers see extra keys, new parsers
          tolerate their absence. *)
  | Introspect_reply of introspect

val protocol_version : int
(** Wire schema generation, echoed in [Pong] and [Introspect_reply].
    Version 2 added [Introspect], pong uptime, and stats quantiles. *)

val failed_watchdog : string
val failed_killed : string
val failed_crashed : string
val failed_exception : string
(** The [Failed.class_] vocabulary: deadline expiry, injected
    instance kill, worker-crash retry budget exhausted, escaped
    exception. *)

val request_to_json : request -> Ftc_journal.Json.t
val request_of_json : Ftc_journal.Json.t -> (request, string) result
val reply_to_json : reply -> Ftc_journal.Json.t
val reply_of_json : Ftc_journal.Json.t -> (reply, string) result

val reply_id : reply -> string option
(** The correlation id, when the reply carries one. *)

val is_terminal : reply -> bool
(** Ends a submission attempt: anything but
    [Accepted]/[Pong]/[Stats_reply]/[Introspect_reply]. *)
