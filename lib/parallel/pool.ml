type monitor = {
  now_ns : unit -> int64;
  enqueued : depth:int -> unit;
  job_done : worker:int -> enqueued_ns:int64 -> started_ns:int64 -> finished_ns:int64 -> unit;
}

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : (int64 * (unit -> unit)) Queue.t;  (* (enqueue stamp, job) *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
  dropped : int Atomic.t;
  sink : (exn -> Printexc.raw_backtrace -> unit) Atomic.t;
  monitor : monitor option;
}

let jobs t = t.jobs
let dropped_exceptions t = Atomic.get t.dropped
let set_exception_sink t f = Atomic.set t.sink f

(* Workers park on [work_ready] until a job or the shutdown flag shows
   up. A worker only exits once the flag is set AND the queue is drained,
   so shutdown never strands submitted work. *)
let worker_loop pool worker () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.work_ready pool.lock
    done;
    match Queue.take_opt pool.queue with
    | None ->
        (* stopping && empty *)
        Mutex.unlock pool.lock
    | Some (enqueued_ns, job) ->
        Mutex.unlock pool.lock;
        let started_ns = match pool.monitor with Some m -> m.now_ns () | None -> 0L in
        (try job ()
         with e ->
           (* A raw [submit] job escaped with an exception. Losing it
              silently hid real bugs (issue: supervision); count it and
              hand it to the pool's sink so the caller can at least log. *)
           let bt = Printexc.get_raw_backtrace () in
           Atomic.incr pool.dropped;
           (try (Atomic.get pool.sink) e bt with _ -> ()));
        (match pool.monitor with
        | Some m -> m.job_done ~worker ~enqueued_ns ~started_ns ~finished_ns:(m.now_ns ())
        | None -> ());
        loop ()
  in
  loop ()

let create ?monitor ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      jobs;
      dropped = Atomic.make 0;
      sink = Atomic.make (fun _ _ -> ());
      monitor;
    }
  in
  pool.workers <- List.init jobs (fun i -> Domain.spawn (worker_loop pool i));
  pool

let submit pool job =
  let stamp = match pool.monitor with Some m -> m.now_ns () | None -> 0L in
  Mutex.lock pool.lock;
  if pool.stopping then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push (stamp, job) pool.queue;
  let depth = Queue.length pool.queue in
  Condition.signal pool.work_ready;
  Mutex.unlock pool.lock;
  (* Outside the lock: a monitor callback must not be able to deadlock
     the pool, whatever it does. *)
  match pool.monitor with Some m -> m.enqueued ~depth | None -> ()

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?monitor ~jobs f =
  let pool = create ?monitor ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map pool f xs =
  let items = Array.of_list xs in
  let count = Array.length items in
  if count = 0 then []
  else begin
    (* Result slots are written by worker domains at distinct indices and
       read by the caller only after the done-latch below, whose mutex
       gives the necessary happens-before edge. *)
    let results = Array.make count None in
    let failure = Atomic.make None in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let pending = ref count in
    let job_done () =
      Mutex.lock done_lock;
      decr pending;
      if !pending = 0 then Condition.signal all_done;
      Mutex.unlock done_lock
    in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            (* First failure cancels jobs that have not started yet; the
               completed slots are discarded with the whole map. *)
            (if Atomic.get failure = None then
               match f x with
               | v -> results.(i) <- Some v
               | exception e ->
                   let bt = Printexc.get_raw_backtrace () in
                   ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            job_done ()))
      items;
    Mutex.lock done_lock;
    while !pending > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* no failure => every slot was filled *))
         results)
  end

let run_map ?monitor ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.run_map: jobs must be >= 1";
  if jobs = 1 then List.map f xs else with_pool ?monitor ~jobs (fun pool -> map pool f xs)

(* Like [map], but nothing is cancelled and nothing re-raised: every job
   runs to completion and each slot records its own outcome. This is the
   primitive the sweep supervisor's --keep-going mode is built on. *)
let map_results pool f xs =
  let items = Array.of_list xs in
  let count = Array.length items in
  if count = 0 then []
  else begin
    let results = Array.make count None in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let pending = ref count in
    let job_done () =
      Mutex.lock done_lock;
      decr pending;
      if !pending = 0 then Condition.signal all_done;
      Mutex.unlock done_lock
    in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            (match f x with
            | v -> results.(i) <- Some (Ok v)
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                results.(i) <- Some (Error (e, bt)));
            job_done ()))
      items;
    Mutex.lock done_lock;
    while !pending > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let run_map_results ?monitor ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.run_map_results: jobs must be >= 1";
  if jobs = 1 then
    List.map
      (fun x ->
        match f x with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      xs
  else with_pool ?monitor ~jobs (fun pool -> map_results pool f xs)
