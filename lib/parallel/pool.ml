type t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let jobs t = t.jobs

(* Workers park on [work_ready] until a job or the shutdown flag shows
   up. A worker only exits once the flag is set AND the queue is drained,
   so shutdown never strands submitted work. *)
let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.work_ready pool.lock
    done;
    match Queue.take_opt pool.queue with
    | None ->
        (* stopping && empty *)
        Mutex.unlock pool.lock
    | Some job ->
        Mutex.unlock pool.lock;
        (try job () with _ -> ());
        loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      jobs;
    }
  in
  pool.workers <- List.init jobs (fun _ -> Domain.spawn (worker_loop pool));
  pool

let submit pool job =
  Mutex.lock pool.lock;
  if pool.stopping then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job pool.queue;
  Condition.signal pool.work_ready;
  Mutex.unlock pool.lock

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map pool f xs =
  let items = Array.of_list xs in
  let count = Array.length items in
  if count = 0 then []
  else begin
    (* Result slots are written by worker domains at distinct indices and
       read by the caller only after the done-latch below, whose mutex
       gives the necessary happens-before edge. *)
    let results = Array.make count None in
    let failure = Atomic.make None in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let pending = ref count in
    let job_done () =
      Mutex.lock done_lock;
      decr pending;
      if !pending = 0 then Condition.signal all_done;
      Mutex.unlock done_lock
    in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            (* First failure cancels jobs that have not started yet; the
               completed slots are discarded with the whole map. *)
            (if Atomic.get failure = None then
               match f x with
               | v -> results.(i) <- Some v
               | exception e ->
                   let bt = Printexc.get_raw_backtrace () in
                   ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            job_done ()))
      items;
    Mutex.lock done_lock;
    while !pending > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* no failure => every slot was filled *))
         results)
  end

let run_map ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.run_map: jobs must be >= 1";
  if jobs = 1 then List.map f xs else with_pool ~jobs (fun pool -> map pool f xs)
