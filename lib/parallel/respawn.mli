(** A supervised, restartable worker domain.

    {!Ftc_parallel.Pool} parallelises finite batches; a long-running
    service needs the other shape: a worker that loops forever pulling
    work, and a supervisor that can tell a clean exit (the worker drained
    its queue and returned) from a crash (the body raised), reap the dead
    domain, and spawn a replacement running the same body.

    A handle owns at most one live domain at a time. The body runs once
    per (re)spawn; when it returns or raises, the domain terminates and
    the handle records which of the two happened. {!reap} joins the dead
    domain (so respawning never leaks domains) and {!respawn} starts a
    fresh one, bumping {!restarts}.

    The handle is meant to be driven by a single supervising domain;
    only {!state} is safe to poll from anywhere. *)

type t

type state =
  | Running
  | Done  (** The body returned: a clean, deliberate exit. *)
  | Crashed of exn  (** The body raised; the exception is preserved. *)

val start : name:string -> (unit -> unit) -> t
(** Spawn a domain running the body. [name] is for logs only. *)

val name : t -> string

val state : t -> state
(** Safe from any domain. [Crashed] is observable only after the body
    has stored the exception, never before. *)

val alive : t -> bool
(** [state t = Running]. *)

val reap : t -> state option
(** If the body has finished: join the domain and return how it ended
    ([Done] or [Crashed _]); [None] while it is still running. Idempotent
    — a second call on a reaped handle returns the same terminal state
    without re-joining. Must be called before {!respawn}. *)

val respawn : t -> unit
(** Start a fresh domain running the same body and increment
    {!restarts}. Raises [Invalid_argument] unless the previous domain
    was {!reap}ed first. *)

val restarts : t -> int
(** How many times {!respawn} has been called. *)

val join : t -> unit
(** Block until the current domain finishes and join it ({!reap} without
    the polling). No-op on an already-reaped handle. *)
