(** A fixed-size pool of OCaml 5 domains behind a shared work queue.

    The pool exists to parallelise {e independent} trials — every job is a
    closure with no ordering constraints against the others — while keeping
    results deterministic: {!map} returns its results in submission order,
    whatever order the workers finished in, so a parallel map over
    pure-per-item work is observationally identical to [List.map].

    No dependencies beyond the stdlib: workers are [Domain.spawn]ed at
    {!create} and parked on a [Condition] until work arrives or the pool
    shuts down. *)

type t

type monitor = {
  now_ns : unit -> int64;  (** The monitor's clock; called off the pool lock. *)
  enqueued : depth:int -> unit;
      (** A job was queued; [depth] is the queue length just after. *)
  job_done : worker:int -> enqueued_ns:int64 -> started_ns:int64 -> finished_ns:int64 -> unit;
      (** A worker finished a job: queue wait is [started - enqueued],
          busy time [finished - started]. *)
}
(** Telemetry hooks. All callbacks run outside the pool lock (so they
    can never deadlock the pool) on whichever domain did the work; they
    must be domain-safe and must not raise. With no monitor installed
    the pool never reads a clock. *)

val create : ?monitor:monitor -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains (so up to [jobs] closures run at once;
    the submitting domain only coordinates). Raises [Invalid_argument]
    when [jobs < 1]. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one fire-and-forget closure. The closure should not raise —
    {!map} and {!map_results} wrap user work in their own handlers. A raw
    [submit] job that does raise is not silently swallowed: the exception
    is counted (see {!dropped_exceptions}) and forwarded to the pool's
    exception sink (see {!set_exception_sink}), and the worker keeps
    going. Raises [Invalid_argument] on a pool that was {!shutdown}. *)

val dropped_exceptions : t -> int
(** How many exceptions have escaped raw {!submit} jobs so far. A
    non-zero value after a run means some job crashed without anyone
    observing it — the supervisor surfaces this as a warning. *)

val set_exception_sink : t -> (exn -> Printexc.raw_backtrace -> unit) -> unit
(** Install a callback invoked (from the worker domain) for every
    exception escaping a raw {!submit} job, replacing the previous sink.
    The default sink does nothing. The sink itself must not raise; if it
    does, that exception is discarded. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] runs [f] on every element of [xs] across the pool's
    workers and returns the results {e in submission order}: slot [i] of
    the result always holds [f (List.nth xs i)].

    Every element is attempted at most once; if some [f x] raises, the
    first exception (in completion time) wins, jobs that have not started
    yet are cancelled (their [f] never runs), already-running jobs finish,
    and the exception is re-raised in the caller with its original
    backtrace. The pool survives a raising map and can be reused. *)

val shutdown : t -> unit
(** Let workers drain the queue, then join every domain. Idempotent.
    After shutdown, {!submit} and {!map} raise [Invalid_argument]. *)

val with_pool : ?monitor:monitor -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    every exit path. *)

val run_map : ?monitor:monitor -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs (fun p -> map p f xs)], except
    that [jobs = 1] short-circuits to a plain sequential [List.map] — no
    domain is spawned, so single-job callers pay nothing (and the
    monitor, if any, is not consulted). *)

val map_results : t -> ('a -> 'b) -> 'a list -> ('b, exn * Printexc.raw_backtrace) result list
(** Per-slot outcome capture: like {!map} but a raising [f x] fails only
    its own slot ([Error (e, bt)]) — nothing is cancelled, every element
    runs, and the call never raises from user work. Slot order is
    submission order, exactly as for {!map}. This is the keep-going
    primitive: the sweep supervisor uses it to quarantine failed trials
    while the rest of the sweep completes. *)

val run_map_results :
  ?monitor:monitor ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** One-shot {!map_results}, with the same [jobs = 1] sequential
    short-circuit as {!run_map}. *)
