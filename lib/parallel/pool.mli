(** A fixed-size pool of OCaml 5 domains behind a shared work queue.

    The pool exists to parallelise {e independent} trials — every job is a
    closure with no ordering constraints against the others — while keeping
    results deterministic: {!map} returns its results in submission order,
    whatever order the workers finished in, so a parallel map over
    pure-per-item work is observationally identical to [List.map].

    No dependencies beyond the stdlib: workers are [Domain.spawn]ed at
    {!create} and parked on a [Condition] until work arrives or the pool
    shuts down. *)

type t

val create : jobs:int -> t
(** Spawn [jobs] worker domains (so up to [jobs] closures run at once;
    the submitting domain only coordinates). Raises [Invalid_argument]
    when [jobs < 1]. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one fire-and-forget closure. The closure must not raise —
    {!map} wraps user work in its own handler; raw [submit] jobs that
    raise have their exception swallowed by the worker loop. Raises
    [Invalid_argument] on a pool that was {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] runs [f] on every element of [xs] across the pool's
    workers and returns the results {e in submission order}: slot [i] of
    the result always holds [f (List.nth xs i)].

    Every element is attempted at most once; if some [f x] raises, the
    first exception (in completion time) wins, jobs that have not started
    yet are cancelled (their [f] never runs), already-running jobs finish,
    and the exception is re-raised in the caller with its original
    backtrace. The pool survives a raising map and can be reused. *)

val shutdown : t -> unit
(** Let workers drain the queue, then join every domain. Idempotent.
    After shutdown, {!submit} and {!map} raise [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    every exit path. *)

val run_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs (fun p -> map p f xs)], except
    that [jobs = 1] short-circuits to a plain sequential [List.map] — no
    domain is spawned, so single-job callers pay nothing. *)
