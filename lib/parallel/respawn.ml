type state = Running | Done | Crashed of exn

(* [outcome] is written by the worker domain just before it terminates
   and read by the supervisor; an Atomic gives the publication a
   happens-before edge without a lock. *)
type t = {
  name : string;
  body : unit -> unit;
  outcome : state Atomic.t;
  mutable domain : unit Domain.t option;  (** [None] once reaped. *)
  mutable reaped : state option;
  mutable restarts : int;
}

let spawn_into t =
  Atomic.set t.outcome Running;
  t.reaped <- None;
  t.domain <-
    Some
      (Domain.spawn (fun () ->
           match t.body () with
           | () -> Atomic.set t.outcome Done
           | exception e -> Atomic.set t.outcome (Crashed e)))

let start ~name body =
  let t =
    { name; body; outcome = Atomic.make Running; domain = None; reaped = None; restarts = 0 }
  in
  spawn_into t;
  t

let name t = t.name
let state t = match t.reaped with Some s -> s | None -> Atomic.get t.outcome
let alive t = state t = Running
let restarts t = t.restarts

let reap t =
  match t.reaped with
  | Some s -> Some s
  | None -> (
      match Atomic.get t.outcome with
      | Running -> None
      | terminal ->
          (match t.domain with
          | Some d ->
              Domain.join d;
              t.domain <- None
          | None -> ());
          t.reaped <- Some terminal;
          Some terminal)

let respawn t =
  if t.reaped = None then
    invalid_arg (Printf.sprintf "Respawn.respawn: worker %s not reaped" t.name);
  t.restarts <- t.restarts + 1;
  spawn_into t

let join t =
  match t.domain with
  | None -> ()
  | Some d ->
      Domain.join d;
      t.domain <- None;
      t.reaped <- Some (Atomic.get t.outcome)
