(** xoshiro256++ pseudo-random number generator.

    Blackman & Vigna's 256-bit-state generator: fast, equidistributed in
    four dimensions, passes all known statistical test batteries. This is
    the workhorse generator behind {!Rng}. *)

type t
(** Mutable generator state (256 bits). *)

val of_seed : int64 -> t
(** [of_seed s] initialises the four state words from a {!Splitmix}
    stream seeded with [s], as recommended by the xoshiro authors.
    The resulting state is never all-zero. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_low62 : t -> int
(** [next_low62 t] advances the state once (the same draw as {!next})
    and returns the low 62 bits of the output as a native [int],
    without allocating. *)

val next_hi53 : t -> int
(** [next_hi53 t] advances the state once and returns the high 53 bits
    of the output (the mantissa width of a double) without
    allocating. *)

val next_bit : t -> int
(** [next_bit t] advances the state once and returns the output's low
    bit without allocating. *)

val copy : t -> t
(** [copy t] is an independent snapshot that replays [t]'s future. *)
