type t = Xoshiro.t

let create seed = Xoshiro.of_seed (Splitmix.mix (Int64.of_int seed))

let bits64 t = Xoshiro.next t

let split t =
  (* Derive the child seed through an extra SplitMix64 round so the child
     state is not a linear function of the parent's raw output. *)
  Xoshiro.of_seed (Splitmix.mix (Xoshiro.next t))

let split_n t n = Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* Power of two: take low bits, which are well distributed in
       xoshiro256++. *)
    Xoshiro.next_low62 t land (bound - 1)
  else begin
    (* Rejection sampling on 62 bits to avoid modulo bias. *)
    let mask = (1 lsl 62) - 1 in
    let limit = mask / bound * bound in
    let rec draw () =
      let v = Xoshiro.next_low62 t in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits, the mantissa width of a double; [float_of_int] is
     exact up to 2^53, so this equals the Int64 formulation. *)
  float_of_int (Xoshiro.next_hi53 t) *. 0x1.0p-53

let below t p = float_of_int (Xoshiro.next_hi53 t) *. 0x1.0p-53 < p

let bool t = Xoshiro.next_bit t = 1

let copy = Xoshiro.copy
