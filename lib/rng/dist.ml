let bernoulli rng p =
  if p <= 0. then false
  else if p >= 1. then true
  else Rng.below rng p

let geometric rng p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p must be in (0, 1]";
  if p >= 1. then 0
  else begin
    (* Inversion: floor(ln U / ln (1-p)) with U uniform on (0,1). *)
    let u = 1. -. Rng.float rng in
    int_of_float (Float.log u /. Float.log1p (-.p))
  end

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: negative n";
  if p <= 0. then 0
  else if p >= 1. then n
  else begin
    (* Count successes by jumping over the geometric gaps between them. *)
    let rec count pos acc =
      let pos = pos + geometric rng p in
      if pos >= n then acc else count (pos + 1) (acc + 1)
    in
    count 0 0
  end

let bernoulli_indices rng ~n ~p =
  if p <= 0. || n <= 0 then []
  else if p >= 1. then List.init n Fun.id
  else begin
    let rec collect pos acc =
      let pos = pos + geometric rng p in
      if pos >= n then List.rev acc else collect (pos + 1) (pos :: acc)
    in
    collect 0 []
  end

let sample_without_replacement rng ~n ~k =
  if k < 0 || k > n then invalid_arg "Dist.sample_without_replacement";
  (* Floyd's algorithm: for j = n-k .. n-1, insert a uniform element of
     [0..j], replacing collisions with j itself. Produces a uniform
     k-subset using exactly k draws. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let r = Rng.int rng (j + 1) in
    let pick = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen pick ();
    out.(!idx) <- pick;
    incr idx
  done;
  out

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose rng a =
  if Array.length a = 0 then invalid_arg "Dist.choose: empty array";
  a.(Rng.int rng (Array.length a))

let exponential rng lambda =
  if lambda <= 0. then invalid_arg "Dist.exponential: lambda must be positive";
  -.Float.log (1. -. Rng.float rng) /. lambda
