(* xoshiro256++, with each 64-bit state word held as two 32-bit halves
   in immediate [int]s. The obvious [int64] record costs a boxed
   allocation per field write and per intermediate — ~10 allocations
   per draw — which dominates large simulations (the fault adversary
   alone draws once per alive faulty node per round). The split
   representation makes [next] allocation-free while producing exactly
   the same output stream; test_rng pins equality against a direct
   Int64 transcription of the reference algorithm. *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* Halves of the last output, filled by [step]. *)
  mutable rh : int;
  mutable rl : int;
}

let mask32 = 0xFFFFFFFF
let lo32 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)
let hi32 x = Int64.to_int (Int64.shift_right_logical x 32)

let of_seed seed =
  let sm = Splitmix.create seed in
  let s0 = Splitmix.next sm in
  let s1 = Splitmix.next sm in
  let s2 = Splitmix.next sm in
  let s3 = Splitmix.next sm in
  (* An all-zero state is a fixed point of the transition function; the
     probability of drawing it from SplitMix64 is negligible but we guard
     anyway so that [next] is total for every seed. *)
  let s0 = if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then 1L else s0 in
  {
    s0h = hi32 s0;
    s0l = lo32 s0;
    s1h = hi32 s1;
    s1l = lo32 s1;
    s2h = hi32 s2;
    s2l = lo32 s2;
    s3h = hi32 s3;
    s3l = lo32 s3;
    rh = 0;
    rl = 0;
  }

(* Advance the state one draw; the 64-bit output lands in (rh, rl).
   Reference transition:
     result = rotl(s0 + s3, 23) + s0
     tmp = s1 << 17
     s2 ^= s0; s3 ^= s1; s1 ^= s2; s0 ^= s3; s2 ^= tmp
     s3 = rotl(s3, 45)
   A rotl by k >= 32 on split words is a rotl by k - 32 of the swapped
   halves. *)
let step t =
  let s0h = t.s0h and s0l = t.s0l in
  let al = s0l + t.s3l in
  let ah = (s0h + t.s3h + (al lsr 32)) land mask32 in
  let al = al land mask32 in
  let rh = ((ah lsl 23) lor (al lsr 9)) land mask32 in
  let rl = ((al lsl 23) lor (ah lsr 9)) land mask32 in
  let sl = rl + s0l in
  t.rl <- sl land mask32;
  t.rh <- (rh + s0h + (sl lsr 32)) land mask32;
  let th = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land mask32 in
  let tl = (t.s1l lsl 17) land mask32 in
  t.s2h <- t.s2h lxor s0h;
  t.s2l <- t.s2l lxor s0l;
  t.s3h <- t.s3h lxor t.s1h;
  t.s3l <- t.s3l lxor t.s1l;
  t.s1h <- t.s1h lxor t.s2h;
  t.s1l <- t.s1l lxor t.s2l;
  t.s0h <- s0h lxor t.s3h;
  t.s0l <- s0l lxor t.s3l;
  t.s2h <- t.s2h lxor th;
  t.s2l <- t.s2l lxor tl;
  let h = t.s3h and l = t.s3l in
  t.s3h <- ((l lsl 13) lor (h lsr 19)) land mask32;
  t.s3l <- ((h lsl 13) lor (l lsr 19)) land mask32

let next t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.rh) 32) (Int64.of_int t.rl)

(* Allocation-free projections of one draw, for {!Rng}'s hot paths.
   Each advances the state exactly once, like [next]. *)

let next_low62 t =
  step t;
  ((t.rh land 0x3FFFFFFF) lsl 32) lor t.rl

let next_hi53 t =
  step t;
  (t.rh lsl 21) lor (t.rl lsr 11)

let next_bit t =
  step t;
  t.rl land 1

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    rh = t.rh;
    rl = t.rl;
  }
