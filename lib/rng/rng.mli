(** Splittable deterministic random source.

    Every node of the simulated network, the adversary, and the experiment
    harness each own an [Rng.t]. All of them descend from a single root seed
    via {!split}, so an entire simulation — including every private coin of
    every node — is a pure function of that one integer. This is what makes
    failures replayable: re-running with the same seed reproduces the exact
    execution, message for message.

    The generator is xoshiro256++ ({!Xoshiro}); splitting derives child
    seeds through the SplitMix64 mixer ({!Splitmix}), which keeps parent and
    child streams statistically independent. *)

type t
(** A mutable stream of pseudo-random values. *)

val create : int -> t
(** [create seed] is a fresh generator determined by [seed]. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose future
    output is independent of [t]'s. Splitting [n] times yields [n]
    pairwise-independent streams. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent children of [t]. *)

val bits64 : t -> int64
(** [bits64 t] is 64 uniform random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1]. Uses rejection sampling, so
    the distribution is exact. @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53 bits of precision. *)

val below : t -> float -> bool
(** [below t p] is [float t < p] without boxing the intermediate float
    — the allocation-free core of {!Dist.bernoulli}. Always draws. *)

val bool : t -> bool
(** [bool t] is a fair coin. *)

val copy : t -> t
(** [copy t] replays [t]'s future independently; for tests. *)
