(** The write-ahead trial journal: an append-only JSONL file that makes
    long experiment sweeps crash-safe.

    Layout: the first line is a header object
    [{"magic":"ftc-trial-journal","version":1,"spec":"<hex hash>"}]; every
    following line is one record (one completed trial), appended and
    flushed the moment the trial finishes. A sweep killed at any point —
    including mid-write, leaving a torn final line — loses at most the
    trial that was being written; {!load} tolerates the torn tail and a
    resumed sweep re-runs only the missing seeds.

    The [spec] hash names the sweep configuration the journal belongs to
    (protocol, n, alpha, adversary, loss, ...). Resuming against a journal
    whose hash differs from the current sweep's is a hard error: silently
    mixing trials from two different experiments is exactly the corruption
    this layer exists to prevent. *)

val magic : string
val version : int

val spec_hash : string -> string
(** Hex digest of a canonical spec description. Stable across runs and
    processes; the caller is responsible for making the description
    canonical (field order, formatting). *)

type header = { version : int; spec_hash : string }

type loaded = {
  header : header;
  entries : Json.t list;  (** Every well-formed record, in append order. *)
  torn_tail : bool;
      (** The final line was incomplete (the writer was killed mid-append)
          and has been dropped. Any malformed line {e before} the final
      one is corruption and makes {!load} fail instead. *)
}

val load : path:string -> (loaded, string) result

type t
(** An open journal handle. Appends are line-buffered and flushed per
    record; handles are not thread-safe — serialise {!append} calls. *)

val create : path:string -> spec_hash:string -> t
(** Truncate/create [path] and write the header line. *)

val reopen : path:string -> t
(** Open an existing journal for appending (no header validation — pair
    with {!load} first). A torn final line is repaired first — terminated
    if it parses, cut otherwise — so the next {!append} cannot glue onto
    it. *)

val append : t -> Json.t -> unit
(** Write one record line and flush it to the OS, so a later SIGKILL
    cannot lose it. *)

val close : t -> unit

val write_atomic : path:string -> string -> unit
(** Write [content] to a temporary file in [path]'s directory and rename
    it over [path]: readers see either the old artifact or the complete
    new one, never a partial write. *)
