type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- encoding -- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/infinity; the journal never stores them, but be
         defensive rather than emit an unparseable line. *)
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          encode_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          encode_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  encode_into buf v;
  Buffer.contents buf

(* -- decoding: a plain recursive-descent parser over the string -- *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= len then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > len then fail "truncated \\u escape";
              let cp =
                (hex_digit s.[!pos] lsl 12)
                lor (hex_digit s.[!pos + 1] lsl 8)
                lor (hex_digit s.[!pos + 2] lsl 4)
                lor hex_digit s.[!pos + 3]
              in
              pos := !pos + 4;
              (* UTF-8 encode the code point; the journal only ever writes
                 control characters this way, but accept the full BMP. *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end;
              go ()
          | _ -> fail "unknown escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with Some f -> Float f | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* Integer overflowing native int: fall back to float. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors -- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
