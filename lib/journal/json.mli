(** A minimal JSON codec for one-line journal records.

    Deliberately tiny: just enough to write and read back the flat objects
    the trial journal and quarantine files are made of, without pulling a
    JSON dependency into the build. Supports the full value grammar
    (objects, arrays, strings with escapes, ints, floats, bools, null) but
    no streaming — a value is encoded to and decoded from one string.

    Integers round-trip exactly ([Int] is emitted without an exponent or
    decimal point and parsed back as [Int]), which is what makes journal
    resume bit-identical: metric counters are stored as the integers they
    are, never through a float. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line encoding: no newlines are ever emitted (they are escaped
    inside strings), so one journal record is always exactly one line. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** [member k (Obj fields)] is the value under [k]; [None] on a missing
    key or a non-object. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
val to_float : t -> float option
(** [to_float] accepts both [Float] and [Int] (widening). *)
