let magic = "ftc-trial-journal"
let version = 1

let spec_hash s = Digest.to_hex (Digest.string s)

type header = { version : int; spec_hash : string }

type loaded = { header : header; entries : Json.t list; torn_tail : bool }

let header_line ~spec_hash =
  Json.to_string
    (Json.Obj
       [
         ("magic", Json.String magic);
         ("version", Json.Int version);
         ("spec", Json.String spec_hash);
       ])

let parse_header line =
  match Json.of_string line with
  | Error e -> Error ("bad journal header: " ^ e)
  | Ok j -> (
      match
        ( Option.bind (Json.member "magic" j) Json.to_str,
          Option.bind (Json.member "version" j) Json.to_int,
          Option.bind (Json.member "spec" j) Json.to_str )
      with
      | Some m, _, _ when m <> magic -> Error (Printf.sprintf "not a %s file" magic)
      | _, Some v, _ when v > version -> Error (Printf.sprintf "unsupported journal version %d" v)
      | Some _, Some version, Some spec_hash -> Ok { version; spec_hash }
      | _ -> Error "journal header is missing magic/version/spec")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  match read_file path with
  | exception Sys_error e -> Error e
  | contents -> (
      let lines = String.split_on_char '\n' contents in
      (* A complete record line always ends in '\n', so splitting leaves a
         trailing "" for an intact file; anything else in the final slot is
         a torn append. Blank interior lines are tolerated (they cannot be
         produced by [append], but a hand-edited journal may have them). *)
      let rec split_last acc = function
        | [] -> (List.rev acc, "")
        | [ last ] -> (List.rev acc, last)
        | l :: rest -> split_last (l :: acc) rest
      in
      let body, tail = split_last [] lines in
      match body with
      | [] -> Error "empty journal"
      | header_text :: record_lines -> (
          match parse_header header_text with
          | Error _ as e -> e
          | Ok header -> (
              let parse_records lines =
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | "" :: rest -> go acc rest
                  | l :: rest -> (
                      match Json.of_string l with
                      | Ok j -> go (j :: acc) rest
                      | Error e -> Error (Printf.sprintf "corrupt journal record %S: %s" l e))
                in
                go [] lines
              in
              match parse_records record_lines with
              | Error _ as e -> e
              | Ok entries -> (
                  (* The unterminated tail: keep it if it happens to parse
                     (killed after the bytes but before the newline),
                     otherwise drop it as torn. *)
                  match tail with
                  | "" -> Ok { header; entries; torn_tail = false }
                  | t -> (
                      match Json.of_string t with
                      | Ok j -> Ok { header; entries = entries @ [ j ]; torn_tail = false }
                      | Error _ -> Ok { header; entries; torn_tail = true })))))

type t = { oc : out_channel }

let create ~path ~spec_hash =
  let oc = open_out_bin path in
  output_string oc (header_line ~spec_hash);
  output_char oc '\n';
  flush oc;
  { oc }

let write_atomic ~path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out_bin tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(* Appending to a file whose final line is unterminated would glue the
   next record onto it, corrupting both. Normalise first: a torn tail
   that still parses gets its newline; one that doesn't is cut at the
   last complete line (atomically, so a crash here loses nothing). *)
let normalise_tail ~path =
  let contents = read_file path in
  let len = String.length contents in
  if len = 0 || contents.[len - 1] = '\n' then ()
  else
    let tail_start =
      match String.rindex_opt contents '\n' with Some i -> i + 1 | None -> 0
    in
    let tail = String.sub contents tail_start (len - tail_start) in
    match Json.of_string tail with
    | Ok _ -> write_atomic ~path (contents ^ "\n")
    | Error _ -> write_atomic ~path (String.sub contents 0 tail_start)

let reopen ~path =
  normalise_tail ~path;
  { oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path }

let append t record =
  output_string t.oc (Json.to_string record);
  output_char t.oc '\n';
  flush t.oc

let close t = close_out_noerr t.oc
