(** Omission faults on live links.

    The paper's adversary loses messages only as part of a crash (the
    final-round sends of a crashing node). A link-fault model extends the
    engine beyond that: after the crash stage of a round, every message
    still on the wire traverses its link, and the model may drop it — the
    sender stays alive and keeps executing. This is the omission-fault
    regime the permissionless settings of the paper's motivation actually
    live in, and the regime the [Ftc_transport] wrapper repairs.

    A [Link.t] may carry per-run mutable state in its closure (burst
    models track per-edge channel state), so construct a fresh value for
    every run — the constructors in [Ftc_fault.Omission] do that. Losses
    decided here are counted separately from crash losses
    ([Metrics.msgs_lost_link]) and traced as {!Trace.Link_lost} events, so
    the trace-vs-metrics oracle still balances. *)

type view = {
  round : int;
  src : int;
  dst : int;
  bits : int;
  observations : Observation.t array;
      (** Every node's protocol-published observation this round, indexed
          by node — the same omniscient view the crash adversary gets, so
          omission adversaries can target roles (e.g. starve the min-rank
          candidate's referee replies). *)
}

type t = {
  name : string;
  drop : Ftc_rng.Rng.t -> view -> bool;
      (** Called once per message that survived the crash stage; [true]
          loses the message. The rng is the engine's dedicated link
          stream, split from the root seed, so runs stay reproducible. *)
}

val reliable : t
(** Never drops anything — the paper's model; the default. *)
