(* Codec-based protocol interface for the struct-of-arrays fast engine.

   A fast protocol encodes each message as up to three fixed-width
   integer words instead of a variant payload (CONGEST already bounds
   message bits, so fixed-width encoding is natural). The engine owns
   all message storage: outgoing words go through the [emit_*] closures
   of the runtime record, incoming words are read straight out of the
   shared inbox arrays. Nothing per-message is ever allocated.

   Event-driven stepping: unlike {!Protocol.S}, where the engine steps
   every node every round, the fast engine steps a node at round [r]
   only if (a) a message was delivered to it at the end of round [r-1],
   or (b) the protocol asked for it via [wake] during round [r-1] (or
   at [create], for round 0). A fast port of a classic protocol is
   correct only if every classic step it thereby skips is a no-op: no
   actions, no observable state change, and no node-rng draws. Each
   port documents that argument.

   Inbox messages carry no ECN flag: none of the ported protocols reads
   [Protocol.incoming.ecn] (only the transport wrapper does, and the
   fast engine rejects transport-wrapped specs upstream). *)

type words_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type runtime = {
  mutable inbox_words : words_buf;
      (** Flat round inbox, [words] ints per message; message [m] of a
          node whose segment starts at [s] occupies indices
          [(s + m) * words .. (s + m) * words + words - 1]. Arrival
          order within a segment matches the classic engine's inbox
          order. Re-read every step: the engine grows it in place. *)
  mutable inbox_port : int array;
      (** Receiver-side port each message arrived on, indexed like the
          message (not word) positions of [inbox_words]. *)
  emit_fresh : int -> int -> int -> unit;
      (** [emit_fresh w0 w1 w2]: send over a freshly opened port
          (classic [Fresh_port]). Words beyond the protocol's [words]
          are ignored — pass 0. Valid only inside [step]. *)
  emit_port : int -> int -> int -> int -> unit;  (** [emit_port p w0 w1 w2] *)
  emit_node : int -> int -> int -> int -> unit;  (** [emit_node d w0 w1 w2] (KT1 only) *)
  port_count : int -> int;
      (** Ports node [i] currently knows, = the classic engine's
          sender-side port-table cardinality: every delivered message
          and every fresh send opens consecutive ports from 0. *)
  wake : int -> unit;
      (** Schedule node [i] to step next round even without a delivery.
          Callable from [create] (schedules round 0) and [step]. *)
  obs : Observation.t array;
      (** Engine-owned observation cache: [obs.(i)] must equal the
          classic [observe] of node [i]'s current state whenever the
          engine is in control. [create] fills all [n] entries; after
          that the protocol replaces an entry at the moment the node's
          observation changes (a role change, a decision). The engine
          reads this array directly for adversary and link views
          instead of polling [observe] per step. *)
  note_decided : int -> unit;
      (** Tell the engine node [i]'s {!S.decide} just left [Undecided].
          Must be called exactly once per node, at the step where the
          transition happens (never from [create]: the engine counts
          initial decisions itself). Powers O(1) quiescence detection. *)
}

module type S = sig
  val name : string
  val knowledge : [ `KT0 | `KT1 ]

  val words : int
  (** Words per encoded message, 1..3. *)

  val msg_bits : n:int -> int -> int
  (** Bit cost charged for a message given its first word [w0]; must
      equal the classic protocol's [msg_bits] on the decoded message.
      All ported codecs put the tag in [w0]'s low bits, and every
      classic cost depends only on the tag and n-derived widths. *)

  val max_rounds : n:int -> alpha:float -> int
  val phases : n:int -> alpha:float -> (string * int) list

  type t
  (** Whole-network state: one value for all n nodes (struct-of-arrays
      inside), unlike the classic per-node [state]. *)

  val create :
    n:int ->
    alpha:float ->
    inputs:int array ->
    node_rngs:Ftc_rng.Rng.t array ->
    runtime ->
    t
  (** Must consume each node's rng exactly as the classic [init] does,
      in node order 0..n-1. May call [wake]; must fill every entry of
      the runtime's [obs] array; must not call [note_decided] or
      [emit_*]. *)

  val step : t -> node:int -> round:int -> inbox_start:int -> inbox_count:int -> unit
  (** Step one node: consume [inbox_count] messages starting at message
      index [inbox_start] of the runtime inbox arrays, emit sends in
      the exact order the classic step returns its actions. *)

  val decide : t -> int -> Decision.t
  val observe : t -> int -> Observation.t
end
