(** Complexity counters for a run.

    Message complexity in the paper is "the total number of messages sent
    by all the nodes throughout the execution", so a message lost to a
    crash still counts as sent. Bits are counted separately because the
    paper states the agreement bound in message *bits* (Theorem 5.1) and
    Remark 1 notes the O(log n) factor between the two. Link losses (the
    omission-fault extension of {!Link}) likewise count as sent, but are
    tallied apart from crash losses so experiments can separate the two
    failure modes.

    Per-round views ([per_round_msgs], [per_round_bits],
    [per_round_drops]) let telemetry attribute cost to algorithm phases;
    they reconcile with the aggregate counters round by round. *)

type t = {
  mutable msgs_sent : int;  (** Messages sent (delivered or lost). *)
  mutable msgs_dropped : int;  (** Messages lost to crashes. *)
  mutable msgs_lost_link : int;  (** Messages lost on live links ({!Link}). *)
  mutable msgs_dropped_queue : int;
      (** Messages dropped by a bounded ingress queue ({!Queue_model}):
          sent (they count toward message complexity) but never
          delivered. *)
  mutable msgs_ecn_marked : int;
      (** Delivered messages carrying the ECN congestion bit. Marks on
          messages later lost to a link fault are not counted, so this
          reconciles exactly with [Ecn_marked] trace events and with the
          marks receivers observe. *)
  mutable msgs_unroutable : int;
      (** [Fresh_port] sends by a node that already knew all [n-1] peers;
          never put on the wire, so not part of [msgs_sent]. *)
  mutable bits_sent : int;  (** Total payload bits sent. *)
  mutable rounds_used : int;  (** Rounds actually executed. *)
  mutable congest_violations : int;
      (** Count of (edge, round) pairs whose traffic exceeded the budget. *)
  mutable per_round_msgs : int array;  (** Messages sent in each round. *)
  mutable per_round_bits : int array;  (** Payload bits sent in each round. *)
  mutable per_round_drops : int array;
      (** Messages that went nowhere in each round: crash-dropped +
          queue-dropped + link-lost + unroutable. Sibling of
          [per_round_msgs], same length after {!finish}. *)
  mutable per_round_queue_drops : int array;
      (** Queue drops in each round; a sub-series of [per_round_drops]. *)
  mutable per_round_ecn_marks : int array;  (** ECN marks delivered in each round. *)
  mutable per_round_queue_peak : int array;
      (** Largest ingress-queue occupancy any destination reached in each
          round; 0 when no queue was configured or no traffic flowed. *)
  mutable max_round_seen : int;  (** Highest round with recorded activity; -1 if none. *)
}

val create : unit -> t

val record_send : t -> round:int -> bits:int -> delivered:bool -> unit
(** One message put on the wire; [delivered:false] means a crash ate it. *)

val record_send_batch : t -> round:int -> msgs:int -> bits:int -> dropped:int -> unit
(** Fold a whole round's worth of {!record_send}s in one call: [msgs]
    messages totalling [bits] bits, of which [dropped] were undelivered.
    No-op when [msgs = 0]. *)

val record_link_loss : t -> round:int -> bits:int -> unit
(** One message put on the wire and lost by the link-fault model. *)

val record_queue_drop : t -> round:int -> bits:int -> unit
(** One message put on the wire and dropped by its destination's bounded
    ingress queue ({!Queue_model}). *)

val record_ecn_mark : t -> round:int -> unit
(** One delivered message carried the ECN congestion bit. Recorded in
    addition to (not instead of) its {!record_send}. *)

val record_queue_depth : t -> round:int -> depth:int -> unit
(** Fold one observed ingress-queue occupancy into the round's peak. *)

val record_unroutable : t -> round:int -> unit
(** A [Fresh_port] send with no unknown peers left: not on the wire, but
    counted into the per-round drop view so trace and metrics reconcile
    per round. *)

val record_violation : t -> unit

val finish : t -> rounds:int -> unit
(** Freeze the per-round arrays to [max rounds (max_round_seen + 1)]
    entries: a run stopped at round boundary 0 keeps its round-0 sends. *)

val sparkline : int array -> string
(** Eight-level ASCII sparkline (["_.:-=+*#"]) of a per-round series,
    scaled to its own maximum; ["_"] is an exact zero. *)

val pp : Format.formatter -> t -> unit
(** Aggregate counters plus compact per-round sparkline summary. *)
