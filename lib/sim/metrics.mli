(** Complexity counters for a run.

    Message complexity in the paper is "the total number of messages sent
    by all the nodes throughout the execution", so a message lost to a
    crash still counts as sent. Bits are counted separately because the
    paper states the agreement bound in message *bits* (Theorem 5.1) and
    Remark 1 notes the O(log n) factor between the two. Link losses (the
    omission-fault extension of {!Link}) likewise count as sent, but are
    tallied apart from crash losses so experiments can separate the two
    failure modes. *)

type t = {
  mutable msgs_sent : int;  (** Messages sent (delivered or lost). *)
  mutable msgs_dropped : int;  (** Messages lost to crashes. *)
  mutable msgs_lost_link : int;  (** Messages lost on live links ({!Link}). *)
  mutable msgs_unroutable : int;
      (** [Fresh_port] sends by a node that already knew all [n-1] peers;
          never put on the wire, so not part of [msgs_sent]. *)
  mutable bits_sent : int;  (** Total payload bits sent. *)
  mutable rounds_used : int;  (** Rounds actually executed. *)
  mutable congest_violations : int;
      (** Count of (edge, round) pairs whose traffic exceeded the budget. *)
  mutable per_round_msgs : int array;  (** Messages sent in each round. *)
}

val create : unit -> t

val record_send : t -> round:int -> bits:int -> delivered:bool -> unit
(** One message put on the wire; [delivered:false] means a crash ate it. *)

val record_link_loss : t -> round:int -> bits:int -> unit
(** One message put on the wire and lost by the link-fault model. *)

val record_unroutable : t -> unit
val record_violation : t -> unit
val finish : t -> rounds:int -> unit
val pp : Format.formatter -> t -> unit
