type t = {
  mutable msgs_sent : int;
  mutable msgs_dropped : int;
  mutable msgs_lost_link : int;
  mutable msgs_unroutable : int;
  mutable bits_sent : int;
  mutable rounds_used : int;
  mutable congest_violations : int;
  mutable per_round_msgs : int array;
}

let create () =
  {
    msgs_sent = 0;
    msgs_dropped = 0;
    msgs_lost_link = 0;
    msgs_unroutable = 0;
    bits_sent = 0;
    rounds_used = 0;
    congest_violations = 0;
    per_round_msgs = Array.make 64 0;
  }

let ensure_round t round =
  let len = Array.length t.per_round_msgs in
  if round >= len then begin
    let bigger = Array.make (max (2 * len) (round + 1)) 0 in
    Array.blit t.per_round_msgs 0 bigger 0 len;
    t.per_round_msgs <- bigger
  end

let record_send t ~round ~bits ~delivered =
  t.msgs_sent <- t.msgs_sent + 1;
  t.bits_sent <- t.bits_sent + bits;
  if not delivered then t.msgs_dropped <- t.msgs_dropped + 1;
  ensure_round t round;
  t.per_round_msgs.(round) <- t.per_round_msgs.(round) + 1

let record_link_loss t ~round ~bits =
  t.msgs_sent <- t.msgs_sent + 1;
  t.bits_sent <- t.bits_sent + bits;
  t.msgs_lost_link <- t.msgs_lost_link + 1;
  ensure_round t round;
  t.per_round_msgs.(round) <- t.per_round_msgs.(round) + 1

let record_unroutable t = t.msgs_unroutable <- t.msgs_unroutable + 1

let record_violation t = t.congest_violations <- t.congest_violations + 1

let finish t ~rounds =
  t.rounds_used <- rounds;
  if rounds < Array.length t.per_round_msgs then
    t.per_round_msgs <- Array.sub t.per_round_msgs 0 rounds

let pp ppf t =
  Format.fprintf ppf
    "msgs=%d (dropped %d, link-lost %d, unroutable %d), bits=%d, rounds=%d, \
     congest_violations=%d"
    t.msgs_sent t.msgs_dropped t.msgs_lost_link t.msgs_unroutable t.bits_sent t.rounds_used
    t.congest_violations
