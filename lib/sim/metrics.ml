type t = {
  mutable msgs_sent : int;
  mutable msgs_dropped : int;
  mutable msgs_lost_link : int;
  mutable msgs_dropped_queue : int;
  mutable msgs_ecn_marked : int;
  mutable msgs_unroutable : int;
  mutable bits_sent : int;
  mutable rounds_used : int;
  mutable congest_violations : int;
  mutable per_round_msgs : int array;
  mutable per_round_bits : int array;
  mutable per_round_drops : int array;
  mutable per_round_queue_drops : int array;
  mutable per_round_ecn_marks : int array;
  mutable per_round_queue_peak : int array;
  mutable max_round_seen : int;
}

let create () =
  {
    msgs_sent = 0;
    msgs_dropped = 0;
    msgs_lost_link = 0;
    msgs_dropped_queue = 0;
    msgs_ecn_marked = 0;
    msgs_unroutable = 0;
    bits_sent = 0;
    rounds_used = 0;
    congest_violations = 0;
    per_round_msgs = Array.make 64 0;
    per_round_bits = Array.make 64 0;
    per_round_drops = Array.make 64 0;
    per_round_queue_drops = Array.make 64 0;
    per_round_ecn_marks = Array.make 64 0;
    per_round_queue_peak = Array.make 64 0;
    max_round_seen = -1;
  }

let grow a round =
  let len = Array.length a in
  if round >= len then begin
    let bigger = Array.make (max (2 * len) (round + 1)) 0 in
    Array.blit a 0 bigger 0 len;
    bigger
  end
  else a

let ensure_round t round =
  t.per_round_msgs <- grow t.per_round_msgs round;
  t.per_round_bits <- grow t.per_round_bits round;
  t.per_round_drops <- grow t.per_round_drops round;
  t.per_round_queue_drops <- grow t.per_round_queue_drops round;
  t.per_round_ecn_marks <- grow t.per_round_ecn_marks round;
  t.per_round_queue_peak <- grow t.per_round_queue_peak round;
  if round > t.max_round_seen then t.max_round_seen <- round

let record_send t ~round ~bits ~delivered =
  t.msgs_sent <- t.msgs_sent + 1;
  t.bits_sent <- t.bits_sent + bits;
  ensure_round t round;
  t.per_round_msgs.(round) <- t.per_round_msgs.(round) + 1;
  t.per_round_bits.(round) <- t.per_round_bits.(round) + bits;
  if not delivered then begin
    t.msgs_dropped <- t.msgs_dropped + 1;
    t.per_round_drops.(round) <- t.per_round_drops.(round) + 1
  end

(* Equivalent to [msgs] calls of [record_send] whose bits sum to [bits]
   and of which [dropped] had [delivered = false]; one call per round
   keeps the engine's per-message loop free of counter read-modify-writes. *)
let record_send_batch t ~round ~msgs ~bits ~dropped =
  if msgs > 0 then begin
    t.msgs_sent <- t.msgs_sent + msgs;
    t.bits_sent <- t.bits_sent + bits;
    ensure_round t round;
    t.per_round_msgs.(round) <- t.per_round_msgs.(round) + msgs;
    t.per_round_bits.(round) <- t.per_round_bits.(round) + bits;
    if dropped > 0 then begin
      t.msgs_dropped <- t.msgs_dropped + dropped;
      t.per_round_drops.(round) <- t.per_round_drops.(round) + dropped
    end
  end

let record_link_loss t ~round ~bits =
  t.msgs_sent <- t.msgs_sent + 1;
  t.bits_sent <- t.bits_sent + bits;
  t.msgs_lost_link <- t.msgs_lost_link + 1;
  ensure_round t round;
  t.per_round_msgs.(round) <- t.per_round_msgs.(round) + 1;
  t.per_round_bits.(round) <- t.per_round_bits.(round) + bits;
  t.per_round_drops.(round) <- t.per_round_drops.(round) + 1

let record_queue_drop t ~round ~bits =
  t.msgs_sent <- t.msgs_sent + 1;
  t.bits_sent <- t.bits_sent + bits;
  t.msgs_dropped_queue <- t.msgs_dropped_queue + 1;
  ensure_round t round;
  t.per_round_msgs.(round) <- t.per_round_msgs.(round) + 1;
  t.per_round_bits.(round) <- t.per_round_bits.(round) + bits;
  t.per_round_drops.(round) <- t.per_round_drops.(round) + 1;
  t.per_round_queue_drops.(round) <- t.per_round_queue_drops.(round) + 1

let record_ecn_mark t ~round =
  t.msgs_ecn_marked <- t.msgs_ecn_marked + 1;
  ensure_round t round;
  t.per_round_ecn_marks.(round) <- t.per_round_ecn_marks.(round) + 1

let record_queue_depth t ~round ~depth =
  ensure_round t round;
  if depth > t.per_round_queue_peak.(round) then t.per_round_queue_peak.(round) <- depth

let record_unroutable t ~round =
  t.msgs_unroutable <- t.msgs_unroutable + 1;
  ensure_round t round;
  t.per_round_drops.(round) <- t.per_round_drops.(round) + 1

let record_violation t = t.congest_violations <- t.congest_violations + 1

(* Keep every round that recorded activity: an engine that stops at round
   boundary 0 (watchdog, max_rounds 0) may still have counted round-0
   sends, which [Array.sub ... 0 rounds] used to discard. *)
let finish t ~rounds =
  t.rounds_used <- rounds;
  let keep = max rounds (t.max_round_seen + 1) in
  if keep < Array.length t.per_round_msgs then begin
    t.per_round_msgs <- Array.sub t.per_round_msgs 0 keep;
    t.per_round_bits <- Array.sub t.per_round_bits 0 keep;
    t.per_round_drops <- Array.sub t.per_round_drops 0 keep;
    t.per_round_queue_drops <- Array.sub t.per_round_queue_drops 0 keep;
    t.per_round_ecn_marks <- Array.sub t.per_round_ecn_marks 0 keep;
    t.per_round_queue_peak <- Array.sub t.per_round_queue_peak 0 keep
  end

(* Eight-level block sparkline of a per-round series, scaled to its own
   maximum; [_] marks an exact zero so quiet rounds stay visible. *)
let sparkline a =
  let levels = [| "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  let hi = Array.fold_left max 0 a in
  if Array.length a = 0 || hi = 0 then String.concat "" (List.map (fun _ -> "_") (Array.to_list a))
  else
    String.concat ""
      (List.map
         (fun v -> if v = 0 then levels.(0) else levels.(1 + (v * 6 / hi)))
         (Array.to_list a))

let pp ppf t =
  Format.fprintf ppf
    "msgs=%d (dropped %d, link-lost %d, unroutable %d), bits=%d, rounds=%d, \
     congest_violations=%d"
    t.msgs_sent t.msgs_dropped t.msgs_lost_link t.msgs_unroutable t.bits_sent t.rounds_used
    t.congest_violations;
  (* Congestion counters only appear when a queue was configured, so
     queue-less runs keep their historical one-line form byte for byte. *)
  if t.msgs_dropped_queue > 0 || t.msgs_ecn_marked > 0 then
    Format.fprintf ppf "@,queue: dropped=%d ecn-marked=%d peak-depth=%d"
      t.msgs_dropped_queue t.msgs_ecn_marked
      (Array.fold_left max 0 t.per_round_queue_peak);
  if Array.length t.per_round_msgs > 0 then begin
    Format.fprintf ppf "@,per-round msgs  [%s] peak=%d" (sparkline t.per_round_msgs)
      (Array.fold_left max 0 t.per_round_msgs);
    if Array.exists (fun v -> v > 0) t.per_round_drops then
      Format.fprintf ppf "@,per-round drops [%s] peak=%d" (sparkline t.per_round_drops)
        (Array.fold_left max 0 t.per_round_drops)
  end
