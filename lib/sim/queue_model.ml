module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

type discipline = Drop_tail | Red | Ecn

type config = {
  capacity : int;
  discipline : discipline;
  min_th : int;
  max_th : int;
}

type decision = Accept | Mark | Drop

let discipline_to_string = function
  | Drop_tail -> "drop-tail"
  | Red -> "red"
  | Ecn -> "ecn"

let discipline_of_string = function
  | "drop-tail" | "droptail" | "tail" -> Some Drop_tail
  | "red" -> Some Red
  | "ecn" -> Some Ecn
  | _ -> None

(* Default thresholds in the RED tradition: start early-dropping at a
   quarter of capacity, drop surely from three quarters on. *)
let make ?min_th ?max_th ~capacity ~discipline () =
  let min_th = match min_th with Some v -> v | None -> max 1 (capacity / 4) in
  let max_th =
    match max_th with Some v -> v | None -> max min_th (3 * capacity / 4)
  in
  { capacity; discipline; min_th; max_th }

let validate c =
  if c.capacity < 1 then
    Error (Printf.sprintf "queue capacity %d below 1" c.capacity)
  else if c.min_th < 0 then
    Error (Printf.sprintf "queue min threshold %d negative" c.min_th)
  else if c.max_th < c.min_th then
    Error
      (Printf.sprintf "queue max threshold %d below min threshold %d" c.max_th
         c.min_th)
  else if c.max_th > c.capacity then
    Error
      (Printf.sprintf "queue max threshold %d above capacity %d" c.max_th
         c.capacity)
  else Ok ()

let can_drop c = c.discipline <> Ecn

(* The RED curve: 0 below [min_th], 1 at or above [max_th], linear in
   between. Checking the upper band first keeps the degenerate
   [min_th = max_th] config well-defined (a step function). *)
let red_probability c ~occupancy =
  if occupancy >= c.max_th then 1.
  else if occupancy < c.min_th then 0.
  else float_of_int (occupancy - c.min_th) /. float_of_int (c.max_th - c.min_th)

(* The RNG is consulted only inside the open RED band (0 < p < 1), so
   drop-tail runs and out-of-band traffic draw nothing — configs that
   never enter the band reproduce the streams of queue-less runs. *)
let decide c rng ~occupancy =
  match c.discipline with
  | Drop_tail -> if occupancy >= c.capacity then Drop else Accept
  | Red ->
      if occupancy >= c.capacity then Drop
      else
        let p = red_probability c ~occupancy in
        if p <= 0. then Accept
        else if p >= 1. then Drop
        else if Dist.bernoulli rng p then Drop
        else Accept
  | Ecn ->
      (* Never drops: past the sure-mark point (or even past capacity,
         which plain RED would drop) the message is marked and let
         through, so ECN mode is lossless by construction. *)
      let p = red_probability c ~occupancy in
      if p <= 0. then Accept
      else if p >= 1. then Mark
      else if Dist.bernoulli rng p then Mark
      else Accept

let to_string c =
  Printf.sprintf "%s %d %d %d"
    (discipline_to_string c.discipline)
    c.capacity c.min_th c.max_th

let pp ppf c = Format.pp_print_string ppf (to_string c)

let of_tokens = function
  | [ disc; cap; min_th; max_th ] -> (
      match
        ( discipline_of_string disc,
          int_of_string_opt cap,
          int_of_string_opt min_th,
          int_of_string_opt max_th )
      with
      | Some discipline, Some capacity, Some min_th, Some max_th ->
          let c = { capacity; discipline; min_th; max_th } in
          (match validate c with Ok () -> Some c | Error _ -> None)
      | _ -> None)
  | _ -> None

let of_string s =
  of_tokens (String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> ""))
