(** The synchronous round engine.

    Executes one protocol over a complete network of [n] nodes under a
    crash adversary, per the model of Section II of the paper:

    - rounds are synchronous; messages sent in round [r] arrive in round
      [r + 1];
    - the network is anonymous (KT0): the hidden port wiring is a uniformly
      random permutation, realised lazily (see {!Protocol});
    - a faulty node crashes in the round of the adversary's choosing, an
      adversary-chosen subset of its messages for that round is lost, and
      the node halts for ever after;
    - beyond the paper's model, an optional {!Link} fault stage may lose
      messages of *live* senders (omission faults); such losses are
      counted apart from crash losses;
    - also beyond the paper, an optional bounded ingress queue
      ({!Queue_model}) sits between the crash stage and the link stage:
      each destination's access link absorbs at most [capacity] messages
      per round, dropping (or ECN-marking) the excess per the configured
      discipline. Crash losses take precedence over queue drops, and
      queue drops over link losses, so every lost message has exactly one
      recorded cause;
    - message and bit complexity are counted at send time (a lost message
      was still sent);
    - the per-edge-per-round CONGEST budget is checked when [congest_limit]
      is [Some]; [None] models LOCAL.

    The whole execution — every node's coins, the wiring, the adversary's
    coins — is a deterministic function of [config.seed]. *)

type config = {
  n : int;
  alpha : float;  (** At least [alpha * n] nodes stay non-faulty. *)
  seed : int;
  inputs : int array option;  (** Per-node inputs (agreement); default 0. *)
  adversary : Adversary.t;
  link : Link.t;  (** Omission-fault model for live links; {!Link.reliable} = paper model. *)
  queue : Queue_model.config option;
      (** Bounded per-destination ingress queues; [None] (the default,
          the paper model) gives links unbounded capacity. *)
  congest_limit : int option;  (** Per-edge per-round bits; [None] = LOCAL. *)
  record_trace : bool;
  max_rounds_override : int option;
  watchdog : (unit -> bool) option;
      (** Cooperative per-trial watchdog: polled once per round, between
          rounds. The first poll returning [true] stops the run at that
          round boundary with {!result.watchdog_expired} set. The engine
          supplies no clock of its own — determinism of the simulation is
          untouched; only {e whether the run was cut short} depends on the
          closure (typically a wall-clock deadline, see
          [Runner.spec.trial_timeout]). [None] (the default) never stops. *)
  round_clock : (unit -> int64) option;
      (** Telemetry hook: when [Some now], [now ()] is read once per
          executed round and the deltas are reported in
          {!result.round_ns}. The simulation never consumes the values —
          the computed result is bit-identical with the hook on or off.
          [None] (the default) costs one option match per round. *)
}

type result = {
  decisions : Decision.t array;  (** Final output of every node. *)
  observations : Observation.t array;  (** Final observation of every node. *)
  faulty : bool array;  (** The adversary's chosen faulty set. *)
  crashed : bool array;  (** Nodes that actually crashed. *)
  crash_round : int array;  (** Round of crash, or -1. *)
  rounds_used : int;
  timed_out : bool;
      (** The run exhausted [max_rounds] while messages were still in
          flight: the final round's sends were delivered to inboxes that
          no node will ever read. [false] both on early stop and when the
          calendar ran out with a quiescent network (protocols that count
          rounds down in silence, e.g. implicit agreement, are not timed
          out). A watchdog stop is reported as {!watchdog_expired}, never
          as [timed_out]. *)
  watchdog_expired : bool;
      (** The [config.watchdog] poll fired and the run was stopped early
          at a round boundary. Mutually exclusive with [timed_out]. *)
  metrics : Metrics.t;
  trace : Trace.t option;
  violations : Violation.t list;
      (** Model violations (KT0 protocol used [Node] addressing, unknown
          port, adversary crashed a non-faulty node, ...). Empty in any
          correct setup; tests assert so. *)
  round_ns : int64 array;
      (** Wall-clock nanoseconds per executed round, one entry per round,
          when [config.round_clock] was armed; [[||]] otherwise. *)
}

val default_config : n:int -> alpha:float -> seed:int -> config
(** CONGEST limit at {!Congest.default_limit}, no trace, no adversary,
    reliable links, no ingress queues. *)

val max_faulty : n:int -> alpha:float -> int
(** [n - ceil(alpha * n)]: the largest faulty set leaving [alpha n]
    non-faulty nodes. *)

module Make (P : Protocol.S) : sig
  val run : config -> result
end
