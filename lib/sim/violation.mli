(** Structured model violations reported by the engine.

    A violation means the *setup* broke the model of Section II — a
    protocol addressed a node it cannot know, an adversary crashed a node
    outside its faulty set, or the faulty budget was exceeded. Violations
    are never raised: the engine records every one it sees and finishes
    the run, so a chaos/fuzz harness can report them all and shrink the
    offending configuration (see [Ftc_chaos]). Any correct setup produces
    the empty list, and the tier-1 tests assert so. *)

type t =
  | Faulty_pick_out_of_range of { node : int }
      (** [pick_faulty] returned a node outside [0, n). *)
  | Faulty_pick_duplicate of { node : int }  (** [pick_faulty] listed a node twice. *)
  | Faulty_budget_exceeded of { picked : int; budget : int }
      (** More faulty nodes than [Engine.max_faulty] allows. *)
  | Unknown_port of { node : int; port : int }
      (** A protocol sent through a port it never opened. *)
  | Kt0_node_addressing of { node : int; protocol : string }
      (** A KT0 protocol used [Protocol.Node] addressing. *)
  | Invalid_destination of { node : int; dst : int }
      (** [Protocol.Node dst] with [dst] out of range or self. *)
  | Crash_out_of_range of { round : int; node : int }
  | Crash_non_faulty of { round : int; node : int }
      (** The adversary crashed a node it never declared faulty. *)
  | Crash_duplicate of { round : int; node : int }

val category : t -> string
(** Stable kebab-case tag for grouping and for replay files. *)

val to_string : t -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
