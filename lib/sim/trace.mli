(** Execution traces, for the lower-bound analyses.

    The lower-bound proofs of the paper (Theorems 4.2 and 5.2) reason about
    the *communication graph* of an execution — who sent to whom, and the
    "influence clouds" reachable from initiator nodes. Recording a trace
    lets [Ftc_analysis.Influence] compute those objects from real runs.

    A message lost on a live link produces two events: a [Send] with
    [delivered = false] (it was sent and counts in the paper's message
    complexity) and a [Link_lost] marker attributing the loss to the
    {!Link} model rather than a crash — so send/drop counts from the trace
    still reconcile exactly with {!Metrics}. A message dropped by a
    bounded ingress queue ({!Queue_model}) is recorded the same way, with
    a [Queue_dropped] marker in place of [Link_lost]. *)

type event =
  | Send of { round : int; src : int; dst : int; bits : int; delivered : bool }
  | Crash of { round : int; node : int }
  | Link_lost of { round : int; src : int; dst : int; bits : int }
      (** Emitted alongside the undelivered [Send] it explains. *)
  | Queue_dropped of { round : int; src : int; dst : int; bits : int }
      (** Dropped by the destination's bounded ingress queue
          ({!Queue_model}); emitted alongside the undelivered [Send] it
          explains, like [Link_lost]. *)
  | Ecn_marked of { round : int; src : int; dst : int }
      (** The message was delivered carrying the ECN congestion bit;
          emitted alongside its delivered [Send]. *)
  | Unroutable of { round : int; node : int }
      (** A [Fresh_port] send with no unknown peer left; never sent. *)

type t
(** An append-only event log. *)

val create : unit -> t
val add : t -> event -> unit
val events : t -> event list
(** Events in chronological order. *)

val length : t -> int
val pp_event : Format.formatter -> event -> unit
