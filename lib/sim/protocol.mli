(** The interface a distributed algorithm presents to the round engine.

    A protocol is a state machine replicated at every node. Each round the
    engine hands every live node its inbox (messages sent to it in the
    previous round) and collects its outgoing messages. Addressing reflects
    the paper's KT0 anonymity:

    - [Fresh_port] — "open a uniformly random port I have never used".
      Because the hidden port wiring is a uniformly random permutation, the
      peer behind a fresh port is a uniformly random node among those not
      already behind one of this node's used ports. This is exactly the
      primitive the paper's sampling steps need.
    - [Port p] — re-send through a known port: one previously opened with
      [Fresh_port], or the reply port attached to a received message.
    - [Node id] — KT1 addressing by identifier, allowed only for protocols
      that declare [`KT1] knowledge (used by baselines such as
      Gilbert–Kowalski which assume known neighbours).

    Deciding ([decide]) does not halt a node: in the implicit problems a
    node may fix its output early and keep relaying. A node stops acting
    only when it crashes or the run ends. *)

type dest =
  | Fresh_port  (** Open and send through a new uniformly random port. *)
  | Port of int  (** Send through an already-known port. *)
  | Node of int  (** KT1 only: send to the node with this identifier. *)

type 'msg action = { dest : dest; payload : 'msg }

type 'msg incoming = {
  from_port : int;
      (** The receiver-side port the message arrived on; replying through
          it reaches the sender. Stable: the same peer always appears
          behind the same local port. *)
  payload : 'msg;
  ecn : bool;
      (** Congestion bit: set when the [ecn] queue discipline marked the
          message on its way through the destination's ingress queue
          ({!Queue_model}); always [false] otherwise. Congestion-aware
          layers (the transport) back off on seeing it. *)
}

type ctx = {
  n : int;  (** Network size; known to all nodes (port count). *)
  alpha : float;  (** Guaranteed non-faulty fraction; known to all nodes. *)
  input : int;  (** This node's input value (agreement); 0 otherwise. *)
  rng : Ftc_rng.Rng.t;  (** This node's private coin. *)
  self : int option;  (** The node's own identifier — [Some] only in KT1. *)
}

module type S = sig
  type state
  type msg

  val name : string
  val knowledge : [ `KT0 | `KT1 ]

  val msg_bits : n:int -> msg -> int
  (** Bit size charged against the CONGEST budget. *)

  val max_rounds : n:int -> alpha:float -> int
  (** Upper bound on the rounds the protocol needs; the engine stops there
      (or earlier, on quiescence with every live node decided). *)

  val phases : n:int -> alpha:float -> (string * int) list
  (** The protocol's static phase calendar: [(phase_name, first_round)]
      pairs in strictly increasing round order, the first at round 0;
      each phase runs until the next one starts (the last until the run
      ends). A pure observability annotation — the engine never reads
      it; telemetry cuts per-round message/bit series into phase spans
      along it (referee selection, candidate sampling, leader broadcast,
      agreement flooding, ...). Use {!single_phase} when the protocol
      has no phase structure worth attributing. *)

  val init : ctx -> state

  val step :
    ctx -> state -> round:int -> inbox:msg incoming list -> state * msg action list
  (** One synchronous round. [inbox] holds messages sent to this node in
      round [round - 1]; returned actions are sent in round [round]. *)

  val decide : state -> Decision.t
  val observe : state -> Observation.t
end

val single_phase : n:int -> alpha:float -> (string * int) list
(** The trivial one-phase calendar [[("run", 0)]]. *)
