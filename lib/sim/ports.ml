module Rng = Ftc_rng.Rng

(* Per-node lazy port table, shared by the closure engine and the
   struct-of-arrays fast engine so both resolve destinations through
   literally the same code (and thus the same wiring-rng stream). Ports
   are dense small integers; the peer behind each used port is recorded
   both ways so that the same peer is always seen behind the same local
   port, as a fixed hidden permutation would guarantee.

   The peer -> port direction is an open-addressing table with linear
   probing and the port -> peer direction a dense array: at n = 10^6 a
   delivery resolves ports millions of times per trial, and a generic
   [Hashtbl] costs a [find_opt] allocation plus two dependent cache
   misses per lookup. Tables are allocated on first use so the engines'
   O(n) setup does not pay for nodes that never touch a port. *)

type t = {
  mutable by_port : int array;  (* port -> peer over [0 .. next_port) *)
  mutable next_port : int;
  mutable keys : int array;  (* open addressing: peers, -1 = empty *)
  mutable vals : int array;  (* port behind keys.(slot) *)
  mutable mask : int;  (* capacity - 1; -1 = not yet allocated *)
  mutable complement : int list;
      (** Once most peers are known, the unknown ones in a pre-shuffled
          order; consumed by [fresh_peer]. Empty = not built yet. *)
}

let create () =
  { by_port = [||]; next_port = 0; keys = [||]; vals = [||]; mask = -1; complement = [] }

(* Fibonacci multiplier; peers are arbitrary ints, slots their top bits. *)
let slot_of peer mask = ((peer * 0x2545F4914F6CDD1D) lsr 16) land mask

let rehash t cap' =
  let keys' = Array.make cap' (-1) and vals' = Array.make cap' 0 in
  let mask' = cap' - 1 in
  let old = t.keys in
  for s = 0 to Array.length old - 1 do
    let k = Array.unsafe_get old s in
    if k >= 0 then begin
      let i = ref (slot_of k mask') in
      while Array.unsafe_get keys' !i >= 0 do
        i := (!i + 1) land mask'
      done;
      Array.unsafe_set keys' !i k;
      Array.unsafe_set vals' !i (Array.unsafe_get t.vals s)
    end
  done;
  t.keys <- keys';
  t.vals <- vals';
  t.mask <- mask'

(* Keep load under 1/2; grow the dense array alongside. *)
let ensure_room t =
  if t.mask < 0 then begin
    t.keys <- Array.make 8 (-1);
    t.vals <- Array.make 8 0;
    t.mask <- 7;
    t.by_port <- Array.make 8 (-1)
  end
  else begin
    if 2 * (t.next_port + 1) > t.mask + 1 then rehash t (2 * (t.mask + 1));
    if t.next_port >= Array.length t.by_port then begin
      let a = Array.make (2 * Array.length t.by_port) (-1) in
      Array.blit t.by_port 0 a 0 t.next_port;
      t.by_port <- a
    end
  end

(* Slot where [peer] lives, or the insertion slot (key -1) otherwise. *)
let probe t peer =
  let mask = t.mask and keys = t.keys in
  let i = ref (slot_of peer mask) in
  let k = ref (Array.unsafe_get keys !i) in
  while !k >= 0 && !k <> peer do
    i := (!i + 1) land mask;
    k := Array.unsafe_get keys !i
  done;
  !i

let mem t peer = t.mask >= 0 && t.keys.(probe t peer) = peer

(* The port leading from this node to [peer], opening it if needed. *)
let port_to t peer =
  ensure_room t;
  let s = probe t peer in
  if t.keys.(s) = peer then t.vals.(s)
  else begin
    let p = t.next_port in
    t.next_port <- p + 1;
    t.keys.(s) <- peer;
    t.vals.(s) <- p;
    t.by_port.(p) <- peer;
    p
  end

(* Allocation-free lookup for the engines' hot paths: -1 = unknown. *)
let peer_of_port_int t p = if p >= 0 && p < t.next_port then t.by_port.(p) else -1

let peer_of_port t p = if p >= 0 && p < t.next_port then Some t.by_port.(p) else None

(* Ports are numbered consecutively from 0, so the table's domain is
   exactly [0 .. count - 1]. *)
let count t = t.next_port

(* Opening a fresh port reveals a uniform node among those not already
   behind a used port (and not self). Rejection sampling is O(1) expected
   while used ports are a minority; past n/2 we build the complement once,
   shuffled, and consume it — a uniformly shuffled complement yields
   exactly uniform sampling without replacement, and keeps broadcast-to-
   all linear instead of quadratic. Entries that became known through a
   received message meanwhile are skipped on pop. *)
let fresh_peer wiring_rng t ~n ~self =
  let used = t.next_port in
  if used >= n - 1 then None
  else if used < n / 2 && t.complement = [] then begin
    let rec draw () =
      let peer = Rng.int wiring_rng n in
      if peer = self || mem t peer then draw () else peer
    in
    Some (draw ())
  end
  else begin
    if t.complement = [] then begin
      let remaining = ref [] in
      for peer = n - 1 downto 0 do
        if peer <> self && not (mem t peer) then remaining := peer :: !remaining
      done;
      let arr = Array.of_list !remaining in
      Ftc_rng.Dist.shuffle wiring_rng arr;
      t.complement <- Array.to_list arr
    end;
    let rec pop () =
      match t.complement with
      | [] -> None
      | peer :: rest ->
          t.complement <- rest;
          if mem t peer then pop () else Some peer
    in
    pop ()
  end
