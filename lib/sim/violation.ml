type t =
  | Faulty_pick_out_of_range of { node : int }
  | Faulty_pick_duplicate of { node : int }
  | Faulty_budget_exceeded of { picked : int; budget : int }
  | Unknown_port of { node : int; port : int }
  | Kt0_node_addressing of { node : int; protocol : string }
  | Invalid_destination of { node : int; dst : int }
  | Crash_out_of_range of { round : int; node : int }
  | Crash_non_faulty of { round : int; node : int }
  | Crash_duplicate of { round : int; node : int }

let category = function
  | Faulty_pick_out_of_range _ -> "faulty-pick-out-of-range"
  | Faulty_pick_duplicate _ -> "faulty-pick-duplicate"
  | Faulty_budget_exceeded _ -> "faulty-budget-exceeded"
  | Unknown_port _ -> "unknown-port"
  | Kt0_node_addressing _ -> "kt0-node-addressing"
  | Invalid_destination _ -> "invalid-destination"
  | Crash_out_of_range _ -> "crash-out-of-range"
  | Crash_non_faulty _ -> "crash-non-faulty"
  | Crash_duplicate _ -> "crash-duplicate"

let to_string = function
  | Faulty_pick_out_of_range { node } ->
      Printf.sprintf "adversary picked out-of-range faulty node %d" node
  | Faulty_pick_duplicate { node } -> Printf.sprintf "adversary picked faulty node %d twice" node
  | Faulty_budget_exceeded { picked; budget } ->
      Printf.sprintf "adversary picked %d faulty nodes, budget is %d" picked budget
  | Unknown_port { node; port } -> Printf.sprintf "node %d sent through unknown port %d" node port
  | Kt0_node_addressing { node; protocol } ->
      Printf.sprintf "KT0 protocol %s: node %d used Node addressing" protocol node
  | Invalid_destination { node; dst } -> Printf.sprintf "node %d sent to invalid node %d" node dst
  | Crash_out_of_range { round; node } ->
      Printf.sprintf "adversary crashed out-of-range node %d at round %d" node round
  | Crash_non_faulty { round; node } ->
      Printf.sprintf "adversary crashed non-faulty node %d at round %d" node round
  | Crash_duplicate { round; node } ->
      Printf.sprintf "adversary crashed node %d twice (second order at round %d)" node round

let equal (a : t) (b : t) = a = b

let pp ppf v = Format.pp_print_string ppf (to_string v)
