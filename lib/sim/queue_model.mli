(** Bounded per-link ingress queues with AQM-style early drop.

    The paper's CONGEST model gives every link unbounded capacity; real
    networks do not. This model bounds what a node's access link can
    absorb in one synchronous round: each destination has a FIFO of
    [capacity] slots that drains fully between rounds, and every message
    that arrives while the queue holds [occupancy] entries faces the
    configured discipline:

    - [Drop_tail] — accepted below [capacity], dropped at it.
    - [Red] — random early detection: dropped with probability 0 below
      [min_th], probability 1 at or above [max_th] (and always at
      capacity), linearly interpolated in between — the
      occupancy-keyed decision/action split of the iRED line of work.
    - [Ecn] — same curve, but the action is a congestion mark instead
      of a drop: the message is delivered with its ECN bit set (visible
      to the receiving protocol via [Protocol.incoming.ecn]) and is
      {e never} lost, even above capacity.

    Queues are keyed per destination (the receiver's access link), not
    per directed edge: under the per-edge CONGEST budget an edge carries
    only a handful of messages per round, so per-edge queues would never
    fill — congestion emerges where a protocol concentrates load, many
    senders funnelling into one receiver. *)

type discipline = Drop_tail | Red | Ecn

type config = {
  capacity : int;  (** Queue slots per destination per round; >= 1. *)
  discipline : discipline;
  min_th : int;  (** Occupancy where early drop/mark starts; in [0, max_th]. *)
  max_th : int;  (** Occupancy of sure drop/mark; in [min_th, capacity]. *)
}

type decision = Accept | Mark | Drop

val make :
  ?min_th:int -> ?max_th:int -> capacity:int -> discipline:discipline -> unit -> config
(** Thresholds default to [max 1 (capacity / 4)] and
    [max min_th (3 * capacity / 4)]. *)

val validate : config -> (unit, string) result

val can_drop : config -> bool
(** Whether the discipline can lose messages: [true] except for [Ecn]. *)

val red_probability : config -> occupancy:int -> float
(** The pure RED curve: 0 below [min_th], 1 at or above [max_th],
    linear and non-decreasing in between. *)

val decide : config -> Ftc_rng.Rng.t -> occupancy:int -> decision
(** The discipline's verdict on a message arriving at a queue holding
    [occupancy] accepted messages. Draws from [rng] only when the RED
    probability is strictly between 0 and 1, so out-of-band traffic
    perturbs no random stream. [Ecn] never returns [Drop]. *)

val discipline_to_string : discipline -> string
(** ["drop-tail"], ["red"], or ["ecn"]. *)

val discipline_of_string : string -> discipline option

val to_string : config -> string
(** ["<discipline> <capacity> <min_th> <max_th>"] — the replay-file and
    spec-hash encoding; inverse of {!of_string}. *)

val pp : Format.formatter -> config -> unit

val of_tokens : string list -> config option
(** Parse the four {!to_string} fields, validating; [None] on malformed
    or invalid input. *)

val of_string : string -> config option
