module Rng = Ftc_rng.Rng

type config = {
  n : int;
  alpha : float;
  seed : int;
  inputs : int array option;
  adversary : Adversary.t;
  link : Link.t;
  queue : Queue_model.config option;
  congest_limit : int option;
  record_trace : bool;
  max_rounds_override : int option;
  watchdog : (unit -> bool) option;
  round_clock : (unit -> int64) option;
}

type result = {
  decisions : Decision.t array;
  observations : Observation.t array;
  faulty : bool array;
  crashed : bool array;
  crash_round : int array;
  rounds_used : int;
  timed_out : bool;
  watchdog_expired : bool;
  metrics : Metrics.t;
  trace : Trace.t option;
  violations : Violation.t list;
  round_ns : int64 array;
}

let default_config ~n ~alpha ~seed =
  {
    n;
    alpha;
    seed;
    inputs = None;
    adversary = Adversary.none;
    link = Link.reliable;
    queue = None;
    congest_limit = Some (Congest.default_limit ~n);
    record_trace = false;
    max_rounds_override = None;
    watchdog = None;
    round_clock = None;
  }

let max_faulty ~n ~alpha =
  let non_faulty = int_of_float (ceil (alpha *. float_of_int n)) in
  max 0 (n - min n non_faulty)

type 'msg send = {
  src : int;
  dst : int;
  bits : int;
  payload : 'msg;
  mutable dropped : bool;  (* lost to the sender's crash *)
  mutable queue_dropped : bool;  (* dropped by the destination's ingress queue *)
  mutable link_dropped : bool;  (* lost on a live link *)
  mutable ecn : bool;  (* congestion-marked by the ECN queue discipline *)
  mutable from_port : int;  (* receiver-side port, set at delivery accounting *)
}

module Make (P : Protocol.S) = struct
  let run config =
    let n = config.n in
    if n < 2 then invalid_arg "Engine.run: need at least 2 nodes";
    let root = Rng.create config.seed in
    let node_rngs = Rng.split_n root n in
    let wiring_rng = Rng.split root in
    let adv_rng = Rng.split root in
    (* Split last so configs without link faults reproduce the streams of
       runs recorded before the link stage existed; the queue stream
       after that again, for the same reason. *)
    let link_rng = Rng.split root in
    let queue_rng = Rng.split root in
    let violations = ref [] in
    let violation v = violations := v :: !violations in
    let inputs =
      match config.inputs with
      | Some a ->
          if Array.length a <> n then invalid_arg "Engine.run: inputs length <> n";
          a
      | None -> Array.make n 0
    in
    let ctxs =
      Array.init n (fun i ->
          {
            Protocol.n;
            alpha = config.alpha;
            input = inputs.(i);
            rng = node_rngs.(i);
            self = (match P.knowledge with `KT1 -> Some i | `KT0 -> None);
          })
    in
    let states = Array.init n (fun i -> P.init ctxs.(i)) in
    let ports = Array.init n (fun _ -> Ports.create ()) in
    (* Faulty set. *)
    let f_budget = max_faulty ~n ~alpha:config.alpha in
    let faulty = Array.make n false in
    let chosen = config.adversary.Adversary.pick_faulty adv_rng ~n ~f:f_budget in
    let chosen_count = ref 0 in
    List.iter
      (fun v ->
        if v < 0 || v >= n then violation (Violation.Faulty_pick_out_of_range { node = v })
        else if faulty.(v) then violation (Violation.Faulty_pick_duplicate { node = v })
        else begin
          faulty.(v) <- true;
          incr chosen_count
        end)
      chosen;
    if !chosen_count > f_budget then
      violation (Violation.Faulty_budget_exceeded { picked = !chosen_count; budget = f_budget });
    let crashed = Array.make n false in
    let crash_round = Array.make n (-1) in
    let alive i = not crashed.(i) in
    let metrics = Metrics.create () in
    let trace = if config.record_trace then Some (Trace.create ()) else None in
    let trace_add e = match trace with Some t -> Trace.add t e | None -> () in
    (* Inboxes are kept in arrival order (the delivery pass below conses
       in reverse), so step consumes them without a per-round reversal. *)
    let inboxes : P.msg Protocol.incoming list array = Array.make n [] in
    let max_rounds =
      match config.max_rounds_override with
      | Some r -> r
      | None -> P.max_rounds ~n ~alpha:config.alpha
    in
    let congest_key src dst = (src * n) + dst in

    let resolve_dest ~round src dest =
      match dest with
      | Protocol.Fresh_port -> (
          (* Register the new port on the sender side so the protocol can
             re-use it: fresh ports are numbered consecutively from the
             sender's current port count, and the peer's later replies
             arrive through the same binding. Exhaustion (all n-1 peers
             already known) drops the send — the only way it can happen is
             a broadcast over-approximating its fresh count — but the drop
             is counted and traced, never silent. *)
          match Ports.fresh_peer wiring_rng ports.(src) ~n ~self:src with
          | None ->
              Metrics.record_unroutable metrics ~round;
              trace_add (Trace.Unroutable { round; node = src });
              None
          | Some peer ->
              let _port = Ports.port_to ports.(src) peer in
              Some peer)
      | Protocol.Port p -> (
          match Ports.peer_of_port ports.(src) p with
          | Some peer -> Some peer
          | None ->
              violation (Violation.Unknown_port { node = src; port = p });
              None)
      | Protocol.Node d ->
          if P.knowledge = `KT0 then begin
            violation (Violation.Kt0_node_addressing { node = src; protocol = P.name });
            None
          end
          else if d < 0 || d >= n || d = src then begin
            violation (Violation.Invalid_destination { node = src; dst = d });
            None
          end
          else Some d
    in

    let round = ref 0 in
    let finished = ref false in
    let in_flight = ref false in
    (* Hot-path buffers reused across rounds: the per-round edge-bit table
       (cleared, never re-created, so its bucket array is allocated once)
       and the per-node send lists. *)
    let edge_bits : (int, int) Hashtbl.t = Hashtbl.create 256 in
    let sends_by_node : P.msg send list array = Array.make n [] in
    (* Per-destination ingress-queue occupancy, reused across rounds. *)
    let queue_depth = Array.make n 0 in
    (* Iterate this round's sends in the order the combined send list used
       to be built: node 0..n-1, each node's sends in action order. *)
    let iter_sends f =
      for i = 0 to n - 1 do
        List.iter f sends_by_node.(i)
      done
    in
    (* Cooperative watchdog: polled once per round, between rounds, so a
       trial that overruns its wall-clock budget stops at a round boundary
       with a well-formed (partial) result. The engine stays pure — the
       clock lives in the closure the caller supplied. *)
    let watchdog_expired = ref false in
    let watchdog_fired () =
      match config.watchdog with
      | Some poll when poll () ->
          watchdog_expired := true;
          true
      | _ -> false
    in
    (* Optional round timing for telemetry: one clock read per round when
       armed, a single option match per round when not. Durations are
       collected in reverse and materialised once at the end; the
       simulation itself never reads the clock, so determinism of the
       computed result is untouched. *)
    let round_ns_rev = ref [] in
    let round_count = ref 0 in
    let round_started =
      ref (match config.round_clock with Some now -> now () | None -> 0L)
    in
    let record_round_time () =
      match config.round_clock with
      | None -> ()
      | Some now ->
          let t = now () in
          round_ns_rev := Int64.sub t !round_started :: !round_ns_rev;
          incr round_count;
          round_started := t
    in
    (* Sends of the most recent round: if the round budget runs out right
       after a sending round, those messages sit in inboxes for ever. *)
    while (not !finished) && !round < max_rounds && not (watchdog_fired ()) do
      let r = !round in
      (* 1. Step every live node on its inbox; collect sends. *)
      let total_sends = ref 0 in
      for i = 0 to n - 1 do
        sends_by_node.(i) <- [];
        if alive i then begin
          let inbox = inboxes.(i) in
          inboxes.(i) <- [];
          let state', actions = P.step ctxs.(i) states.(i) ~round:r ~inbox in
          states.(i) <- state';
          let resolved =
            List.filter_map
              (fun { Protocol.dest; payload } ->
                match resolve_dest ~round:r i dest with
                | None -> None
                | Some dst ->
                    incr total_sends;
                    Some
                      {
                        src = i;
                        dst;
                        bits = P.msg_bits ~n payload;
                        payload;
                        dropped = false;
                        queue_dropped = false;
                        link_dropped = false;
                        ecn = false;
                        from_port = -1;
                      })
              actions
          in
          sends_by_node.(i) <- resolved
        end
        else inboxes.(i) <- []
      done;
      (* 2. CONGEST accounting: flag each (edge, round) over budget once. *)
      (match config.congest_limit with
      | None -> ()
      | Some limit ->
          Hashtbl.clear edge_bits;
          iter_sends (fun s ->
              let key = congest_key s.src s.dst in
              let prev = Option.value ~default:0 (Hashtbl.find_opt edge_bits key) in
              let total = prev + s.bits in
              if prev <= limit && total > limit then Metrics.record_violation metrics;
              Hashtbl.replace edge_bits key total));
      (* 3. Adversary decides this round's crashes. *)
      let all_observations = Array.map P.observe states in
      let alive_faulty =
        let acc = ref [] in
        for i = n - 1 downto 0 do
          if faulty.(i) && alive i then
            acc :=
              {
                Adversary.node = i;
                observation = all_observations.(i);
                pending =
                  List.map (fun s -> { Adversary.dst = s.dst; bits = s.bits }) sends_by_node.(i);
              }
              :: !acc
        done;
        !acc
      in
      let view = { Adversary.round = r; n; alive_faulty; all_observations } in
      let crash_orders = config.adversary.Adversary.decide_crashes adv_rng view in
      List.iter
        (fun (v, rule) ->
          if v < 0 || v >= n then violation (Violation.Crash_out_of_range { round = r; node = v })
          else if not faulty.(v) then violation (Violation.Crash_non_faulty { round = r; node = v })
          else if crashed.(v) then violation (Violation.Crash_duplicate { round = r; node = v })
          else begin
            crashed.(v) <- true;
            crash_round.(v) <- r;
            trace_add (Trace.Crash { round = r; node = v });
            let mine = sends_by_node.(v) in
            (match rule with
            | Adversary.Drop_all -> List.iter (fun s -> s.dropped <- true) mine
            | Adversary.Drop_none -> ()
            | Adversary.Drop_random p ->
                List.iter (fun s -> if Ftc_rng.Dist.bernoulli adv_rng p then s.dropped <- true) mine
            | Adversary.Keep_prefix k ->
                List.iteri (fun idx s -> if idx >= k then s.dropped <- true) mine)
          end)
        crash_orders;
      (* 3b. Ingress queues: every message the crash stage left on the
         wire arrives at its destination's bounded access-link queue in
         deterministic send order. Occupancy counts messages the queue
         already accepted this round (queues drain fully between rounds);
         the discipline drops, marks, or admits each arrival. Runs
         without a queue touch neither the depth buffer nor the queue
         RNG stream. *)
      (match config.queue with
      | None -> ()
      | Some q ->
          Array.fill queue_depth 0 n 0;
          iter_sends (fun s ->
              if not s.dropped then begin
                let occupancy = queue_depth.(s.dst) in
                match Queue_model.decide q queue_rng ~occupancy with
                | Queue_model.Accept -> queue_depth.(s.dst) <- occupancy + 1
                | Queue_model.Mark ->
                    s.ecn <- true;
                    queue_depth.(s.dst) <- occupancy + 1
                | Queue_model.Drop -> s.queue_dropped <- true
              end);
          let peak = ref 0 in
          for i = 0 to n - 1 do
            if queue_depth.(i) > !peak then peak := queue_depth.(i)
          done;
          if !peak > 0 then Metrics.record_queue_depth metrics ~round:r ~depth:!peak);
      (* 4. Link faults: every message the crash and queue stages left on
         the wire traverses its (possibly lossy) link. Crash losses take
         precedence over queue drops, and queue drops over link losses: a
         message never reaches the stage after the one that lost it. *)
      if config.link != Link.reliable then
        iter_sends (fun s ->
            if not (s.dropped || s.queue_dropped) then
              let view =
                {
                  Link.round = r;
                  src = s.src;
                  dst = s.dst;
                  bits = s.bits;
                  observations = all_observations;
                }
              in
              if config.link.Link.drop link_rng view then s.link_dropped <- true);
      (* 5. Count, trace, and deliver. Two passes: the forward pass keeps
         the metric/trace/port-opening order of the old combined send
         list; the backward pass conses each delivery so every inbox ends
         up in arrival order directly — no [List.rev] per inbox per
         round. *)
      iter_sends (fun s ->
          if s.queue_dropped then begin
            Metrics.record_queue_drop metrics ~round:r ~bits:s.bits;
            trace_add
              (Trace.Send { round = r; src = s.src; dst = s.dst; bits = s.bits; delivered = false });
            trace_add (Trace.Queue_dropped { round = r; src = s.src; dst = s.dst; bits = s.bits })
          end
          else if s.link_dropped then begin
            Metrics.record_link_loss metrics ~round:r ~bits:s.bits;
            trace_add
              (Trace.Send { round = r; src = s.src; dst = s.dst; bits = s.bits; delivered = false });
            trace_add (Trace.Link_lost { round = r; src = s.src; dst = s.dst; bits = s.bits })
          end
          else begin
            let delivered = not s.dropped in
            Metrics.record_send metrics ~round:r ~bits:s.bits ~delivered;
            trace_add (Trace.Send { round = r; src = s.src; dst = s.dst; bits = s.bits; delivered });
            if delivered then begin
              s.from_port <- Ports.port_to ports.(s.dst) s.src;
              (* ECN marks count only on messages that actually arrive,
                 so the metric equals the marks receivers observe. *)
              if s.ecn then begin
                Metrics.record_ecn_mark metrics ~round:r;
                trace_add (Trace.Ecn_marked { round = r; src = s.src; dst = s.dst })
              end
            end
          end);
      let rec deliver_rev = function
        | [] -> ()
        | s :: rest ->
            deliver_rev rest;
            if s.from_port >= 0 && not (s.dropped || s.queue_dropped || s.link_dropped) then
              inboxes.(s.dst) <-
                { Protocol.from_port = s.from_port; payload = s.payload; ecn = s.ecn }
                :: inboxes.(s.dst)
      in
      for i = n - 1 downto 0 do
        deliver_rev sends_by_node.(i)
      done;
      (* 6. Early stop: network quiescent and every live node has decided. *)
      in_flight := !total_sends > 0;
      if !total_sends = 0 then begin
        let all_decided = ref true in
        for i = 0 to n - 1 do
          if alive i && P.decide states.(i) = Decision.Undecided then all_decided := false
        done;
        if !all_decided then finished := true
      end;
      record_round_time ();
      incr round
    done;
    Metrics.finish metrics ~rounds:!round;
    let round_ns =
      if !round_count = 0 then [||]
      else begin
        let a = Array.make !round_count 0L in
        let i = ref (!round_count - 1) in
        List.iter
          (fun d ->
            a.(!i) <- d;
            decr i)
          !round_ns_rev;
        a
      end
    in
    {
      decisions = Array.map P.decide states;
      observations = Array.map P.observe states;
      faulty;
      crashed;
      crash_round;
      rounds_used = !round;
      timed_out = (not !finished) && !in_flight && not !watchdog_expired;
      watchdog_expired = !watchdog_expired;
      metrics;
      trace;
      violations = List.rev !violations;
      round_ns;
    }
end
