type view = {
  round : int;
  src : int;
  dst : int;
  bits : int;
  observations : Observation.t array;
}

type t = { name : string; drop : Ftc_rng.Rng.t -> view -> bool }

let reliable = { name = "reliable"; drop = (fun _ _ -> false) }
