type event =
  | Send of { round : int; src : int; dst : int; bits : int; delivered : bool }
  | Crash of { round : int; node : int }
  | Link_lost of { round : int; src : int; dst : int; bits : int }
  | Queue_dropped of { round : int; src : int; dst : int; bits : int }
  | Ecn_marked of { round : int; src : int; dst : int }
  | Unroutable of { round : int; node : int }

type t = { mutable rev_events : event list; mutable len : int }

let create () = { rev_events = []; len = 0 }

let add t e =
  t.rev_events <- e :: t.rev_events;
  t.len <- t.len + 1

let events t = List.rev t.rev_events

let length t = t.len

let pp_event ppf = function
  | Send { round; src; dst; bits; delivered } ->
      Format.fprintf ppf "r%d: %d -> %d (%d bits%s)" round src dst bits
        (if delivered then "" else ", lost")
  | Crash { round; node } -> Format.fprintf ppf "r%d: crash %d" round node
  | Link_lost { round; src; dst; bits } ->
      Format.fprintf ppf "r%d: %d -> %d (%d bits, link lost)" round src dst bits
  | Queue_dropped { round; src; dst; bits } ->
      Format.fprintf ppf "r%d: %d -> %d (%d bits, queue dropped)" round src dst bits
  | Ecn_marked { round; src; dst } ->
      Format.fprintf ppf "r%d: %d -> %d ecn-marked" round src dst
  | Unroutable { round; node } -> Format.fprintf ppf "r%d: %d fresh-port send unroutable" round node
