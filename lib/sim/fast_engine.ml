module Rng = Ftc_rng.Rng

(* Struct-of-arrays engine: same [Engine.config] in, same
   [Engine.result] out, bit-identical to the closure engine on every
   supported config (the differential suite in test/test_fast_engine.ml
   pins this). The round pipeline — step, CONGEST accounting, crashes,
   ingress queues, link faults, delivery — runs in exactly the classic
   order over exactly the same split rng streams; what changes is the
   representation: flat preallocated send buffers, Bigarray inboxes
   built by a counting sort, Bytes crash masks, and an event-driven
   active set so only nodes with work actually step.

   Stream identity argument, stage by stage:
   - rng tree: the same five [Rng.split]s off the same root, in the
     same order.
   - wiring: sends resolve through {!Ports} (shared with the classic
     engine) at emit time; since nodes step in ascending order and each
     node's emits happen in classic action order, the sequence of
     [fresh_peer] draws on [wiring_rng] is identical.
   - adversary: the view is rebuilt per round from the same data — the
     protocol-maintained observation cache (see
     {!Fast_protocol.runtime.obs}) equals [Array.map P.observe states]
     at every round boundary: entries are replaced at the exact event
     that changes them, and an unstepped node's observation cannot
     change.
   - queue/link: each surviving send is offered to the discipline / the
     link in global forward order, same as [iter_sends].
   Nodes skipped by the active set would have been classic no-ops (no
   actions, no state change, no rng draws — each fast protocol proves
   this for its own skips), so every stream sees the same draws. *)

type send_flags = Bytes.t

let f_dropped = 1 (* lost to the sender's crash *)
let f_queue_dropped = 2 (* dropped by the destination's ingress queue *)
let f_link_dropped = 4 (* lost on a live link *)
let f_ecn = 8 (* congestion-marked by the ECN queue discipline *)

let flag_test (b : send_flags) i f = Char.code (Bytes.unsafe_get b i) land f <> 0
let flag_set (b : send_flags) i f =
  Bytes.unsafe_set b i (Char.unsafe_chr (Char.code (Bytes.unsafe_get b i) lor f))

let ba_create len =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len)

(* At large n the per-round adversary view (an O(f) list of node_view
   records) is live all at once while it is being built, so with the
   default 256k-word minor heap nearly all of it is promoted and then
   immediately dies in the major heap — at n = 10^6 that is hundreds of
   megawords of promotion and most of the wall clock. A minor heap a
   few times larger than the biggest per-round burst lets those lists
   die young; the burst scales with f = alpha * n, so the target scales
   with n (capped — past ~256 MB the minor heap's own page faults cost
   more than the promotion it avoids). What little still promotes dies
   immediately, so a tighter space_overhead keeps the major heap from
   ballooning into syscall-heavy growth. One-way ratchets: never shrink
   a user-enlarged minor heap, never raise a user-tightened overhead. *)
let min_minor_heap_words n = max (8 * 1024 * 1024) (min (32 * 1024 * 1024) (32 * n))
let max_space_overhead = 80

let ensure_gc_tuning n =
  let g = Gc.get () in
  let minor = max g.Gc.minor_heap_size (min_minor_heap_words n) in
  let overhead = min g.Gc.space_overhead max_space_overhead in
  if minor <> g.Gc.minor_heap_size || overhead <> g.Gc.space_overhead then
    Gc.set { g with Gc.minor_heap_size = minor; space_overhead = overhead }

module Make (P : Fast_protocol.S) = struct
  let words = P.words

  let run (config : Engine.config) =
    let n = config.n in
    if n < 2 then invalid_arg "Engine.run: need at least 2 nodes";
    if n >= 65536 then ensure_gc_tuning n;
    let root = Rng.create config.seed in
    let node_rngs = Rng.split_n root n in
    let wiring_rng = Rng.split root in
    let adv_rng = Rng.split root in
    let link_rng = Rng.split root in
    let queue_rng = Rng.split root in
    let violations = ref [] in
    let violation v = violations := v :: !violations in
    let inputs =
      match config.inputs with
      | Some a ->
          if Array.length a <> n then invalid_arg "Engine.run: inputs length <> n";
          a
      | None -> Array.make n 0
    in
    let ports = Array.init n (fun _ -> Ports.create ()) in
    (* Faulty set. *)
    let f_budget = Engine.max_faulty ~n ~alpha:config.alpha in
    let faulty = Array.make n false in
    let chosen = config.adversary.Adversary.pick_faulty adv_rng ~n ~f:f_budget in
    let chosen_count = ref 0 in
    List.iter
      (fun v ->
        if v < 0 || v >= n then violation (Violation.Faulty_pick_out_of_range { node = v })
        else if faulty.(v) then violation (Violation.Faulty_pick_duplicate { node = v })
        else begin
          faulty.(v) <- true;
          incr chosen_count
        end)
      chosen;
    if !chosen_count > f_budget then
      violation (Violation.Faulty_budget_exceeded { picked = !chosen_count; budget = f_budget });
    (* Sorted id list of the faulty set, for O(f) adversary views. *)
    let faulty_ids =
      let c = ref 0 in
      for i = 0 to n - 1 do
        if faulty.(i) then incr c
      done;
      let a = Array.make !c 0 in
      let j = ref 0 in
      for i = 0 to n - 1 do
        if faulty.(i) then begin
          a.(!j) <- i;
          incr j
        end
      done;
      a
    in
    let crashed = Bytes.make n '\000' in
    let is_crashed i = Bytes.unsafe_get crashed i <> '\000' in
    let crash_round = Array.make n (-1) in
    let metrics = Metrics.create () in
    let trace = if config.record_trace then Some (Trace.create ()) else None in
    let trace_add e = match trace with Some t -> Trace.add t e | None -> () in
    (* Per-message call sites test this before building the event, so an
       untraced run allocates nothing for tracing. *)
    let tracing = trace <> None in
    let max_rounds =
      match config.max_rounds_override with
      | Some r -> r
      | None -> P.max_rounds ~n ~alpha:config.alpha
    in

    (* ---- Send buffer (struct of arrays, grows by doubling). ---- *)
    let s_cap = ref 1024 in
    let s_len = ref 0 in
    let s_src = ref (Array.make !s_cap 0) in
    let s_dst = ref (Array.make !s_cap 0) in
    let s_bits = ref (Array.make !s_cap 0) in
    let s_fport = ref (Array.make !s_cap (-1)) in
    let s_flags = ref (Bytes.make !s_cap '\000') in
    let s_words = ref (Array.make (!s_cap * words) 0) in
    let grow_sends () =
      let cap' = !s_cap * 2 in
      let g a d =
        let a' = Array.make cap' d in
        Array.blit !a 0 a' 0 !s_cap;
        a := a'
      in
      g s_src 0;
      g s_dst 0;
      g s_bits 0;
      g s_fport (-1);
      let f' = Bytes.make cap' '\000' in
      Bytes.blit !s_flags 0 f' 0 !s_cap;
      s_flags := f';
      let w' = Array.make (cap' * words) 0 in
      Array.blit !s_words 0 w' 0 (!s_cap * words);
      s_words := w';
      s_cap := cap'
    in
    let push_send ~src ~dst ~bits w0 w1 w2 =
      if !s_len = !s_cap then grow_sends ();
      let i = !s_len in
      !s_src.(i) <- src;
      !s_dst.(i) <- dst;
      !s_bits.(i) <- bits;
      !s_fport.(i) <- -1;
      Bytes.unsafe_set !s_flags i '\000';
      let b = i * words in
      !s_words.(b) <- w0;
      if words > 1 then !s_words.(b + 1) <- w1;
      if words > 2 then !s_words.(b + 2) <- w2;
      s_len := i + 1
    in
    (* Per-node send ranges of the current round, validated by stamp.
       Only read for faulty nodes (crash drop rules, adversary views),
       so only their steps maintain them; [faulty_b] is the byte-mask
       twin of [faulty] for that hot-loop test. *)
    let snd_first = Array.make n 0 in
    let snd_end = Array.make n 0 in
    let snd_stamp = Array.make n (-1) in
    let faulty_b = Bytes.make n '\000' in
    Array.iter (fun i -> Bytes.set faulty_b i '\001') faulty_ids;

    (* ---- Active set: nodes to step next round. ---- *)
    let pending_flag = Bytes.make n '\000' in
    let pending_buf = Array.make n 0 in
    let pending_len = ref 0 in
    let add_pending i =
      if Bytes.unsafe_get pending_flag i = '\000' then begin
        Bytes.unsafe_set pending_flag i '\001';
        pending_buf.(!pending_len) <- i;
        incr pending_len
      end
    in
    let active_buf = Array.make n 0 in
    let active_len = ref 0 in
    (* Drain the pending set into [active_buf] in ascending node order,
       dropping crashed nodes and clearing the flags. Sparse pending
       sets sort their buffer; dense ones scan the flag bytes. *)
    let build_active () =
      active_len := 0;
      if !pending_len > n / 8 then
        for i = 0 to n - 1 do
          if Bytes.unsafe_get pending_flag i <> '\000' then begin
            Bytes.unsafe_set pending_flag i '\000';
            if not (is_crashed i) then begin
              active_buf.(!active_len) <- i;
              incr active_len
            end
          end
        done
      else begin
        let sub = Array.sub pending_buf 0 !pending_len in
        Array.sort (fun (a : int) b -> compare a b) sub;
        Array.iter
          (fun i ->
            Bytes.unsafe_set pending_flag i '\000';
            if not (is_crashed i) then begin
              active_buf.(!active_len) <- i;
              incr active_len
            end)
          sub
      end;
      pending_len := 0
    in

    (* ---- Round inbox (counting sort over delivered sends). ---- *)
    let ib_start = Array.make n 0 in
    let ib_count = Array.make n 0 in
    let ib_ptr = Array.make n 0 in
    let touched = Array.make n 0 in
    let touched_len = ref 0 in
    let inbox_cap = ref 1024 in
    let rt_inbox_words = ref (ba_create (!inbox_cap * words)) in
    let rt_inbox_port = ref (Array.make !inbox_cap (-1)) in

    (* ---- Emit context and the protocol runtime. ---- *)
    let cur_src = ref (-1) in
    let cur_round = ref 0 in
    let total_sends = ref 0 in
    let resolved ~dst w0 w1 w2 =
      incr total_sends;
      push_send ~src:!cur_src ~dst ~bits:(P.msg_bits ~n w0) w0 w1 w2
    in
    let emit_fresh w0 w1 w2 =
      let src = !cur_src in
      match Ports.fresh_peer wiring_rng ports.(src) ~n ~self:src with
      | None ->
          Metrics.record_unroutable metrics ~round:!cur_round;
          trace_add (Trace.Unroutable { round = !cur_round; node = src })
      | Some peer ->
          let _port = Ports.port_to ports.(src) peer in
          resolved ~dst:peer w0 w1 w2
    in
    let emit_port p w0 w1 w2 =
      let peer = Ports.peer_of_port_int ports.(!cur_src) p in
      if peer >= 0 then resolved ~dst:peer w0 w1 w2
      else violation (Violation.Unknown_port { node = !cur_src; port = p })
    in
    let emit_node d w0 w1 w2 =
      if P.knowledge = `KT0 then
        violation (Violation.Kt0_node_addressing { node = !cur_src; protocol = P.name })
      else if d < 0 || d >= n || d = !cur_src then
        violation (Violation.Invalid_destination { node = !cur_src; dst = d })
      else resolved ~dst:d w0 w1 w2
    in
    (* Live nodes whose decide is still [Undecided]; crossing zero with
       a quiescent network ends the run (classic stage 6). *)
    let live_undecided = ref 0 in
    (* Observation cache: filled by [P.create], kept current by the
       protocol itself (entries are replaced at the moment a node's
       observation changes), so the engine never polls [P.observe] in
       the round loop. *)
    let obs_cache = Array.make n Observation.bystander in
    let rt =
      {
        Fast_protocol.inbox_words = !rt_inbox_words;
        inbox_port = !rt_inbox_port;
        emit_fresh;
        emit_port;
        emit_node;
        port_count = (fun i -> Ports.count ports.(i));
        wake = add_pending;
        obs = obs_cache;
        note_decided = (fun _ -> decr live_undecided);
      }
    in
    let t = P.create ~n ~alpha:config.alpha ~inputs ~node_rngs rt in
    for i = 0 to n - 1 do
      if P.decide t i = Decision.Undecided then incr live_undecided
    done;

    (* ---- CONGEST accounting scratch (per-destination, stamp-keyed:
       sends are grouped by ascending src, so each (src, dst) edge is a
       contiguous run and one stamped accumulator per dst suffices). ---- *)
    let edge_acc = Array.make n 0 in
    let edge_stamp = Array.make n (-1) in
    let run_id = ref 0 in
    (* Per-faulty-node view records, reused across rounds while the
       node's observation is physically unchanged and it has no pending
       sends (protocols replace their cached observation record on any
       change, so physical equality is a sound staleness check). The
       adversary view is rebuilt every round; without this the O(f)
       record churn dominates large-n runs. *)
    let nv_cache = Array.make (Array.length faulty_ids) None in
    (* Per-destination ingress-queue occupancy, reused across rounds. *)
    let queue_depth = Array.make n 0 in

    let round = ref 0 in
    let finished = ref false in
    let in_flight = ref false in
    let watchdog_expired = ref false in
    let watchdog_fired () =
      match config.watchdog with
      | Some poll when poll () ->
          watchdog_expired := true;
          true
      | _ -> false
    in
    let round_ns_rev = ref [] in
    let round_count = ref 0 in
    let round_started =
      ref (match config.round_clock with Some now -> now () | None -> 0L)
    in
    let record_round_time () =
      match config.round_clock with
      | None -> ()
      | Some now ->
          let t = now () in
          round_ns_rev := Int64.sub t !round_started :: !round_ns_rev;
          incr round_count;
          round_started := t
    in

    while (not !finished) && !round < max_rounds && not (watchdog_fired ()) do
      let r = !round in
      cur_round := r;
      (* 1. Step the active nodes (ascending) on their inboxes; nodes
         left out would have been classic no-ops. *)
      build_active ();
      s_len := 0;
      total_sends := 0;
      for a = 0 to !active_len - 1 do
        let i = active_buf.(a) in
        cur_src := i;
        if Bytes.unsafe_get faulty_b i <> '\000' then begin
          snd_first.(i) <- !s_len;
          snd_stamp.(i) <- r
        end;
        P.step t ~node:i ~round:r ~inbox_start:ib_start.(i) ~inbox_count:ib_count.(i);
        if Bytes.unsafe_get faulty_b i <> '\000' then snd_end.(i) <- !s_len
      done;
      let s_count = !s_len in
      let src = !s_src and dst = !s_dst and bits = !s_bits in
      let fport = !s_fport and flags = !s_flags in
      (* 2. CONGEST accounting: flag each (edge, round) over budget once. *)
      (match config.congest_limit with
      | None -> ()
      | Some limit ->
          let cur = ref (-1) in
          for k = 0 to s_count - 1 do
            if src.(k) <> !cur then begin
              cur := src.(k);
              incr run_id
            end;
            let d = dst.(k) in
            let prev = if edge_stamp.(d) = !run_id then edge_acc.(d) else 0 in
            let total = prev + bits.(k) in
            if prev <= limit && total > limit then Metrics.record_violation metrics;
            edge_acc.(d) <- total;
            edge_stamp.(d) <- !run_id
          done);
      (* 3. Adversary decides this round's crashes. *)
      let alive_faulty =
        let acc = ref [] in
        for j = Array.length faulty_ids - 1 downto 0 do
          let i = faulty_ids.(j) in
          if not (is_crashed i) then begin
            let nv =
              if snd_stamp.(i) = r && snd_end.(i) > snd_first.(i) then begin
                let pending = ref [] in
                for k = snd_end.(i) - 1 downto snd_first.(i) do
                  pending := { Adversary.dst = dst.(k); bits = bits.(k) } :: !pending
                done;
                { Adversary.node = i; observation = obs_cache.(i); pending = !pending }
              end
              else
                match nv_cache.(j) with
                | Some nv when nv.Adversary.observation == obs_cache.(i) -> nv
                | _ ->
                    let nv =
                      { Adversary.node = i; observation = obs_cache.(i); pending = [] }
                    in
                    nv_cache.(j) <- Some nv;
                    nv
            in
            acc := nv :: !acc
          end
        done;
        !acc
      in
      let view = { Adversary.round = r; n; alive_faulty; all_observations = obs_cache } in
      let crash_orders = config.adversary.Adversary.decide_crashes adv_rng view in
      List.iter
        (fun (v, rule) ->
          if v < 0 || v >= n then violation (Violation.Crash_out_of_range { round = r; node = v })
          else if not faulty.(v) then violation (Violation.Crash_non_faulty { round = r; node = v })
          else if is_crashed v then violation (Violation.Crash_duplicate { round = r; node = v })
          else begin
            Bytes.set crashed v '\001';
            crash_round.(v) <- r;
            if P.decide t v = Decision.Undecided then decr live_undecided;
            trace_add (Trace.Crash { round = r; node = v });
            if snd_stamp.(v) = r then begin
              let first = snd_first.(v) and last = snd_end.(v) - 1 in
              match rule with
              | Adversary.Drop_all ->
                  for k = first to last do
                    flag_set flags k f_dropped
                  done
              | Adversary.Drop_none -> ()
              | Adversary.Drop_random p ->
                  for k = first to last do
                    if Ftc_rng.Dist.bernoulli adv_rng p then flag_set flags k f_dropped
                  done
              | Adversary.Keep_prefix kp ->
                  for k = first + kp to last do
                    flag_set flags k f_dropped
                  done
            end
          end)
        crash_orders;
      (* 3b. Ingress queues, in deterministic global send order. *)
      (match config.queue with
      | None -> ()
      | Some q ->
          Array.fill queue_depth 0 n 0;
          for k = 0 to s_count - 1 do
            if not (flag_test flags k f_dropped) then begin
              let d = dst.(k) in
              let occupancy = queue_depth.(d) in
              match Queue_model.decide q queue_rng ~occupancy with
              | Queue_model.Accept -> queue_depth.(d) <- occupancy + 1
              | Queue_model.Mark ->
                  flag_set flags k f_ecn;
                  queue_depth.(d) <- occupancy + 1
              | Queue_model.Drop -> flag_set flags k f_queue_dropped
            end
          done;
          let peak = ref 0 in
          for i = 0 to n - 1 do
            if queue_depth.(i) > !peak then peak := queue_depth.(i)
          done;
          if !peak > 0 then Metrics.record_queue_depth metrics ~round:r ~depth:!peak);
      (* 4. Link faults over what the crash and queue stages left. *)
      if config.link != Link.reliable then
        for k = 0 to s_count - 1 do
          if Char.code (Bytes.unsafe_get flags k) land (f_dropped lor f_queue_dropped) = 0
          then begin
            let view =
              {
                Link.round = r;
                src = src.(k);
                dst = dst.(k);
                bits = bits.(k);
                observations = obs_cache;
              }
            in
            if config.link.Link.drop link_rng view then flag_set flags k f_link_dropped
          end
        done;
      (* 5. Count, trace, and deliver: the forward pass reproduces the
         classic metric/trace/port-opening order, then a counting sort
         lays each destination's arrivals out contiguously. *)
      let fw_msgs = ref 0 and fw_bits = ref 0 and fw_dropped = ref 0 in
      for k = 0 to s_count - 1 do
        let fl = Char.code (Bytes.unsafe_get flags k) in
        if fl land f_queue_dropped <> 0 then begin
          Metrics.record_queue_drop metrics ~round:r ~bits:bits.(k);
          if tracing then begin
            trace_add
              (Trace.Send
                 { round = r; src = src.(k); dst = dst.(k); bits = bits.(k); delivered = false });
            trace_add
              (Trace.Queue_dropped { round = r; src = src.(k); dst = dst.(k); bits = bits.(k) })
          end
        end
        else if fl land f_link_dropped <> 0 then begin
          Metrics.record_link_loss metrics ~round:r ~bits:bits.(k);
          if tracing then begin
            trace_add
              (Trace.Send
                 { round = r; src = src.(k); dst = dst.(k); bits = bits.(k); delivered = false });
            trace_add (Trace.Link_lost { round = r; src = src.(k); dst = dst.(k); bits = bits.(k) })
          end
        end
        else begin
          let delivered = fl land f_dropped = 0 in
          incr fw_msgs;
          fw_bits := !fw_bits + bits.(k);
          if not delivered then incr fw_dropped;
          if tracing then
            trace_add
              (Trace.Send { round = r; src = src.(k); dst = dst.(k); bits = bits.(k); delivered });
          if delivered then begin
            fport.(k) <- Ports.port_to ports.(dst.(k)) src.(k);
            if fl land f_ecn <> 0 then begin
              Metrics.record_ecn_mark metrics ~round:r;
              if tracing then
                trace_add (Trace.Ecn_marked { round = r; src = src.(k); dst = dst.(k) })
            end
          end
        end
      done;
      Metrics.record_send_batch metrics ~round:r ~msgs:!fw_msgs ~bits:!fw_bits
        ~dropped:!fw_dropped;
      (* Counting sort into next round's inbox. Clear last round's
         counts first (only the touched entries), then count, lay out
         segments, and copy forward — forward order within a segment is
         arrival order, as in the classic engine. Deliveries to a node
         crashed this round are skipped: the classic engine conses them
         and clears the inbox unread at the next step. *)
      for j = 0 to !touched_len - 1 do
        ib_count.(touched.(j)) <- 0
      done;
      touched_len := 0;
      let delivered_to k =
        (* delivered and worth storing *)
        fport.(k) >= 0
        && Char.code (Bytes.unsafe_get flags k)
           land (f_dropped lor f_queue_dropped lor f_link_dropped)
           = 0
        && not (is_crashed dst.(k))
      in
      let delivered_count = ref 0 in
      for k = 0 to s_count - 1 do
        if delivered_to k then begin
          let d = dst.(k) in
          if ib_count.(d) = 0 then begin
            touched.(!touched_len) <- d;
            incr touched_len
          end;
          ib_count.(d) <- ib_count.(d) + 1;
          incr delivered_count
        end
      done;
      if !delivered_count > !inbox_cap then begin
        while !delivered_count > !inbox_cap do
          inbox_cap := !inbox_cap * 2
        done;
        rt_inbox_words := ba_create (!inbox_cap * words);
        rt_inbox_port := Array.make !inbox_cap (-1);
        rt.Fast_protocol.inbox_words <- !rt_inbox_words;
        rt.Fast_protocol.inbox_port <- !rt_inbox_port
      end;
      let acc = ref 0 in
      for j = 0 to !touched_len - 1 do
        let d = touched.(j) in
        ib_start.(d) <- !acc;
        ib_ptr.(d) <- !acc;
        acc := !acc + ib_count.(d)
      done;
      let iw = !rt_inbox_words and ip = !rt_inbox_port in
      let sw = !s_words in
      for k = 0 to s_count - 1 do
        if delivered_to k then begin
          let d = dst.(k) in
          let p = ib_ptr.(d) in
          ib_ptr.(d) <- p + 1;
          ip.(p) <- fport.(k);
          let b = p * words and sb = k * words in
          iw.{b} <- sw.(sb);
          if words > 1 then iw.{b + 1} <- sw.(sb + 1);
          if words > 2 then iw.{b + 2} <- sw.(sb + 2);
          add_pending d
        end
      done;
      (* 6. Early stop: network quiescent and every live node decided. *)
      in_flight := !total_sends > 0;
      if !total_sends = 0 && !live_undecided = 0 then finished := true;
      record_round_time ();
      incr round
    done;
    Metrics.finish metrics ~rounds:!round;
    let round_ns =
      if !round_count = 0 then [||]
      else begin
        let a = Array.make !round_count 0L in
        let i = ref (!round_count - 1) in
        List.iter
          (fun d ->
            a.(!i) <- d;
            decr i)
          !round_ns_rev;
        a
      end
    in
    {
      Engine.decisions = Array.init n (fun i -> P.decide t i);
      observations = Array.init n (fun i -> P.observe t i);
      faulty;
      crashed = Array.init n is_crashed;
      crash_round;
      rounds_used = !round;
      timed_out = (not !finished) && !in_flight && not !watchdog_expired;
      watchdog_expired = !watchdog_expired;
      metrics;
      trace;
      violations = List.rev !violations;
      round_ns;
    }
end
