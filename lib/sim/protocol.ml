type dest = Fresh_port | Port of int | Node of int

type 'msg action = { dest : dest; payload : 'msg }

type 'msg incoming = { from_port : int; payload : 'msg; ecn : bool }

type ctx = {
  n : int;
  alpha : float;
  input : int;
  rng : Ftc_rng.Rng.t;
  self : int option;
}

module type S = sig
  type state
  type msg

  val name : string
  val knowledge : [ `KT0 | `KT1 ]
  val msg_bits : n:int -> msg -> int
  val max_rounds : n:int -> alpha:float -> int

  val phases : n:int -> alpha:float -> (string * int) list
  (** The protocol's static phase calendar: [(phase_name, first_round)]
      pairs in strictly increasing round order, the first at round 0.
      Each phase extends to the next phase's first round (the last to
      the end of the run). Purely an observability annotation — the
      engine never reads it; telemetry uses it to attribute per-round
      message/bit counts to algorithm phases (referee selection,
      candidate sampling, leader broadcast, ...). Protocols without
      meaningful internal structure can use {!single_phase}. *)

  val init : ctx -> state

  val step :
    ctx -> state -> round:int -> inbox:msg incoming list -> state * msg action list

  val decide : state -> Decision.t
  val observe : state -> Observation.t
end

(* Default one-phase calendar for protocols (and test harnesses) with no
   internal phase structure worth attributing. *)
let single_phase ~n:_ ~alpha:_ = [ ("run", 0) ]
