module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Dist = Ftc_rng.Dist

let byzantine_input = 2

(* The message alphabet and honest behaviour mirror Agreement (Sec. V-A);
   the attacker differs only in Step 0, where it forges a 0. Keeping this
   a separate module leaves the faithful protocol untouched. *)
type msg = Up of int | Down

type referee = { mutable cand_ports : int list; mutable has_zero : bool; mutable forwarded : bool }

type candidate = { mutable referee_ports : int list; mutable has_zero : bool; mutable forwarded : bool }

type state = {
  input : int;  (* 0 | 1 honest, byzantine_input = attacker *)
  is_candidate : bool;
  cand : candidate option;
  mutable referee : referee option;
  mutable decision : Decision.t;
}

module Make (C : sig
  val params : Params.t
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let params = C.params

  let name = "byzantine-probe-agreement"
  let knowledge = `KT0
  let msg_bits ~n:_ = function Up _ | Down -> Congest.tag_bits + 1
  let max_rounds ~n ~alpha = 2 + (2 * Params.iterations params ~n ~alpha)
  let phases ~n:_ ~alpha:_ = [ ("candidate-sampling", 0); ("probe-flooding", 1) ]

  let init (ctx : Protocol.ctx) =
    let byzantine = ctx.input = byzantine_input in
    let input = if byzantine then byzantine_input else if ctx.input <> 0 then 1 else 0 in
    let p = Params.candidate_prob params ~n:ctx.n ~alpha:ctx.alpha in
    (* The attacker always campaigns: joining the committee costs it one
       referee fan-out, the same sublinear price honest candidates pay. *)
    let is_candidate = byzantine || Dist.bernoulli ctx.rng p in
    {
      input;
      is_candidate;
      cand =
        (if is_candidate then
           Some { referee_ports = []; has_zero = input = 0; forwarded = false }
         else None);
      referee = None;
      decision = (if is_candidate && input = 0 then Decision.Agreed 0 else Decision.Undecided);
    }

  let referee_of st =
    match st.referee with
    | Some r -> r
    | None ->
        let r = { cand_ports = []; has_zero = false; forwarded = false } in
        st.referee <- Some r;
        r

  let send_to_ports ports payload =
    List.rev_map (fun p -> { Protocol.dest = Protocol.Port p; payload }) ports

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let n = ctx.n and alpha = ctx.alpha in
    let actions = ref [] in
    let emit acts = actions := List.rev_append acts !actions in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        match payload with
        | Up v ->
            let r = referee_of st in
            if not (List.mem from_port r.cand_ports) then
              r.cand_ports <- from_port :: r.cand_ports;
            if v = 0 then r.has_zero <- true
        | Down -> (
            match st.cand with Some c -> c.has_zero <- true | None -> ()))
      inbox;
    (match (st.cand, st.referee) with
    | Some c, Some r ->
        if r.has_zero then c.has_zero <- true;
        if c.has_zero then r.has_zero <- true
    | (Some _ | None), _ -> ());
    (match st.cand with
    | None -> ()
    | Some cand ->
        if round = 0 then begin
          let k = Params.referee_count params ~n ~alpha in
          cand.referee_ports <- List.init k Fun.id;
          (* THE ATTACK: a Byzantine node registers claiming input 0. *)
          let claimed = if st.input = byzantine_input then 0 else st.input in
          cand.forwarded <- claimed = 0;
          emit
            (List.init k (fun _ -> { Protocol.dest = Protocol.Fresh_port; payload = Up claimed }))
        end
        else begin
          if cand.has_zero && st.decision = Decision.Undecided then
            st.decision <- Decision.Agreed 0;
          if cand.has_zero && not cand.forwarded then begin
            cand.forwarded <- true;
            emit (send_to_ports cand.referee_ports (Up 0))
          end;
          if round = max_rounds ~n ~alpha - 1 && st.decision = Decision.Undecided then
            st.decision <- Decision.Agreed 1
        end);
    (match st.referee with
    | None -> ()
    | Some r ->
        if r.has_zero && not r.forwarded then begin
          r.forwarded <- true;
          emit (send_to_ports r.cand_ports Down)
        end);
    (st, List.rev !actions)

  let decide st = st.decision

  let observe st =
    {
      Observation.role =
        (if st.is_candidate then Observation.Candidate
         else if st.referee <> None then Observation.Referee
         else Observation.Bystander);
      rank = None;
      has_decided = st.decision <> Decision.Undecided;
    }
end

let make params =
  (module Make (struct
    let params = params
  end) : Protocol.S)
