module Fast_protocol = Ftc_sim.Fast_protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Dist = Ftc_rng.Dist

(* Fast-engine port of {!Agreement}. Codec (2 words per message):

     tag (w0)   classic message    w1
     0          Up                 value
     1          Down               -
     2          Announce_value     value

   Event-driven stepping is safe because everything in the classic
   step is same-step reactive: a referee forwards Down in the very
   step a 0 arrives, a candidate decides and forwards in the very step
   its has_zero flips (round 0 input, or a Down delivery), so a step
   with an empty inbox between those events changes nothing. The only
   time-driven transitions — the round-0 registration, the decide-1
   fallback at implicit_end - 1, and the explicit broadcast at
   implicit_end — are covered by keeping candidates awake through the
   calendar. The classic [announced] flag is dropped: only candidates
   with an Agreed decision can broadcast, and for every other node the
   flag is write-only. [known_ports] = {0 .. port_count - 1} as in the
   election port. *)

type cand = { mutable has_zero : bool; mutable forwarded : bool }

type referee = {
  mutable cand_ports : int array;  (* dedup'd reply ports, arrival order *)
  mutable cand_n : int;
  mutable has_zero : bool;
  mutable forwarded : bool;
}

module Make (C : sig
  val params : Params.t
  val explicit : bool
end) : Fast_protocol.S = struct
  let params = C.params

  let name = if C.explicit then "ft-agreement-explicit" else "ft-agreement"
  let knowledge = `KT0
  let words = 2

  let msg_bits ~n w0 =
    match w0 with
    | 0 | 1 -> Congest.tag_bits + 1 (* Up / Down *)
    | _ -> Congest.tag_bits + 1 + Congest.id_bits ~n (* Announce_value *)

  let implicit_rounds ~n ~alpha = 2 + (2 * Params.iterations params ~n ~alpha)
  let max_rounds ~n ~alpha = implicit_rounds ~n ~alpha + if C.explicit then 2 else 0

  let phases ~n ~alpha =
    [ ("candidate-sampling", 0); ("agreement-flooding", 1) ]
    @ if C.explicit then [ ("value-broadcast", implicit_rounds ~n ~alpha) ] else []

  type t = {
    n : int;
    k : int;
    implicit_end : int;
    input : int array;  (* normalised to 0/1 *)
    cand : cand option array;
    referee : referee option array;
    dec : int array;  (* -1 = Undecided, else the agreed value *)
    rt : Fast_protocol.runtime;
  }

  let decide t i = if t.dec.(i) < 0 then Decision.Undecided else Decision.Agreed t.dec.(i)

  let compute_obs t i =
    let role =
      if t.cand.(i) <> None then Observation.Candidate
      else if t.referee.(i) <> None then Observation.Referee
      else Observation.Bystander
    in
    { Observation.role; rank = None; has_decided = t.dec.(i) >= 0 }

  let observe t i = t.rt.Fast_protocol.obs.(i)

  let create ~n ~alpha ~inputs ~node_rngs rt =
    let p = Params.candidate_prob params ~n ~alpha in
    let t =
      {
        n;
        k = Params.referee_count params ~n ~alpha;
        implicit_end = implicit_rounds ~n ~alpha;
        input = Array.map (fun v -> if v <> 0 then 1 else 0) inputs;
        cand = Array.make n None;
        referee = Array.make n None;
        dec = Array.make n (-1);
        rt;
      }
    in
    for i = 0 to n - 1 do
      if Dist.bernoulli node_rngs.(i) p then begin
        t.cand.(i) <- Some { has_zero = t.input.(i) = 0; forwarded = false };
        (* Step 0: a candidate holding 0 decides 0 immediately. *)
        if t.input.(i) = 0 then t.dec.(i) <- 0;
        rt.Fast_protocol.wake i
      end
    done;
    for i = 0 to n - 1 do
      rt.Fast_protocol.obs.(i) <- compute_obs t i
    done;
    t

  let referee_of t i =
    match t.referee.(i) with
    | Some r -> r
    | None ->
        let r = { cand_ports = Array.make 4 0; cand_n = 0; has_zero = false; forwarded = false } in
        t.referee.(i) <- Some r;
        if t.cand.(i) = None then t.rt.Fast_protocol.obs.(i) <- compute_obs t i;
        r

  let register_port r p =
    let rec mem j = j < r.cand_n && (r.cand_ports.(j) = p || mem (j + 1)) in
    if not (mem 0) then begin
      if r.cand_n = Array.length r.cand_ports then begin
        let a = Array.make (2 * r.cand_n) 0 in
        Array.blit r.cand_ports 0 a 0 r.cand_n;
        r.cand_ports <- a
      end;
      r.cand_ports.(r.cand_n) <- p;
      r.cand_n <- r.cand_n + 1
    end

  let note_decided t i =
    t.rt.Fast_protocol.obs.(i) <- compute_obs t i;
    t.rt.Fast_protocol.note_decided i

  let step t ~node:i ~round ~inbox_start ~inbox_count =
    let rt = t.rt in
    let iw = rt.Fast_protocol.inbox_words and ip = rt.Fast_protocol.inbox_port in
    for m = 0 to inbox_count - 1 do
      let idx = inbox_start + m in
      let base = idx * 2 in
      match iw.{base} with
      | 0 ->
          (* Up *)
          let r = referee_of t i in
          register_port r ip.(idx);
          if iw.{base + 1} = 0 then r.has_zero <- true
      | 1 -> ( (* Down *)
          match t.cand.(i) with Some c -> c.has_zero <- true | None -> ())
      | _ ->
          (* Announce_value: adopt the smaller value; Undecided adopts. *)
          let v = iw.{base + 1} in
          if t.dec.(i) < 0 then begin
            t.dec.(i) <- v;
            note_decided t i
          end
          else if t.dec.(i) > v then t.dec.(i) <- v
    done;
    (* A node serving as both candidate and referee shares its memory:
       a 0 held by either half is held by both. *)
    (match (t.cand.(i), t.referee.(i)) with
    | Some c, Some r ->
        if r.has_zero then c.has_zero <- true;
        if c.has_zero then r.has_zero <- true
    | (Some _ | None), _ -> ());
    (* Candidate duties. *)
    (match t.cand.(i) with
    | None -> ()
    | Some c ->
        if round = 0 then begin
          c.forwarded <- c.has_zero;
          for _ = 1 to t.k do
            rt.Fast_protocol.emit_fresh 0 t.input.(i) 0
          done
        end
        else begin
          if c.has_zero && t.dec.(i) < 0 then begin
            t.dec.(i) <- 0;
            note_decided t i
          end;
          if c.has_zero && not c.forwarded then begin
            c.forwarded <- true;
            (* Reply ports are 0 .. k-1 (round-0 fresh sends), emitted
               descending: classic rev_maps the ascending list. *)
            for p = t.k - 1 downto 0 do
              rt.Fast_protocol.emit_port p 0 0 0
            done
          end;
          if round = t.implicit_end - 1 && t.dec.(i) < 0 then begin
            t.dec.(i) <- 1;
            note_decided t i
          end
        end);
    (* Referee duties: forward a held 0 to all my candidates, once. *)
    (match t.referee.(i) with
    | None -> ()
    | Some r ->
        if r.has_zero && not r.forwarded then begin
          r.forwarded <- true;
          for j = 0 to r.cand_n - 1 do
            rt.Fast_protocol.emit_port r.cand_ports.(j) 1 0 0
          done
        end);
    (* Explicit extension: decided candidates tell the whole network. *)
    if C.explicit && round = t.implicit_end && t.cand.(i) <> None && t.dec.(i) >= 0 then begin
      let cnt = rt.Fast_protocol.port_count i in
      let v = t.dec.(i) in
      for p = cnt - 1 downto 0 do
        rt.Fast_protocol.emit_port p 2 v 0
      done;
      for _ = 1 to t.n - 1 - cnt do
        rt.Fast_protocol.emit_fresh 2 v 0
      done
    end;
    (* Candidates stay awake through the calendar (decide-1 fallback at
       implicit_end - 1, broadcast at implicit_end in explicit mode);
       referees are purely reactive. *)
    if
      t.cand.(i) <> None
      && round + 1 <= (if C.explicit then t.implicit_end else t.implicit_end - 1)
    then rt.Fast_protocol.wake i
end

let make ?(explicit = false) params =
  (module Make (struct
    let params = params
    let explicit = explicit
  end) : Fast_protocol.S)
