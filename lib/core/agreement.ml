module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Dist = Ftc_rng.Dist
module ISet = Set.Make (Int)

type msg =
  | Up of int  (* candidate -> referee: a single-bit value *)
  | Down  (* referee -> candidate: "a candidate holds 0" *)
  | Announce_value of int  (* explicit mode: decided value to everyone *)

type referee = {
  mutable cand_ports : int list;
  mutable has_zero : bool;
  mutable forwarded : bool;
}

type candidate = {
  mutable referee_ports : int list;
  mutable has_zero : bool;
  mutable forwarded : bool;
}

type state = {
  input : int;
  is_candidate : bool;
  mutable cand : candidate option;
  mutable referee : referee option;
  mutable decision : Decision.t;
  mutable known_ports : ISet.t;
  mutable announced : bool;
}

module Make (C : sig
  val params : Params.t
  val explicit : bool
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let params = C.params

  let name = if C.explicit then "ft-agreement-explicit" else "ft-agreement"
  let knowledge = `KT0

  let msg_bits ~n m =
    match m with
    | Up _ | Down -> Congest.tag_bits + 1
    | Announce_value _ -> Congest.tag_bits + 1 + Congest.id_bits ~n

  (* Round 0: candidates register with their referees, carrying their
     input bit (Step 0). Then two-round forwarding iterations; a crash can
     stall the propagation of 0 by at most one iteration, so the calendar
     is sized to the w.h.p. candidate count plus slack, as in the paper. *)
  let implicit_rounds ~n ~alpha = 2 + (2 * Params.iterations params ~n ~alpha)

  let max_rounds ~n ~alpha = implicit_rounds ~n ~alpha + if C.explicit then 2 else 0

  (* Telemetry phase calendar: round 0 is candidate self-selection and
     referee sampling, then the 2-round forwarding iterations, then (in
     explicit mode) the decided-value broadcast. *)
  let phases ~n ~alpha =
    [ ("candidate-sampling", 0); ("agreement-flooding", 1) ]
    @ if C.explicit then [ ("value-broadcast", implicit_rounds ~n ~alpha) ] else []

  let init (ctx : Protocol.ctx) =
    let p = Params.candidate_prob params ~n:ctx.n ~alpha:ctx.alpha in
    let is_candidate = Dist.bernoulli ctx.rng p in
    let input = if ctx.input <> 0 then 1 else 0 in
    let cand =
      if is_candidate then Some { referee_ports = []; has_zero = input = 0; forwarded = false }
      else None
    in
    {
      input;
      is_candidate;
      cand;
      referee = None;
      (* Step 0: a candidate holding 0 decides 0 immediately; everyone
         else waits — non-candidates for ever (implicit agreement's ⊥). *)
      decision = (if is_candidate && input = 0 then Decision.Agreed 0 else Decision.Undecided);
      known_ports = ISet.empty;
      announced = false;
    }

  let referee_of st =
    match st.referee with
    | Some r -> r
    | None ->
        let r = { cand_ports = []; has_zero = false; forwarded = false } in
        st.referee <- Some r;
        r

  let send_to_ports ports payload =
    List.rev_map (fun p -> { Protocol.dest = Protocol.Port p; payload }) ports

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let n = ctx.n and alpha = ctx.alpha in
    let implicit_end = implicit_rounds ~n ~alpha in
    let actions = ref [] in
    let emit acts = actions := List.rev_append acts !actions in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        st.known_ports <- ISet.add from_port st.known_ports;
        match payload with
        | Up v ->
            let r = referee_of st in
            if not (List.mem from_port r.cand_ports) then
              r.cand_ports <- from_port :: r.cand_ports;
            if v = 0 then r.has_zero <- true
        | Down -> (
            match st.cand with Some c -> c.has_zero <- true | None -> ())
        | Announce_value v -> (
            match st.decision with
            | Decision.Agreed prev when prev <= v -> ()
            | Decision.Agreed _ | Decision.Undecided -> st.decision <- Decision.Agreed v
            | Decision.Elected | Decision.Not_elected | Decision.Follower _ -> ()))
      inbox;
    (* A node serving as both candidate and referee shares its memory:
       a 0 held by either half is held by both. *)
    (match (st.cand, st.referee) with
    | Some c, Some r ->
        if r.has_zero then c.has_zero <- true;
        if c.has_zero then r.has_zero <- true
    | (Some _ | None), _ -> ());
    (* Candidate duties. *)
    (match st.cand with
    | None -> ()
    | Some cand ->
        if round = 0 then begin
          (* Step 0: register with fresh random referees, carrying the
             input bit. This already forwards a 0 input. *)
          let k = Params.referee_count params ~n ~alpha in
          cand.referee_ports <- List.init k Fun.id;
          List.iter (fun p -> st.known_ports <- ISet.add p st.known_ports) cand.referee_ports;
          cand.forwarded <- cand.has_zero;
          emit
            (List.init k (fun _ ->
                 { Protocol.dest = Protocol.Fresh_port; payload = Up st.input }))
        end
        else begin
          (* Step 1: on first hearing 0, decide 0 and forward it once. *)
          if cand.has_zero && st.decision = Decision.Undecided then
            st.decision <- Decision.Agreed 0;
          if cand.has_zero && not cand.forwarded then begin
            cand.forwarded <- true;
            emit (send_to_ports cand.referee_ports (Up 0))
          end;
          (* A candidate that never hears 0 decides 1 when the implicit
             calendar ends (validity: its own input was 1). *)
          if round = implicit_end - 1 && st.decision = Decision.Undecided then
            st.decision <- Decision.Agreed 1
        end);
    (* Referee duties (Step 2): forward a held 0 to all my candidates,
       once. Registrations all arrive in round 1, before or simultaneously
       with any 0, so the forward reaches every candidate of mine. *)
    (match st.referee with
    | None -> ()
    | Some r ->
        if r.has_zero && not r.forwarded then begin
          r.forwarded <- true;
          emit (send_to_ports r.cand_ports Down)
        end);
    (* Explicit extension: decided candidates tell the whole network. *)
    if C.explicit && round = implicit_end && not st.announced then begin
      st.announced <- true;
      match st.decision with
      | Decision.Agreed v when st.is_candidate ->
          let known = ISet.elements st.known_ports in
          let fresh = n - 1 - List.length known in
          emit (send_to_ports known (Announce_value v));
          emit
            (List.init (max 0 fresh) (fun _ ->
                 { Protocol.dest = Protocol.Fresh_port; payload = Announce_value v }))
      | _ -> ()
    end;
    (st, List.rev !actions)

  let decide st = st.decision

  let observe st =
    let role =
      if st.is_candidate then Observation.Candidate
      else if st.referee <> None then Observation.Referee
      else Observation.Bystander
    in
    { Observation.role; rank = None; has_decided = st.decision <> Decision.Undecided }
end

let calendar_rounds params ~n ~alpha =
  let module M = Make (struct
    let params = params
    let explicit = false
  end) in
  M.max_rounds ~n ~alpha

let make ?(explicit = false) params =
  (module Make (struct
    let params = params
    let explicit = explicit
  end) : Protocol.S)
