module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Dist = Ftc_rng.Dist

type msg =
  | Up of int  (* candidate -> referee: running minimum *)
  | Down of int  (* referee -> candidate: running minimum *)

type half = { mutable ports : int list; mutable best : int; mutable sent : int }
(* One direction of a node: [ports] to talk to, [best] the running
   minimum, [sent] the smallest value already forwarded (so each strict
   improvement is forwarded exactly once). *)

type state = {
  input : int;
  is_candidate : bool;
  cand : half option;
  mutable referee : half option;
  mutable decision : Decision.t;
}

module Make (C : sig
  val params : Params.t
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let params = C.params

  let name = "ft-min-agreement"
  let knowledge = `KT0

  let msg_bits ~n = function Up _ | Down _ -> Congest.tag_bits + Congest.rank_bits ~n

  let implicit_rounds ~n ~alpha = 2 + (2 * Params.iterations params ~n ~alpha)
  let max_rounds ~n ~alpha = implicit_rounds ~n ~alpha
  let phases ~n:_ ~alpha:_ = [ ("candidate-sampling", 0); ("min-flooding", 1) ]

  let clamp_input ~n v = max 0 (min (Params.rank_bound params ~n) v)

  let init (ctx : Protocol.ctx) =
    let input = clamp_input ~n:ctx.n ctx.input in
    let p = Params.candidate_prob params ~n:ctx.n ~alpha:ctx.alpha in
    let is_candidate = Dist.bernoulli ctx.rng p in
    {
      input;
      is_candidate;
      cand = (if is_candidate then Some { ports = []; best = input; sent = max_int } else None);
      referee = None;
      decision = Decision.Undecided;
    }

  let referee_of st =
    match st.referee with
    | Some r -> r
    | None ->
        let r = { ports = []; best = max_int; sent = max_int } in
        st.referee <- Some r;
        r

  let forward_improvement half payload_of =
    if half.best < half.sent then begin
      half.sent <- half.best;
      List.rev_map
        (fun p -> { Protocol.dest = Protocol.Port p; payload = payload_of half.best })
        half.ports
    end
    else []

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let n = ctx.n and alpha = ctx.alpha in
    let actions = ref [] in
    let emit acts = actions := List.rev_append acts !actions in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        match payload with
        | Up v ->
            let r = referee_of st in
            if not (List.mem from_port r.ports) then r.ports <- from_port :: r.ports;
            if v < r.best then r.best <- v
        | Down v -> (
            match st.cand with
            | Some c -> if v < c.best then c.best <- v
            | None -> ()))
      inbox;
    (* Shared memory between the two halves of a dual-role node. *)
    (match (st.cand, st.referee) with
    | Some c, Some r ->
        let m = min c.best r.best in
        c.best <- m;
        r.best <- m
    | (Some _ | None), _ -> ());
    (match st.cand with
    | None -> ()
    | Some cand ->
        if round = 0 then begin
          let k = Params.referee_count params ~n ~alpha in
          cand.ports <- List.init k Fun.id;
          cand.sent <- cand.best;
          emit
            (List.init k (fun _ ->
                 { Protocol.dest = Protocol.Fresh_port; payload = Up st.input }))
        end
        else emit (forward_improvement cand (fun v -> Up v));
        if round = implicit_rounds ~n ~alpha - 1 then
          st.decision <- Decision.Agreed cand.best);
    (match st.referee with
    | None -> ()
    | Some r -> emit (forward_improvement r (fun v -> Down v)));
    (st, List.rev !actions)

  let decide st = st.decision

  let observe st =
    let role =
      if st.is_candidate then Observation.Candidate
      else if st.referee <> None then Observation.Referee
      else Observation.Bystander
    in
    { Observation.role; rank = Some st.input; has_decided = st.decision <> Decision.Undecided }
end

let make params =
  (module Make (struct
    let params = params
  end) : Protocol.S)
