module Fast_protocol = Ftc_sim.Fast_protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist
module ISet = Set.Make (Int)

(* Fast-engine port of {!Leader_election}, bit-identical by the
   differential suite. Codec (3 words per message):

     tag (w0 bits 0-2)   classic message      w1         w2
     0                   Announce             rank       -
     1                   Known_rank           rank       -
     2                   Propose              proposal   id
     3                   Relay                proposal   -
     4                   Confirm              proposal   id
     5                   Relay_confirm        proposal   -
     6                   Leader_announce      rank       -

   with the owner flag of Relay/Relay_confirm in w0 bit 3. Ranks are
   >= 1, so 0 serves as the None sentinel for pending/best_confirmed.

   Event-driven stepping is safe because every classic step this port
   skips is a no-op: a bystander or idle referee with an empty inbox
   emits nothing and changes nothing (the referee drain needs a
   non-empty queue, relays need inbox traffic), and candidates are
   kept active every round through implicit_end - 1, past which their
   remaining transitions (quiet_rounds bookkeeping after a decision is
   fixed) are unobservable. The classic [known_ports] set always equals
   {0 .. port_count - 1} — receiver-side ports are recorded at every
   delivery, sender-side ports only open through round-0 fresh sends
   and the one-shot broadcast — so the explicit broadcast reads the
   engine's port count instead of keeping a set per node. *)

type cand = {
  id : int;
  mutable rank_list : ISet.t;  (* known, live-believed ranks, incl. own *)
  mutable retired : ISet.t;  (* ranks believed crashed *)
  mutable proposed : ISet.t;
  mutable supported : ISet.t;
  mutable best_confirmed : int;  (* 0 = none *)
  mutable marked_leader : bool;
  mutable pending : int;  (* 0 = none: rank awaiting confirmation *)
  mutable progress : bool;
  mutable quiet_rounds : int;
}

type referee = {
  mutable cand_ports : int array;  (* reply ports, arrival order *)
  mutable cand_n : int;
  mutable known : int array;  (* first-seen ranks, arrival order; the
                                 forwarding queue is known[qhead..] *)
  mutable known_n : int;
  mutable qhead : int;
}

module Make (C : sig
  val params : Params.t
  val explicit : bool
end) : Fast_protocol.S = struct
  let params = C.params

  let name = if C.explicit then "ft-leader-election-explicit" else "ft-leader-election"
  let knowledge = `KT0
  let words = 3

  let msg_bits ~n w0 =
    let rank = Congest.rank_bits ~n and tag = Congest.tag_bits in
    match w0 land 7 with
    | 0 | 1 | 6 -> tag + rank (* Announce / Known_rank / Leader_announce *)
    | 2 | 4 -> tag + (2 * rank) (* Propose / Confirm *)
    | _ -> tag + 1 + rank (* Relay / Relay_confirm *)

  let pre_end ~n ~alpha = 1 + Params.preprocessing_rounds params ~n ~alpha

  let implicit_rounds ~n ~alpha =
    pre_end ~n ~alpha + (4 * Params.iterations params ~n ~alpha) + 1

  let max_rounds ~n ~alpha =
    implicit_rounds ~n ~alpha + if C.explicit then 2 else 0

  let phases ~n ~alpha =
    [
      ("referee-selection", 0);
      ("rank-dissemination", 1);
      ("election-iterations", pre_end ~n ~alpha);
    ]
    @ if C.explicit then [ ("leader-broadcast", implicit_rounds ~n ~alpha) ] else []

  type t = {
    n : int;
    k : int;  (* referee_count, = every candidate's ports 0..k-1 *)
    pre_end : int;
    implicit_end : int;
    quiet_limit : int;
    rank : int array;
    cand : cand option array;
    referee : referee option array;
    dec : Bytes.t;  (* raw decision: 0 undec, 1 elected, 2 not, 3 follower *)
    leader_seen : int array;  (* -1 = none (explicit mode) *)
    announced : Bytes.t;
    rt : Fast_protocol.runtime;
  }

  let decide t i =
    match Bytes.get t.dec i with
    | '\000' -> Decision.Undecided
    | '\001' -> Decision.Elected
    | '\002' ->
        if C.explicit && t.leader_seen.(i) < 0 then Decision.Undecided
        else Decision.Not_elected
    | _ -> Decision.Follower t.leader_seen.(i)

  let compute_obs t i =
    let role =
      if t.cand.(i) <> None then Observation.Candidate
      else if t.referee.(i) <> None then Observation.Referee
      else Observation.Bystander
    in
    {
      Observation.role;
      rank = Some t.rank.(i);
      has_decided = decide t i <> Decision.Undecided;
    }

  (* Run a mutation and report an Undecided -> decided crossing of the
     masked decision to the engine's quiescence counter. *)
  let with_note t i f =
    let before = decide t i <> Decision.Undecided in
    f ();
    if (not before) && decide t i <> Decision.Undecided then begin
      t.rt.Fast_protocol.obs.(i) <- compute_obs t i;
      t.rt.Fast_protocol.note_decided i
    end

  let observe t i = t.rt.Fast_protocol.obs.(i)

  let create ~n ~alpha ~inputs:_ ~node_rngs rt =
    let rank_bound = Params.rank_bound params ~n in
    let p = Params.candidate_prob params ~n ~alpha in
    let t =
      {
        n;
        k = Params.referee_count params ~n ~alpha;
        pre_end = pre_end ~n ~alpha;
        implicit_end = implicit_rounds ~n ~alpha;
        quiet_limit = 4 * params.Params.quiet_iterations_to_decide;
        rank = Array.make n 0;
        cand = Array.make n None;
        referee = Array.make n None;
        dec = Bytes.make n '\002';
        leader_seen = Array.make n (-1);
        announced = Bytes.make n '\000';
        rt;
      }
    in
    for i = 0 to n - 1 do
      let rng = node_rngs.(i) in
      let rank = Rng.int_in rng 1 rank_bound in
      t.rank.(i) <- rank;
      if Dist.bernoulli rng p then begin
        t.cand.(i) <-
          Some
            {
              id = rank;
              rank_list = ISet.singleton rank;
              retired = ISet.empty;
              proposed = ISet.empty;
              supported = ISet.empty;
              best_confirmed = 0;
              marked_leader = false;
              pending = 0;
              progress = false;
              quiet_rounds = 0;
            };
        Bytes.set t.dec i '\000';
        rt.Fast_protocol.wake i
      end
    done;
    for i = 0 to n - 1 do
      rt.Fast_protocol.obs.(i) <- compute_obs t i
    done;
    t

  let referee_of t i =
    match t.referee.(i) with
    | Some r -> r
    | None ->
        let r =
          { cand_ports = Array.make 4 0; cand_n = 0; known = Array.make 4 0; known_n = 0; qhead = 0 }
        in
        t.referee.(i) <- Some r;
        if t.cand.(i) = None then t.rt.Fast_protocol.obs.(i) <- compute_obs t i;
        r

  let push_cand_port r p =
    if r.cand_n = Array.length r.cand_ports then begin
      let a = Array.make (2 * r.cand_n) 0 in
      Array.blit r.cand_ports 0 a 0 r.cand_n;
      r.cand_ports <- a
    end;
    r.cand_ports.(r.cand_n) <- p;
    r.cand_n <- r.cand_n + 1

  let known_rank r rank =
    let rec mem j = j < r.known_n && (r.known.(j) = rank || mem (j + 1)) in
    mem 0

  let push_known r rank =
    if r.known_n = Array.length r.known then begin
      let a = Array.make (2 * r.known_n) 0 in
      Array.blit r.known 0 a 0 r.known_n;
      r.known <- a
    end;
    r.known.(r.known_n) <- rank;
    r.known_n <- r.known_n + 1

  let adopt_confirmed c rank =
    if c.best_confirmed = 0 || rank > c.best_confirmed then begin
      c.best_confirmed <- rank;
      c.rank_list <- ISet.add rank (ISet.filter (fun r -> r >= rank) c.rank_list);
      c.marked_leader <- rank = c.id;
      c.progress <- true;
      if c.pending <> 0 && c.pending <= rank then c.pending <- 0
    end
    else if c.best_confirmed = rank then c.progress <- true

  let note_rank c rank =
    if (not (ISet.mem rank c.retired)) && not (ISet.mem rank c.rank_list) then begin
      c.rank_list <- ISet.add rank c.rank_list;
      c.progress <- true
    end

  (* Candidate -> referee sends go out ports k-1 .. 0: the classic
     [send_to_ports] is a [rev_map] over referee_ports = [0 .. k-1]. *)
  let send_to_referees t ~id ~proposal ~tag =
    for p = t.k - 1 downto 0 do
      t.rt.Fast_protocol.emit_port p tag proposal id
    done

  (* Referee -> candidate sends go out in arrival order: the classic
     cand_ports list is built by consing, and [rev_map] flips it back. *)
  let send_to_cands t r ~tag ~owner ~w1 =
    let w0 = if owner then tag lor 8 else tag in
    for j = 0 to r.cand_n - 1 do
      t.rt.Fast_protocol.emit_port r.cand_ports.(j) w0 w1 0
    done

  let candidate_round_a t c ~have ~owner ~proposal:p =
    if have then
      if owner then adopt_confirmed c p
      else begin
        note_rank c p;
        if c.pending <> p then c.progress <- true
      end;
    (* Step-4 timeout: a pending rank that produced no confirmation and
       no other progress for a whole iteration is considered crashed. *)
    if c.pending <> 0 && (not c.progress) && c.pending <> c.id then begin
      c.retired <- ISet.add c.pending c.retired;
      c.rank_list <- ISet.remove c.pending c.rank_list;
      c.pending <- 0
    end;
    c.progress <- false;
    if c.best_confirmed = 0 then
      match ISet.min_elt_opt c.rank_list with
      | None -> ()
      | Some proposal ->
          if proposal = c.id then begin
            c.marked_leader <- true;
            c.pending <- proposal;
            if not (ISet.mem proposal c.proposed) then begin
              c.proposed <- ISet.add proposal c.proposed;
              send_to_referees t ~id:c.id ~proposal ~tag:2
            end
          end
          else if ISet.mem proposal c.proposed then c.pending <- proposal
          else begin
            c.proposed <- ISet.add proposal c.proposed;
            c.pending <- proposal;
            send_to_referees t ~id:c.id ~proposal ~tag:2
          end

  let candidate_round_c t c ~have ~owner ~proposal:p =
    if have then begin
      note_rank c p;
      if c.pending <> p || owner then c.progress <- true;
      if p = c.id then begin
        if not (c.best_confirmed > c.id) then begin
          let already = c.best_confirmed = c.id in
          adopt_confirmed c c.id;
          if not already then send_to_referees t ~id:c.id ~proposal:c.id ~tag:4
        end
      end
      else if owner then begin
        adopt_confirmed c p;
        if not (ISet.mem p c.supported) then begin
          c.supported <- ISet.add p c.supported;
          send_to_referees t ~id:c.id ~proposal:p ~tag:4
        end
      end
      else begin
        if c.pending < p then c.pending <- p;
        if (not (ISet.mem p c.supported)) && c.best_confirmed = 0 then begin
          c.supported <- ISet.add p c.supported;
          send_to_referees t ~id:c.id ~proposal:p ~tag:4
        end
      end
    end

  let finalize t i c =
    with_note t i (fun () ->
        Bytes.set t.dec i
          (if c.marked_leader && c.best_confirmed = c.id then '\001' else '\002'))

  let step t ~node:i ~round ~inbox_start ~inbox_count =
    let rt = t.rt in
    let iw = rt.Fast_protocol.inbox_words and ip = rt.Fast_protocol.inbox_port in
    (* -- Inbox: referee registration, rank intake, relay folding. The
          classic engine conses relays/proposals and folds later; both
          folds are order-independent (max value, OR of owner flags at
          the max), so a forward fold gives the same result. -- *)
    let have_relay = ref false and relay_owner = ref false and relay_max = ref 0 in
    let have_crelay = ref false and crelay_owner = ref false and crelay_max = ref 0 in
    let have_prop = ref false and prop_owner = ref false and prop_max = ref 0 in
    let have_conf = ref false and conf_owner = ref false and conf_max = ref 0 in
    let fold have owner mx ~own ~v =
      if not !have then begin
        have := true;
        owner := own;
        mx := v
      end
      else if v > !mx then begin
        owner := own;
        mx := v
      end
      else if v = !mx then owner := !owner || own
    in
    for m = 0 to inbox_count - 1 do
      let idx = inbox_start + m in
      let base = idx * 3 in
      let w0 = iw.{base} in
      let w1 = iw.{base + 1} in
      match w0 land 7 with
      | 0 ->
          (* Announce *)
          let r = referee_of t i in
          push_cand_port r ip.(idx);
          if not (known_rank r w1) then push_known r w1
      | 1 -> ( (* Known_rank *)
          match t.cand.(i) with Some c -> note_rank c w1 | None -> ())
      | 2 ->
          let id = iw.{base + 2} in
          fold have_prop prop_owner prop_max ~own:(id = w1) ~v:w1
      | 3 -> fold have_relay relay_owner relay_max ~own:(w0 land 8 <> 0) ~v:w1
      | 4 ->
          let id = iw.{base + 2} in
          fold have_conf conf_owner conf_max ~own:(id = w1) ~v:w1
      | 5 -> fold have_crelay crelay_owner crelay_max ~own:(w0 land 8 <> 0) ~v:w1
      | _ ->
          (* Leader_announce *)
          with_note t i (fun () ->
              t.leader_seen.(i) <- w1;
              if Bytes.get t.dec i <> '\001' then Bytes.set t.dec i '\003')
    done;
    (* -- Candidate start-up: sample referees through fresh ports; the
          engine numbers them 0 .. k-1. -- *)
    (match t.cand.(i) with
    | Some c when round = 0 ->
        for _ = 1 to t.k do
          rt.Fast_protocol.emit_fresh 0 c.id 0
        done
    | Some _ | None -> ());
    (* -- Referee duties. -- *)
    (match t.referee.(i) with
    | None -> ()
    | Some r ->
        if r.qhead < r.known_n && round < t.pre_end then begin
          let rank = r.known.(r.qhead) in
          r.qhead <- r.qhead + 1;
          send_to_cands t r ~tag:1 ~owner:false ~w1:rank
        end;
        if !have_prop then send_to_cands t r ~tag:3 ~owner:!prop_owner ~w1:!prop_max;
        if !have_conf then send_to_cands t r ~tag:5 ~owner:!conf_owner ~w1:!conf_max);
    (* -- Candidate iteration phases. -- *)
    (match t.cand.(i) with
    | None -> ()
    | Some c ->
        if inbox_count = 0 then c.quiet_rounds <- c.quiet_rounds + 1 else c.quiet_rounds <- 0;
        if round >= t.pre_end && round < t.implicit_end then
          (match (round - t.pre_end) mod 4 with
          | 0 -> candidate_round_a t c ~have:!have_crelay ~owner:!crelay_owner ~proposal:!crelay_max
          | 2 -> candidate_round_c t c ~have:!have_relay ~owner:!relay_owner ~proposal:!relay_max
          | _ -> ());
        if
          Bytes.get t.dec i = '\000'
          && c.best_confirmed <> 0
          && c.quiet_rounds >= t.quiet_limit
        then finalize t i c;
        if round = t.implicit_end - 1 && Bytes.get t.dec i = '\000' then finalize t i c);
    (* -- Explicit extension: the leader tells everyone — every known
          port (descending: classic rev_maps the ascending element list
          of known_ports = {0 .. port_count-1}), then fresh ports for
          the unknown remainder. -- *)
    if C.explicit && Bytes.get t.dec i = '\001' && Bytes.get t.announced i = '\000' then begin
      Bytes.set t.announced i '\001';
      let cnt = rt.Fast_protocol.port_count i in
      let rank = t.rank.(i) in
      for p = cnt - 1 downto 0 do
        rt.Fast_protocol.emit_port p 6 rank 0
      done;
      for _ = 1 to t.n - 1 - cnt do
        rt.Fast_protocol.emit_fresh 6 rank 0
      done
    end;
    (* -- Self-wakes: candidates step every round through the forced
          finalize; referees keep draining their queue. -- *)
    if t.cand.(i) <> None && round + 1 < t.implicit_end then rt.Fast_protocol.wake i;
    match t.referee.(i) with
    | Some r when r.qhead < r.known_n && round + 1 < t.pre_end -> rt.Fast_protocol.wake i
    | Some _ | None -> ()
end

let make ?(explicit = false) params =
  (module Make (struct
    let params = params
    let explicit = explicit
  end) : Fast_protocol.S)
