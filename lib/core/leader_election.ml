module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist
module ISet = Set.Make (Int)

type msg =
  | Announce of { rank : int }  (* candidate -> referee, round 0 *)
  | Known_rank of { rank : int }  (* referee -> candidate, preprocessing *)
  | Propose of { id : int; proposal : int }  (* candidate -> referee, round A *)
  | Relay of { owner : bool; proposal : int }  (* referee -> candidate, round B *)
  | Confirm of { id : int; proposal : int }  (* candidate -> referee, round C *)
  | Relay_confirm of { owner : bool; proposal : int }  (* referee -> cand., round D *)
  | Leader_announce of { rank : int }  (* leader -> everyone, explicit mode *)

(* Referee half of a node: created lazily when the first Announce
   arrives. [cand_ports] are the reply ports of this node's candidates;
   [queue] is the list of ranks still to forward, one per round per edge. *)
type referee = {
  mutable cand_ports : int list;
  mutable known : ISet.t;
  mutable queue : int list;
}

(* Candidate half of a node. *)
type candidate = {
  id : int;
  referee_count : int;
  mutable referee_ports : int list;
  mutable rank_list : ISet.t;  (* known, live-believed ranks, incl. own *)
  mutable retired : ISet.t;  (* ranks believed crashed *)
  mutable proposed : ISet.t;
  mutable supported : ISet.t;
  mutable best_confirmed : int option;
  mutable marked_leader : bool;
  mutable pending : int option;  (* rank awaiting confirmation this iteration *)
  mutable progress : bool;  (* saw a confirmation or a new rank this iteration *)
  mutable quiet_rounds : int;  (* rounds with an empty inbox *)
}

type state = {
  rank : int;
  is_candidate : bool;
  mutable cand : candidate option;
  mutable referee : referee option;
  mutable decision : Decision.t;
  mutable known_ports : ISet.t;  (* every port this node has seen or opened *)
  mutable leader_rank_seen : int option;  (* explicit mode *)
  mutable announced : bool;  (* explicit mode: leader already broadcast *)
}

module Make (C : sig
  val params : Params.t
  val explicit : bool
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let params = C.params

  let name = if C.explicit then "ft-leader-election-explicit" else "ft-leader-election"
  let knowledge = `KT0

  let msg_bits ~n m =
    let rank = Congest.rank_bits ~n and tag = Congest.tag_bits in
    match m with
    | Announce _ | Known_rank _ | Leader_announce _ -> tag + rank
    | Propose _ | Confirm _ -> tag + (2 * rank)
    | Relay _ | Relay_confirm _ -> tag + 1 + rank

  (* Calendar, computable by every node from n and alpha alone:
     round 0                     candidates announce to referees
     rounds 1 .. pre_end-1       referees forward rank lists
     rounds pre_end + 4k + 0..3  iteration k: A, B, C, D
     (explicit mode only) two more rounds: leader broadcast + receipt. *)
  let pre_end ~n ~alpha = 1 + Params.preprocessing_rounds params ~n ~alpha

  let implicit_rounds ~n ~alpha =
    pre_end ~n ~alpha + (4 * Params.iterations params ~n ~alpha) + 1

  let max_rounds ~n ~alpha =
    implicit_rounds ~n ~alpha + if C.explicit then 2 else 0

  (* Telemetry phase calendar, mirroring the round map above. Empty
     ranges (e.g. rank dissemination when preprocessing_rounds = 0)
     collapse away at span-cutting time. *)
  let phases ~n ~alpha =
    [
      ("referee-selection", 0);
      ("rank-dissemination", 1);
      ("election-iterations", pre_end ~n ~alpha);
    ]
    @ if C.explicit then [ ("leader-broadcast", implicit_rounds ~n ~alpha) ] else []

  let init (ctx : Protocol.ctx) =
    let rank = Rng.int_in ctx.rng 1 (Params.rank_bound params ~n:ctx.n) in
    let p = Params.candidate_prob params ~n:ctx.n ~alpha:ctx.alpha in
    let is_candidate = Dist.bernoulli ctx.rng p in
    let cand =
      if is_candidate then
        Some
          {
            id = rank;
            referee_count = Params.referee_count params ~n:ctx.n ~alpha:ctx.alpha;
            referee_ports = [];
            rank_list = ISet.singleton rank;
            retired = ISet.empty;
            proposed = ISet.empty;
            supported = ISet.empty;
            best_confirmed = None;
            marked_leader = false;
            pending = None;
            progress = false;
            quiet_rounds = 0;
          }
      else None
    in
    {
      rank;
      is_candidate;
      cand;
      referee = None;
      (* Implicit election: a node that is not a candidate can already
         output Not_elected; deciding does not stop it from relaying. *)
      decision = (if is_candidate then Decision.Undecided else Decision.Not_elected);
      known_ports = ISet.empty;
      leader_rank_seen = None;
      announced = false;
    }

  let referee_of st =
    match st.referee with
    | Some r -> r
    | None ->
        let r = { cand_ports = []; known = ISet.empty; queue = [] } in
        st.referee <- Some r;
        r

  (* Adopting a confirmed leader is monotone in the rank: a larger
     confirmation always wins, so transient split beliefs (possible only
     when a confirmer crashes mid-broadcast) converge to the maximum
     confirmation that any shared non-faulty referee relayed. *)
  let adopt_confirmed cand rank =
    let better = match cand.best_confirmed with None -> true | Some b -> rank > b in
    if better then begin
      cand.best_confirmed <- Some rank;
      cand.rank_list <- ISet.add rank (ISet.filter (fun r -> r >= rank) cand.rank_list);
      cand.marked_leader <- rank = cand.id;
      cand.progress <- true;
      match cand.pending with
      | Some p when p <= rank -> cand.pending <- None
      | Some _ | None -> ()
    end
    else if cand.best_confirmed = Some rank then cand.progress <- true

  let note_rank cand rank =
    if not (ISet.mem rank cand.retired) then begin
      if not (ISet.mem rank cand.rank_list) then begin
        cand.rank_list <- ISet.add rank cand.rank_list;
        cand.progress <- true
      end
    end

  (* Relay processing shared by rounds A (Relay_confirm) and C (Relay):
     returns the maximum relayed proposal and whether it was
     owner-flagged. *)
  let max_relay relays =
    List.fold_left
      (fun acc (owner, proposal) ->
        match acc with
        | Some (_, best) when best > proposal -> acc
        | Some (prev_owner, best) when best = proposal -> Some (prev_owner || owner, best)
        | Some _ | None -> Some (owner, proposal))
      None relays

  let send_to_ports ports payload =
    List.rev_map (fun p -> { Protocol.dest = Protocol.Port p; payload }) ports

  (* Round-A candidate actions: handle last iteration's confirmations,
     apply the Step-4 timeout, then propose the minimum live rank. *)
  let candidate_round_a cand confirm_relays =
    (match max_relay confirm_relays with
    | Some (true, p) -> adopt_confirmed cand p
    | Some (false, p) ->
        note_rank cand p;
        if Some p <> cand.pending then cand.progress <- true
    | None -> ());
    (* Step-4 timeout: a pending rank that produced no confirmation and no
       other progress for a whole iteration is considered crashed. One's
       own rank is never retired. *)
    (match cand.pending with
    | Some p when (not cand.progress) && p <> cand.id ->
        cand.retired <- ISet.add p cand.retired;
        cand.rank_list <- ISet.remove p cand.rank_list;
        cand.pending <- None
    | Some _ | None -> ());
    cand.progress <- false;
    if cand.best_confirmed <> None then []
    else begin
      match ISet.min_elt_opt cand.rank_list with
      | None -> []
      | Some proposal ->
          if proposal = cand.id then begin
            (* Proposing one's own rank marks the node as leader (Step 1);
               if the send succeeds every candidate will hear it. *)
            cand.marked_leader <- true;
            cand.pending <- Some proposal;
            if ISet.mem proposal cand.proposed then []
            else begin
              cand.proposed <- ISet.add proposal cand.proposed;
              send_to_ports cand.referee_ports (Propose { id = cand.id; proposal })
            end
          end
          else if ISet.mem proposal cand.proposed then begin
            (* Already proposed once (Step 1's "only once"); keep waiting
               for a confirmation or the timeout. *)
            cand.pending <- Some proposal;
            []
          end
          else begin
            cand.proposed <- ISet.add proposal cand.proposed;
            cand.pending <- Some proposal;
            send_to_ports cand.referee_ports (Propose { id = cand.id; proposal })
          end
    end

  (* Round-C candidate actions: react to the referees' maximum relayed
     proposal (Step 3). *)
  let candidate_round_c cand relays =
    match max_relay relays with
    | None -> []
    | Some (owner, p) ->
        note_rank cand p;
        if Some p <> cand.pending || owner then cand.progress <- true;
        if p = cand.id then begin
          (* My rank is the round's maximum: confirm my leadership, unless
             a larger rank was already confirmed. *)
          match cand.best_confirmed with
          | Some b when b > cand.id -> []
          | Some _ | None ->
              let already = cand.best_confirmed = Some cand.id in
              adopt_confirmed cand cand.id;
              if already then []
              else send_to_ports cand.referee_ports (Confirm { id = cand.id; proposal = cand.id })
        end
        else if owner then begin
          (* Owner-proposed maximum: adopt it and echo support once, so the
             confirmation also flows through my referees. *)
          adopt_confirmed cand p;
          if ISet.mem p cand.supported then []
          else begin
            cand.supported <- ISet.add p cand.supported;
            send_to_ports cand.referee_ports (Confirm { id = cand.id; proposal = p })
          end
        end
        else begin
          (* A plain maximum: support it once and await its owner's
             confirmation (or the timeout). *)
          (match cand.pending with
          | Some q when q >= p -> ()
          | Some _ | None -> cand.pending <- Some p);
          if ISet.mem p cand.supported || cand.best_confirmed <> None then []
          else begin
            cand.supported <- ISet.add p cand.supported;
            send_to_ports cand.referee_ports (Confirm { id = cand.id; proposal = p })
          end
        end

  let finalize_decision st =
    match st.cand with
    | None -> ()
    | Some cand ->
        st.decision <-
          (if cand.marked_leader && cand.best_confirmed = Some cand.id then Decision.Elected
           else Decision.Not_elected)

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let n = ctx.n and alpha = ctx.alpha in
    let pre_end = pre_end ~n ~alpha in
    let implicit_end = implicit_rounds ~n ~alpha in
    let actions = ref [] in
    let emit acts = actions := List.rev_append acts !actions in
    (* -- Generic inbox processing (referee registration, rank intake,
          relay buffering for the phase logic below). -- *)
    let relays = ref [] and confirm_relays = ref [] in
    let proposals = ref [] and confirms = ref [] in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        st.known_ports <- ISet.add from_port st.known_ports;
        match payload with
        | Announce { rank } ->
            let r = referee_of st in
            r.cand_ports <- from_port :: r.cand_ports;
            if not (ISet.mem rank r.known) then begin
              r.known <- ISet.add rank r.known;
              r.queue <- r.queue @ [ rank ]
            end
        | Known_rank { rank } -> (
            match st.cand with Some c -> note_rank c rank | None -> ())
        | Propose { id; proposal } -> proposals := (id, proposal) :: !proposals
        | Relay { owner; proposal } -> relays := (owner, proposal) :: !relays
        | Confirm { id; proposal } -> confirms := (id, proposal) :: !confirms
        | Relay_confirm { owner; proposal } ->
            confirm_relays := (owner, proposal) :: !confirm_relays
        | Leader_announce { rank } ->
            st.leader_rank_seen <- Some rank;
            if st.decision <> Decision.Elected then st.decision <- Decision.Follower rank)
      inbox;
    (* -- Candidate start-up: sample referees through fresh ports. -- *)
    (match st.cand with
    | Some cand when round = 0 ->
        let sends =
          List.init cand.referee_count (fun _ ->
              { Protocol.dest = Protocol.Fresh_port; payload = Announce { rank = cand.id } })
        in
        (* The engine assigns consecutive port numbers to fresh sends, so
           the referee ports are 0 .. referee_count-1. *)
        cand.referee_ports <- List.init cand.referee_count Fun.id;
        List.iter (fun p -> st.known_ports <- ISet.add p st.known_ports) cand.referee_ports;
        emit sends
    | Some _ | None -> ());
    (* -- Referee duties: forward one known rank per candidate per round
          during preprocessing, and relay proposals/confirmations. -- *)
    (match st.referee with
    | None -> ()
    | Some r ->
        (match r.queue with
        | rank :: rest when round < pre_end ->
            r.queue <- rest;
            emit (send_to_ports r.cand_ports (Known_rank { rank }))
        | _ :: _ | [] -> ());
        (match !proposals with
        | [] -> ()
        | props ->
            let owner, proposal =
              List.fold_left
                (fun (o, best) (id, p) ->
                  if p > best then (id = p, p) else if p = best then (o || id = p, p) else (o, best))
                (false, min_int) props
            in
            emit (send_to_ports r.cand_ports (Relay { owner; proposal })));
        (match !confirms with
        | [] -> ()
        | cs ->
            let owner, proposal =
              List.fold_left
                (fun (o, best) (id, p) ->
                  if p > best then (id = p, p) else if p = best then (o || id = p, p) else (o, best))
                (false, min_int) cs
            in
            emit (send_to_ports r.cand_ports (Relay_confirm { owner; proposal }))));
    (* -- Candidate iteration phases. -- *)
    (match st.cand with
    | None -> ()
    | Some cand ->
        if inbox = [] then cand.quiet_rounds <- cand.quiet_rounds + 1
        else cand.quiet_rounds <- 0;
        if round >= pre_end && round < implicit_end then begin
          match (round - pre_end) mod 4 with
          | 0 -> emit (candidate_round_a cand !confirm_relays)
          | 2 -> emit (candidate_round_c cand !relays)
          | 1 | 3 -> ()
          | _ -> assert false
        end;
        (* Early decision: a settled candidate that heard nothing for a few
           full iterations fixes its output, letting the engine stop on
           quiescence. Deciding does not halt the node. *)
        if
          st.decision = Decision.Undecided
          && cand.best_confirmed <> None
          && cand.quiet_rounds >= 4 * params.Params.quiet_iterations_to_decide
        then finalize_decision st;
        if round = implicit_end - 1 && st.decision = Decision.Undecided then
          finalize_decision st);
    (* -- Explicit extension: the leader tells everyone. -- *)
    if C.explicit then begin
      if st.decision = Decision.Elected && not st.announced then begin
        st.announced <- true;
        (* Reach all n-1 neighbours: every known port, plus fresh ports for
           the unknown remainder (the engine never re-opens a known peer
           through a fresh port, so coverage is exact). *)
        let known = ISet.elements st.known_ports in
        let fresh = n - 1 - List.length known in
        emit (send_to_ports known (Leader_announce { rank = st.rank }));
        emit
          (List.init (max 0 fresh) (fun _ ->
               { Protocol.dest = Protocol.Fresh_port; payload = Leader_announce { rank = st.rank } }))
      end
    end;
    (st, List.rev !actions)

  let decide st =
    if C.explicit && st.decision = Decision.Not_elected && st.leader_rank_seen = None then
      (* Explicit mode: a node that has not yet learned the leader's
         identity is still undecided. *)
      Decision.Undecided
    else st.decision

  let observe st =
    let role =
      if st.is_candidate then Observation.Candidate
      else if st.referee <> None then Observation.Referee
      else Observation.Bystander
    in
    {
      Observation.role;
      rank = Some st.rank;
      (* Via [decide], so explicit-mode masking (a node that has not yet
         learnt the leader is still undecided) is reflected here too. *)
      has_decided = decide st <> Decision.Undecided;
    }
end

let calendar_rounds params ~n ~alpha =
  let module M = Make (struct
    let params = params
    let explicit = false
  end) in
  M.max_rounds ~n ~alpha

let make ?(explicit = false) params =
  (module Make (struct
    let params = params
    let explicit = explicit
  end) : Protocol.S)
