module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest

type msg = Push of int

type state = { mutable value : int; mutable decision : Decision.t }

module Make (C : sig
  val fanout : int
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "push-gossip"
  let knowledge = `KT0
  let msg_bits ~n:_ (Push _) = Congest.tag_bits + 1

  let gossip_rounds ~n =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    (2 * log2 0 n) + 4

  let max_rounds ~n ~alpha:_ = gossip_rounds ~n + 1
  let phases ~n ~alpha:_ = [ ("push-rumours", 0); ("decide", gossip_rounds ~n) ]

  let init (ctx : Protocol.ctx) = { value = ctx.input; decision = Decision.Undecided }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    List.iter
      (fun { Protocol.payload = Push v; _ } -> if v < st.value then st.value <- v)
      inbox;
    let actions =
      if round < gossip_rounds ~n:ctx.n then
        List.init C.fanout (fun _ ->
            { Protocol.dest = Protocol.Fresh_port; payload = Push st.value })
      else []
    in
    if round = max_rounds ~n:ctx.n ~alpha:ctx.alpha - 1 then
      st.decision <- Decision.Agreed st.value;
    (st, actions)

  let decide st = st.decision

  let observe st =
    { Observation.bystander with has_decided = st.decision <> Decision.Undecided }
end

let make ?(fanout = 2) () =
  (module Make (struct
    let fanout = fanout
  end) : Protocol.S)
