module Fast_protocol = Ftc_sim.Fast_protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest

(* Fast-engine port of {!Gossip} (push-gossip min-aggregation). One
   word per message: the pushed value. Every node is active every
   round — the classic protocol sends [fanout] fresh pushes per node
   per round until the calendar ends — so the port simply keeps every
   node awake through the decide round. Inputs can be arbitrary ints,
   so the decision is a separate flag, not a value sentinel. *)

module Make (C : sig
  val fanout : int
end) : Fast_protocol.S = struct
  let name = "push-gossip"
  let knowledge = `KT0
  let words = 1
  let msg_bits ~n:_ _w0 = Congest.tag_bits + 1

  let gossip_rounds ~n =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    (2 * log2 0 n) + 4

  let max_rounds ~n ~alpha:_ = gossip_rounds ~n + 1
  let phases ~n ~alpha:_ = [ ("push-rumours", 0); ("decide", gossip_rounds ~n) ]

  type t = {
    gossip_rounds : int;
    value : int array;
    decided : Bytes.t;
    rt : Fast_protocol.runtime;
  }

  let decide t i =
    if Bytes.get t.decided i = '\000' then Decision.Undecided else Decision.Agreed t.value.(i)

  (* Only two observation values exist; share them rather than
     allocating one per call (observe runs per active node per round). *)
  let obs_undecided = { Observation.bystander with has_decided = false }
  let obs_decided = { Observation.bystander with has_decided = true }
  let observe t i = t.rt.Fast_protocol.obs.(i)

  let create ~n ~alpha:_ ~inputs ~node_rngs:_ rt =
    let t =
      {
        gossip_rounds = gossip_rounds ~n;
        value = Array.copy inputs;
        decided = Bytes.make n '\000';
        rt;
      }
    in
    for i = 0 to n - 1 do
      rt.Fast_protocol.obs.(i) <- obs_undecided;
      rt.Fast_protocol.wake i
    done;
    t

  let step t ~node:i ~round ~inbox_start ~inbox_count =
    let rt = t.rt in
    let iw = rt.Fast_protocol.inbox_words in
    for m = 0 to inbox_count - 1 do
      let v = iw.{inbox_start + m} in
      if v < t.value.(i) then t.value.(i) <- v
    done;
    if round < t.gossip_rounds then begin
      let v = t.value.(i) in
      for _ = 1 to C.fanout do
        rt.Fast_protocol.emit_fresh v 0 0
      done
    end;
    if round = t.gossip_rounds then begin
      Bytes.set t.decided i '\001';
      rt.Fast_protocol.obs.(i) <- obs_decided;
      rt.Fast_protocol.note_decided i
    end;
    if round + 1 <= t.gossip_rounds then rt.Fast_protocol.wake i
end

let make ?(fanout = 2) () =
  (module Make (struct
    let fanout = fanout
  end) : Fast_protocol.S)
