module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest

type msg =
  | Agg of int  (* partial minimum travelling up the tree *)
  | Final of int  (* aggregate broadcast by the (backup) root *)

type state = {
  self : int;
  mutable agg : int;
  mutable final : int option;  (* minimum over received Final values *)
  mutable decision : Decision.t;
}

let depth i =
  let rec go d v = if v = 0 then d else go (d + 1) ((v - 1) / 2) in
  go 0 i

module P : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "tree-agreement"
  let knowledge = `KT1

  let msg_bits ~n:_ = function Agg _ | Final _ -> Congest.tag_bits + 1

  let max_depth ~n = depth (n - 1)

  (* Calendar: up phase in rounds [0, 2D]; downward broadcasts start at
     2D + 2, one depth level every 2 rounds; one final round to decide. *)
  let down_start ~n = (2 * max_depth ~n) + 2
  let max_rounds ~n ~alpha:_ = down_start ~n + (2 * (max_depth ~n + 1)) + 2

  let phases ~n ~alpha:_ =
    [ ("aggregate-up", 0); ("broadcast-down", down_start ~n) ]

  let init (ctx : Protocol.ctx) =
    let self = match ctx.self with Some s -> s | None -> invalid_arg "tree: needs KT1" in
    { self; agg = ctx.input; final = None; decision = Decision.Undecided }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let n = ctx.n in
    List.iter
      (fun { Protocol.payload; _ } ->
        match payload with
        | Agg v -> if v < st.agg then st.agg <- v
        | Final v -> (
            match st.final with
            | Some f when f <= v -> ()
            | Some _ | None -> st.final <- Some v))
      inbox;
    let d = depth st.self in
    let actions = ref [] in
    (* Up phase: send the partial minimum to parent and grandparent. *)
    if st.self > 0 && round = 2 * (max_depth ~n - d) then begin
      let parent = (st.self - 1) / 2 in
      actions := [ { Protocol.dest = Protocol.Node parent; payload = Agg st.agg } ];
      if parent > 0 then
        actions :=
          { Protocol.dest = Protocol.Node ((parent - 1) / 2); payload = Agg st.agg }
          :: !actions
    end;
    (* Down phase: broadcast if no Final has been heard by my depth slot. *)
    if round = down_start ~n + (2 * d) && st.final = None then begin
      st.final <- Some st.agg;
      actions :=
        List.filter_map
          (fun j ->
            if j = st.self then None
            else Some { Protocol.dest = Protocol.Node j; payload = Final st.agg })
          (List.init n Fun.id)
    end;
    if round = max_rounds ~n ~alpha:ctx.alpha - 1 then
      st.decision <-
        (match st.final with Some v -> Decision.Agreed v | None -> Decision.Agreed st.agg);
    (st, !actions)

  let decide st = st.decision

  let observe st =
    {
      Observation.role =
        (if st.self = 0 then Observation.Coordinator else Observation.Bystander);
      rank = Some st.self;
      has_decided = st.decision <> Decision.Undecided;
    }
end

let make () = (module P : Protocol.S)
