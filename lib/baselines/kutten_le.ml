module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Params = Ftc_core.Params
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

type msg =
  | Bid of { rank : int }  (* candidate -> referee *)
  | Min of { rank : int }  (* referee -> candidate: smallest rank seen *)

type referee = { mutable cand_ports : int list; mutable min_rank : int }

type state = {
  rank : int;
  is_candidate : bool;
  mutable referee_ports : int list;
  mutable referee : referee option;
  mutable win : bool;
  mutable decision : Decision.t;
}

module Make (C : sig
  val params : Params.t
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let params = C.params

  let name = "kutten-leader-election"
  let knowledge = `KT0

  let msg_bits ~n = function Bid _ | Min _ -> Congest.tag_bits + Congest.rank_bits ~n

  (* Announce, reply, decide: one round-trip. *)
  let max_rounds ~n:_ ~alpha:_ = 4

  let phases ~n:_ ~alpha:_ =
    [ ("referee-selection", 0); ("referee-reply", 1); ("decision", 2) ]

  let init (ctx : Protocol.ctx) =
    let rank = Rng.int_in ctx.rng 1 (Params.rank_bound params ~n:ctx.n) in
    let p = Params.candidate_prob params ~n:ctx.n ~alpha:1. in
    let is_candidate = Dist.bernoulli ctx.rng p in
    {
      rank;
      is_candidate;
      referee_ports = [];
      referee = None;
      win = is_candidate;
      decision = (if is_candidate then Decision.Undecided else Decision.Not_elected);
    }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let actions = ref [] in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        match payload with
        | Bid { rank } ->
            let r =
              match st.referee with
              | Some r -> r
              | None ->
                  let r = { cand_ports = []; min_rank = max_int } in
                  st.referee <- Some r;
                  r
            in
            r.cand_ports <- from_port :: r.cand_ports;
            if rank < r.min_rank then r.min_rank <- rank
        | Min { rank } -> if rank <> st.rank then st.win <- false)
      inbox;
    if st.is_candidate then begin
      if round = 0 then begin
        let k = Params.referee_count params ~n:ctx.n ~alpha:1. in
        st.referee_ports <- List.init k Fun.id;
        actions :=
          List.init k (fun _ ->
              { Protocol.dest = Protocol.Fresh_port; payload = Bid { rank = st.rank } })
      end
      else if round = 2 then
        (* All replies are in: a candidate that saw only its own rank as
           the minimum is the unique leader w.h.p. *)
        st.decision <- (if st.win then Decision.Elected else Decision.Not_elected)
    end;
    (match st.referee with
    | Some r when round = 1 ->
        actions :=
          List.rev_map
            (fun p -> { Protocol.dest = Protocol.Port p; payload = Min { rank = r.min_rank } })
            r.cand_ports
    | Some _ | None -> ());
    (st, !actions)

  let decide st = st.decision

  let observe st =
    {
      Observation.role =
        (if st.is_candidate then Observation.Candidate
         else if st.referee <> None then Observation.Referee
         else Observation.Bystander);
      rank = Some st.rank;
      has_decided = st.decision <> Decision.Undecided;
    }
end

let make ?(params = Params.default) () =
  (module Make (struct
    let params = params
  end) : Protocol.S)
