module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest

type msg = Adopt of int

type state = { self : int; mutable value : int; mutable decision : Decision.t }

module P : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "rotating-coordinator"
  let knowledge = `KT1
  let msg_bits ~n:_ (Adopt _) = Congest.tag_bits + 1

  let rotations ~n ~alpha = Ftc_sim.Engine.max_faulty ~n ~alpha + 1
  let max_rounds ~n ~alpha = rotations ~n ~alpha + 1

  let phases ~n ~alpha =
    [ ("coordinator-rotations", 0); ("decide", rotations ~n ~alpha) ]

  let init (ctx : Protocol.ctx) =
    let self = match ctx.self with Some s -> s | None -> invalid_arg "rotating: needs KT1" in
    { self; value = ctx.input; decision = Decision.Undecided }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    List.iter (fun { Protocol.payload = Adopt v; _ } -> st.value <- v) inbox;
    let actions =
      if round < rotations ~n:ctx.n ~alpha:ctx.alpha && round = st.self then
        List.filter_map
          (fun d -> if d = st.self then None else Some { Protocol.dest = Protocol.Node d; payload = Adopt st.value })
          (List.init ctx.n Fun.id)
      else []
    in
    if round = max_rounds ~n:ctx.n ~alpha:ctx.alpha - 1 then
      st.decision <- Decision.Agreed st.value;
    (st, actions)

  let decide st = st.decision

  let observe st =
    {
      Observation.role = Observation.Coordinator;
      rank = Some st.self;
      has_decided = st.decision <> Decision.Undecided;
    }
end

let make () = (module P : Protocol.S)
