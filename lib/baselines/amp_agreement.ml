module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Params = Ftc_core.Params
module Dist = Ftc_rng.Dist

type msg =
  | Bit of int  (* candidate -> referee *)
  | Min_bit of int  (* referee -> candidate *)

type referee = { mutable cand_ports : int list; mutable min_bit : int }

type state = {
  input : int;
  is_candidate : bool;
  mutable referee : referee option;
  mutable best : int;
  mutable decision : Decision.t;
}

module Make (C : sig
  val params : Params.t
end) : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let params = C.params

  let name = "amp-agreement"
  let knowledge = `KT0
  let msg_bits ~n:_ = function Bit _ | Min_bit _ -> Congest.tag_bits + 1
  let max_rounds ~n:_ ~alpha:_ = 4

  let phases ~n:_ ~alpha:_ =
    [ ("referee-selection", 0); ("referee-reply", 1); ("decision", 2) ]

  let init (ctx : Protocol.ctx) =
    let input = if ctx.input <> 0 then 1 else 0 in
    let p = Params.candidate_prob params ~n:ctx.n ~alpha:1. in
    let is_candidate = Dist.bernoulli ctx.rng p in
    { input; is_candidate; referee = None; best = input; decision = Decision.Undecided }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let actions = ref [] in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        match payload with
        | Bit b ->
            let r =
              match st.referee with
              | Some r -> r
              | None ->
                  let r = { cand_ports = []; min_bit = 1 } in
                  st.referee <- Some r;
                  r
            in
            r.cand_ports <- from_port :: r.cand_ports;
            if b < r.min_bit then r.min_bit <- b
        | Min_bit b -> if b < st.best then st.best <- b)
      inbox;
    if st.is_candidate then begin
      if round = 0 then begin
        let k = Params.referee_count params ~n:ctx.n ~alpha:1. in
        actions :=
          List.init k (fun _ -> { Protocol.dest = Protocol.Fresh_port; payload = Bit st.input })
      end
      else if round = 2 then st.decision <- Decision.Agreed st.best
    end;
    (match st.referee with
    | Some r when round = 1 ->
        actions :=
          List.rev_map
            (fun p -> { Protocol.dest = Protocol.Port p; payload = Min_bit r.min_bit })
            r.cand_ports
    | Some _ | None -> ());
    (st, !actions)

  let decide st = st.decision

  let observe st =
    {
      Observation.role =
        (if st.is_candidate then Observation.Candidate
         else if st.referee <> None then Observation.Referee
         else Observation.Bystander);
      rank = None;
      has_decided = st.decision <> Decision.Undecided;
    }
end

let make ?(params = Params.default) () =
  (module Make (struct
    let params = params
  end) : Protocol.S)
