module Protocol = Ftc_sim.Protocol
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Congest = Ftc_sim.Congest
module Fanout = Ftc_sim.Fanout
module ISet = Set.Make (Int)

type msg = Value of int

type state = {
  mutable value : int;
  mutable known_ports : ISet.t;
  mutable decision : Decision.t;
}

module P : Protocol.S with type msg = msg = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "floodset"
  let knowledge = `KT0
  let msg_bits ~n:_ (Value _) = Congest.tag_bits + 1

  (* f + 1 rounds guarantee a crash-free round; one more to decide. *)
  let max_rounds ~n ~alpha = Ftc_sim.Engine.max_faulty ~n ~alpha + 2

  let phases ~n ~alpha =
    [ ("flooding", 0); ("decide", max_rounds ~n ~alpha - 1) ]

  let init (ctx : Protocol.ctx) =
    { value = ctx.input; known_ports = ISet.empty; decision = Decision.Undecided }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    let changed = ref (round = 0) in
    List.iter
      (fun { Protocol.from_port; payload = Value v; _ } ->
        st.known_ports <- ISet.add from_port st.known_ports;
        if v < st.value then begin
          st.value <- v;
          changed := true
        end)
      inbox;
    let actions =
      if !changed && round < max_rounds ~n:ctx.n ~alpha:ctx.alpha - 1 then
        Fanout.broadcast ~n:ctx.n ~known_ports:(ISet.elements st.known_ports) (Value st.value)
      else []
    in
    if round = max_rounds ~n:ctx.n ~alpha:ctx.alpha - 1 then
      st.decision <- Decision.Agreed st.value;
    (st, actions)

  let decide st = st.decision

  let observe st =
    { Observation.bystander with has_decided = st.decision <> Decision.Undecided }
end

let make () = (module P : Protocol.S)
