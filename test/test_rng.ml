(* Tests for the PRNG substrate: determinism, ranges, bias, and split
   independence. Statistical checks use generous thresholds so they never
   flake: with the fixed seeds used here they are fully deterministic. *)

module Rng = Ftc_rng.Rng
module Splitmix = Ftc_rng.Splitmix
module Xoshiro = Ftc_rng.Xoshiro

let test_splitmix_deterministic () =
  let a = Splitmix.create 42L and b = Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 1L and b = Splitmix.create 2L in
  let distinct = ref 0 in
  for _ = 1 to 64 do
    if Splitmix.next a <> Splitmix.next b then incr distinct
  done;
  Alcotest.(check bool) "nearby seeds diverge" true (!distinct >= 60)

let test_splitmix_mix_bijective_on_samples () =
  (* mix is a bijection; spot-check injectivity over a sample. *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 2047 do
    let v = Splitmix.mix (Int64.of_int i) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen v);
    Hashtbl.replace seen v ()
  done

let test_xoshiro_deterministic () =
  let a = Xoshiro.of_seed 7L and b = Xoshiro.of_seed 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_copy_replays () =
  let a = Xoshiro.of_seed 9L in
  ignore (Xoshiro.next a);
  let b = Xoshiro.copy a in
  let xs = List.init 20 (fun _ -> Xoshiro.next a) in
  let ys = List.init 20 (fun _ -> Xoshiro.next b) in
  Alcotest.(check (list int64)) "copy replays future" xs ys

(* Direct Int64 transcription of the reference xoshiro256++, seeded the
   same way; the production split-word implementation must reproduce
   its stream bit for bit, and every projection must equal the
   corresponding slice of the same draw. *)
module Xoshiro_ref = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let of_seed seed =
    let sm = Splitmix.create seed in
    let s0 = Splitmix.next sm in
    let s1 = Splitmix.next sm in
    let s2 = Splitmix.next sm in
    let s3 = Splitmix.next sm in
    if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then { s0 = 1L; s1; s2; s3 }
    else { s0; s1; s2; s3 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let next t =
    let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
    let tmp = Int64.shift_left t.s1 17 in
    t.s2 <- Int64.logxor t.s2 t.s0;
    t.s3 <- Int64.logxor t.s3 t.s1;
    t.s1 <- Int64.logxor t.s1 t.s2;
    t.s0 <- Int64.logxor t.s0 t.s3;
    t.s2 <- Int64.logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result
end

let test_xoshiro_matches_int64_reference () =
  List.iter
    (fun seed ->
      let a = Xoshiro.of_seed seed and r = Xoshiro_ref.of_seed seed in
      for _ = 1 to 2_000 do
        Alcotest.(check int64)
          (Printf.sprintf "seed %Ld stream" seed)
          (Xoshiro_ref.next r) (Xoshiro.next a)
      done)
    [ 0L; 1L; 7L; -1L; 0x123456789ABCDEFL ]

let test_xoshiro_projections_slice_one_draw () =
  let a = Xoshiro.of_seed 13L and r = Xoshiro_ref.of_seed 13L in
  for _ = 1 to 2_000 do
    let v = Xoshiro_ref.next r in
    Alcotest.(check int)
      "low62" (Int64.to_int v land ((1 lsl 62) - 1)) (Xoshiro.next_low62 a);
    let v = Xoshiro_ref.next r in
    Alcotest.(check int)
      "hi53" (Int64.to_int (Int64.shift_right_logical v 11)) (Xoshiro.next_hi53 a);
    let v = Xoshiro_ref.next r in
    Alcotest.(check int) "bit" (Int64.to_int (Int64.logand v 1L)) (Xoshiro.next_bit a)
  done

let test_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create 5 in
  let k = 10 in
  let counts = Array.make k 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int rng k in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = trials / k in
  Array.iteri
    (fun i c ->
      let dev = abs (c - expected) in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 5%% (got %d)" i c)
        true
        (dev < expected / 20))
    counts

let test_int_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 10 20 in
    Alcotest.(check bool) "in [10,20]" true (v >= 10 && v <= 20)
  done;
  Alcotest.(check int) "singleton range" 5 (Rng.int_in rng 5 5)

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_float_mean () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean ~ 0.5 (got %f)" mean) true
    (Float.abs (mean -. 0.5) < 0.01)

let test_bool_balance () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let heads = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let ratio = float_of_int !heads /. float_of_int n in
  Alcotest.(check bool) "fair coin" true (Float.abs (ratio -. 0.5) < 0.01)

let test_split_independence () =
  (* Children of the same parent must produce uncorrelated bit streams:
     the fraction of equal low bits should be near 1/2. *)
  let parent = Rng.create 23 in
  let a = Rng.split parent and b = Rng.split parent in
  let n = 20_000 in
  let agree = ref 0 in
  for _ = 1 to n do
    let xa = Int64.logand (Rng.bits64 a) 1L and xb = Int64.logand (Rng.bits64 b) 1L in
    if xa = xb then incr agree
  done;
  let ratio = float_of_int !agree /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sibling streams uncorrelated (agreement %f)" ratio)
    true
    (Float.abs (ratio -. 0.5) < 0.02)

let test_split_n_distinct () =
  let parent = Rng.create 29 in
  let children = Rng.split_n parent 50 in
  let firsts = Array.map Rng.bits64 children in
  let tbl = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace tbl v ()) firsts;
  Alcotest.(check int) "all children distinct" 50 (Hashtbl.length tbl)

let test_create_determinism () =
  let a = Rng.create 1234 and b = Rng.create 1234 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same seed same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let qcheck_int_bounds =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in within inclusive range" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo (lo + span) in
      v >= lo && v <= lo + span)

let () =
  Alcotest.run "rng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "mix injective on samples" `Quick test_splitmix_mix_bijective_on_samples;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "copy replays" `Quick test_xoshiro_copy_replays;
          Alcotest.test_case "matches Int64 reference" `Quick
            test_xoshiro_matches_int64_reference;
          Alcotest.test_case "projections slice one draw" `Quick
            test_xoshiro_projections_slice_one_draw;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int_in range" `Quick test_int_in_range;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "create determinism" `Quick test_create_determinism;
        ] );
      ( "split",
        [
          Alcotest.test_case "independence" `Quick test_split_independence;
          Alcotest.test_case "split_n distinct" `Quick test_split_n_distinct;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_int_bounds; qcheck_int_in_bounds ] );
    ]
