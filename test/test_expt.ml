(* Tests for the experiment harness: registry integrity, runner
   determinism, input generation, and aggregation arithmetic. *)

module Registry = Ftc_expt.Registry
module Runner = Ftc_expt.Runner
module Def = Ftc_expt.Def
module Stats = Ftc_analysis.Stats

let test_registry_ids_unique () =
  let ids = Registry.ids () in
  Alcotest.(check int) "18 experiments" 18 (List.length ids);
  Alcotest.(check int) "unique ids" 18 (List.length (List.sort_uniq compare ids))

let test_registry_covers_design_index () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) "id matches" id e.Def.id
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "T1"; "F1"; "F2"; "F3"; "F4"; "F5"; "F6"; "F7"; "F8"; "F9"; "F10"; "F11"; "F12"; "F13"; "A1"; "A2"; "A3"; "A4" ]

let test_registry_find_case_insensitive () =
  Alcotest.(check bool) "lowercase works" true (Registry.find "f9" <> None);
  Alcotest.(check bool) "unknown rejected" true (Registry.find "F99" = None)

let spec () =
  {
    (Runner.default_spec (Ftc_core.Agreement.make Ftc_core.Params.default) ~n:64 ~alpha:0.7) with
    inputs = Runner.Random_bits 0.5;
    adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
  }

let test_runner_deterministic () =
  let a = Runner.run (spec ()) ~seed:5 and b = Runner.run (spec ()) ~seed:5 in
  Alcotest.(check int) "same msgs" a.result.metrics.msgs_sent b.result.metrics.msgs_sent;
  Alcotest.(check (array int)) "same inputs" a.inputs_used b.inputs_used

let test_runner_inputs_modes () =
  let with_inputs inputs =
    (Runner.run { (spec ()) with Runner.inputs } ~seed:1).inputs_used
  in
  Alcotest.(check (array int)) "zeros" (Array.make 64 0) (with_inputs Runner.Zeros);
  Alcotest.(check (array int)) "ones" (Array.make 64 1) (with_inputs Runner.All_ones);
  let exact = Array.init 64 (fun i -> i mod 2) in
  Alcotest.(check (array int)) "exact" exact (with_inputs (Runner.Exact exact));
  let random = with_inputs (Runner.Random_bits 0.5) in
  Alcotest.(check bool) "random mixes" true
    (Array.exists (fun v -> v = 0) random && Array.exists (fun v -> v = 1) random)

let test_runner_seeds_distinct () =
  let seeds = Runner.seeds ~base:10 ~count:20 in
  Alcotest.(check int) "count" 20 (List.length seeds);
  Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare seeds))

let test_aggregate_math () =
  let outcomes = Runner.run_many (spec ()) ~seeds:[ 1; 2; 3; 4 ] in
  let agg = Runner.aggregate ~ok:(fun _ -> true) outcomes in
  Alcotest.(check int) "trials" 4 agg.Runner.trials;
  Alcotest.(check int) "successes" 4 agg.Runner.successes;
  Alcotest.(check (float 1e-9)) "rate" 1.0 agg.Runner.success_rate;
  let manual =
    Stats.mean (List.map (fun (o : Runner.outcome) -> float_of_int o.result.metrics.msgs_sent) outcomes)
  in
  Alcotest.(check (float 1e-6)) "mean msgs" manual agg.Runner.msgs.Stats.mean;
  let none = Runner.aggregate ~ok:(fun _ -> false) outcomes in
  Alcotest.(check int) "no successes" 0 none.Runner.successes

let test_quick_experiment_runs () =
  (* The cheapest experiment end-to-end: F6 only samples binomials. *)
  match Registry.find "F6" with
  | None -> Alcotest.fail "F6 missing"
  | Some e ->
      let report = e.Def.run { Def.scale = Def.Quick; base_seed = 3; jobs = 1 } in
      Alcotest.(check bool) "produces a table" true
        (Astring.String.is_infix ~affix:"whp band" report)

let test_section_format () =
  let s = Def.section "X1" "title" "body" in
  Alcotest.(check bool) "contains id" true (Astring.String.is_infix ~affix:"X1" s);
  Alcotest.(check bool) "contains body" true (Astring.String.is_infix ~affix:"body" s)

let () =
  Alcotest.run "expt"
    [
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "covers DESIGN index" `Quick test_registry_covers_design_index;
          Alcotest.test_case "find case-insensitive" `Quick test_registry_find_case_insensitive;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "input modes" `Quick test_runner_inputs_modes;
          Alcotest.test_case "seeds distinct" `Quick test_runner_seeds_distinct;
          Alcotest.test_case "aggregate math" `Quick test_aggregate_math;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "F6 runs" `Quick test_quick_experiment_runs;
          Alcotest.test_case "section format" `Quick test_section_format;
        ] );
    ]
