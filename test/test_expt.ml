(* Tests for the experiment harness: registry integrity, runner
   determinism, input generation, and aggregation arithmetic. *)

module Registry = Ftc_expt.Registry
module Runner = Ftc_expt.Runner
module Def = Ftc_expt.Def
module Stats = Ftc_analysis.Stats

let test_registry_ids_unique () =
  let ids = Registry.ids () in
  Alcotest.(check int) "19 experiments" 19 (List.length ids);
  Alcotest.(check int) "unique ids" 19 (List.length (List.sort_uniq compare ids))

let test_registry_covers_design_index () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) "id matches" id e.Def.id
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "T1"; "F1"; "F2"; "F3"; "F4"; "F5"; "F6"; "F7"; "F8"; "F9"; "F10"; "F11"; "F12"; "F13"; "F14"; "A1"; "A2"; "A3"; "A4" ]

let test_registry_find_case_insensitive () =
  Alcotest.(check bool) "lowercase works" true (Registry.find "f9" <> None);
  Alcotest.(check bool) "unknown rejected" true (Registry.find "F99" = None)

let spec () =
  {
    (Runner.default_spec (Ftc_core.Agreement.make Ftc_core.Params.default) ~n:64 ~alpha:0.7) with
    inputs = Runner.Random_bits 0.5;
    adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
  }

let test_runner_deterministic () =
  let a = Runner.run (spec ()) ~seed:5 and b = Runner.run (spec ()) ~seed:5 in
  Alcotest.(check int) "same msgs" a.result.metrics.msgs_sent b.result.metrics.msgs_sent;
  Alcotest.(check (array int)) "same inputs" a.inputs_used b.inputs_used

let test_runner_inputs_modes () =
  let with_inputs inputs =
    (Runner.run { (spec ()) with Runner.inputs } ~seed:1).inputs_used
  in
  Alcotest.(check (array int)) "zeros" (Array.make 64 0) (with_inputs Runner.Zeros);
  Alcotest.(check (array int)) "ones" (Array.make 64 1) (with_inputs Runner.All_ones);
  let exact = Array.init 64 (fun i -> i mod 2) in
  Alcotest.(check (array int)) "exact" exact (with_inputs (Runner.Exact exact));
  let random = with_inputs (Runner.Random_bits 0.5) in
  Alcotest.(check bool) "random mixes" true
    (Array.exists (fun v -> v = 0) random && Array.exists (fun v -> v = 1) random)

let test_runner_seeds_distinct () =
  let seeds = Runner.seeds ~base:10 ~count:20 in
  Alcotest.(check int) "count" 20 (List.length seeds);
  Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare seeds))

let test_aggregate_math () =
  let outcomes = Runner.run_many (spec ()) ~seeds:[ 1; 2; 3; 4 ] in
  let agg = Runner.aggregate ~ok:(fun _ -> true) outcomes in
  Alcotest.(check int) "trials" 4 agg.Runner.trials;
  Alcotest.(check int) "successes" 4 agg.Runner.successes;
  Alcotest.(check (float 1e-9)) "rate" 1.0 agg.Runner.success_rate;
  let manual =
    Stats.mean (List.map (fun (o : Runner.outcome) -> float_of_int o.result.metrics.msgs_sent) outcomes)
  in
  Alcotest.(check (float 1e-6)) "mean msgs" manual agg.Runner.msgs.Stats.mean;
  let none = Runner.aggregate ~ok:(fun _ -> false) outcomes in
  Alcotest.(check int) "no successes" 0 none.Runner.successes

let test_exact_inputs_length_validated () =
  (* A wrong-length Exact array used to be truncated/padded silently by
     Array.blit semantics downstream; it must be rejected up front. *)
  let bad len =
    Alcotest.check_raises
      (Printf.sprintf "Exact length %d rejected" len)
      (Invalid_argument
         (Printf.sprintf "Runner.materialize_inputs: Exact inputs length %d <> spec.n = 64" len))
      (fun () ->
        ignore (Runner.run { (spec ()) with Runner.inputs = Runner.Exact (Array.make len 0) } ~seed:1))
  in
  bad 63;
  bad 65;
  bad 0

let test_empty_aggregate_structured () =
  (* No trials must yield a structured zero aggregate, not a crash. *)
  let agg = Runner.aggregate ~ok:(fun _ -> true) [] in
  Alcotest.(check int) "zero trials" 0 agg.Runner.trials;
  Alcotest.(check int) "zero successes" 0 agg.Runner.successes;
  Alcotest.(check (float 0.)) "zero rate" 0. agg.Runner.success_rate;
  Alcotest.(check int) "empty msgs summary" 0 agg.Runner.msgs.Stats.count;
  Alcotest.(check (float 0.)) "empty mean" 0. agg.Runner.msgs.Stats.mean;
  Alcotest.(check bool) "matches empty_aggregate" true (agg = Runner.empty_aggregate);
  Alcotest.(check bool) "aggregate_stats [] too" true
    (Runner.aggregate_stats [] = Runner.empty_aggregate)

let test_trial_timeout_watchdog () =
  (* An effectively-zero budget fires the watchdog on the first poll; the
     outcome is marked watchdog_expired, never conflated with timed_out. *)
  let o = Runner.run { (spec ()) with Runner.trial_timeout = Some 1e-9 } ~seed:1 in
  Alcotest.(check bool) "watchdog expired" true o.Runner.result.watchdog_expired;
  Alcotest.(check bool) "not reported as round timeout" false o.Runner.result.timed_out;
  Alcotest.(check int) "cut before any round" 0 o.Runner.result.rounds_used;
  (* A generous budget changes nothing. *)
  let a = Runner.run { (spec ()) with Runner.trial_timeout = Some 3600. } ~seed:5 in
  let b = Runner.run (spec ()) ~seed:5 in
  Alcotest.(check bool) "generous budget: same run" true
    (a.Runner.result.metrics = b.Runner.result.metrics
    && (not a.Runner.result.watchdog_expired)
    && a.Runner.result.decisions = b.Runner.result.decisions)

let test_quick_experiment_runs () =
  (* The cheapest experiment end-to-end: F6 only samples binomials. *)
  match Registry.find "F6" with
  | None -> Alcotest.fail "F6 missing"
  | Some e ->
      let report =
        e.Def.run
          { Def.scale = Def.Quick; base_seed = 3; jobs = 1; journal = None; queue = None; fast_engine = false }
      in
      Alcotest.(check bool) "produces a table" true
        (Astring.String.is_infix ~affix:"whp band" report)

let test_section_format () =
  let s = Def.section "X1" "title" "body" in
  Alcotest.(check bool) "contains id" true (Astring.String.is_infix ~affix:"X1" s);
  Alcotest.(check bool) "contains body" true (Astring.String.is_infix ~affix:"body" s)

let () =
  Alcotest.run "expt"
    [
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "covers DESIGN index" `Quick test_registry_covers_design_index;
          Alcotest.test_case "find case-insensitive" `Quick test_registry_find_case_insensitive;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "input modes" `Quick test_runner_inputs_modes;
          Alcotest.test_case "seeds distinct" `Quick test_runner_seeds_distinct;
          Alcotest.test_case "aggregate math" `Quick test_aggregate_math;
          Alcotest.test_case "Exact length validated" `Quick
            test_exact_inputs_length_validated;
          Alcotest.test_case "empty aggregate structured" `Quick
            test_empty_aggregate_structured;
          Alcotest.test_case "trial-timeout watchdog" `Quick test_trial_timeout_watchdog;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "F6 runs" `Quick test_quick_experiment_runs;
          Alcotest.test_case "section format" `Quick test_section_format;
        ] );
    ]
