(* Tests for the correctness checkers, driven by hand-built results so
   every verdict branch is exercised deterministically. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Props = Ftc_core.Properties

let result ?(crashed = [||]) ?(faulty = [||]) decisions : Engine.result =
  let n = Array.length decisions in
  let pick arr i = if Array.length arr > i then arr.(i) else false in
  {
    Engine.decisions;
    observations = Array.make n Observation.bystander;
    faulty = Array.init n (pick faulty);
    crashed = Array.init n (pick crashed);
    crash_round = Array.make n (-1);
    rounds_used = 1;
    timed_out = false;
    watchdog_expired = false;
    metrics = Ftc_sim.Metrics.create ();
    trace = None;
    violations = [];
    round_ns = [||];
  }

open Decision

let test_election_ok () =
  let r = result [| Elected; Not_elected; Not_elected |] in
  let rep = Props.check_implicit_election r in
  Alcotest.(check bool) "ok" true rep.ok;
  Alcotest.(check (option int)) "leader" (Some 0) rep.leader

let test_election_no_leader () =
  let rep = Props.check_implicit_election (result [| Not_elected; Not_elected |]) in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check int) "zero leaders" 0 rep.live_leaders

let test_election_two_leaders () =
  let rep = Props.check_implicit_election (result [| Elected; Elected; Not_elected |]) in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check int) "two leaders" 2 rep.live_leaders;
  Alcotest.(check (option int)) "no unique leader" None rep.leader

let test_election_undecided_live_node_fails () =
  let rep = Props.check_implicit_election (result [| Elected; Undecided |]) in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check int) "one undecided" 1 rep.live_undecided

let test_election_crashed_leader_excluded () =
  (* A node that crashed holding Elected does not count as a live leader;
     the second, live leader makes the run valid. *)
  let r =
    result ~crashed:[| true; false; false |] [| Elected; Elected; Not_elected |]
  in
  let rep = Props.check_implicit_election r in
  Alcotest.(check bool) "ok" true rep.ok;
  Alcotest.(check int) "crashed leader counted separately" 1 rep.crashed_leaders;
  Alcotest.(check (option int)) "live leader" (Some 1) rep.leader

let test_election_crashed_undecided_ignored () =
  let r = result ~crashed:[| false; true |] [| Elected; Undecided |] in
  Alcotest.(check bool) "ok" true (Props.check_implicit_election r).ok

let test_election_leader_faultiness_reported () =
  let r = result ~faulty:[| true; false |] [| Elected; Not_elected |] in
  let rep = Props.check_implicit_election r in
  Alcotest.(check (option bool)) "faulty leader flagged" (Some true) rep.leader_was_faulty

let test_explicit_election_ok () =
  let r = result [| Elected; Follower 42; Follower 42 |] in
  let rep = Props.check_explicit_election r in
  Alcotest.(check bool) "ok" true rep.ok

let test_explicit_election_unaware_fails () =
  let r = result [| Elected; Follower 42; Not_elected |] in
  let rep = Props.check_explicit_election r in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check int) "one unaware" 1 rep.live_unaware

let test_explicit_election_mixed_ranks_fail () =
  let r = result [| Elected; Follower 42; Follower 43 |] in
  let rep = Props.check_explicit_election r in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check int) "two named ranks" 2 rep.distinct_named_ranks

let test_agreement_ok () =
  let inputs = [| 0; 1; 1 |] in
  let rep =
    Props.check_implicit_agreement ~inputs (result [| Agreed 0; Undecided; Agreed 0 |])
  in
  Alcotest.(check bool) "ok" true rep.ok;
  Alcotest.(check (option int)) "value" (Some 0) rep.value;
  Alcotest.(check int) "two deciders" 2 rep.live_deciders

let test_agreement_no_decider_fails () =
  let inputs = [| 0; 1 |] in
  let rep = Props.check_implicit_agreement ~inputs (result [| Undecided; Undecided |]) in
  Alcotest.(check bool) "not ok" false rep.ok

let test_agreement_split_fails () =
  let inputs = [| 0; 1 |] in
  let rep = Props.check_implicit_agreement ~inputs (result [| Agreed 0; Agreed 1 |]) in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check (list int)) "both values" [ 0; 1 ] rep.distinct_values

let test_agreement_validity_violation () =
  (* Deciding 0 when every input was 1 violates validity. *)
  let inputs = [| 1; 1 |] in
  let rep = Props.check_implicit_agreement ~inputs (result [| Agreed 0; Undecided |]) in
  Alcotest.(check bool) "not ok" false rep.ok;
  Alcotest.(check bool) "invalid" false rep.valid

let test_agreement_crashed_dissenter_ignored () =
  let inputs = [| 0; 1; 1 |] in
  let r = result ~crashed:[| false; true; false |] [| Agreed 0; Agreed 1; Agreed 0 |] in
  let rep = Props.check_implicit_agreement ~inputs r in
  Alcotest.(check bool) "ok despite crashed dissenter" true rep.ok

let test_explicit_agreement_requires_everyone () =
  let inputs = [| 0; 1 |] in
  let half = Props.check_explicit_agreement ~inputs (result [| Agreed 0; Undecided |]) in
  Alcotest.(check bool) "undecided live node fails" false half.ok;
  let full = Props.check_explicit_agreement ~inputs (result [| Agreed 0; Agreed 0 |]) in
  Alcotest.(check bool) "all decided ok" true full.ok

let test_explicit_agreement_crashed_excused () =
  let inputs = [| 0; 1 |] in
  let r = result ~crashed:[| false; true |] [| Agreed 0; Undecided |] in
  Alcotest.(check bool) "crashed node excused" true
    (Props.check_explicit_agreement ~inputs r).ok

let () =
  Alcotest.run "properties"
    [
      ( "implicit election",
        [
          Alcotest.test_case "ok" `Quick test_election_ok;
          Alcotest.test_case "no leader" `Quick test_election_no_leader;
          Alcotest.test_case "two leaders" `Quick test_election_two_leaders;
          Alcotest.test_case "live undecided" `Quick test_election_undecided_live_node_fails;
          Alcotest.test_case "crashed leader excluded" `Quick test_election_crashed_leader_excluded;
          Alcotest.test_case "crashed undecided ignored" `Quick test_election_crashed_undecided_ignored;
          Alcotest.test_case "faultiness reported" `Quick test_election_leader_faultiness_reported;
        ] );
      ( "explicit election",
        [
          Alcotest.test_case "ok" `Quick test_explicit_election_ok;
          Alcotest.test_case "unaware fails" `Quick test_explicit_election_unaware_fails;
          Alcotest.test_case "mixed ranks fail" `Quick test_explicit_election_mixed_ranks_fail;
        ] );
      ( "implicit agreement",
        [
          Alcotest.test_case "ok" `Quick test_agreement_ok;
          Alcotest.test_case "no decider" `Quick test_agreement_no_decider_fails;
          Alcotest.test_case "split" `Quick test_agreement_split_fails;
          Alcotest.test_case "validity" `Quick test_agreement_validity_violation;
          Alcotest.test_case "crashed dissenter" `Quick test_agreement_crashed_dissenter_ignored;
        ] );
      ( "explicit agreement",
        [
          Alcotest.test_case "requires everyone" `Quick test_explicit_agreement_requires_everyone;
          Alcotest.test_case "crashed excused" `Quick test_explicit_agreement_crashed_excused;
        ] );
    ]
