(* Tests for the round engine: port semantics, delivery timing, crash
   rules, CONGEST accounting, model-violation reporting, determinism, and
   early stopping. Each test uses a purpose-built micro-protocol. *)

module Protocol = Ftc_sim.Protocol
module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Adversary = Ftc_sim.Adversary
module Trace = Ftc_sim.Trace

let base_config ?(n = 16) ?(seed = 42) () = Engine.default_config ~n ~alpha:1.0 ~seed

(* A protocol where nodes with input 1 ("pingers") open [fan] fresh ports
   in round 0 and expect one reply per port in round 2, through the same
   port numbers the engine allocated. Receivers reply through the port
   the ping arrived on and record how many pings they saw. *)
module Ping_pong = struct
  type msg = Ping | Pong

  type state = {
    pinger : bool;
    fan : int;
    mutable pings_seen : int;
    mutable pongs_seen : int;
    mutable pong_ports_ok : bool;
    mutable decision : Decision.t;
  }

  let name = "ping-pong"
  let knowledge = `KT0
  let msg_bits ~n:_ _ = 5
  let max_rounds ~n:_ ~alpha:_ = 4
  let phases = Protocol.single_phase

  let init (ctx : Protocol.ctx) =
    {
      pinger = ctx.input > 0;
      fan = (if ctx.input > 0 then ctx.input else 0);
      pings_seen = 0;
      pongs_seen = 0;
      pong_ports_ok = true;
      decision = Decision.Undecided;
    }

  let step (_ctx : Protocol.ctx) st ~round ~inbox =
    let actions = ref [] in
    List.iter
      (fun { Protocol.from_port; payload; _ } ->
        match payload with
        | Ping ->
            st.pings_seen <- st.pings_seen + 1;
            actions := { Protocol.dest = Protocol.Port from_port; payload = Pong } :: !actions
        | Pong ->
            st.pongs_seen <- st.pongs_seen + 1;
            if from_port < 0 || from_port >= st.fan then st.pong_ports_ok <- false)
      inbox;
    if st.pinger && round = 0 then
      actions :=
        List.init st.fan (fun _ -> { Protocol.dest = Protocol.Fresh_port; payload = Ping });
    if round = 3 then st.decision <- Decision.Agreed (st.pongs_seen + (1000 * st.pings_seen));
    (st, !actions)

  let decide st = st.decision

  let observe st =
    { Observation.bystander with has_decided = st.decision <> Decision.Undecided }
end

let test_ping_pong_roundtrip () =
  let module E = Engine.Make (Ping_pong) in
  let n = 16 in
  let fan = 5 in
  let inputs = Array.make n 0 in
  inputs.(3) <- fan;
  let r = E.run { (base_config ~n ()) with inputs = Some inputs } in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  (* The pinger got exactly [fan] pongs, each on one of its fan ports. *)
  (match r.decisions.(3) with
  | Decision.Agreed v -> Alcotest.(check int) "pinger: 5 pongs, 0 pings" fan v
  | d -> Alcotest.failf "unexpected decision %s" (Decision.to_string d));
  (* Exactly [fan] distinct receivers each saw exactly one ping. *)
  let receivers = ref 0 in
  Array.iteri
    (fun i d ->
      if i <> 3 then
        match d with
        | Decision.Agreed v when v >= 1000 ->
            incr receivers;
            Alcotest.(check int) "one ping each" 1000 v
        | Decision.Agreed 0 -> ()
        | d -> Alcotest.failf "unexpected receiver decision %s" (Decision.to_string d))
    r.decisions;
  Alcotest.(check int) "fresh ports hit distinct peers" fan !receivers;
  Alcotest.(check int) "messages counted" (2 * fan) r.metrics.msgs_sent;
  Alcotest.(check int) "bits counted" (2 * fan * 5) r.metrics.bits_sent

let test_fresh_ports_cover_everyone () =
  let module E = Engine.Make (Ping_pong) in
  let n = 12 in
  let inputs = Array.make n 0 in
  inputs.(0) <- n - 1;
  let r = E.run { (base_config ~n ()) with inputs = Some inputs } in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  Array.iteri
    (fun i d ->
      if i <> 0 then
        match d with
        | Decision.Agreed 1000 -> ()
        | d -> Alcotest.failf "node %d missed its ping: %s" i (Decision.to_string d))
    r.decisions

(* A beacon sends one message to a fresh port every round. Used for crash
   semantics: sent/dropped counts and post-crash silence. *)
module Beacon = struct
  type msg = Blip
  type state = { active : bool; mutable got : int; mutable decision : Decision.t }

  let name = "beacon"
  let knowledge = `KT0
  let msg_bits ~n:_ Blip = 3
  let max_rounds ~n:_ ~alpha:_ = 6
  let phases = Protocol.single_phase

  let init (ctx : Protocol.ctx) =
    { active = ctx.input > 0; got = 0; decision = Decision.Undecided }

  let step (_ : Protocol.ctx) st ~round ~inbox =
    st.got <- st.got + List.length inbox;
    let actions =
      if st.active then
        List.init (if round = 0 then 4 else 1) (fun _ ->
            { Protocol.dest = Protocol.Fresh_port; payload = Blip })
      else []
    in
    if round = 5 then st.decision <- Decision.Agreed st.got;
    (st, actions)

  let decide st = st.decision

  let observe st =
    { Observation.bystander with has_decided = st.decision <> Decision.Undecided }
end

let run_beacon ~plan =
  let module E = Engine.Make (Beacon) in
  let n = 32 in
  let inputs = Array.make n 0 in
  inputs.(7) <- 1;
  E.run
    {
      (base_config ~n ~seed:9 ()) with
      alpha = 0.5;
      inputs = Some inputs;
      adversary = Ftc_fault.Strategy.scheduled plan ();
      record_trace = true;
    }

let test_crash_drop_all () =
  let r = run_beacon ~plan:[ (7, 2, Adversary.Drop_all) ] in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  Alcotest.(check bool) "crashed" true r.crashed.(7);
  Alcotest.(check int) "crash round recorded" 2 r.crash_round.(7);
  (* Rounds 0 (4 msgs), 1 (1 msg), 2 (1 msg, dropped); then silence. *)
  Alcotest.(check int) "sent counts dropped msg" 6 r.metrics.msgs_sent;
  Alcotest.(check int) "exactly the crash-round msg dropped" 1 r.metrics.msgs_dropped;
  (* Delivered blips = 5. *)
  let delivered =
    Array.fold_left
      (fun acc d -> match d with Decision.Agreed v -> acc + v | _ -> acc)
      0 r.decisions
  in
  Alcotest.(check int) "5 blips delivered" 5 delivered

let test_crash_keep_prefix () =
  let r = run_beacon ~plan:[ (7, 0, Adversary.Keep_prefix 2) ] in
  Alcotest.(check int) "4 sent in round 0" 4 r.metrics.msgs_sent;
  Alcotest.(check int) "2 dropped" 2 r.metrics.msgs_dropped

let test_crash_drop_none () =
  let r = run_beacon ~plan:[ (7, 1, Adversary.Drop_none) ] in
  Alcotest.(check int) "rounds 0+1 sent" 5 r.metrics.msgs_sent;
  Alcotest.(check int) "nothing dropped" 0 r.metrics.msgs_dropped

let test_timed_out_flag () =
  (* The beacon still has a message in flight when its round budget runs
     out, so the cut-off is real. *)
  let r = run_beacon ~plan:[] in
  Alcotest.(check bool) "beacon times out" true r.timed_out;
  (* Ping-pong goes quiet after round 2 and decides inside the budget. *)
  let module E = Engine.Make (Ping_pong) in
  let n = 16 in
  let inputs = Array.make n 0 in
  inputs.(3) <- 2;
  let r = E.run { (base_config ~n ()) with inputs = Some inputs } in
  Alcotest.(check bool) "quiescent run does not" false r.timed_out

let test_trace_records_crash_and_sends () =
  let r = run_beacon ~plan:[ (7, 2, Adversary.Drop_all) ] in
  match r.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some t ->
      let events = Trace.events t in
      let crashes =
        List.filter (function Trace.Crash { node = 7; round = 2 } -> true | _ -> false) events
      in
      Alcotest.(check int) "one crash event" 1 (List.length crashes);
      let sends = List.filter (function Trace.Send _ -> true | _ -> false) events in
      Alcotest.(check int) "all sends traced" 6 (List.length sends);
      let lost =
        List.filter
          (function Trace.Send { delivered = false; _ } -> true | _ -> false)
          events
      in
      Alcotest.(check int) "lost send traced" 1 (List.length lost)

(* -- omission-fault link stage -- *)

let test_link_total_loss_balanced () =
  let module E = Engine.Make (Beacon) in
  let n = 32 in
  let inputs = Array.make n 0 in
  inputs.(7) <- 1;
  let r =
    E.run
      {
        (base_config ~n ~seed:9 ()) with
        inputs = Some inputs;
        link = Ftc_fault.Omission.lossy_uniform ~rate:1.0 ();
        record_trace = true;
      }
  in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  (* Rounds 0..5: 4 + 1 + 1 + 1 + 1 + 1 sends, all eaten by the link. *)
  Alcotest.(check int) "sends still counted" 9 r.metrics.msgs_sent;
  Alcotest.(check int) "all lost on the link" 9 r.metrics.msgs_lost_link;
  Alcotest.(check int) "crash drops distinct from link losses" 0 r.metrics.msgs_dropped;
  let got =
    Array.fold_left
      (fun acc d -> match d with Decision.Agreed v -> acc + v | _ -> acc)
      0 r.decisions
  in
  Alcotest.(check int) "nothing delivered" 0 got;
  match r.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some t ->
      let events = Trace.events t in
      let undelivered =
        List.length
          (List.filter (function Trace.Send { delivered = false; _ } -> true | _ -> false) events)
      in
      let link_lost =
        List.length (List.filter (function Trace.Link_lost _ -> true | _ -> false) events)
      in
      Alcotest.(check int) "every send traced undelivered" 9 undelivered;
      Alcotest.(check int) "every loss has a Link_lost marker" 9 link_lost

let test_link_partial_loss_reconciles () =
  let module E = Engine.Make (Beacon) in
  let n = 32 in
  let inputs = Array.make n 1 in
  let r =
    E.run
      {
        (base_config ~n ~seed:4 ()) with
        inputs = Some inputs;
        link = Ftc_fault.Omission.lossy_uniform ~rate:0.5 ();
        record_trace = true;
      }
  in
  Alcotest.(check bool) "some messages lost" true (r.metrics.msgs_lost_link > 0);
  Alcotest.(check bool) "some messages survive" true
    (r.metrics.msgs_lost_link < r.metrics.msgs_sent);
  match r.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some t ->
      let sends = ref 0 and undelivered = ref 0 and link_lost = ref 0 in
      List.iter
        (function
          | Trace.Send { delivered; _ } ->
              incr sends;
              if not delivered then incr undelivered
          | Trace.Link_lost _ -> incr link_lost
          | Trace.Crash _ | Trace.Queue_dropped _ | Trace.Ecn_marked _ | Trace.Unroutable _ ->
              ())
        (Trace.events t);
      Alcotest.(check int) "sends match metrics" r.metrics.msgs_sent !sends;
      Alcotest.(check int) "losses match metrics" r.metrics.msgs_lost_link !link_lost;
      Alcotest.(check int) "undelivered = drops + link losses"
        (r.metrics.msgs_dropped + r.metrics.msgs_lost_link)
        !undelivered

let test_link_determinism_and_reliable_stream_unchanged () =
  (* Same seed, same lossy link model -> identical executions; and the
     explicit reliable link is the exact default-config behaviour. *)
  let module E = Engine.Make (Beacon) in
  let n = 24 in
  let inputs = Array.make n 1 in
  let run link =
    E.run { (base_config ~n ~seed:21 ()) with inputs = Some inputs; link }
  in
  let a = run (Ftc_fault.Omission.lossy_burst ~rate:0.3 ~mean_len:3. ()) in
  let b = run (Ftc_fault.Omission.lossy_burst ~rate:0.3 ~mean_len:3. ()) in
  Alcotest.(check int) "same losses" a.metrics.msgs_lost_link b.metrics.msgs_lost_link;
  Alcotest.(check int) "same msgs" a.metrics.msgs_sent b.metrics.msgs_sent;
  let plain = run Ftc_sim.Link.reliable in
  Alcotest.(check int) "reliable = paper model, no losses" 0 plain.metrics.msgs_lost_link

(* Opens more fresh ports than the other n-1 nodes can supply; the excess
   sends must be counted and traced, never silently swallowed. *)
let test_unroutable_fresh_sends_counted () =
  let module E = Engine.Make (Ping_pong) in
  let n = 4 in
  let fan = 7 in
  let inputs = Array.make n 0 in
  inputs.(3) <- fan;
  let r = E.run { (base_config ~n ()) with inputs = Some inputs; record_trace = true } in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  (* n-1 = 3 pings routable (plus 3 pongs back); 4 pings unroutable. *)
  Alcotest.(check int) "unroutable counted" (fan - (n - 1)) r.metrics.msgs_unroutable;
  Alcotest.(check int) "routable sends counted" (2 * (n - 1)) r.metrics.msgs_sent;
  match r.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some t ->
      let unroutable =
        List.filter (function Trace.Unroutable { node = 3; _ } -> true | _ -> false)
          (Trace.events t)
      in
      Alcotest.(check int) "unroutable events traced" (fan - (n - 1)) (List.length unroutable)

let test_adversary_cannot_crash_non_faulty () =
  let module E = Engine.Make (Beacon) in
  let n = 8 in
  let bad_adversary =
    {
      Adversary.name = "bad";
      pick_faulty = (fun _ ~n:_ ~f:_ -> [ 1 ]);
      decide_crashes =
        (fun _ view -> if view.Adversary.round = 0 then [ (2, Adversary.Drop_all) ] else []);
    }
  in
  let r =
    E.run { (base_config ~n ()) with alpha = 0.5; adversary = bad_adversary }
  in
  Alcotest.(check bool) "violation reported" true
    (List.exists
       (function Ftc_sim.Violation.Crash_non_faulty { node = 2; _ } -> true | _ -> false)
       r.violations);
  Alcotest.(check bool) "node 2 not crashed" false r.crashed.(2)

let test_adversary_budget_enforced () =
  let module E = Engine.Make (Beacon) in
  let greedy =
    {
      Adversary.name = "greedy";
      pick_faulty = (fun _ ~n ~f:_ -> List.init n Fun.id);
      decide_crashes = (fun _ _ -> []);
    }
  in
  let r = E.run { (base_config ~n:10 ()) with alpha = 0.5; adversary = greedy } in
  Alcotest.(check bool) "over-budget faulty set reported" true
    (List.exists
       (function Ftc_sim.Violation.Faulty_budget_exceeded _ -> true | _ -> false)
       r.violations)

(* KT0 protocol that illegally addresses by node id. *)
module Illegal_kt0 = struct
  type msg = M
  type state = unit

  let name = "illegal-kt0"
  let knowledge = `KT0
  let msg_bits ~n:_ M = 1
  let max_rounds ~n:_ ~alpha:_ = 2
  let phases = Protocol.single_phase
  let init _ = ()

  let step (_ : Protocol.ctx) () ~round ~inbox:_ =
    ((), if round = 0 then [ { Protocol.dest = Protocol.Node 0; payload = M } ] else [])

  let decide () = Decision.Agreed 0
  let observe () = Observation.bystander
end

let test_kt0_node_addressing_rejected () =
  let module E = Engine.Make (Illegal_kt0) in
  let r = E.run (base_config ~n:4 ()) in
  Alcotest.(check bool) "violation reported" true
    (List.exists
       (function Ftc_sim.Violation.Kt0_node_addressing _ -> true | _ -> false)
       r.violations);
  Alcotest.(check int) "nothing sent" 0 r.metrics.msgs_sent

(* Protocol that sends through a port it never opened. *)
module Bad_port = struct
  type msg = M
  type state = unit

  let name = "bad-port"
  let knowledge = `KT0
  let msg_bits ~n:_ M = 1
  let max_rounds ~n:_ ~alpha:_ = 2
  let phases = Protocol.single_phase
  let init _ = ()

  let step (_ : Protocol.ctx) () ~round ~inbox:_ =
    ((), if round = 0 then [ { Protocol.dest = Protocol.Port 99; payload = M } ] else [])

  let decide () = Decision.Agreed 0
  let observe () = Observation.bystander
end

let test_unknown_port_rejected () =
  let module E = Engine.Make (Bad_port) in
  let r = E.run (base_config ~n:4 ()) in
  Alcotest.(check bool) "violation reported" true
    (List.exists
       (function Ftc_sim.Violation.Unknown_port { port = 99; _ } -> true | _ -> false)
       r.violations);
  Alcotest.(check int) "nothing sent" 0 r.metrics.msgs_sent

(* Oversized messages must trip the CONGEST accounting. *)
module Fat_messages = struct
  type msg = M
  type state = unit

  let name = "fat"
  let knowledge = `KT0
  let msg_bits ~n (M) = 100 * Ftc_sim.Congest.default_limit ~n
  let max_rounds ~n:_ ~alpha:_ = 2
  let phases = Protocol.single_phase
  let init _ = ()

  let step (_ : Protocol.ctx) () ~round ~inbox:_ =
    ((), if round = 0 then [ { Protocol.dest = Protocol.Fresh_port; payload = M } ] else [])

  let decide () = Decision.Agreed 0
  let observe () = Observation.bystander
end

let test_congest_violation_detected () =
  let module E = Engine.Make (Fat_messages) in
  let n = 8 in
  let r = E.run (base_config ~n ()) in
  Alcotest.(check int) "each node trips once" n r.metrics.congest_violations;
  let local = E.run { (base_config ~n ()) with congest_limit = None } in
  Alcotest.(check int) "LOCAL model has no budget" 0 local.metrics.congest_violations

(* Decides instantly and stays silent: the engine must stop early. *)
module Instant = struct
  type msg = unit
  type state = unit

  let name = "instant"
  let knowledge = `KT0
  let msg_bits ~n:_ () = 1
  let max_rounds ~n:_ ~alpha:_ = 1000
  let phases = Protocol.single_phase
  let init _ = ()
  let step (_ : Protocol.ctx) () ~round:_ ~inbox:_ = ((), [])
  let decide () = Decision.Agreed 7
  let observe () = { Observation.bystander with has_decided = true }
end

let test_early_stop_on_quiescence () =
  let module E = Engine.Make (Instant) in
  let r = E.run (base_config ~n:64 ()) in
  Alcotest.(check int) "stops after one round" 1 r.rounds_used

(* KT1 protocol echoing its own identity. *)
module Know_thyself = struct
  type msg = unit
  type state = int

  let name = "know-thyself"
  let knowledge = `KT1
  let msg_bits ~n:_ () = 1
  let max_rounds ~n:_ ~alpha:_ = 1
  let phases = Protocol.single_phase

  let init (ctx : Protocol.ctx) =
    match ctx.self with Some s -> s | None -> Alcotest.fail "KT1 ctx lacks self"

  let step (_ : Protocol.ctx) s ~round:_ ~inbox:_ = (s, [])
  let decide s = Decision.Agreed s
  let observe _ = { Observation.bystander with has_decided = true }
end

let test_kt1_self_identity () =
  let module E = Engine.Make (Know_thyself) in
  let n = 20 in
  let r = E.run (base_config ~n ()) in
  Array.iteri
    (fun i d -> Alcotest.(check bool) "self id" true (Decision.equal d (Decision.Agreed i)))
    r.decisions

(* A pinger that reuses the same fresh port twice; the receiver must see
   both pings through one stable local port. *)
module Double_ping = struct
  type msg = Dping

  type state = {
    pinger : bool;
    mutable ports_seen : int list;
    mutable decision : Decision.t;
  }

  let name = "double-ping"
  let knowledge = `KT0
  let msg_bits ~n:_ Dping = 2
  let max_rounds ~n:_ ~alpha:_ = 4
  let phases = Protocol.single_phase

  let init (ctx : Protocol.ctx) =
    { pinger = ctx.input > 0; ports_seen = []; decision = Decision.Undecided }

  let step (_ : Protocol.ctx) st ~round ~inbox =
    List.iter
      (fun { Protocol.from_port; payload = Dping; _ } ->
        st.ports_seen <- from_port :: st.ports_seen)
      inbox;
    let actions =
      if st.pinger && round = 0 then
        [ { Protocol.dest = Protocol.Fresh_port; payload = Dping } ]
      else if st.pinger && round = 1 then
        [ { Protocol.dest = Protocol.Port 0; payload = Dping } ]
      else []
    in
    if round = 3 then
      st.decision <-
        (match st.ports_seen with
        | [ a; b ] when a = b -> Decision.Agreed 1 (* same stable port *)
        | [] -> Decision.Agreed 0
        | _ -> Decision.Agreed (-1));
    (st, actions)

  let decide st = st.decision

  let observe st =
    { Observation.bystander with has_decided = st.decision <> Decision.Undecided }
end

let test_port_stability_across_rounds () =
  let module E = Engine.Make (Double_ping) in
  let n = 8 in
  let inputs = Array.make n 0 in
  inputs.(2) <- 1;
  let r = E.run { (base_config ~n ()) with inputs = Some inputs } in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  let receivers =
    Array.to_list r.decisions
    |> List.filter (fun d -> Decision.equal d (Decision.Agreed 1))
  in
  Alcotest.(check int) "one receiver, stable port" 1 (List.length receivers);
  Alcotest.(check bool) "no split-port receiver" false
    (Array.exists (fun d -> Decision.equal d (Decision.Agreed (-1))) r.decisions)

let test_local_and_congest_count_equally () =
  (* The CONGEST limit only flags violations; message/bit complexity must
     be identical in LOCAL mode for a compliant protocol. *)
  let params = Ftc_core.Params.default in
  let (module P) = Ftc_core.Agreement.make params in
  let module E = Engine.Make (P) in
  let inputs = Array.init 64 (fun i -> i mod 2) in
  let congest =
    E.run { (Engine.default_config ~n:64 ~alpha:0.8 ~seed:3) with inputs = Some inputs }
  in
  let local =
    E.run
      { (Engine.default_config ~n:64 ~alpha:0.8 ~seed:3) with
        inputs = Some inputs;
        congest_limit = None
      }
  in
  Alcotest.(check int) "same messages" congest.metrics.msgs_sent local.metrics.msgs_sent;
  Alcotest.(check int) "same bits" congest.metrics.bits_sent local.metrics.bits_sent;
  Alcotest.(check int) "compliant protocol never flagged" 0 congest.metrics.congest_violations

let test_observations_report_roles () =
  let params = Ftc_core.Params.default in
  let (module P) = Ftc_core.Leader_election.make params in
  let module E = Engine.Make (P) in
  let r = E.run (Engine.default_config ~n:128 ~alpha:0.8 ~seed:5) in
  let candidates =
    Array.fold_left
      (fun acc (o : Observation.t) ->
        if o.Observation.role = Observation.Candidate then acc + 1 else acc)
      0 r.observations
  in
  Alcotest.(check bool)
    (Printf.sprintf "plausible candidate count (%d)" candidates)
    true
    (candidates >= 2 && candidates < 128);
  Array.iter
    (fun (o : Observation.t) ->
      if o.Observation.role = Observation.Candidate then
        Alcotest.(check bool) "candidates expose ranks" true (o.Observation.rank <> None))
    r.observations

let test_determinism () =
  let params = Ftc_core.Params.default in
  let (module P) = Ftc_core.Leader_election.make params in
  let module E = Engine.Make (P) in
  let cfg =
    { (Engine.default_config ~n:128 ~alpha:0.6 ~seed:77) with
      adversary = Ftc_fault.Strategy.random_crashes ()
    }
  in
  let r1 = E.run cfg in
  let cfg2 =
    { (Engine.default_config ~n:128 ~alpha:0.6 ~seed:77) with
      adversary = Ftc_fault.Strategy.random_crashes ()
    }
  in
  let r2 = E.run cfg2 in
  Alcotest.(check int) "same messages" r1.metrics.msgs_sent r2.metrics.msgs_sent;
  Alcotest.(check int) "same rounds" r1.rounds_used r2.rounds_used;
  Array.iteri
    (fun i d -> Alcotest.(check bool) "same decision" true (Decision.equal d r2.decisions.(i)))
    r1.decisions

let test_max_faulty () =
  Alcotest.(check int) "half" 50 (Engine.max_faulty ~n:100 ~alpha:0.5);
  Alcotest.(check int) "none at alpha 1" 0 (Engine.max_faulty ~n:100 ~alpha:1.0);
  Alcotest.(check int) "almost all" 99 (Engine.max_faulty ~n:100 ~alpha:0.01);
  Alcotest.(check int) "ceil of alpha n" 4 (Engine.max_faulty ~n:10 ~alpha:0.55)

let test_bad_inputs_rejected () =
  let module E = Engine.Make (Instant) in
  Alcotest.check_raises "short inputs"
    (Invalid_argument "Engine.run: inputs length <> n")
    (fun () -> ignore (E.run { (base_config ~n:8 ()) with inputs = Some [| 1 |] }));
  Alcotest.check_raises "tiny network" (Invalid_argument "Engine.run: need at least 2 nodes")
    (fun () -> ignore (E.run (base_config ~n:1 ())))

let qcheck_engine_deterministic =
  QCheck.Test.make ~name:"engine is a pure function of the seed" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 8 64))
    (fun (seed, n) ->
      let module E = Engine.Make (Beacon) in
      let inputs = Array.make n 1 in
      let run () =
        E.run
          { (Engine.default_config ~n ~alpha:0.7 ~seed) with
            inputs = Some inputs;
            adversary = Ftc_fault.Strategy.random_crashes ()
          }
      in
      let a = run () and b = run () in
      a.metrics.msgs_sent = b.metrics.msgs_sent
      && a.metrics.bits_sent = b.metrics.bits_sent
      && a.crashed = b.crashed)

(* A KT1 protocol pinning the inbox arrival-order contract the delivery
   refactor must preserve: messages arrive grouped by ascending sender id,
   and within one sender in the order its action list sent them. Every
   node with a non-zero input [v] sends [v*10], [v*10+1] to node 1 in
   round 0; node 1 folds its round-1 inbox into a digit string. *)
module Inbox_order = struct
  type msg = int
  type state = { mutable folded : int; mutable decision : Decision.t }

  let name = "inbox-order"
  let knowledge = `KT1
  let msg_bits ~n:_ _ = 8
  let max_rounds ~n:_ ~alpha:_ = 3
  let phases = Protocol.single_phase
  let init _ctx = { folded = 0; decision = Decision.Undecided }

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    List.iter
      (fun { Protocol.payload; _ } -> st.folded <- (st.folded * 100) + payload)
      inbox;
    let actions =
      if round = 0 && ctx.input > 0 && ctx.self <> Some 1 then
        [
          { Protocol.dest = Protocol.Node 1; payload = ctx.input * 10 };
          { Protocol.dest = Protocol.Node 1; payload = (ctx.input * 10) + 1 };
        ]
      else []
    in
    if round >= 1 then st.decision <- Decision.Agreed st.folded;
    (st, actions)

  let decide st = st.decision

  let observe st =
    { Observation.bystander with has_decided = st.decision <> Decision.Undecided }
end

let test_inbox_arrival_order () =
  let module E = Engine.Make (Inbox_order) in
  let n = 8 in
  let inputs = Array.make n 0 in
  inputs.(0) <- 1;
  inputs.(2) <- 2;
  inputs.(5) <- 3;
  let r = E.run { (base_config ~n ()) with inputs = Some inputs } in
  Alcotest.(check (list string)) "no errors" [] (List.map Ftc_sim.Violation.to_string r.violations);
  match r.decisions.(1) with
  | Decision.Agreed v ->
      (* Sender order 0, 2, 5; per sender: v*10 then v*10+1. *)
      Alcotest.(check int) "arrival order 10 11 20 21 30 31" 101120213031 v
  | d -> Alcotest.failf "unexpected decision %s" (Decision.to_string d)

let () =
  Alcotest.run "engine"
    [
      ( "ports",
        [
          Alcotest.test_case "ping-pong roundtrip" `Quick test_ping_pong_roundtrip;
          Alcotest.test_case "fresh ports cover everyone" `Quick test_fresh_ports_cover_everyone;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "drop all" `Quick test_crash_drop_all;
          Alcotest.test_case "keep prefix" `Quick test_crash_keep_prefix;
          Alcotest.test_case "drop none" `Quick test_crash_drop_none;
          Alcotest.test_case "trace events" `Quick test_trace_records_crash_and_sends;
          Alcotest.test_case "timed_out flag" `Quick test_timed_out_flag;
          Alcotest.test_case "non-faulty protected" `Quick test_adversary_cannot_crash_non_faulty;
          Alcotest.test_case "faulty budget enforced" `Quick test_adversary_budget_enforced;
        ] );
      ( "links",
        [
          Alcotest.test_case "total loss balanced" `Quick test_link_total_loss_balanced;
          Alcotest.test_case "partial loss reconciles" `Quick test_link_partial_loss_reconciles;
          Alcotest.test_case "deterministic, reliable unchanged" `Quick
            test_link_determinism_and_reliable_stream_unchanged;
          Alcotest.test_case "unroutable sends counted" `Quick test_unroutable_fresh_sends_counted;
        ] );
      ( "model",
        [
          Alcotest.test_case "KT0 node addressing rejected" `Quick test_kt0_node_addressing_rejected;
          Alcotest.test_case "unknown port rejected" `Quick test_unknown_port_rejected;
          Alcotest.test_case "congest violations" `Quick test_congest_violation_detected;
          Alcotest.test_case "KT1 self identity" `Quick test_kt1_self_identity;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "early stop" `Quick test_early_stop_on_quiescence;
          Alcotest.test_case "port stability" `Quick test_port_stability_across_rounds;
          Alcotest.test_case "LOCAL = CONGEST counts" `Quick test_local_and_congest_count_equally;
          Alcotest.test_case "observations expose roles" `Quick test_observations_report_roles;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "max_faulty" `Quick test_max_faulty;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs_rejected;
          Alcotest.test_case "inbox arrival order" `Quick test_inbox_arrival_order;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ qcheck_engine_deterministic ]);
    ]
