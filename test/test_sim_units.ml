(* Unit tests for the small simulator modules: Decision, Observation,
   Metrics, Trace, and the Fanout broadcast helper. *)

module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Metrics = Ftc_sim.Metrics
module Trace = Ftc_sim.Trace
module Fanout = Ftc_sim.Fanout
module Protocol = Ftc_sim.Protocol

let test_decision_equal () =
  let open Decision in
  let all = [ Undecided; Elected; Not_elected; Follower 1; Follower 2; Agreed 0; Agreed 1 ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          Alcotest.(check bool)
            (Printf.sprintf "equal iff same (%d,%d)" i j)
            (i = j) (equal a b))
        all)
    all

let test_decision_to_string () =
  Alcotest.(check string) "undecided" "undecided" (Decision.to_string Decision.Undecided);
  Alcotest.(check string) "agreed" "agreed(1)" (Decision.to_string (Decision.Agreed 1));
  Alcotest.(check string) "follower" "follower(9)" (Decision.to_string (Decision.Follower 9))

let test_observation_default () =
  Alcotest.(check bool) "bystander role" true
    (Observation.bystander.Observation.role = Observation.Bystander);
  Alcotest.(check bool) "no rank" true (Observation.bystander.Observation.rank = None);
  Alcotest.(check bool) "undecided" false Observation.bystander.Observation.has_decided

let test_observation_pp () =
  let s = Format.asprintf "%a" Observation.pp Observation.bystander in
  Alcotest.(check bool) "mentions role" true
    (Astring.String.is_infix ~affix:"bystander" s)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.record_send m ~round:0 ~bits:10 ~delivered:true;
  Metrics.record_send m ~round:0 ~bits:5 ~delivered:false;
  Metrics.record_send m ~round:2 ~bits:1 ~delivered:true;
  Metrics.record_violation m;
  Metrics.finish m ~rounds:3;
  Alcotest.(check int) "sent" 3 m.Metrics.msgs_sent;
  Alcotest.(check int) "dropped" 1 m.Metrics.msgs_dropped;
  Alcotest.(check int) "bits" 16 m.Metrics.bits_sent;
  Alcotest.(check int) "violations" 1 m.Metrics.congest_violations;
  Alcotest.(check int) "rounds" 3 m.Metrics.rounds_used;
  Alcotest.(check (array int)) "per-round" [| 2; 0; 1 |] m.Metrics.per_round_msgs

let test_metrics_per_round_growth () =
  (* Rounds beyond the initial capacity must not be lost. *)
  let m = Metrics.create () in
  Metrics.record_send m ~round:500 ~bits:1 ~delivered:true;
  Metrics.finish m ~rounds:501;
  Alcotest.(check int) "late round recorded" 1 m.Metrics.per_round_msgs.(500);
  Alcotest.(check int) "length trimmed" 501 (Array.length m.Metrics.per_round_msgs)

let test_metrics_finish_rounds_zero () =
  (* A run stopped at round boundary 0 must keep its round-0 sends:
     finish ~rounds:0 used to truncate the per-round view to empty. *)
  let m = Metrics.create () in
  Metrics.record_send m ~round:0 ~bits:4 ~delivered:true;
  Metrics.record_send m ~round:0 ~bits:4 ~delivered:true;
  Metrics.finish m ~rounds:0;
  Alcotest.(check (array int)) "round-0 sends survive" [| 2 |] m.Metrics.per_round_msgs;
  Alcotest.(check (array int)) "bits view too" [| 8 |] m.Metrics.per_round_bits

let test_metrics_per_round_drops () =
  (* The drop view reconciles with the aggregates round by round:
     crash drops + link losses + unroutable sends, at their rounds. *)
  let m = Metrics.create () in
  Metrics.record_send m ~round:0 ~bits:1 ~delivered:false;
  Metrics.record_link_loss m ~round:1 ~bits:1;
  Metrics.record_unroutable m ~round:2;
  Metrics.record_send m ~round:2 ~bits:1 ~delivered:true;
  Metrics.finish m ~rounds:3;
  Alcotest.(check (array int)) "drops per round" [| 1; 1; 1 |] m.Metrics.per_round_drops;
  Alcotest.(check int) "unroutable counted" 1 m.Metrics.msgs_unroutable;
  Alcotest.(check int) "unroutable not sent" 3 m.Metrics.msgs_sent;
  Alcotest.(check int)
    "aggregate = sum of drop view"
    (m.Metrics.msgs_dropped + m.Metrics.msgs_lost_link + m.Metrics.msgs_unroutable)
    (Array.fold_left ( + ) 0 m.Metrics.per_round_drops)

let test_metrics_sparkline () =
  Alcotest.(check string) "zero is _" "_" (Metrics.sparkline [| 0 |]);
  Alcotest.(check string) "max is #" "_#" (Metrics.sparkline [| 0; 9 |]);
  Alcotest.(check string) "empty" "" (Metrics.sparkline [||]);
  let s = Metrics.sparkline [| 0; 1; 5; 10 |] in
  Alcotest.(check int) "one cell per round" 4 (String.length s);
  Alcotest.(check bool) "pp carries it" true
    (let m = Metrics.create () in
     Metrics.record_send m ~round:0 ~bits:1 ~delivered:true;
     Metrics.finish m ~rounds:1;
     Astring.String.is_infix ~affix:"per-round msgs" (Format.asprintf "%a" Metrics.pp m))

let test_trace_order_and_length () =
  let t = Trace.create () in
  let e1 = Trace.Send { round = 0; src = 1; dst = 2; bits = 3; delivered = true } in
  let e2 = Trace.Crash { round = 1; node = 1 } in
  Trace.add t e1;
  Trace.add t e2;
  Alcotest.(check int) "length" 2 (Trace.length t);
  match Trace.events t with
  | [ a; b ] ->
      Alcotest.(check bool) "chronological order" true (a = e1 && b = e2)
  | _ -> Alcotest.fail "two events expected"

let test_trace_pp_event () =
  let s =
    Format.asprintf "%a" Trace.pp_event
      (Trace.Send { round = 3; src = 1; dst = 2; bits = 7; delivered = false })
  in
  Alcotest.(check bool) "mentions loss" true (Astring.String.is_infix ~affix:"lost" s)

let test_fanout_counts () =
  let acts = Fanout.broadcast ~n:10 ~known_ports:[ 0; 3; 5 ] "x" in
  Alcotest.(check int) "n-1 actions" 9 (List.length acts);
  let ports, fresh =
    List.partition (fun a -> match a.Protocol.dest with Protocol.Port _ -> true | _ -> false) acts
  in
  Alcotest.(check int) "known ports used" 3 (List.length ports);
  Alcotest.(check int) "fresh for the rest" 6 (List.length fresh);
  List.iter
    (fun (a : string Protocol.action) ->
      Alcotest.(check string) "payload carried" "x" a.Protocol.payload)
    acts

let test_fanout_all_known () =
  let acts = Fanout.broadcast ~n:4 ~known_ports:[ 0; 1; 2 ] () in
  Alcotest.(check int) "no fresh needed" 3 (List.length acts)

let test_fanout_none_known () =
  let acts = Fanout.broadcast ~n:4 ~known_ports:[] () in
  Alcotest.(check int) "all fresh" 3 (List.length acts);
  List.iter
    (fun (a : unit Protocol.action) ->
      Alcotest.(check bool) "fresh dest" true (a.Protocol.dest = Protocol.Fresh_port))
    acts

let () =
  Alcotest.run "sim-units"
    [
      ( "decision",
        [
          Alcotest.test_case "equal" `Quick test_decision_equal;
          Alcotest.test_case "to_string" `Quick test_decision_to_string;
        ] );
      ( "observation",
        [
          Alcotest.test_case "default" `Quick test_observation_default;
          Alcotest.test_case "pp" `Quick test_observation_pp;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "per-round growth" `Quick test_metrics_per_round_growth;
          Alcotest.test_case "finish at rounds=0" `Quick test_metrics_finish_rounds_zero;
          Alcotest.test_case "per-round drops" `Quick test_metrics_per_round_drops;
          Alcotest.test_case "sparkline" `Quick test_metrics_sparkline;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order" `Quick test_trace_order_and_length;
          Alcotest.test_case "pp" `Quick test_trace_pp_event;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "counts" `Quick test_fanout_counts;
          Alcotest.test_case "all known" `Quick test_fanout_all_known;
          Alcotest.test_case "none known" `Quick test_fanout_none_known;
        ] );
    ]
