(* Tests for the bounded ingress-queue model: the pure RED curve as
   qcheck properties (0 below min_th, 1 at/above max_th, monotone in the
   band), the discipline decisions at the boundaries, config parsing and
   validation, and the engine-level guarantees — drop-tail admits at most
   [capacity] messages per destination per round, ecn never loses a
   message, and queue drops / ECN marks reconcile exactly between the
   trace, the metrics and the receivers' inboxes. *)

module Protocol = Ftc_sim.Protocol
module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Trace = Ftc_sim.Trace
module Queue_model = Ftc_sim.Queue_model
module Rng = Ftc_rng.Rng

(* -- the pure RED curve -- *)

(* Random valid config + an occupancy around its range. *)
let config_gen =
  QCheck.(
    map
      (fun (cap, a, b, occ) ->
        let capacity = 1 + (cap mod 50) in
        let min_th = a mod (capacity + 1) in
        let max_th = min_th + (b mod (capacity - min_th + 1)) in
        let q = { Queue_model.capacity; discipline = Queue_model.Red; min_th; max_th } in
        (q, occ mod (capacity + 4)))
      (quad (int_range 0 1_000) (int_range 0 1_000) (int_range 0 1_000) (int_range 0 1_000)))

let qcheck_red_zero_below_min =
  QCheck.Test.make ~name:"red probability is 0 below min_th" ~count:200 config_gen
    (fun (q, occ) ->
      QCheck.assume (occ < q.Queue_model.min_th);
      Queue_model.red_probability q ~occupancy:occ = 0.)

let qcheck_red_one_at_max =
  QCheck.Test.make ~name:"red probability is 1 at and above max_th" ~count:200 config_gen
    (fun (q, occ) ->
      QCheck.assume (occ >= q.Queue_model.max_th);
      Queue_model.red_probability q ~occupancy:occ = 1.)

let qcheck_red_monotone =
  QCheck.Test.make ~name:"red probability is monotone in occupancy" ~count:200 config_gen
    (fun (q, occ) ->
      Queue_model.red_probability q ~occupancy:occ
      <= Queue_model.red_probability q ~occupancy:(occ + 1))

let qcheck_red_bounded =
  QCheck.Test.make ~name:"red probability stays in [0,1]" ~count:200 config_gen
    (fun (q, occ) ->
      let p = Queue_model.red_probability q ~occupancy:occ in
      p >= 0. && p <= 1.)

(* -- decisions at the boundaries -- *)

let test_decide_boundaries () =
  let rng = Rng.create 7 in
  let dt = Queue_model.make ~capacity:4 ~discipline:Queue_model.Drop_tail () in
  Alcotest.(check bool) "drop-tail accepts below capacity" true
    (Queue_model.decide dt rng ~occupancy:3 = Queue_model.Accept);
  Alcotest.(check bool) "drop-tail drops at capacity" true
    (Queue_model.decide dt rng ~occupancy:4 = Queue_model.Drop);
  let red = Queue_model.make ~min_th:2 ~max_th:6 ~capacity:8 ~discipline:Queue_model.Red () in
  Alcotest.(check bool) "red accepts below min_th" true
    (Queue_model.decide red rng ~occupancy:1 = Queue_model.Accept);
  Alcotest.(check bool) "red drops at max_th" true
    (Queue_model.decide red rng ~occupancy:6 = Queue_model.Drop);
  Alcotest.(check bool) "red drops at capacity" true
    (Queue_model.decide red rng ~occupancy:8 = Queue_model.Drop);
  let ecn = Queue_model.make ~min_th:2 ~max_th:6 ~capacity:8 ~discipline:Queue_model.Ecn () in
  Alcotest.(check bool) "ecn accepts below min_th" true
    (Queue_model.decide ecn rng ~occupancy:1 = Queue_model.Accept);
  Alcotest.(check bool) "ecn marks at max_th" true
    (Queue_model.decide ecn rng ~occupancy:6 = Queue_model.Mark);
  (* The lossless discipline marks even past capacity — never drops. *)
  for occ = 0 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "ecn never drops (occupancy %d)" occ)
      true
      (Queue_model.decide ecn rng ~occupancy:occ <> Queue_model.Drop)
  done

let test_config_parse_and_validate () =
  List.iter
    (fun d ->
      let q = Queue_model.make ~capacity:12 ~discipline:d () in
      Alcotest.(check bool)
        ("round-trips: " ^ Queue_model.to_string q)
        true
        (Queue_model.of_string (Queue_model.to_string q) = Some q))
    [ Queue_model.Drop_tail; Queue_model.Red; Queue_model.Ecn ];
  let bad s = Queue_model.of_string s = None in
  Alcotest.(check bool) "zero capacity rejected" true (bad "red 0 0 0");
  Alcotest.(check bool) "min above max rejected" true (bad "red 8 5 3");
  Alcotest.(check bool) "max above capacity rejected" true (bad "red 8 2 9");
  Alcotest.(check bool) "unknown discipline rejected" true (bad "fifo 8 2 6");
  Alcotest.(check bool) "garbage rejected" true (bad "red eight 2 6")

(* -- engine-level guarantees: a funnel protocol that floods node 0 -- *)

(* Every node but 0 ships [fan] messages straight at node 0 (KT1
   addressing) in each of the first [rounds] rounds, so node 0's ingress
   queue is the single hotspot. Receptions and observed ECN bits are
   tallied per inner round in arrays owned by this instance. *)
let run_funnel ?(n = 24) ?(fan = 2) ?(rounds = 4) ?(seed = 3) ?queue ?(trace = false) () =
  let received = Array.make (rounds + 2) 0 in
  let marks = ref 0 in
  let module P = struct
    type msg = Ping
    type state = { me : int }

    let name = "funnel"
    let knowledge = `KT1
    let msg_bits ~n:_ _ = 8
    let max_rounds ~n:_ ~alpha:_ = rounds + 2
    let phases = Protocol.single_phase
    let init (ctx : Protocol.ctx) = { me = Option.value ~default:(-1) ctx.self }

    let step (_ : Protocol.ctx) st ~round ~inbox =
      if st.me = 0 then
        List.iter
          (fun { Protocol.from_port = _; payload = Ping; ecn } ->
            received.(round - 1) <- received.(round - 1) + 1;
            if ecn then incr marks)
          inbox;
      let actions =
        if st.me <> 0 && round < rounds then
          List.init fan (fun _ -> { Protocol.dest = Protocol.Node 0; payload = Ping })
        else []
      in
      (st, actions)

    let decide _ = Decision.Undecided
    let observe _ = Observation.bystander
  end in
  let module E = Engine.Make (P) in
  let r =
    E.run
      {
        (Engine.default_config ~n ~alpha:1.0 ~seed) with
        queue;
        congest_limit = None;
        record_trace = trace;
      }
  in
  (r, received, !marks)

let sent_total ~n ~fan ~rounds = (n - 1) * fan * rounds

let test_unbounded_baseline () =
  let n = 24 and fan = 2 and rounds = 4 in
  let r, received, marks = run_funnel ~n ~fan ~rounds () in
  Alcotest.(check (list string)) "no violations" []
    (List.map Ftc_sim.Violation.to_string r.Engine.violations);
  Alcotest.(check int) "all messages delivered" (sent_total ~n ~fan ~rounds)
    (Array.fold_left ( + ) 0 received);
  Alcotest.(check int) "no queue drops" 0 r.Engine.metrics.msgs_dropped_queue;
  Alcotest.(check int) "no marks" 0 r.Engine.metrics.msgs_ecn_marked;
  Alcotest.(check int) "no marks observed" 0 marks

let test_drop_tail_caps_per_round () =
  let n = 24 and fan = 2 and rounds = 4 and cap = 5 in
  let queue = Queue_model.make ~capacity:cap ~discipline:Queue_model.Drop_tail () in
  let r, received, marks = run_funnel ~n ~fan ~rounds ~queue () in
  Array.iteri
    (fun i got ->
      Alcotest.(check bool)
        (Printf.sprintf "round %d admits at most the capacity" i)
        true (got <= cap))
    received;
  let delivered = Array.fold_left ( + ) 0 received in
  Alcotest.(check int) "drops account for the rest" (sent_total ~n ~fan ~rounds - delivered)
    r.Engine.metrics.msgs_dropped_queue;
  Alcotest.(check bool) "the funnel actually overflows" true
    (r.Engine.metrics.msgs_dropped_queue > 0);
  Alcotest.(check int) "drop-tail never marks" 0 r.Engine.metrics.msgs_ecn_marked;
  Alcotest.(check int) "no marks observed" 0 marks

let test_ecn_never_loses () =
  let n = 24 and fan = 2 and rounds = 4 in
  let queue = Queue_model.make ~capacity:5 ~discipline:Queue_model.Ecn () in
  let r, received, marks = run_funnel ~n ~fan ~rounds ~queue () in
  Alcotest.(check int) "every message delivered" (sent_total ~n ~fan ~rounds)
    (Array.fold_left ( + ) 0 received);
  Alcotest.(check int) "zero queue drops" 0 r.Engine.metrics.msgs_dropped_queue;
  Alcotest.(check bool) "the hotspot is marked" true (r.Engine.metrics.msgs_ecn_marked > 0);
  Alcotest.(check int) "receivers observe exactly the marked messages"
    r.Engine.metrics.msgs_ecn_marked marks

let test_trace_reconciles () =
  let n = 24 and fan = 2 and rounds = 4 in
  let queue = Queue_model.make ~min_th:1 ~max_th:4 ~capacity:6 ~discipline:Queue_model.Red () in
  let r, _, _ = run_funnel ~n ~fan ~rounds ~queue ~trace:true () in
  match r.Engine.trace with
  | None -> Alcotest.fail "trace missing"
  | Some t ->
      let sends = ref 0 and undelivered = ref 0 and qdrops = ref 0 and emarks = ref 0 in
      List.iter
        (function
          | Trace.Send { delivered; _ } ->
              incr sends;
              if not delivered then incr undelivered
          | Trace.Queue_dropped _ -> incr qdrops
          | Trace.Ecn_marked _ -> incr emarks
          | Trace.Crash _ | Trace.Link_lost _ | Trace.Unroutable _ -> ())
        (Trace.events t);
      Alcotest.(check int) "sends = metrics" r.Engine.metrics.msgs_sent !sends;
      Alcotest.(check bool) "red early-drops under load" true (!qdrops > 0);
      Alcotest.(check int) "queue-drop events = metric" r.Engine.metrics.msgs_dropped_queue
        !qdrops;
      Alcotest.(check int) "ecn-mark events = metric" r.Engine.metrics.msgs_ecn_marked !emarks;
      Alcotest.(check int) "undelivered = crash drops + link losses + queue drops"
        (r.Engine.metrics.msgs_dropped + r.Engine.metrics.msgs_lost_link
        + r.Engine.metrics.msgs_dropped_queue)
        !undelivered;
      Alcotest.(check int) "per-round queue drops sum to the total"
        r.Engine.metrics.msgs_dropped_queue
        (Array.fold_left ( + ) 0 r.Engine.metrics.per_round_queue_drops)

let test_queue_determinism () =
  let queue = Queue_model.make ~min_th:1 ~max_th:4 ~capacity:6 ~discipline:Queue_model.Red () in
  let a, _, _ = run_funnel ~seed:11 ~queue () in
  let b, _, _ = run_funnel ~seed:11 ~queue () in
  Alcotest.(check int) "same drops" a.Engine.metrics.msgs_dropped_queue
    b.Engine.metrics.msgs_dropped_queue;
  Alcotest.(check int) "same msgs" a.Engine.metrics.msgs_sent b.Engine.metrics.msgs_sent

let () =
  Alcotest.run "queue"
    [
      ( "red-curve",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_red_zero_below_min;
            qcheck_red_one_at_max;
            qcheck_red_monotone;
            qcheck_red_bounded;
          ] );
      ( "decisions",
        [
          Alcotest.test_case "boundaries" `Quick test_decide_boundaries;
          Alcotest.test_case "parse + validate" `Quick test_config_parse_and_validate;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unbounded baseline" `Quick test_unbounded_baseline;
          Alcotest.test_case "drop-tail caps per round" `Quick test_drop_tail_caps_per_round;
          Alcotest.test_case "ecn never loses" `Quick test_ecn_never_loses;
          Alcotest.test_case "trace reconciles" `Quick test_trace_reconciles;
          Alcotest.test_case "deterministic" `Quick test_queue_determinism;
        ] );
    ]
