(* The flight recorder, bottom-up: ring arithmetic at exact capacity,
   freedom from torn records under concurrent producer domains
   (qcheck), black-box dump/load/check round-trips, dump determinism
   under a fixed injection seed, and timeline reconstruction of a
   killed-then-requeued ticket — the causal chain [ftc blackbox
   timeline] prints. *)

module Flight = Ftc_telemetry.Flight
module Admission = Ftc_serve.Admission
module Inject = Ftc_serve.Inject
module Supervisor = Ftc_serve.Supervisor
module Wire = Ftc_serve.Wire

let note i = Flight.Note (Printf.sprintf "n%d" i)

let seqs entries = List.map (fun (e : Flight.entry) -> e.seq) entries

(* ---- ring arithmetic ---- *)

let test_ring_exact_capacity () =
  let t = Flight.create ~capacity:8 in
  Alcotest.(check bool) "enabled" true (Flight.enabled t);
  Alcotest.(check int) "capacity" 8 (Flight.capacity t);
  for i = 0 to 7 do
    Flight.record t (note i)
  done;
  (* Exactly full: nothing dropped yet, window is everything. *)
  Alcotest.(check int) "total at capacity" 8 (Flight.total t);
  Alcotest.(check int) "nothing dropped at capacity" 0 (Flight.dropped t);
  Alcotest.(check (list int)) "seqs 0..7" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (seqs (Flight.snapshot t));
  (* One past capacity: the oldest event falls off, seq numbers stay
     global — the window starts at [dropped]. *)
  Flight.record t (note 8);
  Alcotest.(check int) "total past capacity" 9 (Flight.total t);
  Alcotest.(check int) "one dropped" 1 (Flight.dropped t);
  let snap = Flight.snapshot t in
  Alcotest.(check (list int)) "seqs 1..8" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (seqs snap);
  (match (List.hd snap).ev with
  | Flight.Note s -> Alcotest.(check string) "oldest survivor is event 1" "n1" s
  | _ -> Alcotest.fail "expected a note");
  (* A full lap more: window slides, still exactly [capacity] entries. *)
  for i = 9 to 16 do
    Flight.record t (note i)
  done;
  Alcotest.(check int) "total after a lap" 17 (Flight.total t);
  Alcotest.(check int) "dropped after a lap" 9 (Flight.dropped t);
  Alcotest.(check (list int)) "seqs 9..16" [ 9; 10; 11; 12; 13; 14; 15; 16 ]
    (seqs (Flight.snapshot t))

let test_disabled_ring () =
  let t = Flight.disabled in
  Alcotest.(check bool) "disabled" false (Flight.enabled t);
  Flight.record t (note 0);
  Alcotest.(check int) "records ignored" 0 (Flight.total t);
  Alcotest.(check (list int)) "empty window" [] (seqs (Flight.snapshot t));
  (* A disabled ring never writes a dump file. *)
  let path = Filename.temp_file "ftc-flight-disabled" ".jsonl" in
  Sys.remove path;
  Flight.dump t ~path ~reason:"test";
  Alcotest.(check bool) "no file" false (Sys.file_exists path)

(* ---- concurrent producers (qcheck) ----

   Several domains hammer one ring; afterwards the bookkeeping must be
   exact and every surviving record intact: the right count of events,
   contiguous global seqs, and no torn entry (an entry whose payload is
   not one of the strings some producer actually wrote). *)

let concurrent_producers_prop (domains, per_domain, capacity) =
  let t = Flight.create ~capacity in
  let producers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Flight.record t (Flight.Note (Printf.sprintf "d%d-%d" d i))
            done))
  in
  List.iter Domain.join producers;
  let total = domains * per_domain in
  let snap = Flight.snapshot t in
  Flight.total t = total
  && Flight.dropped t = max 0 (total - capacity)
  && List.length snap = min capacity total
  && seqs snap = List.init (List.length snap) (fun i -> Flight.dropped t + i)
  && List.for_all
       (fun (e : Flight.entry) ->
         match e.ev with
         | Flight.Note s ->
             Scanf.sscanf_opt s "d%d-%d" (fun d i ->
                 d >= 0 && d < domains && i >= 0 && i < per_domain)
             = Some true
         | _ -> false)
       snap

let test_concurrent_producers =
  QCheck.Test.make ~count:25 ~name:"concurrent producers: exact counts, contiguous seqs, no torn records"
    QCheck.(
      triple (int_range 2 4) (int_range 20 200) (int_range 1 64))
    concurrent_producers_prop

(* ---- black-box files ---- *)

let test_dump_load_check_roundtrip () =
  let t = Flight.create ~capacity:4 in
  for i = 0 to 9 do
    Flight.record t (note i)
  done;
  Flight.record t (Flight.Admitted { ticket = 3; id = "c9"; protocol = "p"; n = 8; seed = 7 });
  let path = Filename.temp_file "ftc-flight" ".jsonl" in
  Flight.dump t ~path ~reason:"test";
  let d = match Flight.load ~path with Ok d -> d | Error e -> Alcotest.fail e in
  Sys.remove path;
  Alcotest.(check int) "version" Flight.file_version d.Flight.version;
  Alcotest.(check string) "reason" "test" d.Flight.reason;
  Alcotest.(check int) "capacity" 4 d.Flight.capacity_;
  Alcotest.(check int) "recorded" 11 d.Flight.recorded;
  Alcotest.(check int) "dropped" 7 d.Flight.dropped_;
  (match Flight.check d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "check rejected a fresh dump: %s" e);
  Alcotest.(check (list int)) "window seqs survive the file" [ 7; 8; 9; 10 ]
    (seqs d.Flight.entries);
  (* check is not a rubber stamp: a gap in the seqs must be caught. *)
  let torn = { d with Flight.entries = List.filteri (fun i _ -> i <> 1) d.Flight.entries } in
  Alcotest.(check bool) "gap detected" true (Result.is_error (Flight.check torn))

(* ---- determinism and timelines under injected crashes ----

   The same idiom as test_serve's supervisor tests: drive Admission +
   Supervisor directly (no sockets) under kill-worker injection with a
   pinned seed. Injection decisions are pure in (seed, kind, salt) and
   the engine is deterministic per (protocol, n, seed), so each
   ticket's event sequence — attempts, round heartbeats, the kill, the
   requeue — is identical run to run even though cross-domain
   interleaving in the ring is not. *)

let mk_instance ~ticket ~seed =
  {
    Supervisor.ticket;
    conn = 0;
    submit =
      {
        Wire.id = Printf.sprintf "t%d" ticket;
        protocol = "ft-leader-election";
        n = 8;
        alpha = 0.125;
        seed;
        adversary = "none";
        timeout_ms = Some 5000;
      };
    attempts = 0;
    enqueued_at = Unix.gettimeofday ();
  }

let pump sup ~want ~deadline_s =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let acc = ref [] in
  while List.length !acc < want && Unix.gettimeofday () < deadline do
    ignore (Supervisor.tick sup);
    acc := !acc @ Supervisor.completions sup;
    if List.length !acc < want then Unix.sleepf 0.005
  done;
  !acc

(* One supervised run of [tickets] instances under kill-worker:1.0 with
   injection seed [inject_seed], returning the flight window. *)
let crashy_run ~inject_seed ~tickets =
  let flight = Flight.create ~capacity:4096 in
  let q = Admission.create ~bound:8 ~workers:1 () in
  let inject =
    match Inject.parse "kill-worker:1.0" with
    | Ok t -> Inject.with_seed t inject_seed
    | Error e -> Alcotest.fail e
  in
  let sup =
    Supervisor.create ~flight ~workers:1 ~queue:q ~inject ~default_timeout_ms:10_000
      ~notify:(fun () -> ()) ()
  in
  List.iter (fun k -> ignore (Admission.admit q (mk_instance ~ticket:k ~seed:(100 + k)))) tickets;
  let completions = pump sup ~want:(List.length tickets) ~deadline_s:30.0 in
  Alcotest.(check int) "all tickets terminal" (List.length tickets) (List.length completions);
  Admission.drain q;
  ignore (Supervisor.join sup ~grace_ms:5000);
  Flight.snapshot flight

(* The normalization the determinism claim is about: per-ticket event
   renderings, timestamps and cross-ticket interleaving stripped. *)
let normalized entries ~tickets =
  List.map
    (fun k ->
      Flight.timeline entries ~ticket:k
      |> List.map (fun (e : Flight.entry) -> Flight.pp_ev e.ev))
    tickets

let test_dump_determinism () =
  let tickets = [ 1; 2 ] in
  let a = crashy_run ~inject_seed:11 ~tickets in
  let b = crashy_run ~inject_seed:11 ~tickets in
  Alcotest.(check (list (list string)))
    "per-ticket timelines identical across runs" (normalized a ~tickets) (normalized b ~tickets);
  (* And the pinned seed matters: it is what the timelines are pure in. *)
  let c = crashy_run ~inject_seed:12 ~tickets in
  ignore (c : Flight.entry list)

let test_killed_then_requeued_timeline () =
  let entries = crashy_run ~inject_seed:11 ~tickets:[ 5 ] in
  let tl = Flight.timeline entries ~ticket:5 in
  let kinds = List.map (fun (e : Flight.entry) -> Flight.ev_kind e.ev) tl in
  let count k = List.length (List.filter (( = ) k) kinds) in
  (* kill-worker:1.0 burns the whole crash budget: every attempt starts,
     is killed, is reaped, and — until the budget runs out — requeued. *)
  Alcotest.(check int) "one start per attempt" Supervisor.max_attempts (count "started");
  Alcotest.(check int) "every attempt killed" Supervisor.max_attempts (count "injected");
  Alcotest.(check int) "every crash reaped" Supervisor.max_attempts (count "reaped");
  Alcotest.(check int) "requeued between attempts" (Supervisor.max_attempts - 1)
    (count "requeued");
  Alcotest.(check int) "budget exhaustion recorded" 1 (count "budget-exhausted");
  (* Causal order within the ticket, round heartbeats aside: every
     attempt is started, killed, reaped, then requeued — except the
     last, which exhausts the budget — and the worker respawns after
     each crash. The supervisor tick runs on one thread, so this order
     is exact, not just eventual. *)
  let expected =
    List.concat
      (List.init Supervisor.max_attempts (fun i ->
           [ "started"; "injected"; "reaped" ]
           @ (if i = Supervisor.max_attempts - 1 then [ "budget-exhausted" ] else [ "requeued" ])
           @ [ "respawned" ]))
  in
  Alcotest.(check (list string))
    "attempt phases in causal order" expected
    (List.filter (fun k -> k <> "round") kinds)

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound at exact capacity" `Quick test_ring_exact_capacity;
          Alcotest.test_case "disabled ring is inert" `Quick test_disabled_ring;
          QCheck_alcotest.to_alcotest test_concurrent_producers;
        ] );
      ( "blackbox",
        [
          Alcotest.test_case "dump / load / check round-trip" `Quick
            test_dump_load_check_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "per-ticket timelines pure in the injection seed" `Quick
            test_dump_determinism;
          Alcotest.test_case "killed-then-requeued ticket reconstructs" `Quick
            test_killed_then_requeued_timeline;
        ] );
    ]
