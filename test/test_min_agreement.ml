(* Tests for the multi-valued minimum-agreement extension. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Props = Ftc_core.Properties
module Rng = Ftc_rng.Rng

let params = Ftc_core.Params.default

let run ?(adversary = Ftc_fault.Strategy.none) ~n ~alpha ~seed ~inputs () =
  let (module P) = Ftc_core.Min_agreement.make params in
  let module E = Engine.Make (P) in
  let r =
    E.run
      { (Engine.default_config ~n ~alpha ~seed) with
        inputs = Some inputs;
        adversary = adversary ()
      }
  in
  Alcotest.(check (list string)) "no model violations" [] (List.map Ftc_sim.Violation.to_string r.violations);
  Alcotest.(check bool) "run did not time out" false r.timed_out;
  r

let random_inputs ~n ~seed ~bound =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng bound)

let candidate_min (r : Engine.result) inputs =
  let m = ref max_int in
  Array.iteri
    (fun i (o : Observation.t) ->
      if o.Observation.role = Observation.Candidate then m := min !m inputs.(i))
    r.observations;
  !m

let test_fault_free_decides_candidate_min () =
  for seed = 1 to 10 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 3) ~bound:1000 in
    let r = run ~n ~alpha:1.0 ~seed ~inputs () in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) "consensus + validity" true rep.ok;
    Alcotest.(check (option int)) "value = min over candidates"
      (Some (candidate_min r inputs))
      rep.value
  done

let test_binary_inputs_match_binary_protocol_semantics () =
  (* On {0,1} inputs the extension must behave like Sec. V-A: 0 wins iff
     a candidate holds it. *)
  for seed = 1 to 10 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 7) ~bound:2 in
    let r = run ~n ~alpha:1.0 ~seed ~inputs () in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) "ok" true rep.ok;
    Alcotest.(check (option int)) "matches candidate min" (Some (candidate_min r inputs)) rep.value
  done

let test_consensus_under_crashes () =
  for seed = 1 to 12 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 11) ~bound:50 in
    let r =
      run ~n ~alpha:0.5 ~seed ~inputs
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ())
        ()
    in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) (Printf.sprintf "seed %d ok" seed) true rep.ok
  done

let test_unanimous_inputs () =
  let n = 64 in
  let inputs = Array.make n 17 in
  let r = run ~n ~alpha:0.8 ~seed:5 ~inputs () in
  let rep = Props.check_implicit_agreement ~inputs r in
  Alcotest.(check (option int)) "unanimous value" (Some 17) rep.value;
  (* No improvements ever happen, so messages stay at registration +
     one referee relay wave. *)
  let registration =
    Array.fold_left
      (fun acc (o : Observation.t) ->
        if o.Observation.role = Observation.Candidate then
          acc + Ftc_core.Params.referee_count params ~n ~alpha:0.8
        else acc)
      0 r.observations
  in
  Alcotest.(check bool) "no improvement storms" true
    (r.metrics.msgs_sent <= 2 * registration)

let test_negative_inputs_clamped () =
  let n = 64 in
  let inputs = Array.make n (-5) in
  let r = run ~n ~alpha:1.0 ~seed:7 ~inputs () in
  let rep = Props.check_implicit_agreement ~inputs:(Array.make n 0) r in
  Alcotest.(check (option int)) "clamped to 0" (Some 0) rep.value

let test_cost_bounded_vs_binary () =
  (* Many distinct values cost more than binary, but must stay within the
     improvement-chain factor of the committee size. *)
  let n = 512 and alpha = 0.7 in
  let inputs = random_inputs ~n ~seed:13 ~bound:100000 in
  let r = run ~n ~alpha ~seed:13 ~inputs () in
  let committee = 12. *. Float.log (float_of_int n) /. alpha in
  let registration =
    committee *. float_of_int (Ftc_core.Params.referee_count params ~n ~alpha)
  in
  Alcotest.(check bool)
    (Printf.sprintf "within |C| x registration (%d)" r.metrics.msgs_sent)
    true
    (float_of_int r.metrics.msgs_sent <= committee *. registration)

let qcheck_min_agreement =
  QCheck.Test.make ~name:"min-agreement: consensus + validity" ~count:20
    QCheck.(triple (int_range 0 10_000) (int_range 32 128) (float_range 0.5 1.0))
    (fun (seed, n, alpha) ->
      let inputs = random_inputs ~n ~seed:(seed + 3) ~bound:64 in
      let r =
        run ~n ~alpha ~seed ~inputs
          ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ())
          ()
      in
      (Props.check_implicit_agreement ~inputs r).ok)

let () =
  Alcotest.run "min-agreement"
    [
      ( "values",
        [
          Alcotest.test_case "candidate min" `Quick test_fault_free_decides_candidate_min;
          Alcotest.test_case "binary special case" `Quick test_binary_inputs_match_binary_protocol_semantics;
          Alcotest.test_case "unanimous" `Quick test_unanimous_inputs;
          Alcotest.test_case "clamping" `Quick test_negative_inputs_clamped;
        ] );
      ( "faulty",
        [ Alcotest.test_case "consensus under crashes" `Quick test_consensus_under_crashes ] );
      ("complexity", [ Alcotest.test_case "cost bounded" `Quick test_cost_bounded_vs_binary ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ qcheck_min_agreement ]);
    ]
