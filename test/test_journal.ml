(* The crash-safe sweep layer: the JSON codec, the write-ahead journal
   (torn-tail tolerance, atomic artifacts), and the supervisor built on
   them (resume, keep-going quarantine, fail-fast, exit codes).

   The crash model under test is SIGKILL-at-any-byte: every test that
   claims resume safety truncates a real journal at an arbitrary byte
   boundary — including mid-record — and requires the resumed sweep to be
   bit-identical to an uninterrupted one, at jobs 1 and 4. *)

module Json = Ftc_journal.Json
module Journal = Ftc_journal.Journal
module Supervise = Ftc_expt.Supervise

let temp_path () =
  let path = Filename.temp_file "ftc-journal-test" ".jsonl" in
  Sys.remove path;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* -- the JSON codec -- *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.25;
      Json.String "plain";
      Json.String "esc \"quotes\" \\ back\nnew\tline\x00nul";
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "one line: %s" s)
        false
        (String.contains s '\n');
      match Json.of_string s with
      | Error e -> Alcotest.failf "did not parse %s: %s" s e
      | Ok v' ->
          Alcotest.(check bool) (Printf.sprintf "round-trip: %s" s) true (v = v'))
    cases

let test_json_int_exact () =
  (* Metric counters must round-trip as the integers they are — a float
     detour would make resumed aggregates differ in the last bit. *)
  List.iter
    (fun i ->
      match Json.of_string (Json.to_string (Json.Int i)) with
      | Ok (Json.Int j) -> Alcotest.(check int) "int exact" i j
      | _ -> Alcotest.failf "int %d did not round-trip as Int" i)
    [ 0; 1; -1; 1 lsl 53; (1 lsl 53) + 1; max_int; min_int ]

let test_json_escaping_exhaustive () =
  (* Every control character must escape to \uXXXX (or a short form) and
     decode back to the same byte: journal records and serve frames both
     carry arbitrary report text on single lines. *)
  for c = 0 to 0x1f do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    let encoded = Json.to_string (Json.String s) in
    Alcotest.(check bool)
      (Printf.sprintf "control 0x%02x encodes on one line" c)
      false
      (String.contains encoded '\n' || String.contains encoded '\r');
    Alcotest.(check bool)
      (Printf.sprintf "control 0x%02x escaped" c)
      true
      (not (String.exists (fun ch -> Char.code ch < 0x20) encoded));
    match Json.of_string encoded with
    | Ok (Json.String s') ->
        Alcotest.(check string) (Printf.sprintf "control 0x%02x round-trips" c) s s'
    | _ -> Alcotest.failf "control 0x%02x did not round-trip" c
  done;
  (* Multi-byte UTF-8 passes through byte-exactly: 2-, 3- and 4-byte
     sequences, plus \u escapes decoding to the same bytes. *)
  List.iter
    (fun s ->
      match Json.of_string (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> Alcotest.(check string) (Printf.sprintf "utf8 %S" s) s s'
      | _ -> Alcotest.failf "utf8 %S did not round-trip" s)
    [ "caf\xc3\xa9"; "\xe2\x82\xac100"; "\xf0\x9f\x90\xab camel"; "mixed \xc3\xa9\te\x01nd" ];
  (match Json.of_string "\"\\u00e9\\u20ac\"" with
  | Ok (Json.String s) ->
      Alcotest.(check string) "\\u decodes to UTF-8" "\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "\\u escapes did not parse")

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (Result.is_error (Json.of_string s)))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{\"a\":1} trailing" ]

(* -- the journal file -- *)

let test_journal_roundtrip () =
  let path = temp_path () in
  let h = Journal.create ~path ~spec_hash:(Journal.spec_hash "spec-a") in
  Journal.append h (Json.Obj [ ("seed", Json.Int 1) ]);
  Journal.append h (Json.Obj [ ("seed", Json.Int 2) ]);
  Journal.close h;
  (match Journal.load ~path with
  | Error e -> Alcotest.fail e
  | Ok { header; entries; torn_tail } ->
      Alcotest.(check string) "spec hash" (Journal.spec_hash "spec-a") header.Journal.spec_hash;
      Alcotest.(check bool) "no torn tail" false torn_tail;
      Alcotest.(check int) "two records" 2 (List.length entries));
  Sys.remove path

let test_journal_torn_tail_tolerated () =
  let path = temp_path () in
  let h = Journal.create ~path ~spec_hash:"aa" in
  Journal.append h (Json.Obj [ ("seed", Json.Int 1) ]);
  Journal.append h (Json.Obj [ ("seed", Json.Int 2) ]);
  Journal.close h;
  let contents = read_file path in
  (* Kill mid-append: drop the last 10 bytes of the final record. *)
  write_file path (String.sub contents 0 (String.length contents - 10));
  (match Journal.load ~path with
  | Error e -> Alcotest.fail e
  | Ok { entries; torn_tail; _ } ->
      Alcotest.(check bool) "torn tail flagged" true torn_tail;
      Alcotest.(check int) "torn record dropped, first kept" 1 (List.length entries));
  Sys.remove path

let test_journal_interior_corruption_fails () =
  let path = temp_path () in
  write_file path
    "{\"magic\":\"ftc-trial-journal\",\"version\":1,\"spec\":\"aa\"}\n{oops\n{\"seed\":1}\n";
  Alcotest.(check bool) "interior corruption is an error" true
    (Result.is_error (Journal.load ~path));
  Sys.remove path

let test_journal_wrong_magic_fails () =
  let path = temp_path () in
  write_file path "{\"magic\":\"something-else\",\"version\":1,\"spec\":\"aa\"}\n";
  Alcotest.(check bool) "wrong magic rejected" true (Result.is_error (Journal.load ~path));
  write_file path "not json at all\n";
  Alcotest.(check bool) "non-JSON header rejected" true (Result.is_error (Journal.load ~path));
  Sys.remove path

let test_journal_reopen_repairs_torn_tail () =
  (* Appending after a torn tail must not glue the new record onto the
     partial line — that would corrupt the journal for the *next* resume. *)
  let path = temp_path () in
  let h = Journal.create ~path ~spec_hash:"aa" in
  Journal.append h (Json.Obj [ ("seed", Json.Int 1) ]);
  Journal.append h (Json.Obj [ ("seed", Json.Int 2) ]);
  Journal.close h;
  let contents = read_file path in
  write_file path (String.sub contents 0 (String.length contents - 4));
  let h = Journal.reopen ~path in
  Journal.append h (Json.Obj [ ("seed", Json.Int 3) ]);
  Journal.close h;
  (match Journal.load ~path with
  | Error e -> Alcotest.fail e
  | Ok { entries; torn_tail; _ } ->
      Alcotest.(check bool) "intact after repair+append" false torn_tail;
      Alcotest.(check (list int)) "torn record cut, rest glue-free" [ 1; 3 ]
        (List.filter_map (fun j -> Option.bind (Json.member "seed" j) Json.to_int) entries));
  (* The other torn shape: killed after the record's bytes but before its
     newline. The record must be kept and terminated, not glued either. *)
  let contents = read_file path in
  write_file path (String.sub contents 0 (String.length contents - 1));
  let h = Journal.reopen ~path in
  Journal.append h (Json.Obj [ ("seed", Json.Int 4) ]);
  Journal.close h;
  (match Journal.load ~path with
  | Error e -> Alcotest.fail e
  | Ok { entries; _ } ->
      Alcotest.(check (list int)) "newline-less record kept" [ 1; 3; 4 ]
        (List.filter_map (fun j -> Option.bind (Json.member "seed" j) Json.to_int) entries));
  Sys.remove path

let test_write_atomic () =
  let path = temp_path () in
  Journal.write_atomic ~path "first\n";
  Alcotest.(check string) "written" "first\n" (read_file path);
  Journal.write_atomic ~path "second\n";
  Alcotest.(check string) "replaced whole" "second\n" (read_file path);
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           Astring.String.is_prefix ~affix:base f && Astring.String.is_suffix ~affix:".tmp" f)
  in
  Alcotest.(check (list string)) "no temp files left behind" [] leftovers;
  Sys.remove path

(* -- the supervisor -- *)

let encode seed v = Json.Obj [ ("seed", Json.Int seed); ("v", Json.Int v) ]

let decode j =
  match
    (Option.bind (Json.member "seed" j) Json.to_int, Option.bind (Json.member "v" j) Json.to_int)
  with
  | Some s, Some v -> Some (s, v)
  | _ -> None

let seeds = [ 1; 2; 3; 4; 5; 6 ]

(* Trial = seed * 10; seeds in [fail] violate; an optional raiser. *)
let trial ?(fail = []) ?(raise_on = []) seed =
  if List.mem seed raise_on then failwith (Printf.sprintf "boom %d" seed)
  else if List.mem seed fail then Error (Supervise.Violation, Printf.sprintf "bad seed %d" seed)
  else Ok (seed * 10)

let run ?(config = Supervise.default_config) ?replay_doc ?fail ?raise_on () =
  Supervise.run config ~spec_hash:"h" ~encode ~decode ?replay_doc
    ~run_trial:(trial ?fail ?raise_on) ~seeds ()

let test_all_clean () =
  let sweep = run () in
  Alcotest.(check int) "all completed" 6 sweep.Supervise.completed;
  Alcotest.(check int) "exit 0" 0 (Supervise.exit_code ~ok:true sweep);
  Alcotest.(check int) "ok=false is exit 1" 1 (Supervise.exit_code ~ok:false sweep);
  List.iter2
    (fun seed (s, t) ->
      Alcotest.(check int) "seed order" seed s;
      match t with
      | Supervise.Completed v -> Alcotest.(check int) "payload" (seed * 10) v
      | _ -> Alcotest.fail "expected Completed")
    seeds sweep.Supervise.trials

let test_fail_fast_skips_rest () =
  let sweep = run ~fail:[ 3 ] () in
  Alcotest.(check int) "completed before abort" 2 sweep.Supervise.completed;
  Alcotest.(check int) "one failure" 1 (List.length sweep.Supervise.failed);
  Alcotest.(check int) "rest skipped" 3 sweep.Supervise.skipped;
  Alcotest.(check int) "partial exit" 3 (Supervise.exit_code ~ok:true sweep)

let test_keep_going_mixed () =
  let q = temp_path () in
  let config = { Supervise.default_config with keep_going = true; quarantine = Some q } in
  let sweep =
    run ~config ~fail:[ 2; 5 ] ~replay_doc:(fun s -> Some (Printf.sprintf "doc-%d" s)) ()
  in
  Alcotest.(check int) "completed" 4 sweep.Supervise.completed;
  Alcotest.(check int) "no skips under keep-going" 0 sweep.Supervise.skipped;
  Alcotest.(check (list int)) "failures in seed order" [ 2; 5 ]
    (List.map (fun (f : Supervise.failure) -> f.seed) sweep.Supervise.failed);
  Alcotest.(check int) "partial exit" 3 (Supervise.exit_code ~ok:true sweep);
  Alcotest.(check (option string)) "quarantine written" (Some q) sweep.Supervise.quarantined;
  let lines =
    String.split_on_char '\n' (read_file q) |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one record per failure" 2 (List.length lines);
  List.iter2
    (fun seed line ->
      match Json.of_string line with
      | Error e -> Alcotest.fail e
      | Ok j ->
          Alcotest.(check (option int)) "seed" (Some seed)
            (Option.bind (Json.member "seed" j) Json.to_int);
          Alcotest.(check (option string)) "class" (Some "violation")
            (Option.bind (Json.member "class" j) Json.to_str);
          Alcotest.(check (option string)) "replay doc embedded"
            (Some (Printf.sprintf "doc-%d" seed))
            (Option.bind (Json.member "replay" j) Json.to_str))
    [ 2; 5 ] lines;
  Sys.remove q

let test_keep_going_all_fail_exit_1 () =
  let config = { Supervise.default_config with keep_going = true } in
  let sweep = run ~config ~fail:seeds () in
  Alcotest.(check int) "nothing completed" 0 sweep.Supervise.completed;
  Alcotest.(check (option string)) "no quarantine path, none written" None
    sweep.Supervise.quarantined;
  Alcotest.(check int) "all-failed exit" 1 (Supervise.exit_code ~ok:true sweep)

let test_exception_captured_as_failure () =
  let config = { Supervise.default_config with keep_going = true } in
  let sweep = run ~config ~raise_on:[ 4 ] () in
  match sweep.Supervise.failed with
  | [ f ] ->
      Alcotest.(check int) "seed" 4 f.Supervise.seed;
      Alcotest.(check string) "class" "exception" (Supervise.class_to_string f.Supervise.class_);
      Alcotest.(check bool) "detail names the exception" true
        (Astring.String.is_infix ~affix:"boom 4" f.Supervise.detail)
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_class_string_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "round-trip" true
        (Supervise.class_of_string (Supervise.class_to_string c) = Some c))
    [ Supervise.Violation; Supervise.Timed_out; Supervise.Watchdog_expired; Supervise.Exception ];
  Alcotest.(check bool) "unknown rejected" true (Supervise.class_of_string "nope" = None)

(* -- resume: bit-identical after SIGKILL at any byte, jobs 1 and 4 -- *)

let sweep_payloads sweep =
  List.map
    (fun (s, t) ->
      match t with
      | Supervise.Completed v -> (s, v)
      | _ -> Alcotest.failf "seed %d not completed" s)
    sweep.Supervise.trials

let test_resume_bit_identical () =
  let reference = sweep_payloads (run ()) in
  let path = temp_path () in
  let config = { Supervise.default_config with journal = Some path } in
  let full = run ~config () in
  Alcotest.(check bool) "journaled run matches" true (sweep_payloads full = reference);
  let full_bytes = read_file path in
  let header_len = String.index full_bytes '\n' + 1 in
  (* Truncate the journal at every byte boundary past the header —
     clean cuts, torn half-lines, everything SIGKILL can leave. *)
  let cuts = List.init (String.length full_bytes - header_len) (fun i -> header_len + i) in
  List.iter
    (fun jobs ->
      List.iter
        (fun cut ->
          write_file path (String.sub full_bytes 0 cut);
          let config = { config with Supervise.jobs; resume = true } in
          let resumed = run ~config () in
          Alcotest.(check bool)
            (Printf.sprintf "cut at %d bytes, jobs %d: bit-identical" cut jobs)
            true
            (sweep_payloads resumed = reference);
          Alcotest.(check int)
            (Printf.sprintf "cut at %d bytes: all completed" cut)
            6 resumed.Supervise.completed)
        cuts)
    [ 1; 4 ];
  Sys.remove path

let test_resume_extends_trial_count () =
  (* The spec hash excludes the seed list, so a resumed sweep may ask for
     more seeds: journaled ones are restored, the new ones run. *)
  let path = temp_path () in
  let config = { Supervise.default_config with journal = Some path } in
  let _ =
    Supervise.run config ~spec_hash:"h" ~encode ~decode ~run_trial:(trial ?fail:None)
      ~seeds:[ 1; 2; 3 ] ()
  in
  let config = { config with Supervise.resume = true } in
  let sweep = run ~config () in
  Alcotest.(check int) "all six completed" 6 sweep.Supervise.completed;
  Alcotest.(check int) "three restored" 3 sweep.Supervise.resumed;
  Sys.remove path

let test_resume_spec_mismatch_rejected () =
  let path = temp_path () in
  let h = Journal.create ~path ~spec_hash:"other" in
  Journal.close h;
  let config = { Supervise.default_config with journal = Some path; resume = true } in
  Alcotest.(check bool) "Resume_error raised" true
    (match run ~config () with
    | _ -> false
    | exception Supervise.Resume_error _ -> true);
  Sys.remove path

let test_resume_corrupt_record_rejected () =
  let path = temp_path () in
  let h = Journal.create ~path ~spec_hash:"h" in
  (* A record [decode] rejects — well-formed JSON, wrong shape. *)
  Journal.append h (Json.Obj [ ("unexpected", Json.Int 1) ]);
  Journal.append h (encode 2 20);
  Journal.close h;
  let config = { Supervise.default_config with journal = Some path; resume = true } in
  Alcotest.(check bool) "undecodable record is Resume_error" true
    (match run ~config () with
    | _ -> false
    | exception Supervise.Resume_error _ -> true);
  Sys.remove path

(* -- the expt-driver shared journal -- *)

let expt_spec () =
  {
    (Ftc_expt.Runner.default_spec
       (Ftc_core.Leader_election.make Ftc_core.Params.default)
       ~n:32 ~alpha:0.7)
    with
    Ftc_expt.Runner.adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
  }

let test_run_many_journaled_matches_plain () =
  let spec = expt_spec () in
  let seeds = Ftc_expt.Runner.seeds ~base:1 ~count:4 in
  let ok _ = true in
  let plain = Supervise.run_many_journaled ~jobs:1 ~journal:None ~key:"k" ~ok spec ~seeds in
  let path = temp_path () in
  let sh = Supervise.open_shared ~path ~resume:false ~spec_hash:"e" in
  let journaled = Supervise.run_many_journaled ~jobs:1 ~journal:(Some sh) ~key:"k" ~ok spec ~seeds in
  Supervise.close_shared sh;
  Alcotest.(check bool) "journaled = plain" true (plain = journaled);
  (* Resume from a truncated shared journal: stats must still be equal. *)
  let bytes = read_file path in
  let cut =
    let first = String.index bytes '\n' + 1 in
    let second = String.index_from bytes first '\n' + 1 in
    second + ((String.length bytes - second) / 2)
  in
  write_file path (String.sub bytes 0 cut);
  let sh = Supervise.open_shared ~path ~resume:true ~spec_hash:"e" in
  let resumed = Supervise.run_many_journaled ~jobs:4 ~journal:(Some sh) ~key:"k" ~ok spec ~seeds in
  Supervise.close_shared sh;
  Alcotest.(check bool) "resumed = plain (jobs 4, torn cut)" true (plain = resumed);
  Sys.remove path

let test_run_many_journaled_keys_isolate () =
  let spec = expt_spec () in
  let seeds = [ 1; 2 ] in
  let ok _ = true in
  let path = temp_path () in
  let sh = Supervise.open_shared ~path ~resume:false ~spec_hash:"e" in
  let a = Supervise.run_many_journaled ~jobs:1 ~journal:(Some sh) ~key:"a" ~ok spec ~seeds in
  let spec_b = { spec with Ftc_expt.Runner.n = 48 } in
  let b = Supervise.run_many_journaled ~jobs:1 ~journal:(Some sh) ~key:"b" ~ok spec_b ~seeds in
  (* Same seeds under key "a" again: cache hit, not a re-run of "b". *)
  let a' = Supervise.run_many_journaled ~jobs:1 ~journal:(Some sh) ~key:"a" ~ok spec ~seeds in
  Supervise.close_shared sh;
  Alcotest.(check bool) "key a stable" true (a = a');
  Alcotest.(check bool) "keys do not collide" true (a <> b);
  Sys.remove path

let () =
  Alcotest.run "journal"
    [
      ( "json",
        [
          Alcotest.test_case "round-trips" `Quick test_json_roundtrip;
          Alcotest.test_case "ints exact" `Quick test_json_int_exact;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "control chars and multibyte escape" `Quick
            test_json_escaping_exhaustive;
        ] );
      ( "journal-file",
        [
          Alcotest.test_case "create/append/load" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_torn_tail_tolerated;
          Alcotest.test_case "interior corruption fails" `Quick
            test_journal_interior_corruption_fails;
          Alcotest.test_case "wrong magic fails" `Quick test_journal_wrong_magic_fails;
          Alcotest.test_case "reopen repairs torn tail" `Quick
            test_journal_reopen_repairs_torn_tail;
          Alcotest.test_case "write_atomic" `Quick test_write_atomic;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "all clean" `Quick test_all_clean;
          Alcotest.test_case "fail-fast skips the rest" `Quick test_fail_fast_skips_rest;
          Alcotest.test_case "keep-going quarantines, exit 3" `Quick test_keep_going_mixed;
          Alcotest.test_case "keep-going all-fail exits 1" `Quick
            test_keep_going_all_fail_exit_1;
          Alcotest.test_case "exception captured" `Quick test_exception_captured_as_failure;
          Alcotest.test_case "class strings round-trip" `Quick test_class_string_roundtrip;
        ] );
      ( "resume",
        [
          Alcotest.test_case "bit-identical at every cut, jobs 1 and 4" `Quick
            test_resume_bit_identical;
          Alcotest.test_case "extends trial count" `Quick test_resume_extends_trial_count;
          Alcotest.test_case "spec mismatch rejected" `Quick test_resume_spec_mismatch_rejected;
          Alcotest.test_case "corrupt record rejected" `Quick
            test_resume_corrupt_record_rejected;
        ] );
      ( "expt-journal",
        [
          Alcotest.test_case "journaled = plain, resume-safe" `Quick
            test_run_many_journaled_matches_plain;
          Alcotest.test_case "keys isolate records" `Quick test_run_many_journaled_keys_isolate;
        ] );
    ]
