(* The parallel runner's determinism contract, the domain pool's own
   invariants, and the single-pass aggregate.

   The contract under test: [Runner.run_many_par ~jobs] is bit-identical
   to [Runner.run_many] — same metrics, decisions, observations, fault
   pattern, violations, traces and transport stats, in the same (seed)
   order — for every protocol, adversary, loss model and job count.
   Trials share no state, so the only thing parallelism may change is
   the interleaving of their execution, which must be unobservable. *)

module Runner = Ftc_expt.Runner
module Pool = Ftc_parallel.Pool
module Strategy = Ftc_fault.Strategy
module Omission = Ftc_fault.Omission
module Engine = Ftc_sim.Engine
module Metrics = Ftc_sim.Metrics
module Trace = Ftc_sim.Trace
module Transport = Ftc_transport.Transport
module Stats = Ftc_analysis.Stats

let job_counts = [ 1; 2; 4 ]
let seeds = Runner.seeds ~base:7 ~count:5

(* Field-by-field equality. [Trace.t] is abstract, so the recorded event
   lists are compared rather than the log values themselves; everything
   else is immutable-after-run data where structural equality is exact. *)
let outcome_equal (a : Runner.outcome) (b : Runner.outcome) =
  let ra = a.result and rb = b.result in
  a.seed = b.seed
  && a.inputs_used = b.inputs_used
  && a.transport_stats = b.transport_stats
  && ra.Engine.decisions = rb.Engine.decisions
  && ra.observations = rb.observations
  && ra.faulty = rb.faulty
  && ra.crashed = rb.crashed
  && ra.crash_round = rb.crash_round
  && ra.rounds_used = rb.rounds_used
  && ra.timed_out = rb.timed_out
  && ra.watchdog_expired = rb.watchdog_expired
  && ra.metrics = rb.metrics
  && ra.violations = rb.violations
  &&
  match (ra.trace, rb.trace) with
  | None, None -> true
  | Some ta, Some tb -> Trace.events ta = Trace.events tb
  | _ -> false

(* [raw] compares through [run_many_par_raw] against per-seed [Runner.run],
   for specs whose outcomes may carry violations (heavy raw loss). *)
let check_par_equals_seq ?(raw = false) name spec =
  let seq =
    if raw then List.map (fun seed -> Runner.run spec ~seed) seeds
    else Runner.run_many spec ~seeds
  in
  List.iter
    (fun jobs ->
      let par =
        if raw then Runner.run_many_par_raw ~jobs spec ~seeds
        else Runner.run_many_par ~jobs spec ~seeds
      in
      Alcotest.(check int)
        (Printf.sprintf "%s jobs=%d: outcome count" name jobs)
        (List.length seq) (List.length par);
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d seed=%d: bit-identical" name jobs
               a.Runner.seed)
            true (outcome_equal a b))
        seq par)
    job_counts

let protocols () =
  [
    ("election", Ftc_core.Leader_election.make Ftc_core.Params.default);
    ("agreement", Ftc_core.Agreement.make Ftc_core.Params.default);
  ]

let base_spec protocol =
  {
    (Runner.default_spec protocol ~n:48 ~alpha:0.7) with
    Runner.inputs = Runner.Random_bits 0.5;
    record_trace = true;
  }

(* Both protocols under all seven adversary strategies, traces on. *)
let test_par_matches_seq_all_adversaries () =
  List.iter
    (fun (pname, protocol) ->
      List.iter
        (fun (sname, adversary) ->
          check_par_equals_seq
            (pname ^ "/" ^ sname)
            { (base_spec protocol) with Runner.adversary })
        (Strategy.all ()))
    (protocols ())

(* Raw protocols under the omission loss models (violations stay data). *)
let test_par_matches_seq_lossy_raw () =
  List.iter
    (fun (pname, protocol) ->
      List.iter
        (fun (lname, link) ->
          check_par_equals_seq ~raw:true
            (pname ^ "/raw+" ^ lname)
            { (base_spec protocol) with Runner.link })
        [
          ("uniform", Omission.lossy_uniform ~rate:0.25);
          ("burst", Omission.lossy_burst ~rate:0.15 ~mean_len:3.0);
        ])
    (protocols ())

(* Transport-wrapped runs under light loss plus crashes: the outcome's
   [transport_stats] must also come back bit-identical. *)
let test_par_matches_seq_transport () =
  List.iter
    (fun (pname, protocol) ->
      check_par_equals_seq
        (pname ^ "/transport")
        {
          (base_spec protocol) with
          Runner.link = Omission.lossy_uniform ~rate:0.05;
          transport = Some Transport.default_config;
          adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
        })
    (protocols ())

let test_par_rejects_bad_jobs () =
  let spec = base_spec (Ftc_core.Agreement.make Ftc_core.Params.default) in
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Runner.run_many_par: jobs must be >= 1") (fun () ->
      ignore (Runner.run_many_par ~jobs:0 spec ~seeds:[ 1 ]))

(* -- the domain pool itself -- *)

(* Spin for a caller-chosen number of iterations so worker completion
   order genuinely varies, without sleeping wall-clock time. *)
let busy_work iters =
  let acc = ref 0 in
  for i = 1 to iters do
    acc := (!acc * 7) + i
  done;
  !acc

let qcheck_pool_exactly_once =
  QCheck.Test.make ~name:"every job runs exactly once, in-order results"
    ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 40))
    (fun (jobs, len) ->
      let counters = Array.init len (fun _ -> Atomic.make 0) in
      let results =
        Pool.run_map ~jobs
          (fun i ->
            Atomic.incr counters.(i);
            i)
          (List.init len Fun.id)
      in
      results = List.init len Fun.id
      && Array.for_all (fun c -> Atomic.get c = 1) counters)

let qcheck_pool_results_at_submission_index =
  QCheck.Test.make
    ~name:"results land at their submission index under skewed durations"
    ~count:25
    QCheck.(pair (int_range 2 4) (small_list (int_range 0 20_000)))
    (fun (jobs, durations) ->
      let expected = List.mapi (fun i d -> (i, busy_work d)) durations in
      let got =
        Pool.run_map ~jobs
          (fun (i, d) -> (i, busy_work d))
          (List.mapi (fun i d -> (i, d)) durations)
      in
      got = expected)

exception Poisoned of int

let qcheck_pool_raising_job_cancels_and_reraises =
  QCheck.Test.make ~name:"a raising job cancels the rest and re-raises"
    ~count:20
    QCheck.(pair (int_range 2 4) (pair (int_range 0 9) (int_range 10 30)))
    (fun (jobs, (bad, len)) ->
      Pool.with_pool ~jobs (fun pool ->
          let started = Atomic.make 0 in
          let raised =
            match
              Pool.map pool
                (fun i ->
                  Atomic.incr started;
                  if i = bad then raise (Poisoned i);
                  ignore (busy_work 1_000);
                  i)
                (List.init len Fun.id)
            with
            | _ -> false
            | exception Poisoned i -> i = bad
          in
          (* Cancellation: jobs not yet started when the failure landed
             never ran, so at most every job started. And the pool must
             survive a poisoned map and stay usable. *)
          raised
          && Atomic.get started <= len
          && Pool.map pool succ [ 1; 2; 3 ] = [ 2; 3; 4 ]))

let test_pool_shutdown_idempotent_and_final () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check int) "jobs recorded" 2 (Pool.jobs pool);
  Alcotest.(check (list int)) "map works" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool ignore)

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

(* -- per-slot result capture (the keep-going primitive) -- *)

let qcheck_map_results_no_cancellation =
  QCheck.Test.make ~name:"map_results: every element runs, failures stay in their slot"
    ~count:25
    QCheck.(pair (int_range 1 4) (int_range 0 30))
    (fun (jobs, len) ->
      let ran = Array.init len (fun _ -> Atomic.make 0) in
      let results =
        Pool.run_map_results ~jobs
          (fun i ->
            Atomic.incr ran.(i);
            ignore (busy_work 500);
            if i mod 3 = 0 then raise (Poisoned i);
            i * 2)
          (List.init len Fun.id)
      in
      List.length results = len
      && Array.for_all (fun c -> Atomic.get c = 1) ran
      && List.for_all2
           (fun i r ->
             match r with
             | Ok v -> i mod 3 <> 0 && v = i * 2
             | Error (Poisoned j, _) -> i mod 3 = 0 && j = i
             | Error _ -> false)
           (List.init len Fun.id)
           results)

let test_map_results_pool_reusable () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let r = Pool.map_results pool (fun i -> if i = 1 then raise Exit else i) [ 0; 1; 2 ] in
      Alcotest.(check int) "three slots" 3 (List.length r);
      Alcotest.(check bool) "slot 1 failed" true
        (match List.nth r 1 with Error (Exit, _) -> true | _ -> false);
      Alcotest.(check (list int)) "pool survives map_results" [ 2; 3; 4 ]
        (Pool.map pool succ [ 1; 2; 3 ]))

(* -- exception accounting on raw submit -- *)

(* Regression: a raising fire-and-forget job used to kill its worker
   domain silently. It must now be counted, forwarded to the sink, and
   leave the worker serving later jobs. *)
let test_submit_exception_counted_and_sunk () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "starts at zero" 0 (Pool.dropped_exceptions pool);
      let sunk = Atomic.make 0 in
      Pool.set_exception_sink pool (fun e _bt ->
          match e with Poisoned _ -> Atomic.incr sunk | _ -> ());
      let done_ = Atomic.make 0 in
      for i = 1 to 8 do
        Pool.submit pool (fun () ->
            if i mod 2 = 0 then raise (Poisoned i);
            Atomic.incr done_)
      done;
      (* map is a barrier here: it drains the queue on the same workers. *)
      ignore (Pool.map pool Fun.id [ (); () ]);
      Alcotest.(check int) "four exceptions counted" 4 (Pool.dropped_exceptions pool);
      Alcotest.(check int) "four exceptions sunk" 4 (Atomic.get sunk);
      Alcotest.(check int) "surviving jobs all ran" 4 (Atomic.get done_))

let test_raising_sink_is_discarded () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Pool.set_exception_sink pool (fun _ _ -> failwith "sink bug");
      Pool.submit pool (fun () -> raise Exit);
      ignore (Pool.map pool Fun.id [ () ]);
      Alcotest.(check int) "still counted" 1 (Pool.dropped_exceptions pool);
      Alcotest.(check (list int)) "worker survived the sink" [ 1 ]
        (Pool.map pool Fun.id [ 1 ]))

(* -- the single-pass aggregate, pinned against a hand-computed fixture -- *)

let fixture_outcome ~seed ~msgs ~bits ~rounds : Runner.outcome =
  let metrics = Metrics.create () in
  metrics.Metrics.msgs_sent <- msgs;
  metrics.Metrics.bits_sent <- bits;
  metrics.Metrics.rounds_used <- rounds;
  {
    Runner.result =
      {
        Engine.decisions = [||];
        observations = [||];
        faulty = [||];
        crashed = [||];
        crash_round = [||];
        rounds_used = rounds;
        timed_out = false;
        watchdog_expired = false;
        metrics;
        trace = None;
        violations = [];
        round_ns = [||];
      };
    inputs_used = [||];
    seed;
    transport_stats = None;
  }

let test_aggregate_fixture () =
  (* msgs 10 20 30 40: mean 25, median 25, p10 13, p90 37,
     sample stddev sqrt(500/3). *)
  let outcomes =
    List.mapi
      (fun i msgs -> fixture_outcome ~seed:i ~msgs ~bits:(msgs * 8) ~rounds:(i + 1))
      [ 10; 20; 30; 40 ]
  in
  let agg =
    Runner.aggregate
      ~ok:(fun o -> o.Runner.result.Engine.metrics.Metrics.msgs_sent <= 30)
      outcomes
  in
  Alcotest.(check int) "trials" 4 agg.Runner.trials;
  Alcotest.(check int) "successes" 3 agg.Runner.successes;
  Alcotest.(check (float 1e-9)) "rate" 0.75 agg.Runner.success_rate;
  let m = agg.Runner.msgs in
  Alcotest.(check int) "count" 4 m.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 25.0 m.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 25.0 m.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 10.0 m.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 40.0 m.Stats.max;
  Alcotest.(check (float 1e-9)) "p10" 13.0 m.Stats.p10;
  Alcotest.(check (float 1e-9)) "p90" 37.0 m.Stats.p90;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (500.0 /. 3.0)) m.Stats.stddev;
  Alcotest.(check (float 1e-9)) "bits mean" 200.0 agg.Runner.bits.Stats.mean;
  Alcotest.(check (float 1e-9)) "rounds mean" 2.5 agg.Runner.rounds.Stats.mean

let test_aggregate_matches_sequential_formula () =
  (* The single-pass rewrite must agree with the obvious two-pass map. *)
  let spec =
    {
      (Runner.default_spec
         (Ftc_core.Leader_election.make Ftc_core.Params.default)
         ~n:48 ~alpha:0.7)
      with
      Runner.adversary = (fun () -> Ftc_fault.Strategy.random_crashes ());
    }
  in
  let outcomes = Runner.run_many spec ~seeds:(Runner.seeds ~base:2 ~count:8) in
  let agg = Runner.aggregate ~ok:(fun _ -> true) outcomes in
  let manual =
    Stats.summarize
      (List.map
         (fun (o : Runner.outcome) ->
           float_of_int o.result.Engine.metrics.Metrics.msgs_sent)
         outcomes)
  in
  Alcotest.(check (float 0.)) "mean identical" manual.Stats.mean
    agg.Runner.msgs.Stats.mean;
  Alcotest.(check (float 0.)) "stddev identical" manual.Stats.stddev
    agg.Runner.msgs.Stats.stddev;
  Alcotest.(check (float 0.)) "p90 identical" manual.Stats.p90
    agg.Runner.msgs.Stats.p90

let qcheck cases = List.map QCheck_alcotest.to_alcotest cases

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "par = seq, all adversaries" `Quick
            test_par_matches_seq_all_adversaries;
          Alcotest.test_case "par = seq, lossy raw" `Quick
            test_par_matches_seq_lossy_raw;
          Alcotest.test_case "par = seq, transport-wrapped" `Quick
            test_par_matches_seq_transport;
          Alcotest.test_case "jobs < 1 rejected" `Quick test_par_rejects_bad_jobs;
        ] );
      ( "pool",
        qcheck
          [
            qcheck_pool_exactly_once;
            qcheck_pool_results_at_submission_index;
            qcheck_pool_raising_job_cancels_and_reraises;
          ]
        @ [
            Alcotest.test_case "shutdown idempotent and final" `Quick
              test_pool_shutdown_idempotent_and_final;
            Alcotest.test_case "jobs < 1 rejected" `Quick
              test_pool_rejects_bad_jobs;
          ] );
      ( "results-capture",
        qcheck [ qcheck_map_results_no_cancellation ]
        @ [
            Alcotest.test_case "map_results isolates failures, pool reusable" `Quick
              test_map_results_pool_reusable;
            Alcotest.test_case "submit exceptions counted and sunk" `Quick
              test_submit_exception_counted_and_sunk;
            Alcotest.test_case "raising sink discarded" `Quick
              test_raising_sink_is_discarded;
          ] );
      ( "aggregate",
        [
          Alcotest.test_case "hand-computed fixture" `Quick
            test_aggregate_fixture;
          Alcotest.test_case "matches two-pass formula" `Quick
            test_aggregate_matches_sequential_formula;
        ] );
    ]
