(* End-to-end tests for the fault-tolerant leader election protocol
   (Section IV-A): uniqueness, never electing a node that crashed before
   the end, rank optimality in the fault-free case, explicit extension,
   and robustness across adversaries and seeds. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Params = Ftc_core.Params
module LE = Ftc_core.Leader_election
module Props = Ftc_core.Properties

let params = Params.default

let run ?(explicit = false) ?(adversary = Ftc_fault.Strategy.none) ~n ~alpha ~seed () =
  let (module P) = LE.make ~explicit params in
  let module E = Engine.Make (P) in
  let r =
    E.run { (Engine.default_config ~n ~alpha ~seed) with adversary = adversary () }
  in
  Alcotest.(check (list string)) "no model violations" [] (List.map Ftc_sim.Violation.to_string r.violations);
  Alcotest.(check bool) "run did not time out" false r.timed_out;
  r

let test_fault_free_unique_leader () =
  for seed = 1 to 20 do
    let r = run ~n:128 ~alpha:1.0 ~seed () in
    let rep = Props.check_implicit_election r in
    Alcotest.(check bool) (Printf.sprintf "seed %d: exactly one leader" seed) true rep.ok
  done

let test_fault_free_min_rank_wins () =
  (* Without faults the protocol must elect the minimum-rank candidate. *)
  for seed = 1 to 10 do
    let r = run ~n:128 ~alpha:1.0 ~seed () in
    let rep = Props.check_implicit_election r in
    match rep.leader with
    | None -> Alcotest.fail "no leader"
    | Some leader ->
        let min_candidate_rank =
          Array.fold_left
            (fun acc (o : Observation.t) ->
              match (o.role, o.rank) with
              | Observation.Candidate, Some rk -> min acc rk
              | _ -> acc)
            max_int r.observations
        in
        let leader_rank =
          match r.observations.(leader).Observation.rank with
          | Some rk -> rk
          | None -> Alcotest.fail "leader has no rank"
        in
        Alcotest.(check int)
          (Printf.sprintf "seed %d: leader holds min candidate rank" seed)
          min_candidate_rank leader_rank
  done

let test_leader_is_a_candidate () =
  for seed = 1 to 10 do
    let r = run ~n:128 ~alpha:0.6 ~seed ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ()) () in
    let rep = Props.check_implicit_election r in
    match rep.leader with
    | None -> ()
    | Some leader ->
        Alcotest.(check bool) "leader is a candidate" true
          (r.observations.(leader).Observation.role = Observation.Candidate)
  done

let test_under_each_adversary () =
  List.iter
    (fun (name, adv) ->
      let ok = ref 0 in
      let trials = 12 in
      for seed = 1 to trials do
        let r = run ~n:128 ~alpha:0.5 ~seed:(seed * 13) ~adversary:adv () in
        if (Props.check_implicit_election r).ok then incr ok
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s: >= 11/12 elections succeed (got %d)" name !ok)
        true (!ok >= trials - 1))
    (Ftc_fault.Strategy.all ())

let test_crashed_node_never_elected () =
  (* "Our algorithm promises that a crashed node is never elected as a
     leader" — among live nodes, the winner must not have crashed; a
     crashed node may hold a stale Elected state but the checker separates
     that. *)
  for seed = 1 to 15 do
    let r =
      run ~n:128 ~alpha:0.4 ~seed:(seed * 7)
        ~adversary:(fun () -> Ftc_fault.Strategy.targeted_min_rank ())
        ()
    in
    let rep = Props.check_implicit_election r in
    match rep.leader with
    | Some leader -> Alcotest.(check bool) "live leader" false r.crashed.(leader)
    | None -> ()
  done

let test_eager_adversary_leader_non_faulty () =
  (* If every faulty node crashes at round 0, the leader is always
     non-faulty. *)
  for seed = 1 to 10 do
    let r = run ~n:128 ~alpha:0.5 ~seed ~adversary:Ftc_fault.Strategy.eager () in
    let rep = Props.check_implicit_election r in
    Alcotest.(check bool) "ok" true rep.ok;
    Alcotest.(check (option bool)) "leader non-faulty" (Some false) rep.leader_was_faulty
  done

let test_explicit_everyone_learns_leader () =
  for seed = 1 to 8 do
    let r =
      run ~explicit:true ~n:128 ~alpha:0.6 ~seed
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ())
        ()
    in
    let rep = Props.check_explicit_election r in
    Alcotest.(check bool) (Printf.sprintf "seed %d: explicit ok" seed) true rep.ok;
    (* Every live follower names the leader's actual rank. *)
    match rep.base.leader with
    | None -> Alcotest.fail "no leader"
    | Some leader ->
        let leader_rank =
          match r.observations.(leader).Observation.rank with Some rk -> rk | None -> -1
        in
        Array.iteri
          (fun i d ->
            if (not r.crashed.(i)) && i <> leader then
              match d with
              | Decision.Follower rk ->
                  Alcotest.(check int) "follower names leader" leader_rank rk
              | d -> Alcotest.failf "node %d: %s" i (Decision.to_string d))
          r.decisions
  done

let test_rounds_within_calendar () =
  let n = 128 and alpha = 0.5 in
  let budget = LE.calendar_rounds params ~n ~alpha in
  let r = run ~n ~alpha ~seed:3 ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ()) () in
  Alcotest.(check bool) "within calendar" true (r.rounds_used <= budget)

let test_early_stop_beats_calendar () =
  (* With no faults the run should finish well before the worst-case
     calendar thanks to quiescence detection. *)
  let n = 256 and alpha = 0.8 in
  let budget = LE.calendar_rounds params ~n ~alpha in
  let r = run ~n ~alpha ~seed:5 () in
  Alcotest.(check bool)
    (Printf.sprintf "early stop (%d < %d)" r.rounds_used budget)
    true
    (r.rounds_used < budget / 2)

let test_congest_clean () =
  let r = run ~n:256 ~alpha:0.5 ~seed:11 ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ()) () in
  Alcotest.(check int) "no congest violations" 0 r.metrics.congest_violations

let test_non_candidates_not_elected () =
  let r = run ~n:128 ~alpha:0.7 ~seed:19 () in
  Array.iteri
    (fun i (o : Observation.t) ->
      if o.role <> Observation.Candidate then
        Alcotest.(check bool)
          (Printf.sprintf "node %d (non-candidate) not elected" i)
          true
          (r.decisions.(i) <> Decision.Elected))
    r.observations

let test_message_bound_sublinear_shape () =
  (* At alpha = 1 and n large enough the message count must be far below
     the n^2 of flooding and grow sublinearly. *)
  let msgs n =
    let r = run ~n ~alpha:1.0 ~seed:23 () in
    r.metrics.msgs_sent
  in
  let m1 = msgs 1024 and m2 = msgs 4096 in
  Alcotest.(check bool) "far below n^2" true (m2 < (4096 * 4096 / 20));
  Alcotest.(check bool)
    (Printf.sprintf "sublinear growth (%d -> %d)" m1 m2)
    true
    (float_of_int m2 /. float_of_int m1 < 3.)

let qcheck_unique_leader =
  QCheck.Test.make ~name:"unique live leader across random configurations" ~count:25
    QCheck.(triple (int_range 0 10_000) (int_range 32 160) (float_range 0.4 1.0))
    (fun (seed, n, alpha) ->
      let r =
        run ~n ~alpha ~seed ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ()) ()
      in
      (Props.check_implicit_election r).ok)

let () =
  Alcotest.run "leader-election"
    [
      ( "fault-free",
        [
          Alcotest.test_case "unique leader" `Quick test_fault_free_unique_leader;
          Alcotest.test_case "min rank wins" `Quick test_fault_free_min_rank_wins;
          Alcotest.test_case "non-candidates lose" `Quick test_non_candidates_not_elected;
          Alcotest.test_case "sublinear messages" `Slow test_message_bound_sublinear_shape;
        ] );
      ( "faulty",
        [
          Alcotest.test_case "every adversary" `Slow test_under_each_adversary;
          Alcotest.test_case "crashed never elected" `Quick test_crashed_node_never_elected;
          Alcotest.test_case "eager: leader non-faulty" `Quick test_eager_adversary_leader_non_faulty;
          Alcotest.test_case "leader is candidate" `Quick test_leader_is_a_candidate;
        ] );
      ( "explicit",
        [ Alcotest.test_case "everyone learns leader" `Quick test_explicit_everyone_learns_leader ] );
      ( "complexity",
        [
          Alcotest.test_case "rounds within calendar" `Quick test_rounds_within_calendar;
          Alcotest.test_case "early stop" `Quick test_early_stop_beats_calendar;
          Alcotest.test_case "congest clean" `Quick test_congest_clean;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ qcheck_unique_leader ]);
    ]
