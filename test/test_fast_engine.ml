(* Differential suite for the struct-of-arrays fast engine.

   The fast engine's whole contract is bit-identity: for every ported
   protocol, [Fast_engine.Make (FP)] run on a config must produce the
   same decisions, observations, crash record, metrics counters,
   violation list, and (at small n, where we record it) the same trace
   event stream as [Engine.Make (P)] — the classic closure engine is
   the specification, the fast engine an optimisation. These tests pin
   that equivalence across the fault/loss/queue axes, plus the
   satellite fixes that ride along: the replay v1–v4 round-trip, the
   n = 8 golden fixture, and the empty-aggregate regression. *)

module Engine = Ftc_sim.Engine
module Metrics = Ftc_sim.Metrics
module Trace = Ftc_sim.Trace
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Violation = Ftc_sim.Violation
module Congest = Ftc_sim.Congest
module Queue_model = Ftc_sim.Queue_model
module Strategy = Ftc_fault.Strategy
module Omission = Ftc_fault.Omission
module Runner = Ftc_expt.Runner
module Chaos = Ftc_chaos

let params = Ftc_core.Params.default

(* ------------------------------------------------------------------ *)
(* The classic/fast protocol pairs under differential test.           *)

type pair = {
  tag : string;
  classic : (module Ftc_sim.Protocol.S);
  fast : (module Ftc_sim.Fast_protocol.S);
  mk_inputs : n:int -> salt:int -> int array;
}

let bit_inputs ~n ~salt = Array.init n (fun i -> (salt lxor (i * 2654435761)) land 1)
let zero_inputs ~n ~salt:_ = Array.make n 0

(* Gossip takes arbitrary integer inputs, not just bits. *)
let value_inputs ~n ~salt = Array.init n (fun i -> ((salt + i) * 40503) land 0xff)

let pairs =
  [
    {
      tag = "ft-leader-election";
      classic = Ftc_core.Leader_election.make params;
      fast = Ftc_core.Leader_election_fast.make params;
      mk_inputs = zero_inputs;
    };
    {
      tag = "ft-leader-election-explicit";
      classic = Ftc_core.Leader_election.make ~explicit:true params;
      fast = Ftc_core.Leader_election_fast.make ~explicit:true params;
      mk_inputs = zero_inputs;
    };
    {
      tag = "ft-agreement";
      classic = Ftc_core.Agreement.make params;
      fast = Ftc_core.Agreement_fast.make params;
      mk_inputs = bit_inputs;
    };
    {
      tag = "ft-agreement-explicit";
      classic = Ftc_core.Agreement.make ~explicit:true params;
      fast = Ftc_core.Agreement_fast.make ~explicit:true params;
      mk_inputs = bit_inputs;
    };
    {
      tag = "push-gossip";
      classic = Ftc_baselines.Gossip.make ();
      fast = Ftc_baselines.Gossip_fast.make ();
      mk_inputs = value_inputs;
    };
  ]

(* ------------------------------------------------------------------ *)
(* The fault/loss/queue axes swept by the differential tests.          *)

let adversaries = Strategy.all ()

let losses =
  [|
    ("reliable", Omission.No_loss);
    ("uniform", Omission.Uniform 0.15);
    ("burst", Omission.Burst { rate = 0.1; mean_len = 2.5 });
    ("targeted", Omission.Targeted 0.2);
  |]

let queues =
  [|
    ("unbounded", None);
    ("drop-tail", Some (Queue_model.make ~capacity:2 ~discipline:Queue_model.Drop_tail ()));
    ("red", Some (Queue_model.make ~capacity:4 ~discipline:Queue_model.Red ()));
    ("ecn", Some (Queue_model.make ~capacity:2 ~discipline:Queue_model.Ecn ()));
  |]

let alphas = [| 0.5; 0.7; 0.9; 1.0 |]

(* ------------------------------------------------------------------ *)
(* Full-result comparison.                                            *)

let show_arr f a = "[|" ^ String.concat "; " (Array.to_list (Array.map f a)) ^ "|]"

let show_observation (o : Observation.t) =
  Printf.sprintf "{role=%s; rank=%s; has_decided=%b}"
    (match o.Observation.role with
    | Observation.Candidate -> "candidate"
    | Observation.Referee -> "referee"
    | Observation.Bystander -> "bystander"
    | Observation.Coordinator -> "coordinator")
    (match o.Observation.rank with None -> "-" | Some r -> string_of_int r)
    o.Observation.has_decided

let check_same ~ctx (a : Engine.result) (b : Engine.result) =
  let fail field show va vb =
    Alcotest.failf "%s: %s differs\n  classic: %s\n  fast:    %s" ctx field (show va) (show vb)
  in
  let eq field show va vb = if va <> vb then fail field show va vb in
  eq "decisions" (show_arr Decision.to_string) a.Engine.decisions b.Engine.decisions;
  eq "observations" (show_arr show_observation) a.Engine.observations b.Engine.observations;
  eq "faulty" (show_arr string_of_bool) a.Engine.faulty b.Engine.faulty;
  eq "crashed" (show_arr string_of_bool) a.Engine.crashed b.Engine.crashed;
  eq "crash_round" (show_arr string_of_int) a.Engine.crash_round b.Engine.crash_round;
  eq "rounds_used" string_of_int a.Engine.rounds_used b.Engine.rounds_used;
  eq "timed_out" string_of_bool a.Engine.timed_out b.Engine.timed_out;
  eq "watchdog_expired" string_of_bool a.Engine.watchdog_expired b.Engine.watchdog_expired;
  let ma = a.Engine.metrics and mb = b.Engine.metrics in
  let meq field va vb = eq ("metrics." ^ field) string_of_int va vb in
  meq "msgs_sent" ma.Metrics.msgs_sent mb.Metrics.msgs_sent;
  meq "msgs_dropped" ma.Metrics.msgs_dropped mb.Metrics.msgs_dropped;
  meq "msgs_lost_link" ma.Metrics.msgs_lost_link mb.Metrics.msgs_lost_link;
  meq "msgs_dropped_queue" ma.Metrics.msgs_dropped_queue mb.Metrics.msgs_dropped_queue;
  meq "msgs_ecn_marked" ma.Metrics.msgs_ecn_marked mb.Metrics.msgs_ecn_marked;
  meq "msgs_unroutable" ma.Metrics.msgs_unroutable mb.Metrics.msgs_unroutable;
  meq "bits_sent" ma.Metrics.bits_sent mb.Metrics.bits_sent;
  meq "rounds_used" ma.Metrics.rounds_used mb.Metrics.rounds_used;
  meq "congest_violations" ma.Metrics.congest_violations mb.Metrics.congest_violations;
  meq "max_round_seen" ma.Metrics.max_round_seen mb.Metrics.max_round_seen;
  let aeq field va vb = eq ("metrics." ^ field) (show_arr string_of_int) va vb in
  aeq "per_round_msgs" ma.Metrics.per_round_msgs mb.Metrics.per_round_msgs;
  aeq "per_round_bits" ma.Metrics.per_round_bits mb.Metrics.per_round_bits;
  aeq "per_round_drops" ma.Metrics.per_round_drops mb.Metrics.per_round_drops;
  aeq "per_round_queue_drops" ma.Metrics.per_round_queue_drops mb.Metrics.per_round_queue_drops;
  aeq "per_round_ecn_marks" ma.Metrics.per_round_ecn_marks mb.Metrics.per_round_ecn_marks;
  aeq "per_round_queue_peak" ma.Metrics.per_round_queue_peak mb.Metrics.per_round_queue_peak;
  Alcotest.(check (list string))
    (ctx ^ ": violations")
    (List.map Violation.to_string a.Engine.violations)
    (List.map Violation.to_string b.Engine.violations);
  (match (a.Engine.trace, b.Engine.trace) with
  | None, None -> ()
  | Some _, None | None, Some _ -> Alcotest.failf "%s: trace presence differs" ctx
  | Some ta, Some tb ->
      let ea = Trace.events ta and eb = Trace.events tb in
      let la = List.length ea and lb = List.length eb in
      List.iteri
        (fun i (va, vb) ->
          if va <> vb then
            Alcotest.failf "%s: trace event %d differs\n  classic: %a\n  fast:    %a" ctx i
              Trace.pp_event va Trace.pp_event vb)
        (List.combine
           (if la <= lb then ea else List.filteri (fun i _ -> i < lb) ea)
           (if lb <= la then eb else List.filteri (fun i _ -> i < la) eb));
      if la <> lb then
        Alcotest.failf "%s: trace length differs (classic %d, fast %d)" ctx la lb);
  eq "round_ns length" string_of_int
    (Array.length a.Engine.round_ns)
    (Array.length b.Engine.round_ns)

(* One differential run: same config (fresh adversary/link instances per
   engine — both are stateful), both engines, full comparison. *)
let differential ?(trace = true) pair ~n ~alpha ~seed ~mk_adv ~loss ~queue ~ctx =
  let inputs = pair.mk_inputs ~n ~salt:seed in
  let mk_cfg () =
    {
      Engine.n;
      alpha;
      seed;
      inputs = Some inputs;
      adversary = mk_adv ();
      link = Omission.to_link loss;
      queue;
      congest_limit = Some (Congest.default_limit ~n);
      record_trace = trace;
      max_rounds_override = None;
      watchdog = None;
      round_clock = None;
    }
  in
  let (module P : Ftc_sim.Protocol.S) = pair.classic in
  let module E = Engine.Make (P) in
  let (module FP : Ftc_sim.Fast_protocol.S) = pair.fast in
  let module FE = Ftc_sim.Fast_engine.Make (FP) in
  check_same ~ctx (E.run (mk_cfg ())) (FE.run (mk_cfg ()))

(* ------------------------------------------------------------------ *)
(* Deterministic sweeps.                                              *)

(* Every pair under every named adversary, reliable links: the crash
   machinery (decide order, drop rules, faulty budget) differentially
   pinned with full trace comparison. *)
let test_sweep_adversaries () =
  List.iter
    (fun pair ->
      List.iter
        (fun (aname, mk_adv) ->
          List.iter
            (fun n ->
              let ctx = Printf.sprintf "%s/%s/n=%d" pair.tag aname n in
              differential pair ~n ~alpha:0.7 ~seed:11 ~mk_adv ~loss:Omission.No_loss
                ~queue:None ~ctx)
            [ 3; 4; 7; 12 ])
        adversaries)
    pairs

(* Every pair under every loss model x queue discipline, with random
   crashes on top: the lossy forwarding path (link coins, queue coins,
   ECN marks, drop accounting) differentially pinned. *)
let test_sweep_loss_queue () =
  List.iter
    (fun pair ->
      Array.iter
        (fun (lname, loss) ->
          Array.iter
            (fun (qname, queue) ->
              List.iter
                (fun n ->
                  let ctx = Printf.sprintf "%s/%s/%s/n=%d" pair.tag lname qname n in
                  differential pair ~n ~alpha:0.7 ~seed:42
                    ~mk_adv:(fun () -> Strategy.random_crashes ())
                    ~loss ~queue ~ctx)
                [ 6; 17 ])
            queues)
        losses)
    pairs

(* ------------------------------------------------------------------ *)
(* Randomised cross-check over the full configuration space.          *)

let qcheck_differential =
  QCheck.Test.make ~name:"fast engine = classic engine on random configurations" ~count:120
    QCheck.(pair (int_range 3 64) (int_range 0 100_000_000))
    (fun (n, z) ->
      let pair = List.nth pairs (z mod List.length pairs) in
      let aname, mk_adv = List.nth adversaries (z / 7 mod List.length adversaries) in
      let lname, loss = losses.(z / 61 mod Array.length losses) in
      let qname, queue = queues.(z / 253 mod Array.length queues) in
      let alpha = alphas.(z / 1021 mod Array.length alphas) in
      let ctx =
        Printf.sprintf "%s/%s/%s/%s/n=%d/alpha=%g/seed=%d" pair.tag aname lname qname n
          alpha z
      in
      (* Traces are O(messages); keep full event comparison to small n. *)
      differential ~trace:(n <= 12) pair ~n ~alpha ~seed:z ~mk_adv ~loss ~queue ~ctx;
      true)

(* ------------------------------------------------------------------ *)
(* Trace-events reconcile with the metrics counters (fast engine).    *)

let test_fast_trace_reconciles_with_metrics () =
  List.iter
    (fun (pair, queue) ->
      let inputs = pair.mk_inputs ~n:9 ~salt:5 in
      let (module FP : Ftc_sim.Fast_protocol.S) = pair.fast in
      let module FE = Ftc_sim.Fast_engine.Make (FP) in
      let r =
        FE.run
          {
            Engine.n = 9;
            alpha = 0.7;
            seed = 5;
            inputs = Some inputs;
            adversary = Strategy.random_crashes ();
            link = Omission.to_link (Omission.Uniform 0.2);
            queue;
            congest_limit = Some (Congest.default_limit ~n:9);
            record_trace = true;
            max_rounds_override = None;
            watchdog = None;
            round_clock = None;
          }
      in
      let m = r.Engine.metrics in
      let sends = ref 0
      and undelivered = ref 0
      and link_lost = ref 0
      and queue_dropped = ref 0
      and ecn = ref 0
      and crashes = ref 0
      and unroutable = ref 0 in
      List.iter
        (function
          | Trace.Send { delivered; _ } ->
              incr sends;
              if not delivered then incr undelivered
          | Trace.Link_lost _ -> incr link_lost
          | Trace.Queue_dropped _ -> incr queue_dropped
          | Trace.Ecn_marked _ -> incr ecn
          | Trace.Crash _ -> incr crashes
          | Trace.Unroutable _ -> incr unroutable)
        (Trace.events (Option.get r.Engine.trace));
      let chk name expected got = Alcotest.(check int) (pair.tag ^ ": " ^ name) expected got in
      chk "Send events = msgs_sent" m.Metrics.msgs_sent !sends;
      chk "undelivered Sends = dropped + lost + queue-dropped"
        (m.Metrics.msgs_dropped + m.Metrics.msgs_lost_link + m.Metrics.msgs_dropped_queue)
        !undelivered;
      chk "Link_lost events = msgs_lost_link" m.Metrics.msgs_lost_link !link_lost;
      chk "Queue_dropped events = msgs_dropped_queue" m.Metrics.msgs_dropped_queue
        !queue_dropped;
      chk "Ecn_marked events = msgs_ecn_marked" m.Metrics.msgs_ecn_marked !ecn;
      chk "Unroutable events = msgs_unroutable" m.Metrics.msgs_unroutable !unroutable;
      chk "Crash events = crashed nodes"
        (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 r.Engine.crashed)
        !crashes)
    [
      (List.nth pairs 0, None);
      (List.nth pairs 3, Some (Queue_model.make ~capacity:2 ~discipline:Queue_model.Ecn ()));
      (List.nth pairs 4, Some (Queue_model.make ~capacity:2 ~discipline:Queue_model.Drop_tail ()));
    ]

(* ------------------------------------------------------------------ *)
(* Golden fixture: a fast-engine run at n = 8 pinned on disk.         *)

let read_fixture path =
  (* dune runtest runs us next to fixtures/; a manual `dune exec` from
     the project root sees them under test/ instead. *)
  let path = if Sys.file_exists path then path else Filename.concat "test" path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_text () =
  let n = 8 and alpha = 0.7 and seed = 7 in
  let (module FP : Ftc_sim.Fast_protocol.S) =
    Ftc_core.Leader_election_fast.make ~explicit:true params
  in
  let module FE = Ftc_sim.Fast_engine.Make (FP) in
  let r =
    FE.run
      {
        Engine.n;
        alpha;
        seed;
        inputs = Some (Array.make n 0);
        adversary = Strategy.eager ();
        link = Ftc_sim.Link.reliable;
        queue = Some (Queue_model.make ~capacity:2 ~discipline:Queue_model.Ecn ());
        congest_limit = Some (Congest.default_limit ~n);
        record_trace = true;
        max_rounds_override = None;
        watchdog = None;
        round_clock = None;
      }
  in
  let m = r.Engine.metrics in
  let ints a = String.concat " " (Array.to_list (Array.map string_of_int a)) in
  Format.asprintf
    "fast-engine golden: ft-leader-election-explicit n=%d alpha=%g seed=%d eager ecn(2)@\n\
     decisions: %s@\nfaulty: %s@\ncrashed: %s@\ncrash_round: %s@\nrounds_used: %d@\n\
     trace_events: %d@\n%a@\nper-round msgs: %s@\nper-round bits: %s@\n\
     per-round ecn marks: %s@\nper-round queue peak: %s@\n"
    n alpha seed
    (String.concat " " (Array.to_list (Array.map Decision.to_string r.Engine.decisions)))
    (ints (Array.map (fun b -> if b then 1 else 0) r.Engine.faulty))
    (ints (Array.map (fun b -> if b then 1 else 0) r.Engine.crashed))
    (ints r.Engine.crash_round) r.Engine.rounds_used
    (List.length (Trace.events (Option.get r.Engine.trace)))
    Metrics.pp m (ints m.Metrics.per_round_msgs) (ints m.Metrics.per_round_bits)
    (ints m.Metrics.per_round_ecn_marks)
    (ints m.Metrics.per_round_queue_peak)

let golden_path = "fixtures/fast-golden-n8.txt"

let test_golden_fixture () =
  let actual = golden_text () in
  match Sys.getenv_opt "FTC_REGEN_GOLDEN" with
  | Some dest ->
      let oc = open_out dest in
      output_string oc actual;
      close_out oc
  | None ->
      let expected = read_fixture golden_path in
      Alcotest.(check string) "fast-engine n=8 run matches the pinned fixture" expected actual

(* ------------------------------------------------------------------ *)
(* Replay files: v1..v4 round-trip and dual-engine replay.            *)

let replay_fixtures =
  [
    "fixtures/replay-v1.ftc"; "fixtures/replay-v2.ftc"; "fixtures/replay-v3.ftc";
    "fixtures/replay-v4.ftc";
  ]

let header_version text =
  let line =
    List.find
      (fun l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      (String.split_on_char '\n' text)
  in
  match String.split_on_char ' ' line with
  | _ :: v :: _ -> int_of_string v
  | _ -> Alcotest.failf "bad replay header: %s" line

(* Every on-disk format version parses, re-prints under its own version
   number, and the printed form is a fixed point: parse it again and
   print it again, bit-identically. (The fixture files themselves carry
   comments and hand-written floats, so the canonical form — not the
   raw file — is what round-trips exactly.) *)
let test_replay_roundtrip () =
  List.iter
    (fun path ->
      let text = read_fixture path in
      let v = header_version text in
      match Chaos.Replay.of_string text with
      | Error e -> Alcotest.failf "%s: parse failed: %s" path e
      | Ok (case, expect) -> (
          Alcotest.(check bool)
            (path ^ ": minimal version within header version")
            true
            (Chaos.Replay.version_of case <= v);
          let printed = Chaos.Replay.to_string ~version:v ~expect case in
          Alcotest.(check int) (path ^ ": printed header keeps version") v
            (header_version printed);
          match Chaos.Replay.of_string printed with
          | Error e -> Alcotest.failf "%s: reparse failed: %s" path e
          | Ok (case2, expect2) ->
              Alcotest.(check bool) (path ^ ": case round-trips") true
                (Chaos.Case.equal case case2);
              Alcotest.(check (list string)) (path ^ ": expect round-trips") expect expect2;
              Alcotest.(check string)
                (path ^ ": canonical form is a fixed point")
                printed
                (Chaos.Replay.to_string ~version:v ~expect:expect2 case2)))
    replay_fixtures

(* The transportless fixtures replay on both engines to the same run —
   decisions, metrics, trace, and oracle verdicts. *)
let test_replay_both_engines () =
  List.iter
    (fun path ->
      match Chaos.Replay.of_string (read_fixture path) with
      | Error e -> Alcotest.failf "%s: parse failed: %s" path e
      | Ok (case, _) -> (
          match (Chaos.Case.run case, Chaos.Case.run_fast case) with
          | Error e, _ -> Alcotest.failf "%s: classic replay: %s" path (Chaos.Case.error_to_string e)
          | _, Error e -> Alcotest.failf "%s: fast replay: %s" path (Chaos.Case.error_to_string e)
          | Ok (ra, fa), Ok (rb, fb) ->
              check_same ~ctx:path ra rb;
              Alcotest.(check (list string))
                (path ^ ": findings agree")
                (List.map (fun f -> Format.asprintf "%a" Chaos.Oracle.pp f) fa)
                (List.map (fun f -> Format.asprintf "%a" Chaos.Oracle.pp f) fb)))
    [ "fixtures/replay-v1.ftc"; "fixtures/replay-v2.ftc" ]

let base_case : Chaos.Case.t =
  {
    Chaos.Case.protocol = "ft-leader-election";
    n = 4;
    alpha = 0.7;
    seed = 1;
    inputs = Array.make 4 0;
    plan = [];
    adversary = None;
    loss = Omission.No_loss;
    queue = None;
    transport = false;
  }

let test_replay_version_of () =
  let chk name expected case =
    Alcotest.(check int) name expected (Chaos.Replay.version_of case)
  in
  chk "bare case is v1" 1 base_case;
  chk "loss needs v2" 2 { base_case with loss = Omission.Uniform 0.1 };
  chk "transport needs v2" 2 { base_case with transport = true };
  chk "named adversary needs v3" 3 { base_case with adversary = Some "eager" };
  chk "queue needs v4" 4
    {
      base_case with
      queue = Some (Queue_model.make ~capacity:4 ~discipline:Queue_model.Drop_tail ());
    };
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : string) -> false
  in
  Alcotest.(check bool) "to_string rejects a too-old version" true
    (raises (fun () ->
         Chaos.Replay.to_string ~version:1
           { base_case with loss = Omission.Uniform 0.1 }));
  Alcotest.(check bool) "to_string rejects an unknown version" true
    (raises (fun () -> Chaos.Replay.to_string ~version:5 base_case))

(* Fast replay of a transport case is an error, not a wrong answer. *)
let test_run_fast_rejects_transport () =
  match Chaos.Case.run_fast { base_case with transport = true } with
  | Error (Chaos.Case.Invalid_case _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Chaos.Case.error_to_string e)
  | Ok _ -> Alcotest.fail "transport case ran on the fast engine"

(* ------------------------------------------------------------------ *)
(* Runner integration: the fast_protocol spec field.                  *)

let test_runner_fast_routing () =
  let spec =
    {
      (Runner.default_spec (Ftc_core.Agreement.make params) ~n:48 ~alpha:0.7) with
      Runner.inputs = Runner.Random_bits 0.8;
      adversary = Strategy.eager;
      record_trace = true;
    }
  in
  let classic = Runner.run spec ~seed:3 in
  let fast =
    Runner.run
      { spec with Runner.fast_protocol = Some (Ftc_core.Agreement_fast.make params) }
      ~seed:3
  in
  Alcotest.(check (array int)) "inputs agree" classic.Runner.inputs_used fast.Runner.inputs_used;
  check_same ~ctx:"runner fast routing" classic.Runner.result fast.Runner.result

let test_runner_fast_rejects_transport () =
  let spec =
    {
      (Runner.default_spec (Ftc_core.Agreement.make params) ~n:16 ~alpha:0.7) with
      Runner.transport = Some Ftc_transport.Transport.default_config;
      fast_protocol = Some (Ftc_core.Agreement_fast.make params);
    }
  in
  match Runner.run spec ~seed:1 with
  | exception Invalid_argument _ -> ()
  | (_ : Runner.outcome) -> Alcotest.fail "fast + transport spec should raise"

(* ------------------------------------------------------------------ *)
(* Satellite regression: aggregation over an empty trial list.        *)

let test_aggregate_empty () =
  let a = Runner.aggregate_stats [] in
  Alcotest.(check int) "trials" 0 a.Runner.trials;
  Alcotest.(check int) "successes" 0 a.Runner.successes;
  Alcotest.(check (float 0.)) "success_rate" 0. a.Runner.success_rate;
  Alcotest.(check int) "msgs summary is the zero summary" 0 a.Runner.msgs.Ftc_analysis.Stats.count;
  Alcotest.(check bool) "aggregate_stats [] = empty_aggregate" true (a = Runner.empty_aggregate);
  Alcotest.(check bool) "aggregate ~ok [] = empty_aggregate" true
    (Runner.aggregate ~ok:(fun _ -> true) [] = Runner.empty_aggregate)

let test_aggregate_singleton () =
  let a =
    Runner.aggregate_stats [ { Runner.success = true; msgs = 10; bits = 80; rounds = 3 } ]
  in
  Alcotest.(check int) "trials" 1 a.Runner.trials;
  Alcotest.(check (float 0.)) "success_rate" 1. a.Runner.success_rate;
  Alcotest.(check (float 0.)) "msgs mean" 10. a.Runner.msgs.Ftc_analysis.Stats.mean;
  Alcotest.(check (float 0.)) "rounds mean" 3. a.Runner.rounds.Ftc_analysis.Stats.mean

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fast_engine"
    [
      ( "differential",
        [
          Alcotest.test_case "all pairs x adversaries, traced" `Quick test_sweep_adversaries;
          Alcotest.test_case "all pairs x loss x queue, traced" `Quick test_sweep_loss_queue;
          QCheck_alcotest.to_alcotest qcheck_differential;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fast trace reconciles with metrics" `Quick
            test_fast_trace_reconciles_with_metrics;
        ] );
      ("golden", [ Alcotest.test_case "n=8 fixture" `Quick test_golden_fixture ]);
      ( "replay",
        [
          Alcotest.test_case "v1-v4 parse and re-print bit-identically" `Quick
            test_replay_roundtrip;
          Alcotest.test_case "v1/v2 replay identically on both engines" `Quick
            test_replay_both_engines;
          Alcotest.test_case "version_of and to_string ~version" `Quick test_replay_version_of;
          Alcotest.test_case "run_fast rejects transport cases" `Quick
            test_run_fast_rejects_transport;
        ] );
      ( "runner",
        [
          Alcotest.test_case "fast_protocol spec routes to the fast engine" `Quick
            test_runner_fast_routing;
          Alcotest.test_case "fast + transport is rejected" `Quick
            test_runner_fast_rejects_transport;
          Alcotest.test_case "aggregate of no trials is the zero aggregate" `Quick
            test_aggregate_empty;
          Alcotest.test_case "aggregate of one trial" `Quick test_aggregate_singleton;
        ] );
    ]
