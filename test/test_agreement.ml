(* End-to-end tests for fault-tolerant implicit agreement (Section V-A):
   consensus and validity across input patterns, adversaries and seeds;
   the zero-bias; the explicit extension; and message-size discipline. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Params = Ftc_core.Params
module Agreement = Ftc_core.Agreement
module Props = Ftc_core.Properties
module Rng = Ftc_rng.Rng

let params = Params.default

let run ?(explicit = false) ?(adversary = Ftc_fault.Strategy.none) ~n ~alpha ~seed ~inputs () =
  let (module P) = Agreement.make ~explicit params in
  let module E = Engine.Make (P) in
  let r =
    E.run
      { (Engine.default_config ~n ~alpha ~seed) with
        inputs = Some inputs;
        adversary = adversary ()
      }
  in
  Alcotest.(check (list string)) "no model violations" [] (List.map Ftc_sim.Violation.to_string r.violations);
  Alcotest.(check bool) "run did not time out" false r.timed_out;
  r

let random_inputs ~n ~seed p =
  let rng = Rng.create seed in
  Array.init n (fun _ -> if Ftc_rng.Dist.bernoulli rng p then 1 else 0)

let test_all_zeros_decides_zero () =
  for seed = 1 to 10 do
    let n = 128 in
    let inputs = Array.make n 0 in
    let r = run ~n ~alpha:1.0 ~seed ~inputs () in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) "ok" true rep.ok;
    Alcotest.(check (option int)) "value 0" (Some 0) rep.value
  done

let test_all_ones_decides_one () =
  for seed = 1 to 10 do
    let n = 128 in
    let inputs = Array.make n 1 in
    let r = run ~n ~alpha:1.0 ~seed ~inputs () in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) "ok" true rep.ok;
    Alcotest.(check (option int)) "value 1" (Some 1) rep.value;
    (* With unanimous 1 inputs the iterative phase is silent: only the
       registration round costs messages. *)
    let k = Params.referee_count params ~n ~alpha:1.0 in
    let candidates =
      Array.fold_left
        (fun acc (o : Observation.t) -> if o.role = Observation.Candidate then acc + 1 else acc)
        0 r.observations
    in
    Alcotest.(check int) "only registration messages" (candidates * k) r.metrics.msgs_sent
  done

let test_zero_bias_with_single_zero () =
  (* One candidate holding 0 suffices for a global 0 decision w.h.p.; to
     make sure a candidate holds it, give input 0 to everyone except one
     node... Instead: a single zero somewhere is only guaranteed to win
     if a candidate drew it, so test with a constant fraction of zeros. *)
  for seed = 1 to 10 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 3) 0.8 in
    if Array.exists (fun v -> v = 0) inputs then begin
      let r = run ~n ~alpha:1.0 ~seed ~inputs () in
      let rep = Props.check_implicit_agreement ~inputs r in
      Alcotest.(check bool) "ok" true rep.ok;
      (* Fault-free: if some candidate held 0, the decision must be 0. *)
      let some_candidate_zero =
        Array.exists2
          (fun (o : Observation.t) input -> o.role = Observation.Candidate && input = 0)
          r.observations inputs
      in
      if some_candidate_zero then
        Alcotest.(check (option int)) "zero wins" (Some 0) rep.value
    end
  done

let test_validity_and_consistency_random_inputs () =
  for seed = 1 to 15 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 11) 0.5 in
    let r =
      run ~n ~alpha:0.5 ~seed ~inputs
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ())
        ()
    in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) (Printf.sprintf "seed %d ok" seed) true rep.ok
  done

let test_under_each_adversary () =
  List.iter
    (fun (name, adv) ->
      let ok = ref 0 in
      let trials = 12 in
      for seed = 1 to trials do
        let n = 128 in
        let inputs = random_inputs ~n ~seed:(seed * 17) 0.5 in
        let r = run ~n ~alpha:0.5 ~seed:(seed * 29) ~inputs ~adversary:adv () in
        if (Props.check_implicit_agreement ~inputs r).ok then incr ok
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s: >= 11/12 agreements (got %d)" name !ok)
        true (!ok >= trials - 1))
    (Ftc_fault.Strategy.all ())

let test_deciders_are_candidates () =
  let n = 128 in
  let inputs = random_inputs ~n ~seed:5 0.5 in
  let r = run ~n ~alpha:0.7 ~seed:31 ~inputs () in
  Array.iteri
    (fun i d ->
      match d with
      | Decision.Agreed _ ->
          Alcotest.(check bool)
            (Printf.sprintf "decider %d is a candidate" i)
            true
            (r.observations.(i).Observation.role = Observation.Candidate)
      | _ -> ())
    r.decisions

let test_explicit_everyone_decides () =
  for seed = 1 to 8 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 41) 0.5 in
    let r =
      run ~explicit:true ~n ~alpha:0.6 ~seed ~inputs
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ())
        ()
    in
    let rep = Props.check_explicit_agreement ~inputs r in
    Alcotest.(check bool) (Printf.sprintf "seed %d explicit ok" seed) true rep.ok
  done

let test_single_bit_payloads () =
  (* Theorem 5.1 counts bits: every implicit-phase message is a tagged
     single bit, so bits <= msgs * (tag + 1). *)
  let n = 256 in
  let inputs = random_inputs ~n ~seed:7 0.5 in
  let r = run ~n ~alpha:0.5 ~seed:43 ~inputs () in
  Alcotest.(check int) "bits = msgs * (tag+1)"
    (r.metrics.msgs_sent * (Ftc_sim.Congest.tag_bits + 1))
    r.metrics.bits_sent

let test_rounds_within_calendar () =
  let n = 128 and alpha = 0.5 in
  let budget = Agreement.calendar_rounds params ~n ~alpha in
  let inputs = random_inputs ~n ~seed:3 0.5 in
  let r =
    run ~n ~alpha ~seed:3 ~inputs ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ()) ()
  in
  Alcotest.(check bool) "within calendar" true (r.rounds_used <= budget)

let test_messages_scale_with_committee_not_n () =
  (* Theorem 5.1: Õ(sqrt n) messages — compare against flooding's n^2. *)
  let n = 2048 in
  let inputs = random_inputs ~n ~seed:9 0.5 in
  let r = run ~n ~alpha:0.7 ~seed:47 ~inputs () in
  Alcotest.(check bool)
    (Printf.sprintf "far below n^2 (%d)" r.metrics.msgs_sent)
    true
    (r.metrics.msgs_sent < n * n / 50)

let qcheck_agreement_holds =
  QCheck.Test.make ~name:"agreement + validity across random configurations" ~count:25
    QCheck.(triple (int_range 0 10_000) (int_range 32 160) (float_range 0.4 1.0))
    (fun (seed, n, alpha) ->
      let inputs = random_inputs ~n ~seed:(seed + 1) 0.5 in
      let r =
        run ~n ~alpha ~seed ~inputs
          ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ())
          ()
      in
      (Props.check_implicit_agreement ~inputs r).ok)

let () =
  Alcotest.run "agreement"
    [
      ( "values",
        [
          Alcotest.test_case "all zeros" `Quick test_all_zeros_decides_zero;
          Alcotest.test_case "all ones" `Quick test_all_ones_decides_one;
          Alcotest.test_case "zero bias" `Quick test_zero_bias_with_single_zero;
          Alcotest.test_case "random inputs" `Quick test_validity_and_consistency_random_inputs;
        ] );
      ( "faulty",
        [ Alcotest.test_case "every adversary" `Slow test_under_each_adversary ] );
      ( "structure",
        [
          Alcotest.test_case "deciders are candidates" `Quick test_deciders_are_candidates;
          Alcotest.test_case "single-bit payloads" `Quick test_single_bit_payloads;
          Alcotest.test_case "rounds within calendar" `Quick test_rounds_within_calendar;
          Alcotest.test_case "sublinear messages" `Slow test_messages_scale_with_committee_not_n;
        ] );
      ( "explicit",
        [ Alcotest.test_case "everyone decides" `Quick test_explicit_everyone_decides ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ qcheck_agreement_holds ]);
    ]
