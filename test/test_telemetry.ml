(* Unit tests for the telemetry subsystem: log-scale histograms, the
   metric registry, phase-span cutting, and the exporters — including
   the Chrome-trace round trip through the journal's JSON codec. *)

module Hist = Ftc_telemetry.Hist
module Registry = Ftc_telemetry.Registry
module Span = Ftc_telemetry.Span
module Recorder = Ftc_telemetry.Recorder
module Export = Ftc_telemetry.Export
module Json = Ftc_journal.Json

(* -- histogram bucketing -- *)

let test_hist_bucket_boundaries () =
  (* Bucket 0 holds v <= 0; bucket i holds [2^(i-1), 2^i). *)
  Alcotest.(check int) "zero" 0 (Hist.bucket_of 0);
  Alcotest.(check int) "negative" 0 (Hist.bucket_of (-7));
  Alcotest.(check int) "one" 1 (Hist.bucket_of 1);
  Alcotest.(check int) "two" 2 (Hist.bucket_of 2);
  Alcotest.(check int) "three" 2 (Hist.bucket_of 3);
  Alcotest.(check int) "four" 3 (Hist.bucket_of 4);
  (* Every power of two starts its own bucket; its predecessor ends the
     bucket below. *)
  for i = 1 to Hist.n_buckets - 2 do
    let lo = 1 lsl (i - 1) in
    Alcotest.(check int) (Printf.sprintf "2^%d starts bucket" (i - 1)) i (Hist.bucket_of lo);
    if i > 1 then
      Alcotest.(check int)
        (Printf.sprintf "2^%d - 1 ends bucket below" (i - 1))
        (i - 1)
        (Hist.bucket_of (lo - 1))
  done

let test_hist_overflow_bucket () =
  let top = Hist.n_buckets - 1 in
  let first_overflow = 1 lsl (Hist.n_buckets - 2) in
  Alcotest.(check int) "first overflowing value" top (Hist.bucket_of first_overflow);
  Alcotest.(check int) "max_int overflows" top (Hist.bucket_of max_int);
  Alcotest.(check int)
    "largest non-overflow" (top - 1)
    (Hist.bucket_of (first_overflow - 1));
  Alcotest.(check int) "overflow upper bound" max_int (Hist.upper_bound top)

let test_hist_record_and_digest () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 1; 2; 3; 100; 0 ];
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check int) "sum" 106 (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 100 (Hist.max_value h);
  Alcotest.(check (float 0.001)) "mean" 21.2 (Hist.mean h);
  Alcotest.(check int) "quantile clamped to max" 100 (Hist.quantile h 1.0);
  Alcotest.(check int) "median in range" (Hist.quantile h 0.5) (Hist.quantile h 0.5);
  let b = Hist.buckets h in
  Alcotest.(check int) "bucket array length" Hist.n_buckets (Array.length b);
  Alcotest.(check int) "all samples bucketed" 5 (Array.fold_left ( + ) 0 b)

(* -- registry -- *)

let test_registry_ops () =
  let r = Registry.create () in
  Registry.incr r "c" 2;
  Registry.incr r "c" 3;
  Registry.set_gauge r "g" 7;
  Registry.gauge_max r "g" 4;
  Registry.gauge_max r "g" 9;
  Registry.observe r "h" 5;
  match Registry.snapshot r with
  | [ ("c", Registry.Counter 5); ("g", Registry.Gauge 9); ("h", Registry.Hist h) ] ->
      Alcotest.(check int) "hist count" 1 (Hist.count h)
  | other -> Alcotest.fail (Printf.sprintf "unexpected snapshot (%d entries)" (List.length other))

let test_registry_disabled_and_kinds () =
  Registry.incr Registry.disabled "c" 1;
  Registry.observe Registry.disabled "h" 1;
  Alcotest.(check int) "disabled stays empty" 0 (List.length (Registry.snapshot Registry.disabled));
  let r = Registry.create () in
  Registry.incr r "c" 1;
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: c registered with another kind") (fun () ->
      Registry.set_gauge r "c" 1)

(* -- span cutting -- *)

let test_span_cut () =
  let spans =
    Span.cut ~protocol:"p" ~track:"seed-1"
      ~phases:[ ("a", 0); ("b", 2); ("c", 8) ]
      ~rounds_used:5
      ~per_round_msgs:[| 10; 10; 1; 1; 1 |]
      ~per_round_bits:[| 40; 40; 4; 4; 4 |]
      ~round_ns:[| 100L; 100L; 10L; 10L; 10L |]
      ~start_ns:1000L
  in
  (* "c" starts past rounds_used, so only "a" and "b" survive; "b" is
     clipped to the rounds that ran. *)
  match spans with
  | [ a; b ] ->
      Alcotest.(check string) "first phase" "a" a.Span.phase;
      Alcotest.(check int) "a msgs" 20 a.Span.msgs;
      Alcotest.(check int) "a bits" 80 a.Span.bits;
      Alcotest.(check int64) "a start offset" 1000L a.Span.start_ns;
      Alcotest.(check int64) "a duration" 200L a.Span.dur_ns;
      Alcotest.(check string) "second phase" "b" b.Span.phase;
      Alcotest.(check int) "b end clipped" 5 b.Span.end_round;
      Alcotest.(check int) "b msgs" 3 b.Span.msgs;
      Alcotest.(check int64) "b start offset" 1200L b.Span.start_ns;
      Alcotest.(check int64) "b duration" 30L b.Span.dur_ns
  | other -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length other))

let test_span_cut_synthetic_run_phase () =
  match
    Span.cut ~protocol:"p" ~track:"t"
      ~phases:[ ("late", 2) ]
      ~rounds_used:4
      ~per_round_msgs:[| 1; 1; 1; 1 |]
      ~per_round_bits:[| 2; 2; 2; 2 |]
      ~round_ns:[||] ~start_ns:0L
  with
  | [ run; late ] ->
      Alcotest.(check string) "synthetic prefix" "run" run.Span.phase;
      Alcotest.(check int) "prefix covers the gap" 2 run.Span.end_round;
      Alcotest.(check string) "declared phase kept" "late" late.Span.phase;
      Alcotest.(check int64) "no clock, zero duration" 0L late.Span.dur_ns
  | other -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length other))

(* -- exporters -- *)

let sample_events =
  [
    Recorder.Trial
      {
        track = "seed-1";
        protocol = "p";
        seed = 1;
        ok = true;
        msgs = 23;
        bits = 92;
        rounds = 5;
        start_ns = 1000L;
        dur_ns = 230L;
      };
    Recorder.Span
      {
        Span.protocol = "p";
        track = "seed-1";
        phase = "a";
        start_round = 0;
        end_round = 2;
        msgs = 20;
        bits = 80;
        start_ns = 1000L;
        dur_ns = 200L;
      };
    Recorder.Job { pool = "trials"; worker = 0; start_ns = 990L; dur_ns = 260L; wait_ns = 40L };
    Recorder.Heartbeat { at_ns = 1300L; completed = 1; failed = 0; total = 1 };
  ]

let sample_metrics () =
  let r = Registry.create () in
  Registry.incr r "ftc_trials_total" 1;
  Registry.set_gauge r "ftc_pool_queue_depth_peak" 3;
  Registry.observe r "ftc_trial_msgs" 23;
  Registry.snapshot r

let test_events_jsonl_round_trip () =
  let metrics = sample_metrics () in
  let body = Export.events_jsonl ~metrics ~events:sample_events in
  match Export.parse_events_jsonl body with
  | Error e -> Alcotest.fail e
  | Ok (metrics', events') ->
      Alcotest.(check int) "metric count" (List.length metrics) (List.length metrics');
      Alcotest.(check bool) "events identical" true (events' = sample_events);
      List.iter2
        (fun (n, v) (n', v') ->
          Alcotest.(check string) "metric name" n n';
          match (v, v') with
          | Registry.Counter a, Registry.Counter b -> Alcotest.(check int) "counter" a b
          | Registry.Gauge a, Registry.Gauge b -> Alcotest.(check int) "gauge" a b
          | Registry.Hist a, Registry.Hist b ->
              Alcotest.(check int) "hist count" (Hist.count a) (Hist.count b);
              Alcotest.(check int) "hist sum" (Hist.sum a) (Hist.sum b);
              Alcotest.(check (array int)) "hist buckets" (Hist.buckets a) (Hist.buckets b)
          | _ -> Alcotest.fail "metric kind changed in transit")
        metrics metrics'

let test_chrome_trace_round_trip () =
  (* The trace must survive a print → parse cycle through the journal
     codec and satisfy the structural validator Perfetto needs. *)
  let body = Json.to_string (Export.chrome_trace sample_events) in
  (match Json.of_string body with
  | Error e -> Alcotest.fail ("trace.json does not re-parse: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check bool) "has events" true (List.length evs > 0);
          List.iter
            (fun ev ->
              let ph =
                match Option.bind (Json.member "ph" ev) Json.to_str with
                | Some ph -> ph
                | None -> Alcotest.fail "event without ph"
              in
              if ph <> "M" then
                Alcotest.(check bool) "ts present" true (Json.member "ts" ev <> None);
              if ph = "X" then begin
                let dur =
                  match Option.bind (Json.member "dur" ev) Json.to_int with
                  | Some d -> d
                  | None -> Alcotest.fail "complete event without dur"
                in
                Alcotest.(check bool) "dur at least 1us" true (dur >= 1)
              end)
            evs
      | _ -> Alcotest.fail "no traceEvents array"));
  match Export.validate_trace_json body with
  | Ok n -> Alcotest.(check bool) "validator counts events" true (n > 0)
  | Error e -> Alcotest.fail e

let test_prometheus_snapshot () =
  let body = Export.prometheus (sample_metrics ()) in
  (match Export.validate_prometheus body with
  | Ok n -> Alcotest.(check bool) "has samples" true (n > 0)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "counter typed" true
    (Astring.String.is_infix ~affix:"# TYPE ftc_trials_total counter" body);
  Alcotest.(check bool) "histogram cumulative +Inf" true
    (Astring.String.is_infix ~affix:"ftc_trial_msgs_bucket{le=\"+Inf\"}" body)

let test_summary_mentions_phases () =
  let s = Export.summary ~metrics:(sample_metrics ()) ~events:sample_events in
  Alcotest.(check bool) "trial line" true (Astring.String.is_infix ~affix:"trials: 1" s);
  Alcotest.(check bool) "phase row" true (Astring.String.is_infix ~affix:"a" s);
  Alcotest.(check bool) "protocol column" true (Astring.String.is_infix ~affix:"p" s)

let test_validators_reject_garbage () =
  (match Export.validate_trace_json "not json" with
  | Ok _ -> Alcotest.fail "accepted garbage trace"
  | Error _ -> ());
  (match Export.validate_trace_json "{\"traceEvents\": 3}" with
  | Ok _ -> Alcotest.fail "accepted non-array traceEvents"
  | Error _ -> ());
  (match Export.validate_prometheus "metric_without_value\n" with
  | Ok _ -> Alcotest.fail "accepted sample without value"
  | Error _ -> ());
  match Export.parse_events_jsonl "{\"not\":\"the magic\"}\n" with
  | Ok _ -> Alcotest.fail "accepted stream without header"
  | Error _ -> ()

let test_recorder_disabled () =
  Alcotest.(check bool) "disabled" false (Recorder.enabled Recorder.disabled);
  Alcotest.(check int64) "clock never read" 0L (Recorder.now_ns Recorder.disabled);
  Recorder.emit Recorder.disabled (List.hd sample_events);
  Alcotest.(check int) "no events kept" 0 (List.length (Recorder.events Recorder.disabled));
  Alcotest.(check bool) "registry disabled too" false
    (Registry.enabled (Recorder.registry Recorder.disabled))

let () =
  Alcotest.run "telemetry"
    [
      ( "hist",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_bucket_boundaries;
          Alcotest.test_case "overflow bucket" `Quick test_hist_overflow_bucket;
          Alcotest.test_case "record and digest" `Quick test_hist_record_and_digest;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ops and snapshot" `Quick test_registry_ops;
          Alcotest.test_case "disabled and kinds" `Quick test_registry_disabled_and_kinds;
        ] );
      ( "span",
        [
          Alcotest.test_case "cut" `Quick test_span_cut;
          Alcotest.test_case "synthetic run phase" `Quick test_span_cut_synthetic_run_phase;
        ] );
      ( "export",
        [
          Alcotest.test_case "events.jsonl round trip" `Quick test_events_jsonl_round_trip;
          Alcotest.test_case "chrome trace round trip" `Quick test_chrome_trace_round_trip;
          Alcotest.test_case "prometheus snapshot" `Quick test_prometheus_snapshot;
          Alcotest.test_case "summary" `Quick test_summary_mentions_phases;
          Alcotest.test_case "validators reject garbage" `Quick test_validators_reject_garbage;
        ] );
      ( "recorder",
        [ Alcotest.test_case "disabled recorder" `Quick test_recorder_disabled ] );
    ]
