(* The serve stack, bottom-up: framing (including torn frames and the
   poisoned decoder), the wire codec, bounded admission, the supervised
   worker pool under injected crashes, the client's backoff ladder, and
   one end-to-end server-in-a-domain run over a temp Unix socket. *)

module Json = Ftc_journal.Json
module Frame = Ftc_serve.Frame
module Wire = Ftc_serve.Wire
module Admission = Ftc_serve.Admission
module Inject = Ftc_serve.Inject
module Supervisor = Ftc_serve.Supervisor
module Server = Ftc_serve.Server
module Client = Ftc_serve.Client
module Top = Ftc_serve.Top
module Transport = Ftc_transport.Transport

(* ---- framing ---- *)

let sample_doc =
  (* Control characters, multi-byte UTF-8 and escapes in one payload:
     what actually crosses the wire when a detail string is ugly. *)
  Json.Obj
    [
      ("op", Json.String "rejected");
      ("reason", Json.String "ctl \x00\x01\x1f tab\t quote\" back\\ caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x90\xab");
      ("n", Json.Int 42);
    ]

let expect_none d label =
  match Frame.Decoder.next d with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.failf "%s: got a doc too early" label
  | Error e -> Alcotest.failf "%s: decoder error %s" label e

let expect_doc d label expected =
  match Frame.Decoder.next d with
  | Ok (Some doc) ->
      Alcotest.(check string) label (Json.to_string expected) (Json.to_string doc)
  | Ok None -> Alcotest.failf "%s: no doc" label
  | Error e -> Alcotest.failf "%s: decoder error %s" label e

let test_frame_byte_at_a_time () =
  let frame = Frame.encode sample_doc in
  let d = Frame.Decoder.create () in
  String.iteri
    (fun i c ->
      if i < String.length frame - 1 then begin
        Frame.Decoder.feed_string d (String.make 1 c);
        expect_none d (Printf.sprintf "byte %d" i)
      end
      else Frame.Decoder.feed_string d (String.make 1 c))
    frame;
  expect_doc d "final byte completes the frame" sample_doc;
  Alcotest.(check int) "buffer drained" 0 (Frame.Decoder.buffered d)

let test_frame_torn_at_length_boundary () =
  (* The cut lands inside the 4-byte length prefix itself: 2 bytes
     arrive, then the connection stalls. The decoder must report "no
     frame yet" (not an error) and pick up cleanly when the rest lands. *)
  let frame = Frame.encode sample_doc in
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d (String.sub frame 0 2);
  expect_none d "2 of 4 length bytes";
  Alcotest.(check int) "torn length prefix is buffered" 2 (Frame.Decoder.buffered d);
  Frame.Decoder.feed_string d (String.sub frame 2 (String.length frame - 2));
  expect_doc d "rest of the frame" sample_doc;
  expect_none d "stream empty again";
  Alcotest.(check int) "no residue" 0 (Frame.Decoder.buffered d)

let test_frame_back_to_back () =
  let a = Json.Obj [ ("op", Json.String "ping") ] in
  let b = Json.Obj [ ("op", Json.String "stats") ] in
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d (Frame.encode a ^ Frame.encode b);
  expect_doc d "first of two coalesced frames" a;
  expect_doc d "second of two coalesced frames" b;
  expect_none d "then empty"

let expect_poisoned d label =
  (match Frame.Decoder.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a protocol error" label);
  match Frame.Decoder.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: decoder not poisoned" label

let test_frame_zero_length_poisons () =
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d "\x00\x00\x00\x00";
  expect_poisoned d "zero length"

let test_frame_oversized_length_poisons () =
  let d = Frame.Decoder.create () in
  let len = Frame.max_len + 1 in
  let prefix = Bytes.create 4 in
  Bytes.set_uint8 prefix 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 prefix 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 prefix 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 prefix 3 (len land 0xff);
  Frame.Decoder.feed_string d (Bytes.to_string prefix);
  expect_poisoned d "oversized length"

let test_frame_bad_json_poisons () =
  let d = Frame.Decoder.create () in
  let payload = "{not json" in
  let prefix = Bytes.create 4 in
  Bytes.set_uint8 prefix 0 0;
  Bytes.set_uint8 prefix 1 0;
  Bytes.set_uint8 prefix 2 0;
  Bytes.set_uint8 prefix 3 (String.length payload);
  Frame.Decoder.feed_string d (Bytes.to_string prefix ^ payload);
  expect_poisoned d "malformed JSON payload"

(* ---- wire codec ---- *)

let submit_fixture =
  {
    Wire.id = "c7";
    protocol = "ft-leader-election";
    n = 64;
    alpha = 0.125;
    seed = 12345;
    adversary = "none";
    timeout_ms = Some 5000;
  }

let test_wire_request_roundtrip () =
  List.iter
    (fun (label, r) ->
      match Wire.request_of_json (Wire.request_to_json r) with
      | Ok r' -> Alcotest.(check bool) label true (r = r')
      | Error e -> Alcotest.failf "%s: %s" label e)
    [
      ("submit", Wire.Submit submit_fixture);
      ("submit no timeout", Wire.Submit { submit_fixture with timeout_ms = None });
      ("ping", Wire.Ping);
      ("stats", Wire.Stats);
      ("introspect", Wire.Introspect);
    ]

let test_wire_reply_roundtrip () =
  List.iter
    (fun (label, r) ->
      match Wire.reply_of_json (Wire.reply_to_json r) with
      | Ok r' -> Alcotest.(check bool) label true (r = r')
      | Error e -> Alcotest.failf "%s: %s" label e)
    [
      ("accepted", Wire.Accepted { id = "a"; ticket = 9 });
      ("shed", Wire.Shed { id = "b"; retry_after_ms = 40; draining = true });
      ("rejected", Wire.Rejected { id = "c"; reason = "n out of range \xe2\x82\xac" });
      ( "result",
        Wire.Result
          { id = "d"; ticket = 3; ok = false; detail = "leader\tdisagrees"; rounds = 12; msgs = 480; bits = 9600; attempts = 2 } );
      ("failed", Wire.Failed { id = "e"; ticket = 4; class_ = Wire.failed_crashed; detail = "3 attempts" });
      ("pong", Wire.Pong { uptime_ms = 123456; version = Wire.protocol_version });
      ("stats reply", Wire.Stats_reply [ ("serve/accepted", 10); ("serve/sheds", 2) ]);
      ( "introspect reply",
        Wire.Introspect_reply
          {
            uptime_ms = 987;
            version = Wire.protocol_version;
            pending = 3;
            open_ = 5;
            peak_open = 9;
            bound = 64;
            ewma_ms = 42.5;
            lat_count = 17;
            p50_ms = 12;
            p90_ms = 60;
            p99_ms = 110;
            workers =
              [
                { w_idx = 0; w_busy = true; w_ticket = 7; w_round = 4; w_respawns = 1 };
                { w_idx = 1; w_busy = false; w_ticket = -1; w_round = 0; w_respawns = 0 };
              ];
            injections = [ ("kill-worker", 2); ("delay-frame", 1) ];
            counters = [ ("accepted", 10); ("results", 8) ];
          } );
    ]

let test_wire_pong_backward_compat () =
  (* A version-1 server sends a bare pong; the newer fields decode as 0
     so old captures and mixed fleets keep working. *)
  match Wire.reply_of_json (Json.Obj [ ("op", Json.String "pong") ]) with
  | Ok (Wire.Pong { uptime_ms; version }) ->
      Alcotest.(check int) "uptime defaults" 0 uptime_ms;
      Alcotest.(check int) "version defaults" 0 version
  | Ok _ -> Alcotest.fail "bare pong decoded as something else"
  | Error e -> Alcotest.failf "bare pong rejected: %s" e

let test_wire_rejects_unknown () =
  (match Wire.request_of_json (Json.Obj [ ("op", Json.String "evict") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown request op accepted");
  match Wire.reply_of_json (Json.Obj [ ("op", Json.String "accepted") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted reply without fields decoded"

let test_wire_through_frame () =
  (* The full stack a reply travels: wire encode → frame → byte stream →
     decoder → wire decode, with awkward strings in the payload. *)
  let reply =
    Wire.Failed { id = "x\x01y"; ticket = 77; class_ = Wire.failed_exception; detail = "caf\xc3\xa9 \x00 end" }
  in
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed_string d (Frame.encode (Wire.reply_to_json reply));
  match Frame.Decoder.next d with
  | Ok (Some doc) -> (
      match Wire.reply_of_json doc with
      | Ok r -> Alcotest.(check bool) "reply survives the frame" true (r = reply)
      | Error e -> Alcotest.failf "decode: %s" e)
  | _ -> Alcotest.fail "frame did not round-trip"

(* ---- admission ---- *)

let test_admission_bound_and_shed () =
  let q = Admission.create ~bound:2 ~workers:1 () in
  Alcotest.(check bool) "first admitted" true (Admission.admit q 1 = Admission.Admitted);
  Alcotest.(check bool) "second admitted" true (Admission.admit q 2 = Admission.Admitted);
  (match Admission.admit q 3 with
  | Admission.Shed_full hint -> Alcotest.(check bool) "hint positive" true (hint >= 1)
  | _ -> Alcotest.fail "third submit not shed");
  Alcotest.(check int) "open = bound" 2 (Admission.open_count q);
  Alcotest.(check int) "peak tracks" 2 (Admission.peak_open q)

let test_admission_requeue_is_bound_neutral () =
  let q = Admission.create ~bound:2 ~workers:1 () in
  ignore (Admission.admit q 10);
  ignore (Admission.admit q 11);
  let taken = Admission.try_take q in
  Alcotest.(check (option int)) "front first" (Some 10) taken;
  Alcotest.(check int) "take keeps it open" 2 (Admission.open_count q);
  Admission.requeue q 10;
  Alcotest.(check int) "requeue keeps it open" 2 (Admission.open_count q);
  (match Admission.admit q 12 with
  | Admission.Shed_full _ -> ()
  | _ -> Alcotest.fail "requeue created admission capacity");
  Alcotest.(check (option int)) "requeued lands at the front" (Some 10) (Admission.try_take q)

let test_admission_drain () =
  let q = Admission.create ~bound:4 ~workers:1 () in
  ignore (Admission.admit q 1);
  Admission.drain q;
  Alcotest.(check bool) "draining" true (Admission.draining q);
  (match Admission.admit q 2 with
  | Admission.Shed_draining _ -> ()
  | _ -> Alcotest.fail "admission still open while draining");
  Alcotest.(check bool) "not yet quiescent" false (Admission.quiescent q);
  (match Admission.take q with
  | Some 1 -> ()
  | _ -> Alcotest.fail "draining queue still serves admitted work");
  Admission.complete q ~service_ms:3.0;
  Alcotest.(check bool) "quiescent once served" true (Admission.quiescent q);
  Alcotest.(check (option int)) "take signals exit" None (Admission.take q)

(* ---- injection determinism ---- *)

let test_inject_parse_and_describe () =
  (match Inject.parse "none" with
  | Ok t -> Alcotest.(check bool) "none inactive" false (Inject.active t)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun (name, _) ->
      match Inject.parse name with
      | Ok t -> Alcotest.(check bool) (name ^ " active") true (Inject.active t)
      | Error e -> Alcotest.failf "preset %s: %s" name e)
    Inject.catalog;
  (match Inject.parse "kill-worker:0.25,delay-frame:0.5" with
  | Ok t ->
      Alcotest.(check (float 1e-9)) "kw rate" 0.25 (Inject.rate t Inject.Kill_worker);
      Alcotest.(check (float 1e-9)) "df rate" 0.5 (Inject.rate t Inject.Delay_frame);
      Alcotest.(check (float 1e-9)) "unset rate" 0.0 (Inject.rate t Inject.Drop_conn);
      (match Inject.parse (Inject.describe t) with
      | Ok t' -> Alcotest.(check string) "describe round-trips" (Inject.describe t) (Inject.describe t')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  (match Inject.parse "kill-worker:1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rate > 1 accepted");
  match Inject.parse "set-on-fire:0.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted"

let test_inject_deterministic_and_independent () =
  let t =
    match Inject.parse "kill-worker:0.5,drop-conn:0.5" with
    | Ok t -> Inject.with_seed t 42
    | Error e -> Alcotest.fail e
  in
  let fires kind = List.init 256 (fun salt -> Inject.fire t kind ~salt) in
  Alcotest.(check bool) "pure in (seed, kind, salt)" true (fires Inject.Kill_worker = fires Inject.Kill_worker);
  Alcotest.(check bool)
    "kinds draw independent streams" true
    (fires Inject.Kill_worker <> fires Inject.Drop_conn);
  let hits = List.length (List.filter Fun.id (fires Inject.Kill_worker)) in
  Alcotest.(check bool) "rate 0.5 fires roughly half the time" true (hits > 64 && hits < 192);
  let other = Inject.with_seed t 43 in
  Alcotest.(check bool)
    "seed changes the stream" true
    (List.init 256 (fun salt -> Inject.fire other Inject.Kill_worker ~salt) <> fires Inject.Kill_worker);
  let d = Inject.delay_ms t ~salt:7 in
  Alcotest.(check bool) "delay in [1, 50]" true (d >= 1 && d <= 50);
  Alcotest.(check int) "delay deterministic" d (Inject.delay_ms t ~salt:7)

(* ---- supervisor ---- *)

let mk_instance ~ticket ~seed =
  {
    Supervisor.ticket;
    conn = 0;
    submit = { submit_fixture with id = Printf.sprintf "t%d" ticket; n = 8; seed; timeout_ms = Some 5000 };
    attempts = 0;
    enqueued_at = Unix.gettimeofday ();
  }

(* Pump tick + completions until [want] completions arrive or the
   deadline passes; ticking is what reaps and respawns crashed workers. *)
let pump sup ~want ~deadline_s =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let acc = ref [] in
  while List.length !acc < want && Unix.gettimeofday () < deadline do
    ignore (Supervisor.tick sup);
    acc := !acc @ Supervisor.completions sup;
    if List.length !acc < want then Unix.sleepf 0.005
  done;
  !acc

let test_supervisor_runs_clean_instance () =
  let q = Admission.create ~bound:8 ~workers:1 () in
  let sup =
    Supervisor.create ~workers:1 ~queue:q ~inject:Inject.none ~default_timeout_ms:10_000
      ~notify:(fun () -> ()) ()
  in
  ignore (Admission.admit q (mk_instance ~ticket:1 ~seed:7));
  let completions = pump sup ~want:1 ~deadline_s:20.0 in
  (match completions with
  | [ { Supervisor.inst; outcome = Supervisor.Finished f; _ } ] ->
      Alcotest.(check int) "right ticket" 1 inst.Supervisor.ticket;
      Alcotest.(check int) "one attempt" 1 inst.Supervisor.attempts;
      Alcotest.(check bool) "clean verdict" true f.ok;
      Alcotest.(check bool) "did rounds" true (f.rounds > 0)
  | [ { Supervisor.outcome = o; _ } ] ->
      Alcotest.failf "unexpected outcome %s"
        (match o with
        | Supervisor.Watchdog_expired -> "watchdog"
        | Supervisor.Killed -> "killed"
        | Supervisor.Crash_budget_exhausted d -> "crash budget: " ^ d
        | Supervisor.Exn d -> "exn: " ^ d
        | Supervisor.Finished _ -> assert false)
  | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l));
  Admission.drain q;
  Alcotest.(check bool) "workers join" true (Supervisor.join sup ~grace_ms:5000);
  Alcotest.(check int) "no restarts without injection" 0 (Supervisor.restarts sup)

let test_supervisor_crash_budget () =
  (* kill-worker at rate 1.0: every attempt crashes the worker, so the
     instance must burn through max_attempts requeues and come back as
     Crash_budget_exhausted — with the worker respawned each time. *)
  let q = Admission.create ~bound:8 ~workers:1 () in
  let inject =
    match Inject.parse "kill-worker:1.0" with
    | Ok t -> Inject.with_seed t 1
    | Error e -> Alcotest.fail e
  in
  let sup =
    Supervisor.create ~workers:1 ~queue:q ~inject ~default_timeout_ms:10_000
      ~notify:(fun () -> ()) ()
  in
  ignore (Admission.admit q (mk_instance ~ticket:5 ~seed:11));
  let completions = pump sup ~want:1 ~deadline_s:20.0 in
  (match completions with
  | [ { Supervisor.inst; outcome = Supervisor.Crash_budget_exhausted _; _ } ] ->
      Alcotest.(check int) "all attempts burned" Supervisor.max_attempts inst.Supervisor.attempts
  | [ { Supervisor.outcome = Supervisor.Finished _; _ } ] ->
      Alcotest.fail "instance finished despite kill-worker:1.0"
  | l -> Alcotest.failf "expected crash-budget completion, got %d completions" (List.length l));
  Alcotest.(check bool)
    "worker restarted at least max_attempts - 1 times" true
    (Supervisor.restarts sup >= Supervisor.max_attempts - 1);
  Alcotest.(check int) "exactly one completion: nothing lost, nothing duplicated" 0
    (List.length (Supervisor.completions sup));
  Alcotest.(check int) "queue settled" 0 (Admission.open_count q);
  Admission.drain q;
  ignore (Supervisor.join sup ~grace_ms:5000)

(* ---- client backoff ladder ---- *)

let test_transport_ladder () =
  let c = Transport.default_config in
  Alcotest.(check (list int)) "doubling ladder, capped" [ 2; 4; 8; 8; 8 ]
    (List.init 5 (Transport.nth_timeout c))

(* ---- end to end ---- *)

let test_end_to_end () =
  let path = Filename.temp_file "ftc-serve-test" ".sock" in
  Sys.remove path;
  let drain = Atomic.make false in
  let cfg =
    { (Server.default_config (Server.Unix_sock path)) with workers = 2; bound = 32; default_timeout_ms = 10_000; grace_ms = 10_000 }
  in
  let server = Domain.spawn (fun () -> Server.run ~drain cfg) in
  (* Wait for the bind; the client errors out only if its very first
     connection fails, so don't race it. *)
  let rec wait_bind tries =
    if not (Sys.file_exists path) then
      if tries = 0 then Alcotest.fail "server never bound its socket"
      else begin
        Unix.sleepf 0.02;
        wait_bind (tries - 1)
      end
  in
  wait_bind 250;
  let ccfg =
    { (Client.default_config (Server.Unix_sock path)) with total = 8; n = 16; base_seed = 100; overall_timeout_ms = 60_000 }
  in
  let stats =
    match Client.run ccfg with Ok s -> s | Error e -> Alcotest.failf "client: %s" e
  in
  Atomic.set drain true;
  let summary =
    match Domain.join server with Ok s -> s | Error e -> Alcotest.failf "server: %s" e
  in
  Alcotest.(check int) "every submit ran" 8 stats.Client.results;
  Alcotest.(check int) "no model violations" 0 stats.Client.result_violations;
  Alcotest.(check int) "nothing abandoned" 0 stats.Client.abandoned;
  Alcotest.(check int) "client exit 0" 0 (Client.exit_code stats);
  Alcotest.(check int) "server accepted all" 8 summary.Server.accepted;
  Alcotest.(check int) "server replied to all" 8 summary.Server.results;
  Alcotest.(check int) "exactly-one-reply: ledger empty" 0 summary.Server.lost;
  Alcotest.(check int) "server exit 0" 0 (Server.exit_code summary);
  if Sys.file_exists path then Sys.remove path

(* ---- ftc top ---- *)

let test_top_spark () =
  Alcotest.(check string) "empty series" "" (Top.spark []);
  Alcotest.(check string) "flat zero floors" "\xe2\x96\x81\xe2\x96\x81" (Top.spark [ 0; 0 ]);
  (* Monotone series renders monotone glyphs, max hits the tallest block. *)
  let s = Top.spark [ 0; 2; 4; 8 ] in
  Alcotest.(check int) "one glyph per point" (4 * 3) (String.length s);
  Alcotest.(check string) "max is the full block" "\xe2\x96\x88"
    (String.sub s (String.length s - 3) 3)

let test_top_against_live_server () =
  (* The acceptance e2e: a real server in its own domain, [ftc top]'s
     engine polling it over the socket, frames captured through
     [config.out]. Two samples so the second has a rate/restart
     baseline; the client load in between gives the counters motion. *)
  let path = Filename.temp_file "ftc-top-test" ".sock" in
  Sys.remove path;
  let drain = Atomic.make false in
  let cfg =
    { (Server.default_config (Server.Unix_sock path)) with workers = 2; bound = 32; default_timeout_ms = 10_000; grace_ms = 10_000 }
  in
  let server = Domain.spawn (fun () -> Server.run ~drain cfg) in
  let rec wait_bind tries =
    if not (Sys.file_exists path) then
      if tries = 0 then Alcotest.fail "server never bound its socket"
      else begin
        Unix.sleepf 0.02;
        wait_bind (tries - 1)
      end
  in
  wait_bind 250;
  let ccfg =
    { (Client.default_config (Server.Unix_sock path)) with total = 4; n = 16; base_seed = 7; overall_timeout_ms = 60_000 }
  in
  (match Client.run ccfg with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "client: %s" e);
  let frames = Buffer.create 1024 in
  let tcfg =
    {
      (Top.default_config (Server.Unix_sock path)) with
      Top.interval_ms = 50;
      iterations = 2;
      mode = Top.Raw;
      out = Buffer.add_string frames;
    }
  in
  (match Top.run tcfg with
  | Ok n -> Alcotest.(check int) "two samples" 2 n
  | Error e -> Alcotest.failf "top: %s" e);
  let out = Buffer.contents frames in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "dashboard mentions %S" needle) true
      (Astring.String.is_infix ~affix:needle out)
  in
  has "ftc top -- ";
  has (Printf.sprintf "protocol v%d" Wire.protocol_version);
  (* Both workers are listed with live state, and the 4 terminal replies
     the client collected show up in the counters. *)
  has "w0";
  has "w1";
  has "results=4";
  has "inject  ";
  has "latency p50";
  (* JSON mode emits the raw introspect reply — the stable machine
     surface — one line per sample, and it must decode back. *)
  let json_lines = Buffer.create 1024 in
  let jcfg =
    { tcfg with Top.iterations = 1; mode = Top.Json; out = Buffer.add_string json_lines }
  in
  (match Top.run jcfg with
  | Ok n -> Alcotest.(check int) "one json sample" 1 n
  | Error e -> Alcotest.failf "top --json: %s" e);
  (match Json.of_string (String.trim (Buffer.contents json_lines)) with
  | Error e -> Alcotest.failf "top --json emitted bad JSON: %s" e
  | Ok j -> (
      match Wire.reply_of_json j with
      | Ok (Wire.Introspect_reply i) ->
          Alcotest.(check int) "two workers in view" 2 (List.length i.Wire.workers)
      | Ok _ -> Alcotest.fail "top --json line is not an introspect reply"
      | Error e -> Alcotest.failf "top --json line does not decode: %s" e));
  Atomic.set drain true;
  (match Domain.join server with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server: %s" e);
  if Sys.file_exists path then Sys.remove path

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          Alcotest.test_case "byte-at-a-time round-trip" `Quick test_frame_byte_at_a_time;
          Alcotest.test_case "torn at the length boundary" `Quick test_frame_torn_at_length_boundary;
          Alcotest.test_case "coalesced frames" `Quick test_frame_back_to_back;
          Alcotest.test_case "zero length poisons" `Quick test_frame_zero_length_poisons;
          Alcotest.test_case "oversized length poisons" `Quick test_frame_oversized_length_poisons;
          Alcotest.test_case "bad JSON poisons" `Quick test_frame_bad_json_poisons;
        ] );
      ( "wire",
        [
          Alcotest.test_case "requests round-trip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "replies round-trip" `Quick test_wire_reply_roundtrip;
          Alcotest.test_case "bare pong decodes (v1 compat)" `Quick test_wire_pong_backward_compat;
          Alcotest.test_case "unknown ops rejected" `Quick test_wire_rejects_unknown;
          Alcotest.test_case "reply through a frame" `Quick test_wire_through_frame;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bound sheds" `Quick test_admission_bound_and_shed;
          Alcotest.test_case "requeue is bound-neutral" `Quick test_admission_requeue_is_bound_neutral;
          Alcotest.test_case "drain" `Quick test_admission_drain;
        ] );
      ( "inject",
        [
          Alcotest.test_case "parse and describe" `Quick test_inject_parse_and_describe;
          Alcotest.test_case "deterministic decisions" `Quick test_inject_deterministic_and_independent;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean instance" `Quick test_supervisor_runs_clean_instance;
          Alcotest.test_case "crash budget under kill-worker:1.0" `Quick test_supervisor_crash_budget;
        ] );
      ("backoff", [ Alcotest.test_case "transport ladder" `Quick test_transport_ladder ]);
      ("end-to-end", [ Alcotest.test_case "serve + client over a unix socket" `Quick test_end_to_end ]);
      ( "top",
        [
          Alcotest.test_case "sparkline rendering" `Quick test_top_spark;
          Alcotest.test_case "dashboard against a live server" `Quick test_top_against_live_server;
        ] );
    ]
