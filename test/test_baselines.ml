(* Tests for the baseline protocols: correctness and their characteristic
   complexity shapes (FloodSet quadratic, tree linear, rotating O(nf),
   gossip O(n log n), Kutten/AMP sublinear one-shot). *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Props = Ftc_core.Properties
module Rng = Ftc_rng.Rng

let run (module P : Ftc_sim.Protocol.S) ?(adversary = Ftc_fault.Strategy.none) ~n ~alpha ~seed
    ~inputs () =
  let module E = Engine.Make (P) in
  let r =
    E.run
      { (Engine.default_config ~n ~alpha ~seed) with
        inputs = Some inputs;
        adversary = adversary ()
      }
  in
  Alcotest.(check (list string)) "no model violations" [] (List.map Ftc_sim.Violation.to_string r.violations);
  Alcotest.(check bool) "run did not time out" false r.timed_out;
  r

let random_inputs ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> if Rng.bool rng then 1 else 0)

let check_explicit name r inputs =
  let rep = Props.check_explicit_agreement ~inputs r in
  Alcotest.(check bool) (name ^ ": explicit agreement") true rep.ok

(* -- FloodSet -- *)

let test_floodset_correct_with_crashes () =
  for seed = 1 to 8 do
    let n = 64 in
    let inputs = random_inputs ~n ~seed in
    let r =
      run (Ftc_baselines.Floodset.make ()) ~n ~alpha:0.5 ~seed ~inputs
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ~horizon:16 ())
        ()
    in
    check_explicit "floodset" r inputs
  done

let test_floodset_decides_min () =
  let n = 32 in
  let inputs = Array.make n 1 in
  inputs.(5) <- 0;
  let r = run (Ftc_baselines.Floodset.make ()) ~n ~alpha:0.9 ~seed:3 ~inputs () in
  Array.iteri
    (fun i d ->
      if not r.crashed.(i) then
        Alcotest.(check bool) "decided 0" true (Decision.equal d (Decision.Agreed 0)))
    r.decisions

let test_floodset_quadratic_messages () =
  let n = 64 in
  let inputs = random_inputs ~n ~seed:5 in
  let r = run (Ftc_baselines.Floodset.make ()) ~n ~alpha:0.9 ~seed:7 ~inputs () in
  (* At least one full flood; at most a handful (min can drop only once
     per node). *)
  Alcotest.(check bool) "at least n(n-1)" true (r.metrics.msgs_sent >= n * (n - 1));
  Alcotest.(check bool) "at most 3 n^2" true (r.metrics.msgs_sent <= 3 * n * n)

(* -- Rotating coordinator -- *)

let test_rotating_correct_with_crashes () =
  for seed = 1 to 8 do
    let n = 64 in
    let inputs = random_inputs ~n ~seed:(seed * 3) in
    let r =
      run (Ftc_baselines.Rotating.make ()) ~n ~alpha:0.5 ~seed ~inputs
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ~horizon:16 ())
        ()
    in
    check_explicit "rotating" r inputs
  done

let test_rotating_message_bound () =
  let n = 64 in
  let inputs = random_inputs ~n ~seed:4 in
  let r = run (Ftc_baselines.Rotating.make ()) ~n ~alpha:0.5 ~seed:9 ~inputs () in
  let f = Engine.max_faulty ~n ~alpha:0.5 in
  Alcotest.(check bool) "at most (f+1)(n-1)" true (r.metrics.msgs_sent <= (f + 1) * (n - 1));
  Alcotest.(check bool) "rounds = f+2" true (r.rounds_used <= f + 2)

let test_rotating_validity_all_ones () =
  let n = 32 in
  let inputs = Array.make n 1 in
  let r = run (Ftc_baselines.Rotating.make ()) ~n ~alpha:0.9 ~seed:2 ~inputs () in
  let rep = Props.check_explicit_agreement ~inputs r in
  Alcotest.(check (option int)) "value 1" (Some 1) rep.value

(* -- Tree agreement (GK stand-in) -- *)

let test_tree_correct_fault_free () =
  for seed = 1 to 8 do
    let n = 100 in
    let inputs = random_inputs ~n ~seed:(seed * 5) in
    let r = run (Ftc_baselines.Tree_agreement.make ()) ~n ~alpha:1.0 ~seed ~inputs () in
    check_explicit "tree" r inputs;
    let rep = Props.check_explicit_agreement ~inputs r in
    let expected = Array.fold_left min 1 inputs in
    Alcotest.(check (option int)) "global min" (Some expected) rep.value
  done

let test_tree_linear_messages () =
  let n = 256 in
  let inputs = random_inputs ~n ~seed:6 in
  let r = run (Ftc_baselines.Tree_agreement.make ()) ~n ~alpha:1.0 ~seed:11 ~inputs () in
  (* Up phase <= 2n, one root broadcast = n - 1. *)
  Alcotest.(check bool) "O(n) messages" true (r.metrics.msgs_sent <= (3 * n) + 2);
  Alcotest.(check bool) "O(log n) rounds" true (r.rounds_used <= 40)

let test_tree_mostly_correct_with_crashes () =
  (* The stand-in is not GK'10: it may rarely disagree under crashes. We
     require a high success rate, not perfection (see DESIGN.md). *)
  let ok = ref 0 in
  let trials = 15 in
  for seed = 1 to trials do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 7) in
    let r =
      run (Ftc_baselines.Tree_agreement.make ()) ~n ~alpha:0.7 ~seed ~inputs
        ~adversary:(fun () -> Ftc_fault.Strategy.random_crashes ~horizon:16 ())
        ()
    in
    if (Props.check_explicit_agreement ~inputs r).ok then incr ok
  done;
  Alcotest.(check bool) (Printf.sprintf "tree: >= 12/15 (got %d)" !ok) true (!ok >= 12)

(* -- Gossip (CK stand-in) -- *)

let test_gossip_correct_fault_free () =
  for seed = 1 to 8 do
    let n = 128 in
    let inputs = random_inputs ~n ~seed:(seed * 11) in
    let r = run (Ftc_baselines.Gossip.make ()) ~n ~alpha:1.0 ~seed ~inputs () in
    check_explicit "gossip" r inputs
  done

let test_gossip_message_bound () =
  let n = 256 in
  let inputs = random_inputs ~n ~seed:8 in
  let r = run (Ftc_baselines.Gossip.make ()) ~n ~alpha:1.0 ~seed:13 ~inputs () in
  (* fanout * rounds * n upper bound. *)
  Alcotest.(check bool) "O(n log n) messages" true (r.metrics.msgs_sent <= 2 * n * 24)

(* -- Kutten et al. leader election -- *)

let test_kutten_unique_leader () =
  for seed = 1 to 15 do
    let n = 256 in
    let r =
      run (Ftc_baselines.Kutten_le.make ()) ~n ~alpha:1.0 ~seed ~inputs:(Array.make n 0) ()
    in
    let rep = Props.check_implicit_election r in
    Alcotest.(check bool) (Printf.sprintf "seed %d unique leader" seed) true rep.ok;
    Alcotest.(check bool) "constant rounds" true (r.rounds_used <= 4)
  done

let test_kutten_sublinear_messages () =
  let n = 4096 in
  let r =
    run (Ftc_baselines.Kutten_le.make ()) ~n ~alpha:1.0 ~seed:17 ~inputs:(Array.make n 0) ()
  in
  Alcotest.(check bool) "well below n^2" true (r.metrics.msgs_sent < n * 32)

(* -- AMP agreement -- *)

let test_amp_implicit_agreement () =
  for seed = 1 to 15 do
    let n = 256 in
    let inputs = random_inputs ~n ~seed:(seed * 13) in
    let r = run (Ftc_baselines.Amp_agreement.make ()) ~n ~alpha:1.0 ~seed ~inputs () in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) (Printf.sprintf "seed %d ok" seed) true rep.ok;
    Alcotest.(check bool) "constant rounds" true (r.rounds_used <= 4)
  done

let test_amp_zero_wins_among_candidates () =
  let n = 256 in
  let inputs = Array.make n 0 in
  let r = run (Ftc_baselines.Amp_agreement.make ()) ~n ~alpha:1.0 ~seed:19 ~inputs () in
  let rep = Props.check_implicit_agreement ~inputs r in
  Alcotest.(check (option int)) "zero" (Some 0) rep.value

let () =
  Alcotest.run "baselines"
    [
      ( "floodset",
        [
          Alcotest.test_case "correct with crashes" `Quick test_floodset_correct_with_crashes;
          Alcotest.test_case "decides min" `Quick test_floodset_decides_min;
          Alcotest.test_case "quadratic messages" `Quick test_floodset_quadratic_messages;
        ] );
      ( "rotating",
        [
          Alcotest.test_case "correct with crashes" `Quick test_rotating_correct_with_crashes;
          Alcotest.test_case "message bound" `Quick test_rotating_message_bound;
          Alcotest.test_case "validity" `Quick test_rotating_validity_all_ones;
        ] );
      ( "tree",
        [
          Alcotest.test_case "correct fault-free" `Quick test_tree_correct_fault_free;
          Alcotest.test_case "linear messages" `Quick test_tree_linear_messages;
          Alcotest.test_case "mostly correct with crashes" `Quick test_tree_mostly_correct_with_crashes;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "correct fault-free" `Quick test_gossip_correct_fault_free;
          Alcotest.test_case "message bound" `Quick test_gossip_message_bound;
        ] );
      ( "kutten",
        [
          Alcotest.test_case "unique leader" `Quick test_kutten_unique_leader;
          Alcotest.test_case "sublinear messages" `Slow test_kutten_sublinear_messages;
        ] );
      ( "amp",
        [
          Alcotest.test_case "implicit agreement" `Quick test_amp_implicit_agreement;
          Alcotest.test_case "zero wins" `Quick test_amp_zero_wins_among_candidates;
        ] );
    ]
