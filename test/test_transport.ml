(* Tests for the reliable transport: window arithmetic, config
   validation, and the delivery/overhead guarantees as qcheck properties
   over fuzzed loss rates — no loss means no retransmissions; acked
   messages were delivered exactly once; backoff never exceeds its cap. *)

module Protocol = Ftc_sim.Protocol
module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Observation = Ftc_sim.Observation
module Transport = Ftc_transport.Transport
module Omission = Ftc_fault.Omission

(* A sender that ships [fan] uniquely-numbered payloads through fresh
   ports in each of the first [rounds] (inner) rounds; every delivery is
   tallied per payload in a table owned by this instance, so dedup bugs
   (double delivery) and loss (no delivery) are both visible. *)
let make_probe ~fan ~rounds () =
  let delivered : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let sent = ref 0 in
  let module P = struct
    type msg = int
    type state = { sender : bool }

    let name = "probe"
    let knowledge = `KT0
    let msg_bits ~n:_ _ = 16
    let max_rounds ~n:_ ~alpha:_ = rounds + 2
    let phases = Protocol.single_phase
    let init (ctx : Protocol.ctx) = { sender = ctx.input > 0 }

    let step (_ : Protocol.ctx) st ~round ~inbox =
      List.iter
        (fun { Protocol.from_port = _; payload; _ } ->
          Hashtbl.replace delivered payload
            (1 + Option.value ~default:0 (Hashtbl.find_opt delivered payload)))
        inbox;
      let actions =
        if st.sender && round < rounds then
          List.init fan (fun _ ->
              incr sent;
              { Protocol.dest = Protocol.Fresh_port; payload = !sent })
        else []
      in
      (st, actions)

    (* Never decides: keeps the engine from early-stopping between
       windows, so the full send calendar runs. *)
    let decide _ = Decision.Undecided
    let observe _ = Observation.bystander
  end in
  ((module P : Protocol.S), delivered, sent)

let run_wrapped ?(config = Transport.default_config) ?(rate = 0.) ?(n = 32) ?(seed = 1)
    ~fan ~rounds () =
  let probe, delivered, sent = make_probe ~fan ~rounds () in
  let wrapped, stats = Transport.wrap ~config probe in
  let module E = Engine.Make ((val wrapped : Protocol.S)) in
  let inputs = Array.make n 0 in
  inputs.(0) <- 1;
  let link = if rate = 0. then Ftc_sim.Link.reliable else Omission.lossy_uniform ~rate () in
  let r =
    E.run
      {
        (Engine.default_config ~n ~alpha:1.0 ~seed) with
        inputs = Some inputs;
        link;
        congest_limit = None;
      }
  in
  (r, stats, delivered, !sent)

(* -- window arithmetic and config validation -- *)

let test_window () =
  (* Defaults: offsets 0,2,6,14,22 -> last transmission at 22, window 24. *)
  Alcotest.(check int) "default window" 24 (Transport.window Transport.default_config);
  Alcotest.(check int) "no retransmissions: bare RTT"
    2
    (Transport.window { Transport.timeout = 2; backoff_cap = 2; budget = 0 });
  Alcotest.(check int) "cap binds: 2+4+4"
    12
    (Transport.window { Transport.timeout = 2; backoff_cap = 4; budget = 3 })

let test_config_validation () =
  let bad c = Result.is_error (Transport.validate_config c) in
  Alcotest.(check bool) "timeout below RTT" true
    (bad { Transport.timeout = 1; backoff_cap = 8; budget = 4 });
  Alcotest.(check bool) "cap below timeout" true
    (bad { Transport.timeout = 4; backoff_cap = 2; budget = 4 });
  Alcotest.(check bool) "negative budget" true
    (bad { Transport.timeout = 2; backoff_cap = 8; budget = -1 });
  (* The doubling calendar visits timeout, 2*timeout, 4*timeout, ...; a
     cap off that ladder would silently bind a step early. *)
  Alcotest.(check bool) "cap off the doubling ladder" true
    (bad { Transport.timeout = 2; backoff_cap = 6; budget = 4 });
  Alcotest.(check bool) "cap off the ladder (odd base)" true
    (bad { Transport.timeout = 3; backoff_cap = 8; budget = 4 });
  Alcotest.(check bool) "cap equal to timeout valid" true
    (Result.is_ok (Transport.validate_config { Transport.timeout = 3; backoff_cap = 3; budget = 2 }));
  Alcotest.(check bool) "cap on the ladder valid" true
    (Result.is_ok
       (Transport.validate_config { Transport.timeout = 3; backoff_cap = 12; budget = 2 }));
  Alcotest.(check bool) "default valid" true
    (Result.is_ok (Transport.validate_config Transport.default_config));
  match Transport.wrap ~config:{ Transport.timeout = 0; backoff_cap = 8; budget = 1 }
          (Ftc_baselines.Gossip.make ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrap accepted an invalid config"

(* pp_stats is the machine-greppable one-liner in F13/F14 logs and sweep
   reports; its field order is part of the interface. Golden-test it so a
   reordering or rename shows up as a diff here, not in downstream
   parsers. *)
let test_pp_stats_golden () =
  let s = Transport.fresh_stats () in
  Alcotest.(check string) "zeroed stats"
    "data=0 retx=0 acks=0 acked=0 delivered=0 dups=0 gave_up=0 unroutable=0 ecn_backoffs=0 \
     congestion_drops=0 max_timeout=0"
    (Format.asprintf "%a" Transport.pp_stats s);
  s.Transport.data_sent <- 1;
  s.Transport.retransmissions <- 2;
  s.Transport.acks_sent <- 3;
  s.Transport.acked <- 4;
  s.Transport.delivered_unique <- 5;
  s.Transport.duplicates <- 6;
  s.Transport.gave_up <- 7;
  s.Transport.unroutable <- 8;
  s.Transport.ecn_backoffs <- 9;
  s.Transport.congestion_drops <- 10;
  s.Transport.max_timeout <- 11;
  Alcotest.(check string) "distinct values land in declaration order"
    "data=1 retx=2 acks=3 acked=4 delivered=5 dups=6 gave_up=7 unroutable=8 ecn_backoffs=9 \
     congestion_drops=10 max_timeout=11"
    (Format.asprintf "%a" Transport.pp_stats s)

(* -- reliable links: the transport must be pure overhead-free pass-through -- *)

let test_no_loss_no_retransmissions () =
  let r, stats, delivered, sent = run_wrapped ~fan:3 ~rounds:4 () in
  Alcotest.(check (list string)) "no violations" []
    (List.map Ftc_sim.Violation.to_string r.Engine.violations);
  Alcotest.(check int) "12 payloads shipped" 12 sent;
  Alcotest.(check int) "zero retransmissions" 0 stats.Transport.retransmissions;
  Alcotest.(check int) "zero gave-up" 0 stats.Transport.gave_up;
  Alcotest.(check int) "zero duplicates" 0 stats.Transport.duplicates;
  Alcotest.(check int) "every payload delivered" sent (Hashtbl.length delivered);
  Hashtbl.iter
    (fun payload count ->
      Alcotest.(check int) (Printf.sprintf "payload %d exactly once" payload) 1 count)
    delivered;
  Alcotest.(check int) "all data acked" stats.Transport.data_sent stats.Transport.acked;
  Alcotest.(check int) "link losses impossible" 0 r.Engine.metrics.msgs_lost_link

let test_total_loss_gives_up_within_budget () =
  let _, stats, delivered, _ = run_wrapped ~rate:1.0 ~fan:2 ~rounds:2 () in
  Alcotest.(check int) "nothing delivered" 0 (Hashtbl.length delivered);
  Alcotest.(check int) "nothing acked" 0 stats.Transport.acked;
  Alcotest.(check int) "every message abandoned" stats.Transport.data_sent
    stats.Transport.gave_up;
  (* Repeated unacked sends trip the congestion inference exactly once
     per message, which widens its calendar — fewer retransmissions fit
     the window than the budget alone would allow. *)
  Alcotest.(check int) "congestion inferred once per message" stats.Transport.data_sent
    stats.Transport.congestion_drops;
  Alcotest.(check bool) "at least one retransmission per message" true
    (stats.Transport.retransmissions >= stats.Transport.data_sent);
  Alcotest.(check bool) "budget bounds retransmissions" true
    (stats.Transport.retransmissions
    <= stats.Transport.data_sent * Transport.default_config.Transport.budget)

(* -- qcheck properties over fuzzed loss rates and configs -- *)

let qcheck_no_loss_means_no_retx =
  QCheck.Test.make ~name:"rate 0 => no retransmissions, exactly-once delivery" ~count:15
    QCheck.(pair (int_range 0 10_000) (pair (int_range 1 4) (int_range 1 5)))
    (fun (seed, (fan, rounds)) ->
      let _, stats, delivered, sent = run_wrapped ~seed ~fan ~rounds () in
      stats.Transport.retransmissions = 0
      && stats.Transport.duplicates = 0
      && Hashtbl.length delivered = sent
      && Hashtbl.fold (fun _ c acc -> acc && c = 1) delivered true)

let qcheck_acked_delivered_exactly_once =
  QCheck.Test.make ~name:"acked messages were delivered, nothing twice" ~count:25
    QCheck.(pair (int_range 0 10_000) (float_range 0. 0.45))
    (fun (seed, rate) ->
      let _, stats, delivered, sent = run_wrapped ~seed ~rate ~fan:3 ~rounds:4 () in
      (* Dedup: no payload reaches the inner protocol twice. *)
      Hashtbl.fold (fun _ c acc -> acc && c = 1) delivered true
      (* Every ack the sender counted corresponds to a real delivery. *)
      && stats.Transport.acked <= stats.Transport.delivered_unique
      && stats.Transport.delivered_unique <= sent
      && stats.Transport.acked + stats.Transport.gave_up <= stats.Transport.data_sent)

let qcheck_backoff_never_exceeds_cap =
  QCheck.Test.make ~name:"backoff never exceeds the congested cap" ~count:25
    QCheck.(
      quad (int_range 0 10_000) (float_range 0.2 0.9) (int_range 2 4) (int_range 0 6))
    (fun (seed, rate, timeout, budget) ->
      let backoff_cap = timeout * 4 in
      let config = { Transport.timeout; backoff_cap; budget } in
      let _, stats, _, _ = run_wrapped ~config ~seed ~rate ~fan:2 ~rounds:3 () in
      (* The congestion inference may lift the cap 4x for a repeatedly
         lost message; nothing exceeds that lifted cap. *)
      stats.Transport.max_timeout <= 4 * backoff_cap
      && (stats.Transport.data_sent = 0 || stats.Transport.max_timeout >= timeout))

(* -- the wrapped module keeps the inner protocol's contract -- *)

let test_wrapped_module_shape () =
  let (module P : Protocol.S) = Ftc_baselines.Gossip.make () in
  let wrapped, _ = Transport.wrap (module P) in
  let (module W : Protocol.S) = wrapped in
  Alcotest.(check string) "name tagged" (P.name ^ "+transport") W.name;
  Alcotest.(check bool) "knowledge preserved" true (P.knowledge = W.knowledge);
  let w = Transport.window Transport.default_config in
  Alcotest.(check int) "round calendar scaled"
    ((w * P.max_rounds ~n:64 ~alpha:0.7) + 2)
    (W.max_rounds ~n:64 ~alpha:0.7)

let () =
  Alcotest.run "transport"
    [
      ( "config",
        [
          Alcotest.test_case "window arithmetic" `Quick test_window;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "pp_stats golden" `Quick test_pp_stats_golden;
          Alcotest.test_case "wrapped module shape" `Quick test_wrapped_module_shape;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "no loss, no retransmissions" `Quick test_no_loss_no_retransmissions;
          Alcotest.test_case "total loss gives up in budget" `Quick
            test_total_loss_gives_up_within_budget;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_no_loss_means_no_retx;
            qcheck_acked_delivered_exactly_once;
            qcheck_backoff_never_exceeds_cap;
          ] );
    ]
