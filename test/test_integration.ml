(* Cross-cutting integration tests: for every protocol in the repository,
   a traced run must be internally consistent — the trace, the metrics,
   the decisions, and the observations all describe the same execution. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Trace = Ftc_sim.Trace

let params = Ftc_core.Params.default

let protocols : (string * (module Ftc_sim.Protocol.S)) list =
  [
    ("ft-leader-election", Ftc_core.Leader_election.make params);
    ("ft-leader-election-explicit", Ftc_core.Leader_election.make ~explicit:true params);
    ("ft-agreement", Ftc_core.Agreement.make params);
    ("ft-agreement-explicit", Ftc_core.Agreement.make ~explicit:true params);
    ("ft-min-agreement", Ftc_core.Min_agreement.make params);
    ("byzantine-probe", Ftc_core.Byzantine_probe.make params);
    ("floodset", Ftc_baselines.Floodset.make ());
    ("rotating", Ftc_baselines.Rotating.make ());
    ("tree", Ftc_baselines.Tree_agreement.make ());
    ("gossip", Ftc_baselines.Gossip.make ());
    ("kutten-le", Ftc_baselines.Kutten_le.make ());
    ("amp-agreement", Ftc_baselines.Amp_agreement.make ());
  ]

let run_traced (module P : Ftc_sim.Protocol.S) ~seed =
  let n = 96 in
  let rng = Ftc_rng.Rng.create (seed * 7) in
  let inputs = Array.init n (fun _ -> if Ftc_rng.Rng.bool rng then 1 else 0) in
  let module E = Engine.Make (P) in
  E.run
    {
      (Engine.default_config ~n ~alpha:0.7 ~seed) with
      inputs = Some inputs;
      record_trace = true;
      adversary = Ftc_fault.Strategy.random_crashes ~horizon:64 ();
    }

let trace_consistency name proto () =
  let r = run_traced proto ~seed:11 in
  Alcotest.(check (list string)) (name ^ ": no model violations") [] (List.map Ftc_sim.Violation.to_string r.violations);
  match r.trace with
  | None -> Alcotest.fail "trace missing"
  | Some t ->
      let sends = ref 0 and dropped = ref 0 and bits = ref 0 in
      let crashes = ref 0 in
      List.iter
        (fun e ->
          match e with
          | Trace.Send { bits = b; delivered; round; src; dst } ->
              incr sends;
              bits := !bits + b;
              if not delivered then incr dropped;
              Alcotest.(check bool) (name ^ ": send round in range") true
                (round >= 0 && round < r.rounds_used);
              Alcotest.(check bool) (name ^ ": endpoints in range") true
                (src >= 0 && src < 96 && dst >= 0 && dst < 96 && src <> dst)
          | Trace.Crash { node; round } ->
              incr crashes;
              Alcotest.(check bool) (name ^ ": crash flagged") true r.crashed.(node);
              Alcotest.(check int) (name ^ ": crash round matches") round r.crash_round.(node)
          | Trace.Link_lost _ | Trace.Queue_dropped _ | Trace.Ecn_marked _ | Trace.Unroutable _
            ->
              Alcotest.fail (name ^ ": link events impossible on reliable links"))
        (Trace.events t);
      Alcotest.(check int) (name ^ ": trace sends = metrics") r.metrics.msgs_sent !sends;
      Alcotest.(check int) (name ^ ": trace drops = metrics") r.metrics.msgs_dropped !dropped;
      Alcotest.(check int) (name ^ ": trace bits = metrics") r.metrics.bits_sent !bits;
      let crashed_count =
        Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 r.crashed
      in
      Alcotest.(check int) (name ^ ": trace crashes = crashed set") crashed_count !crashes;
      (* Per-round series sums to the total. *)
      Alcotest.(check int)
        (name ^ ": per-round series sums")
        r.metrics.msgs_sent
        (Array.fold_left ( + ) 0 r.metrics.per_round_msgs);
      (* Observations agree with decisions on decidedness. *)
      Array.iteri
        (fun i (o : Ftc_sim.Observation.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: node %d observation decidedness" name i)
            (r.decisions.(i) <> Decision.Undecided)
            o.has_decided)
        r.observations

let () =
  Alcotest.run "integration"
    [
      ( "trace-metrics-consistency",
        List.map
          (fun (name, proto) -> Alcotest.test_case name `Quick (trace_consistency name proto))
          protocols );
    ]
