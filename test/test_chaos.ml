(* Tests for the chaos subsystem: scheduled-plan validation, the oracle
   layer, trace/metrics consistency under every adversary, counterexample
   shrinking, and replay round-tripping. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Adversary = Ftc_sim.Adversary
module Trace = Ftc_sim.Trace
module Strategy = Ftc_fault.Strategy
module Chaos = Ftc_chaos
module Case = Ftc_chaos.Case
module Oracle = Ftc_chaos.Oracle

(* -- scheduled plan validation -- *)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_scheduled_rejects_structurally_bad_plans () =
  raises_invalid (fun () ->
      Strategy.scheduled [ (3, 2, Adversary.Drop_all); (3, 5, Adversary.Drop_none) ] ());
  raises_invalid (fun () -> Strategy.scheduled [ (-1, 0, Adversary.Drop_all) ] ());
  raises_invalid (fun () -> Strategy.scheduled [ (0, -2, Adversary.Drop_all) ] ());
  raises_invalid (fun () -> Strategy.scheduled [ (0, 0, Adversary.Drop_random 1.5) ] ());
  raises_invalid (fun () -> Strategy.scheduled [ (0, 0, Adversary.Keep_prefix (-1)) ] ())

let test_scheduled_rejects_budget_at_pick_time () =
  (* Structurally fine, but two crashes against a fault budget of one:
     the failure must surface as Invalid_argument when the engine asks
     for the faulty set, not as accumulated engine violations. *)
  let adv = Strategy.scheduled [ (0, 0, Adversary.Drop_all); (1, 0, Adversary.Drop_all) ] () in
  let rng = Ftc_rng.Rng.create 1 in
  raises_invalid (fun () -> adv.Adversary.pick_faulty rng ~n:10 ~f:1);
  (* Node id beyond n likewise. *)
  let adv2 = Strategy.scheduled [ (12, 0, Adversary.Drop_all) ] () in
  raises_invalid (fun () -> adv2.Adversary.pick_faulty rng ~n:10 ~f:5)

let test_validate_plan () =
  let plan = [ (3, 2, Adversary.Drop_all); (5, 4, Adversary.Keep_prefix 1) ] in
  Alcotest.(check bool) "valid" true (Strategy.validate_plan ~n:10 ~f:2 ~max_round:10 plan = Ok ());
  Alcotest.(check bool) "budget overrun caught" true
    (Result.is_error (Strategy.validate_plan ~n:10 ~f:1 ~max_round:10 plan));
  Alcotest.(check bool) "node out of range caught" true
    (Result.is_error (Strategy.validate_plan ~n:5 ~f:4 ~max_round:10 plan));
  Alcotest.(check bool) "round out of range caught" true
    (Result.is_error (Strategy.validate_plan ~n:10 ~f:2 ~max_round:3 plan))

(* -- trace/metrics consistency under every adversary -- *)

let test_trace_metrics_every_adversary () =
  List.iter
    (fun (name, adv) ->
      let (module P) = Ftc_core.Leader_election.make Ftc_core.Params.default in
      let module E = Engine.Make (P) in
      let r =
        E.run
          {
            (Engine.default_config ~n:96 ~alpha:0.6 ~seed:17) with
            adversary = adv ();
            record_trace = true;
          }
      in
      Alcotest.(check (list string))
        (name ^ ": no model violations")
        []
        (List.map Ftc_sim.Violation.to_string r.violations);
      match r.trace with
      | None -> Alcotest.fail "trace missing"
      | Some t ->
          let sends = ref 0 and dropped = ref 0 and bits = ref 0 and delivered_bits = ref 0 in
          List.iter
            (function
              | Trace.Send { bits = b; delivered; _ } ->
                  incr sends;
                  bits := !bits + b;
                  if delivered then delivered_bits := !delivered_bits + b else incr dropped
              | Trace.Crash _ | Trace.Link_lost _ | Trace.Queue_dropped _ | Trace.Ecn_marked _
              | Trace.Unroutable _ -> ())
            (Trace.events t);
          Alcotest.(check int) (name ^ ": sends = msgs_sent") r.metrics.msgs_sent !sends;
          Alcotest.(check int) (name ^ ": drops = msgs_dropped") r.metrics.msgs_dropped !dropped;
          Alcotest.(check int) (name ^ ": bits = bits_sent") r.metrics.bits_sent !bits;
          Alcotest.(check bool)
            (name ^ ": delivered bits bounded by sent bits")
            true
            (!delivered_bits <= r.metrics.bits_sent))
    (Strategy.all ())

(* -- oracles -- *)

let clean_case =
  {
    Case.protocol = "ft-leader-election";
    n = 64;
    alpha = 0.8;
    seed = 5;
    inputs = Array.make 64 0;
    plan = [];
    adversary = None;
    loss = Ftc_fault.Omission.No_loss;
    queue = None;
    transport = false;
  }

let test_oracles_clean_on_good_run () =
  match Case.run clean_case with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (r, findings) ->
      Alcotest.(check int) "no findings"
        0
        (List.length findings);
      Alcotest.(check bool) "did not time out" false r.Engine.timed_out

let test_case_validation () =
  let bad = { clean_case with Case.protocol = "no-such-protocol" } in
  Alcotest.(check bool) "unknown protocol" true (Result.is_error (Case.run bad));
  let bad = { clean_case with Case.inputs = [| 1 |] } in
  Alcotest.(check bool) "inputs length" true (Result.is_error (Case.run bad));
  let bad = { clean_case with Case.plan = [ (0, 0, Adversary.Drop_all) ] } in
  (* alpha 0.8, n 64 -> budget 12; a single crash is fine, but node 64 is not. *)
  Alcotest.(check bool) "single crash ok" true (Result.is_ok (Case.run bad));
  let bad = { clean_case with Case.plan = [ (64, 0, Adversary.Drop_all) ] } in
  Alcotest.(check bool) "node out of range" true (Result.is_error (Case.run bad))

(* -- a seeded known-bad case: crash the fault-free leader of the
      crash-intolerant Kutten et al. election -- *)

let kutten_known_bad () =
  let base =
    {
      Case.protocol = "kutten-leader-election";
      n = 48;
      alpha = 0.7;
      seed = 42;
      inputs = Array.make 48 0;
      plan = [];
      adversary = None;
      loss = Ftc_fault.Omission.No_loss;
      queue = None;
      transport = false;
    }
  in
  let leader =
    match Case.run base with
    | Error e -> Alcotest.fail (Case.error_to_string e)
    | Ok (r, findings) ->
        Alcotest.(check int) "fault-free run is clean" 0 (List.length findings);
        let idx = ref None in
        Array.iteri (fun i d -> if d = Decision.Elected then idx := Some i) r.Engine.decisions;
        (match !idx with Some i -> i | None -> Alcotest.fail "no fault-free leader")
  in
  (* Crash the leader after it has registered with its referees (round 1)
     and pad the plan with two irrelevant crashes the shrinker must
     discard. *)
  let junk = List.filter (fun v -> v <> leader) [ 0; 1; 2 ] in
  let plan =
    (leader, 1, Adversary.Drop_all)
    :: List.map (fun v -> (v, 3, Adversary.Drop_none)) (List.filteri (fun i _ -> i < 2) junk)
  in
  (base, leader, { base with Case.plan })

let test_known_bad_case_fails_election_oracle () =
  let _, _, bad = kutten_known_bad () in
  match Case.run bad with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (_, findings) ->
      Alcotest.(check bool) "election oracle fires" true
        (List.exists (fun f -> f.Oracle.oracle = "election") findings)

let test_junk_entries_alone_are_harmless () =
  let base, leader, bad = kutten_known_bad () in
  let junk_only = List.filter (fun (v, _, _) -> v <> leader) bad.Case.plan in
  match Case.run { base with Case.plan = junk_only } with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (_, findings) -> Alcotest.(check int) "no findings" 0 (List.length findings)

let test_shrink_drops_junk_and_replay_roundtrips () =
  let _, _, bad = kutten_known_bad () in
  let findings = Case.findings bad in
  Alcotest.(check bool) "known-bad fails" true (findings <> []);
  let failure = Chaos.Fuzz.shrink_failure bad findings in
  let shrunk = failure.Chaos.Fuzz.shrunk in
  (* The two padding crashes are irrelevant, so the minimal plan is a
     single entry (shrinking n may relocate the failure, but never needs
     more crashes than the original). *)
  Alcotest.(check int) "shrunk to a single crash" 1 (List.length shrunk.Case.plan);
  Alcotest.(check bool) "shrunk case still fails the same oracle" true
    (Oracle.same_oracle findings failure.Chaos.Fuzz.shrunk_findings);
  Alcotest.(check bool) "shrunk n no larger" true (shrunk.Case.n <= bad.Case.n);
  (* Replay round-trip: serialize, parse, compare, re-run. *)
  let expect = List.sort_uniq compare (List.map (fun f -> f.Oracle.oracle) findings) in
  let text = Chaos.Replay.to_string ~expect shrunk in
  (match Chaos.Replay.of_string text with
  | Error e -> Alcotest.fail e
  | Ok (parsed, expect') ->
      Alcotest.(check bool) "case round-trips" true (Case.equal shrunk parsed);
      Alcotest.(check (list string)) "expectations round-trip" expect expect';
      Alcotest.(check bool) "replayed case reproduces the violation" true
        (Oracle.same_oracle findings (Case.findings parsed)));
  (* And through an actual file. *)
  let path = Filename.temp_file "chaos" ".ftc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chaos.Replay.save ~expect path shrunk;
      match Chaos.Replay.load path with
      | Error e -> Alcotest.fail e
      | Ok (parsed, _) ->
          Alcotest.(check bool) "file round-trips" true (Case.equal shrunk parsed))

(* -- named adversaries in cases (the sweep supervisor's shape) -- *)

let test_adversary_case_runs_and_roundtrips () =
  let case = { clean_case with Case.adversary = Some "random" } in
  (match Case.run case with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (r, findings) ->
      Alcotest.(check int) "ft-election under random crashes is clean" 0
        (List.length findings);
      Alcotest.(check bool) "crashes actually happened" true
        (Array.exists Fun.id r.Engine.crashed));
  (* Determinism: the named adversary draws from the case seed. *)
  let metrics_of c =
    match Case.run c with
    | Ok (r, _) -> r.Engine.metrics
    | Error e -> Alcotest.fail (Case.error_to_string e)
  in
  Alcotest.(check bool) "same case, same execution" true
    (metrics_of case = metrics_of case);
  (* Replay v3 round-trip carries the adversary line. *)
  let text = Chaos.Replay.to_string case in
  Alcotest.(check bool) "text has adversary line" true
    (Astring.String.is_infix ~affix:"adversary random" text);
  match Chaos.Replay.of_string text with
  | Error e -> Alcotest.fail e
  | Ok (parsed, _) ->
      Alcotest.(check bool) "round-trips" true (Case.equal case parsed);
      Alcotest.(check bool) "replayed run identical" true
        (metrics_of case = metrics_of parsed)

let test_adversary_validation () =
  let bad = { clean_case with Case.adversary = Some "no-such-strategy" } in
  Alcotest.(check bool) "unknown adversary rejected" true (Result.is_error (Case.validate bad));
  let both =
    {
      clean_case with
      Case.adversary = Some "random";
      plan = [ (0, 0, Adversary.Drop_all) ];
    }
  in
  Alcotest.(check bool) "adversary + plan rejected" true (Result.is_error (Case.validate both))

(* -- the always-violating probe protocol -- *)

let test_faulty_probe_violates () =
  (* In the catalog (so sweep/replay can name it) but not fuzzable — the
     fuzzer's case stream and its clean-run guarantee must not change. *)
  Alcotest.(check bool) "findable" true (Chaos.Catalog.find "faulty-probe" <> None);
  Alcotest.(check bool) "listed in names" true (List.mem "faulty-probe" (Chaos.Catalog.names ()));
  Alcotest.(check bool) "not in the fuzzed set" true
    (List.for_all (fun (e : Chaos.Catalog.entry) -> e.name <> "faulty-probe") Chaos.Catalog.all);
  let case =
    {
      clean_case with
      Case.protocol = "faulty-probe";
      n = 8;
      inputs = Array.make 8 0;
    }
  in
  match Case.run case with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (_, findings) ->
      Alcotest.(check bool) "model oracle fires on every run" true
        (List.exists (fun f -> f.Oracle.oracle = "model") findings)

(* -- omission faults in cases, oracles, replay -- *)

let test_lossy_raw_is_degradation_not_bug () =
  (* Starve a raw protocol with heavy loss: the run surely fails to elect,
     but the oracles must treat that as measured degradation — only the
     accounting invariants (model/congest/trace-metrics) apply, and those
     must still hold. *)
  let case = { clean_case with Case.loss = Ftc_fault.Omission.Uniform 0.9 } in
  match Case.run case with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (r, findings) ->
      Alcotest.(check bool) "losses actually happened" true (r.Engine.metrics.msgs_lost_link > 0);
      Alcotest.(check (list string)) "no findings on a lossy raw run" []
        (List.map (fun f -> f.Oracle.oracle) findings)

let test_wrapped_case_survives_light_loss () =
  (* The same protocol under the transport is held to every oracle and
     must pass: 2% uniform loss is far inside the retransmission budget. *)
  let case =
    {
      clean_case with
      Case.loss = Ftc_fault.Omission.Uniform 0.02;
      transport = true;
      n = 48;
      inputs = Array.make 48 0;
    }
  in
  match Case.run case with
  | Error e -> Alcotest.fail (Case.error_to_string e)
  | Ok (r, findings) ->
      Alcotest.(check bool) "losses actually happened" true (r.Engine.metrics.msgs_lost_link > 0);
      Alcotest.(check (list string)) "wrapped run passes every oracle" []
        (List.map (fun f -> Format.asprintf "%a" Oracle.pp f) findings)

let test_replay_v2_roundtrip_with_loss () =
  let case =
    {
      clean_case with
      Case.loss = Ftc_fault.Omission.Burst { rate = 0.125; mean_len = 3. };
      transport = true;
    }
  in
  (match Chaos.Replay.of_string (Chaos.Replay.to_string case) with
  | Error e -> Alcotest.fail e
  | Ok (parsed, _) ->
      Alcotest.(check bool) "loss and transport round-trip" true (Case.equal case parsed));
  (* A version-1 file (no loss/transport lines) still loads, meaning
     reliable links and no wrapper. *)
  let v1 = "ftc-chaos-replay 1\nprotocol ft-agreement\nn 8\nalpha 0.5\nseed 3\n" in
  match Chaos.Replay.of_string v1 with
  | Error e -> Alcotest.fail e
  | Ok (parsed, _) ->
      Alcotest.(check bool) "v1 defaults to no loss" true
        (parsed.Case.loss = Ftc_fault.Omission.No_loss && not parsed.Case.transport)

let test_shrinker_discards_irrelevant_loss () =
  (* Wrap the known-bad kutten case in the transport with 1% loss riding
     along. The failure is caused by the crash, not the loss, so the
     shrinker must strip both the loss model and the wrapper. (A *raw*
     case with loss attached is out of scope here: it is judged by the
     accounting oracles only, so the election oracle cannot fire.) *)
  let _, _, bad = kutten_known_bad () in
  let bad = { bad with Case.loss = Ftc_fault.Omission.Uniform 0.01; transport = true } in
  let findings = Case.findings bad in
  Alcotest.(check bool) "still fails with loss + transport attached" true (findings <> []);
  let failure = Chaos.Fuzz.shrink_failure bad findings in
  Alcotest.(check bool) "loss shrunk away" true
    (failure.Chaos.Fuzz.shrunk.Case.loss = Ftc_fault.Omission.No_loss);
  Alcotest.(check bool) "transport shrunk away" true
    (not failure.Chaos.Fuzz.shrunk.Case.transport)

let test_omission_fuzz_deterministic_and_clean () =
  let config =
    { Chaos.Fuzz.default_config with Chaos.Fuzz.budget = 20; seed = 2; omission = true }
  in
  let a = Chaos.Fuzz.run config in
  let b = Chaos.Fuzz.run config in
  Alcotest.(check int) "cases run" a.Chaos.Fuzz.cases_run b.Chaos.Fuzz.cases_run;
  Alcotest.(check bool) "20 omission cases come back clean" true
    (a.Chaos.Fuzz.failure = None && b.Chaos.Fuzz.failure = None)

(* Engine hot-path regression: handwritten v1 and v2 replay files — the
   exact artifacts a past CI failure would have left behind — must still
   load, validate against the catalog, and replay with every accounting
   oracle (model / congest / trace-metrics) balanced after the engine's
   allocation refactor. [Case.run] records a trace, so a clean finding
   list means the trace reconciles exactly with the metrics counters. *)
let test_replay_fixture_files_still_validate_and_balance () =
  let fixtures =
    [
      ( "v1 crash-only",
        "ftc-chaos-replay 1\n\
         protocol ft-leader-election\n\
         n 48\n\
         alpha 0.7\n\
         seed 11\n\
         crash 3 1 drop-all\n\
         crash 7 2 keep-prefix 2\n",
        false );
      ( "v2 lossy wrapped",
        "ftc-chaos-replay 2\n\
         # saved by an older fuzzer run\n\
         protocol ft-leader-election\n\
         n 48\n\
         alpha 0.7\n\
         seed 4\n\
         crash 5 1 drop-random 0.5\n\
         loss uniform 0.02\n\
         transport on\n",
        true )
    ]
  in
  List.iter
    (fun (name, text, lossy) ->
      match Chaos.Replay.of_string text with
      | Error e -> Alcotest.failf "%s: parse failed: %s" name e
      | Ok (case, expect) -> (
          Alcotest.(check (list string)) (name ^ ": no expect lines") [] expect;
          Alcotest.(check bool) (name ^ ": validates") true
            (Result.is_ok (Case.validate case));
          match Case.run case with
          | Error e -> Alcotest.failf "%s: %s" name (Case.error_to_string e)
          | Ok (r, findings) ->
              if lossy then
                Alcotest.(check bool) (name ^ ": losses happened") true
                  (r.Engine.metrics.msgs_lost_link > 0);
              Alcotest.(check (list string)) (name ^ ": accounting balances") []
                (List.map (fun f -> Format.asprintf "%a" Oracle.pp f) findings)))
    fixtures

(* The same guarantee for artifacts that live on disk: the checked-in
   version-3 and version-4 fixture files must keep replaying to the
   exact run they recorded. The pinned constants are the metrics those
   files produced when they were written — any drift in the parser, the
   rng streams, or the engine's event order shows up here as a changed
   number, i.e. the counterexample silently became a different case. *)
let test_replay_fixtures_on_disk_bit_identical () =
  let read_file path =
    (* dune runtest runs us next to fixtures/; a manual `dune exec`
       from the project root sees them under test/ instead. *)
    let path = if Sys.file_exists path then path else Filename.concat "test" path in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fixtures =
    [
      (* (path, msgs_sent, bits_sent, dropped, lost_link, dropped_queue, ecn_marked, rounds) *)
      ("fixtures/replay-v3.ftc", 72_258, 2_146_827, 15, 1_485, 0, 0, 1_969);
      ("fixtures/replay-v4.ftc", 69_812, 2_038_184, 15, 0, 0, 63_210, 1_969);
    ]
  in
  List.iter
    (fun (path, sent, bits, dropped, lost, qdrop, marked, rounds) ->
      match Chaos.Replay.of_string (read_file path) with
      | Error e -> Alcotest.failf "%s: parse failed: %s" path e
      | Ok (case, _expect) -> (
          Alcotest.(check bool) (path ^ ": validates") true
            (Result.is_ok (Case.validate case));
          match Case.run case with
          | Error e -> Alcotest.failf "%s: %s" path (Case.error_to_string e)
          | Ok (r, findings) ->
              Alcotest.(check (list string)) (path ^ ": oracles clean") []
                (List.map (fun f -> Format.asprintf "%a" Oracle.pp f) findings);
              Alcotest.(check int) (path ^ ": msgs_sent") sent r.Engine.metrics.msgs_sent;
              Alcotest.(check int) (path ^ ": bits_sent") bits r.Engine.metrics.bits_sent;
              Alcotest.(check int) (path ^ ": msgs_dropped") dropped r.Engine.metrics.msgs_dropped;
              Alcotest.(check int) (path ^ ": msgs_lost_link") lost r.Engine.metrics.msgs_lost_link;
              Alcotest.(check int)
                (path ^ ": msgs_dropped_queue")
                qdrop r.Engine.metrics.msgs_dropped_queue;
              Alcotest.(check int)
                (path ^ ": msgs_ecn_marked")
                marked r.Engine.metrics.msgs_ecn_marked;
              Alcotest.(check int) (path ^ ": rounds_used") rounds r.Engine.rounds_used))
    fixtures

let test_replay_parser_rejects_garbage () =
  Alcotest.(check bool) "garbage" true (Result.is_error (Chaos.Replay.of_string "hello\nworld"));
  Alcotest.(check bool) "empty" true (Result.is_error (Chaos.Replay.of_string ""));
  Alcotest.(check bool) "missing header" true
    (Result.is_error (Chaos.Replay.of_string "ftc-chaos-replay 1\nprotocol ft-agreement\n"));
  Alcotest.(check bool) "bad version" true
    (Result.is_error (Chaos.Replay.of_string "ftc-chaos-replay 99\n"))

(* -- the fuzzer -- *)

let test_fuzz_deterministic_and_clean () =
  let config = { Chaos.Fuzz.default_config with Chaos.Fuzz.budget = 22; seed = 1 } in
  let a = Chaos.Fuzz.run config in
  let b = Chaos.Fuzz.run config in
  Alcotest.(check int) "cases run" a.Chaos.Fuzz.cases_run b.Chaos.Fuzz.cases_run;
  Alcotest.(check bool) "22 cases over every protocol come back clean" true
    (a.Chaos.Fuzz.failure = None && b.Chaos.Fuzz.failure = None)

let test_gen_case_deterministic_and_valid () =
  List.iter
    (fun (entry : Chaos.Catalog.entry) ->
      let g seed = Chaos.Fuzz.gen_case (Ftc_rng.Rng.create seed) entry ~n_min:16 ~n_max:48 in
      Alcotest.(check bool) (entry.name ^ ": deterministic") true (Case.equal (g 9) (g 9));
      let case = g 11 in
      Alcotest.(check bool) (entry.name ^ ": valid") true (Result.is_ok (Case.validate case));
      if not entry.crash_tolerant then
        Alcotest.(check int) (entry.name ^ ": fault-free plan") 0 (List.length case.Case.plan))
    Chaos.Catalog.all

let () =
  Alcotest.run "chaos"
    [
      ( "plan-validation",
        [
          Alcotest.test_case "structural rejects" `Quick test_scheduled_rejects_structurally_bad_plans;
          Alcotest.test_case "budget at pick time" `Quick test_scheduled_rejects_budget_at_pick_time;
          Alcotest.test_case "validate_plan" `Quick test_validate_plan;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "clean run" `Quick test_oracles_clean_on_good_run;
          Alcotest.test_case "case validation" `Quick test_case_validation;
          Alcotest.test_case "trace/metrics every adversary" `Quick test_trace_metrics_every_adversary;
        ] );
      ( "shrink-replay",
        [
          Alcotest.test_case "known-bad fails" `Quick test_known_bad_case_fails_election_oracle;
          Alcotest.test_case "junk alone harmless" `Quick test_junk_entries_alone_are_harmless;
          Alcotest.test_case "shrink + replay round-trip" `Quick
            test_shrink_drops_junk_and_replay_roundtrips;
          Alcotest.test_case "parser rejects garbage" `Quick test_replay_parser_rejects_garbage;
          Alcotest.test_case "fixture files validate + balance" `Quick
            test_replay_fixture_files_still_validate_and_balance;
          Alcotest.test_case "on-disk fixtures bit-identical" `Quick
            test_replay_fixtures_on_disk_bit_identical;
        ] );
      ( "sweep-cases",
        [
          Alcotest.test_case "named adversary runs + replay v3" `Quick
            test_adversary_case_runs_and_roundtrips;
          Alcotest.test_case "adversary validation" `Quick test_adversary_validation;
          Alcotest.test_case "faulty-probe violates, not fuzzed" `Quick
            test_faulty_probe_violates;
        ] );
      ( "omission",
        [
          Alcotest.test_case "lossy raw = degradation" `Quick test_lossy_raw_is_degradation_not_bug;
          Alcotest.test_case "wrapped survives light loss" `Quick
            test_wrapped_case_survives_light_loss;
          Alcotest.test_case "replay v2 round-trip" `Quick test_replay_v2_roundtrip_with_loss;
          Alcotest.test_case "shrinker discards irrelevant loss" `Quick
            test_shrinker_discards_irrelevant_loss;
          Alcotest.test_case "omission fuzz deterministic + clean" `Slow
            test_omission_fuzz_deterministic_and_clean;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "deterministic + clean" `Slow test_fuzz_deterministic_and_clean;
          Alcotest.test_case "gen_case" `Quick test_gen_case_deterministic_and_valid;
        ] );
    ]
