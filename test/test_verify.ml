(* Tests for the exhaustive small-n verifier: the closed-form counters
   against the actual enumerations (orbit sizes must sum to the raw
   schedule count), canonical forms (idempotent, permutation-invariant,
   and exactly what [states] yields), the symmetry-reduction soundness
   property — at n = 3 the reduced and unreduced enumerations flag the
   same canonical schedules, exhaustively and under qcheck-drawn input
   multisets — the "minimal by construction" claim (the shrinker is a
   no-op on a verifier counterexample), journal resume identity, jobs
   determinism, and the golden summary format. *)

module Space = Ftc_verify.Space
module Verify = Ftc_verify.Verify
module Case = Ftc_chaos.Case
module Oracle = Ftc_chaos.Oracle
module Fuzz = Ftc_chaos.Fuzz

let make_space ?keep_prefix_max ?grid ?horizon ?fixed_inputs ~protocol ~n () =
  match
    Space.make ?keep_prefix_max ?grid ?horizon ?fixed_inputs ~protocol ~n ~alpha:0.5 ()
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "Space.make: %s" e

(* -- counting vs enumeration -- *)

let check_counts t =
  let counts = Space.count t in
  let canonical = ref 0 and orbits = ref 0 in
  Seq.iter
    (fun s ->
      incr canonical;
      orbits := !orbits + Space.orbit_size t s)
    (Space.states t);
  Alcotest.(check int) "canonical count" counts.Space.canonical !canonical;
  Alcotest.(check int) "orbit sizes sum to schedules" counts.Space.schedules !orbits

let test_counts_small () =
  check_counts (make_space ~protocol:"crash-probe" ~n:3 ~horizon:2 ());
  check_counts (make_space ~protocol:"crash-probe" ~n:4 ~horizon:1 ~grid:true ());
  check_counts (make_space ~protocol:"ft-agreement" ~n:3 ~horizon:2 ~keep_prefix_max:1 ())

let test_all_states_count () =
  let t = make_space ~protocol:"crash-probe" ~n:3 ~horizon:2 () in
  let counts = Space.count t in
  Alcotest.(check int) "all_states length" counts.Space.schedules
    (Seq.fold_left (fun acc _ -> acc + 1) 0 (Space.all_states t))

let qcheck_counts =
  QCheck.Test.make ~name:"closed-form counts match enumeration" ~count:20
    QCheck.(quad (int_range 2 5) (int_range 1 3) (int_range 0 2) bool)
    (fun (n, horizon, kpm, grid) ->
      let t = make_space ~protocol:"crash-probe" ~n ~horizon ~keep_prefix_max:kpm ~grid () in
      let counts = Space.count t in
      let canonical = ref 0 and orbits = ref 0 in
      Seq.iter
        (fun s ->
          incr canonical;
          orbits := !orbits + Space.orbit_size t s)
        (Space.states t);
      counts.Space.canonical = !canonical && counts.Space.schedules = !orbits)

(* -- canonical forms -- *)

(* A random state of the n=3, horizon=2 crash-probe space: per-node
   label indices over the full label alphabet, crash budget respected by
   construction (at most one crash index). *)
let state_gen t =
  QCheck.(
    map
      (fun (i0, i1, i2, crash_at, cr) ->
        let inputs = [| i0 land 1; i1 land 1; i2 land 1 |] in
        let labels =
          Array.mapi
            (fun v input ->
              if crash_at = v then
                { Space.input; crash = Some (cr mod t.Space.horizon, cr mod 4) }
              else { Space.input; crash = None })
            inputs
        in
        { Space.env = 0; labels })
      (quad (int_range 0 1) (int_range 0 1) (int_range 0 1)
         (pair (int_range (-1) 2) (int_range 0 7))
      |> map (fun (a, b, c, (d, e)) -> (a, b, c, d, e))))

let shuffle_of perm (s : Space.state) =
  { s with Space.labels = Array.map (fun i -> s.Space.labels.(i)) perm }

let qcheck_canonicalize =
  let t = make_space ~protocol:"crash-probe" ~n:3 ~horizon:2 () in
  QCheck.Test.make ~name:"canonicalize is idempotent and permutation-invariant" ~count:300
    QCheck.(pair (state_gen t) (int_range 0 5))
    (fun (s, p) ->
      let perms =
        [|
          [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |]; [| 2; 0; 1 |];
          [| 2; 1; 0 |];
        |]
      in
      let c = Space.canonicalize s in
      let c' = Space.canonicalize (shuffle_of perms.(p) s) in
      Space.encode t c = Space.encode t c'
      && Space.encode t (Space.canonicalize c) = Space.encode t c
      && Space.orbit_size t s = Space.orbit_size t c)

let test_states_are_canonical_and_distinct () =
  let t = make_space ~protocol:"crash-probe" ~n:3 ~horizon:2 ~grid:true () in
  let seen = Hashtbl.create 64 in
  Seq.iter
    (fun s ->
      let e = Space.encode t s in
      Alcotest.(check string) "state is canonical" e (Space.encode t (Space.canonicalize s));
      if Hashtbl.mem seen e then Alcotest.failf "duplicate canonical state %s" e;
      Hashtbl.add seen e ())
    (Space.states t)

(* -- symmetry-reduction soundness -- *)

(* A state violates when its literal case (labels in place, seed from the
   canonical form) has any oracle finding. *)
let violates t s =
  Case.findings (Space.to_case t ~base_seed:1 ~seed_index:0 s) <> []

(* Reduced and unreduced enumeration must flag exactly the same canonical
   schedules: canonicalization never hides (or invents) a violation. *)
let check_soundness t =
  let canon_of s = Space.encode t (Space.canonicalize s) in
  let reduced = Hashtbl.create 16 and unreduced = Hashtbl.create 16 in
  Seq.iter (fun s -> if violates t s then Hashtbl.replace reduced (canon_of s) ()) (Space.states t);
  Seq.iter
    (fun s ->
      let key = canon_of s in
      let wrong = violates t s <> Hashtbl.mem reduced key in
      if wrong then
        Alcotest.failf "orbit member of %s disagrees with its canonical verdict" key;
      if violates t s then Hashtbl.replace unreduced key ())
    (Space.all_states t);
  Alcotest.(check int) "same violating canonical set" (Hashtbl.length reduced)
    (Hashtbl.length unreduced)

let test_soundness_exhaustive_n3 () =
  check_soundness (make_space ~protocol:"crash-probe" ~n:3 ~horizon:2 ())

let qcheck_soundness_over_inputs =
  QCheck.Test.make ~name:"symmetry soundness holds for every fixed input multiset" ~count:8
    QCheck.(triple (int_range 0 1) (int_range 0 1) (int_range 0 1))
    (fun (a, b, c) ->
      let fixed_inputs = [| a; b; c |] in
      let t = make_space ~protocol:"crash-probe" ~n:3 ~horizon:2 ~fixed_inputs () in
      check_soundness t;
      true)

(* -- minimal by construction: the shrinker fixes nothing -- *)

let first_violation cfg =
  match Verify.run cfg with
  | Error e -> Alcotest.failf "verify: %s" e
  | Ok r -> (
      match r.Verify.violations with
      | v :: _ -> (r, v)
      | [] -> Alcotest.fail "expected a violation")

let test_shrinker_fixpoint () =
  let cfg = { (Verify.default_config ~protocol:"crash-probe") with n = 4; horizon = 2 } in
  let _r, v = first_violation cfg in
  let findings = Case.findings v.Verify.case in
  Alcotest.(check bool) "counterexample still fails" true (findings <> []);
  let f = Fuzz.shrink_failure v.Verify.case findings in
  Alcotest.(check bool) "shrinker is a no-op on a verifier counterexample" true
    (Case.equal f.Fuzz.shrunk v.Verify.case);
  (* And it is the known-minimal schedule: one crash, round 0,
     keep-prefix 1, all-zero inputs, pure env. *)
  Alcotest.(check (list (triple int int string)))
    "single round-0 keep-prefix-1 crash"
    [ (3, 0, "keep-prefix 1") ]
    (List.map
       (fun (v, r, rule) -> (v, r, Case.rule_to_string rule))
       v.Verify.case.Case.plan);
  Alcotest.(check (array int)) "all-zero inputs" [| 0; 0; 0; 0 |] v.Verify.case.Case.inputs

(* -- golden summary -- *)

let test_golden_summary_violated () =
  let cfg = { (Verify.default_config ~protocol:"crash-probe") with n = 3; horizon = 2 } in
  let r, v = first_violation cfg in
  Alcotest.(check string) "summary"
    "verify crash-probe: n=3 alpha=0.5 horizon=2 rules=4 envs=1 seeds/state=1\n\
    \  states:     52 canonical / 200 schedules (3.8x reduction)\n\
    \  explored:   11 (21.2% of the space) covering 35 schedules\n\
    \  violations: 1\n\
    \  verdict:    violated"
    (Verify.summary r);
  Alcotest.(check int) "BFS position" 10 v.Verify.index;
  Alcotest.(check string) "violating state"
    "crash-probe n=3 env=0:loss=none queue=none transport=off [0 0 0!0:keep-prefix 1]"
    v.Verify.state;
  Alcotest.(check int) "exit code" 1 (Verify.exit_code r)

let test_golden_summary_clean () =
  let cfg =
    {
      (Verify.default_config ~protocol:"crash-probe") with
      n = 3;
      horizon = 2;
      problem_oracles = false;
    }
  in
  match Verify.run cfg with
  | Error e -> Alcotest.failf "verify: %s" e
  | Ok r ->
      Alcotest.(check string) "summary"
        "verify crash-probe: n=3 alpha=0.5 horizon=2 rules=4 envs=1 seeds/state=1\n\
        \  states:     52 canonical / 200 schedules (3.8x reduction)\n\
        \  explored:   52 (100.0% of the space) covering 200 schedules\n\
        \  violations: 0\n\
        \  verdict:    exhaustive-clean"
        (Verify.summary r);
      Alcotest.(check int) "exit code" 0 (Verify.exit_code r)

let test_capped_is_partial () =
  let cfg =
    {
      (Verify.default_config ~protocol:"crash-probe") with
      n = 3;
      horizon = 2;
      problem_oracles = false;
      max_states = Some 10;
    }
  in
  match Verify.run cfg with
  | Error e -> Alcotest.failf "verify: %s" e
  | Ok r ->
      Alcotest.(check bool) "not complete" false r.Verify.complete;
      Alcotest.(check int) "explored the cap" 10 r.Verify.explored_states;
      Alcotest.(check int) "exit code 3" 3 (Verify.exit_code r)

(* -- determinism and resume -- *)

let report_fingerprint (r : Verify.report) =
  ( Verify.summary r,
    List.map
      (fun (v : Verify.violation) -> (v.index, v.state, v.seed_index, v.oracles, v.details))
      r.Verify.violations )

let test_jobs_determinism () =
  let cfg =
    {
      (Verify.default_config ~protocol:"crash-probe") with
      n = 4;
      horizon = 2;
      keep_going = true;
    }
  in
  match (Verify.run cfg, Verify.run { cfg with jobs = 2 }) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "jobs=1 and jobs=2 reports identical" true
        (report_fingerprint a = report_fingerprint b)
  | Error e, _ | _, Error e -> Alcotest.failf "verify: %s" e

(* Journal a full run, replay its chunk prefix into a fresh journal, and
   resume from it: the resumed report must equal the uninterrupted one
   (this is the byte-identical stdout contract, one level down). *)
let test_journal_resume_identity () =
  let cfg =
    { (Verify.default_config ~protocol:"crash-probe") with n = 4; problem_oracles = false }
  in
  let full = Filename.temp_file "ftc-verify" ".journal" in
  let cut = Filename.temp_file "ftc-verify" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove full;
      Sys.remove cut)
    (fun () ->
      let a =
        match Verify.run ~journal:full cfg with
        | Ok r -> r
        | Error e -> Alcotest.failf "verify: %s" e
      in
      Alcotest.(check bool) "space spans several chunks" true
        (a.Verify.explored_states > 512);
      (* Keep the header and the first chunk record only — as if the
         run had been SIGKILLed after one checkpoint. *)
      let ic = open_in_bin full in
      let header = input_line ic in
      let chunk0 = input_line ic in
      close_in ic;
      let oc = open_out_bin cut in
      output_string oc (header ^ "\n" ^ chunk0 ^ "\n");
      close_out oc;
      let b =
        match Verify.run ~journal:cut ~resume:true cfg with
        | Ok r -> r
        | Error e -> Alcotest.failf "resume: %s" e
      in
      Alcotest.(check int) "resumed exactly one chunk" 512 b.Verify.resumed_states;
      Alcotest.(check bool) "resumed report identical" true
        (report_fingerprint a = report_fingerprint b))

let test_resume_spec_mismatch () =
  let cfg = { (Verify.default_config ~protocol:"crash-probe") with n = 3; horizon = 2 } in
  let path = Filename.temp_file "ftc-verify" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Verify.run ~journal:path cfg with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "verify: %s" e);
      match Verify.run ~journal:path ~resume:true { cfg with base_seed = 2 } with
      | Error e ->
          Alcotest.(check bool) "mentions the mismatch" true
            (Astring.String.is_infix ~affix:"spec mismatch" e)
      | Ok _ -> Alcotest.fail "resume against a different spec must fail")

let () =
  Alcotest.run "verify"
    [
      ( "counting",
        [
          Alcotest.test_case "closed form vs enumeration" `Quick test_counts_small;
          Alcotest.test_case "all_states length" `Quick test_all_states_count;
          QCheck_alcotest.to_alcotest qcheck_counts;
        ] );
      ( "canonical",
        [
          QCheck_alcotest.to_alcotest qcheck_canonicalize;
          Alcotest.test_case "states are canonical and distinct" `Quick
            test_states_are_canonical_and_distinct;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "exhaustive at n=3" `Quick test_soundness_exhaustive_n3;
          QCheck_alcotest.to_alcotest qcheck_soundness_over_inputs;
        ] );
      ( "minimality",
        [ Alcotest.test_case "shrinker fixpoint" `Quick test_shrinker_fixpoint ] );
      ( "report",
        [
          Alcotest.test_case "golden summary (violated)" `Quick test_golden_summary_violated;
          Alcotest.test_case "golden summary (clean)" `Quick test_golden_summary_clean;
          Alcotest.test_case "capped sweep is partial" `Quick test_capped_is_partial;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 2" `Quick test_jobs_determinism;
          Alcotest.test_case "journal resume identity" `Quick test_journal_resume_identity;
          Alcotest.test_case "resume spec mismatch" `Quick test_resume_spec_mismatch;
        ] );
    ]
