(* Tests for the Byzantine probe (open question 3): the crash-fault
   protocol must work untouched with zero attackers and break validity
   with one. *)

module Engine = Ftc_sim.Engine
module Decision = Ftc_sim.Decision
module Probe = Ftc_core.Byzantine_probe
module Props = Ftc_core.Properties

let run ~n ~alpha ~seed ~inputs =
  let (module P) = Probe.make Ftc_core.Params.default in
  let module E = Engine.Make (P) in
  let r = E.run { (Engine.default_config ~n ~alpha ~seed) with inputs = Some inputs } in
  Alcotest.(check (list string)) "no model violations" [] (List.map Ftc_sim.Violation.to_string r.violations);
  r

let honest_zero_deciders inputs (r : Engine.result) =
  let count = ref 0 in
  Array.iteri
    (fun i d ->
      if
        inputs.(i) <> Probe.byzantine_input
        && (not r.crashed.(i))
        && Decision.equal d (Decision.Agreed 0)
      then incr count)
    r.decisions;
  !count

let test_no_attackers_behaves_like_agreement () =
  for seed = 1 to 10 do
    let n = 128 in
    let rng = Ftc_rng.Rng.create (seed * 3) in
    let inputs = Array.init n (fun _ -> if Ftc_rng.Rng.bool rng then 1 else 0) in
    let r = run ~n ~alpha:1.0 ~seed ~inputs in
    let rep = Props.check_implicit_agreement ~inputs r in
    Alcotest.(check bool) (Printf.sprintf "seed %d honest run ok" seed) true rep.ok
  done

let test_single_attacker_breaks_validity () =
  let broken = ref 0 in
  let trials = 10 in
  for seed = 1 to trials do
    let n = 256 in
    let inputs = Array.make n 1 in
    inputs.(0) <- Probe.byzantine_input;
    let r = run ~n ~alpha:0.9 ~seed ~inputs in
    if honest_zero_deciders inputs r > 0 then incr broken
  done;
  Alcotest.(check bool)
    (Printf.sprintf "validity broken in >= 9/10 runs (got %d)" !broken)
    true (!broken >= trials - 1)

let test_attack_cost_is_sublinear () =
  let n = 1024 in
  let inputs = Array.make n 1 in
  inputs.(0) <- Probe.byzantine_input;
  let r = run ~n ~alpha:0.9 ~seed:5 ~inputs in
  Alcotest.(check bool) "total cost far below n^2" true (r.metrics.msgs_sent < n * n / 20)

let test_attacker_joins_committee () =
  let n = 128 in
  let inputs = Array.make n 1 in
  inputs.(3) <- Probe.byzantine_input;
  let r = run ~n ~alpha:0.9 ~seed:7 ~inputs in
  Alcotest.(check bool) "attacker campaigns" true
    (r.observations.(3).Ftc_sim.Observation.role = Ftc_sim.Observation.Candidate)

let () =
  Alcotest.run "byzantine-probe"
    [
      ( "probe",
        [
          Alcotest.test_case "no attackers = agreement" `Quick test_no_attackers_behaves_like_agreement;
          Alcotest.test_case "one attacker breaks validity" `Quick test_single_attacker_breaks_validity;
          Alcotest.test_case "attack is cheap" `Quick test_attack_cost_is_sublinear;
          Alcotest.test_case "attacker campaigns" `Quick test_attacker_joins_committee;
        ] );
    ]
