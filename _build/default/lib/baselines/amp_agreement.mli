(** Fault-free sublinear implicit agreement, after Augustine, Molla &
    Pandurangan, "Sublinear message bounds for randomized agreement"
    (PODC 2018) — reference [23] of the paper, which introduced implicit
    agreement.

    One candidate/referee round-trip: candidates send their input bit to
    ~2 sqrt(n ln n) random referees; each referee replies with the
    minimum bit it heard; candidates decide the minimum of their own bit
    and all replies. Any two candidates share a referee w.h.p., so every
    candidate sees 0 if any candidate holds 0 — a non-empty set of nodes
    decides one common input value (implicit agreement).

    O(1) rounds, O(sqrt(n) log^(3/2) n) messages, no crash tolerance:
    the alpha = 1 yardstick for experiment F12. *)

val make : ?params:Ftc_core.Params.t -> unit -> (module Ftc_sim.Protocol.S)
