(** Push-gossip agreement — the Chlebus–Kowalski [SPAA'09] stand-in.

    CK'09 ("locally scalable randomized consensus") reaches explicit
    agreement in expected O(log f) rounds with expected O(n log n)
    messages against linear crash fractions. This stand-in keeps the
    complexity shape with the simplest mechanism in that family: for
    Theta(log n) rounds every live node pushes its running minimum to a
    constant number of fresh uniformly random peers, then decides the
    minimum it holds.

    Messages Theta(n log n), rounds Theta(log n), KT0. Unlike CK'09 the
    guarantee is only probabilistic in a crash-free suffix — a value whose
    holders all crash mid-epidemic can leave the network split; the T1
    experiment measures that failure rate (see DESIGN.md substitutions). *)

val make : ?fanout:int -> unit -> (module Ftc_sim.Protocol.S)
(** [fanout] peers contacted per round (default 2). *)
