(** FloodSet: the classical deterministic crash-fault consensus
    (Pease–Shostak–Lamport lineage; see Lynch, ch. 6).

    Every node floods its value to everyone; whenever its running minimum
    drops it refloods; after [f + 1] rounds at least one round was free of
    crashes, so all live nodes share the same minimum and decide it.

    Flooding only on change keeps the message count at O(n^2) instead of
    O(n^2 f) without affecting correctness. This is the quadratic
    yardstick of Table I: always correct, tolerance up to n - 1, but a
    factor ~n^{3/2} more messages than the paper's protocol and Theta(f)
    rounds instead of O(log n / alpha). *)

val make : unit -> (module Ftc_sim.Protocol.S)
