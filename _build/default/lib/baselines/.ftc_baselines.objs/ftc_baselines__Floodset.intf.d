lib/baselines/floodset.mli: Ftc_sim
