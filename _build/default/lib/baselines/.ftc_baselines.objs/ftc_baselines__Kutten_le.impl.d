lib/baselines/kutten_le.ml: Ftc_core Ftc_rng Ftc_sim Fun List
