lib/baselines/tree_agreement.ml: Ftc_sim Fun List
