lib/baselines/amp_agreement.mli: Ftc_core Ftc_sim
