lib/baselines/rotating.ml: Ftc_sim Fun List
