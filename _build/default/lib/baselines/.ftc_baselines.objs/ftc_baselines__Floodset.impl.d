lib/baselines/floodset.ml: Ftc_sim Int List Set
