lib/baselines/amp_agreement.ml: Ftc_core Ftc_rng Ftc_sim List
