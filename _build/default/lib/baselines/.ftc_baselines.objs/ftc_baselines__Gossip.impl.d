lib/baselines/gossip.ml: Ftc_sim List
