lib/baselines/tree_agreement.mli: Ftc_sim
