lib/baselines/rotating.mli: Ftc_sim
