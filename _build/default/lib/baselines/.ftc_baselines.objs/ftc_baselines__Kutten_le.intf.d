lib/baselines/kutten_le.mli: Ftc_core Ftc_sim
