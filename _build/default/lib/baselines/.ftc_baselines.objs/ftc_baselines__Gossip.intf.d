lib/baselines/gossip.mli: Ftc_sim
