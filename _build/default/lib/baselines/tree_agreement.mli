(** Tree-aggregation agreement — the Gilbert–Kowalski [SODA'10] stand-in.

    GK'10 achieves explicit agreement with O(n) messages (KT1, known
    neighbours) and O(log n) rounds, tolerating up to n/2 - 1 crashes, via
    a 30-page epoch/checkpointing construction. Reproducing that machinery
    verbatim is out of scope; this module implements a protocol with the
    same *complexity shape*, as recorded in DESIGN.md's substitution list:

    - values are min-aggregated up a static binary tree over the node
      identifiers, every node sending to both its parent and grandparent
      so a single crash on the path cannot lose a subtree;
    - the root then broadcasts the aggregate; if a node has seen no
      broadcast by the time its tree depth is scheduled, it broadcasts its
      own aggregate as a backup root (depth level by depth level).

    Messages O(n) plus O(n) per backup level actually triggered; rounds
    O(log n). Unlike GK'10 this stand-in can disagree when both ancestors
    of a subtree crash in the same window — the T1 experiment measures
    that failure rate instead of assuming it away. *)

val make : unit -> (module Ftc_sim.Protocol.S)
