(** Rotating-coordinator consensus (the synchronous crash-fault classic
    behind the deterministic rows of Table I, e.g. Chlebus–Kowalski–
    Strojnowski's O(f)-time, Omega~(n)-message regime).

    KT1 model: in phase p (one round) the node with identifier p, if
    alive, broadcasts its current value; every receiver adopts it. After
    f + 1 phases at least one coordinator was non-faulty for its whole
    phase, and every later (possibly crashing) coordinator re-broadcasts
    that adopted value, so partial deliveries cannot reintroduce
    disagreement.

    Messages O(n f), rounds f + 2, tolerance up to n - 1: time and
    messages both linear in f where the paper pays only polylog. *)

val make : unit -> (module Ftc_sim.Protocol.S)
