(** Fault-free sublinear implicit leader election, after Kutten,
    Pandurangan, Peleg, Robinson & Trehan, "Sublinear bounds for
    randomized leader election" (TCS 2015) — reference [21] of the paper
    and the origin of its candidate/referee structure.

    Each node self-selects as a candidate with probability ~6 ln n / n
    (Theta(log n) candidates), draws a rank, and sends it to
    ~2 sqrt(n ln n) random referees. Each referee replies with the
    smallest rank it heard; a candidate whose every reply equals its own
    rank is the leader. Any two candidates share a referee w.h.p.
    (birthday bound), so the winner is unique.

    O(1) rounds and O(sqrt(n) log^(3/2) n) messages — the fault-free
    yardstick for the "surprising fact" of Section I-A: with constant
    alpha, the paper's crash-tolerant protocol matches this bound up to a
    polylog factor (experiment F12). No crash tolerance: one crashed
    candidate can leave the network leaderless. *)

val make : ?params:Ftc_core.Params.t -> unit -> (module Ftc_sim.Protocol.S)
(** Constants are shared with the core protocol's {!Ftc_core.Params} at
    alpha = 1. *)
