type t = {
  candidate_coeff : float;
  referee_coeff : float;
  iteration_coeff : float;
  iteration_slack : int;
  rank_power : int;
  quiet_iterations_to_decide : int;
}

let default =
  {
    candidate_coeff = 6.;
    referee_coeff = 2.;
    iteration_coeff = 12.;
    iteration_slack = 4;
    rank_power = 4;
    quiet_iterations_to_decide = 2;
  }

let ln n = Float.log (float_of_int (max 2 n))

let candidate_prob t ~n ~alpha =
  let p = t.candidate_coeff *. ln n /. (alpha *. float_of_int n) in
  Float.min 1. (Float.max 0. p)

let referee_count t ~n ~alpha =
  let k = t.referee_coeff *. sqrt (float_of_int n *. ln n /. alpha) in
  min (n - 1) (max 1 (int_of_float (ceil k)))

let iterations t ~n ~alpha =
  int_of_float (ceil (t.iteration_coeff *. ln n /. alpha)) + t.iteration_slack

let rank_bound t ~n =
  let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
  if float_of_int n ** float_of_int t.rank_power >= float_of_int (max_int / 2) then
    max_int / 2
  else max n (pow 1 t.rank_power)

let preprocessing_rounds t ~n ~alpha =
  int_of_float (ceil (2. *. t.candidate_coeff *. ln n /. alpha)) + 2

let expected_candidates t ~n ~alpha = t.candidate_coeff *. ln n /. alpha
