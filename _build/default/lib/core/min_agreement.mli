(** Multi-valued implicit agreement — an extension of the paper's binary
    protocol (Section V-A) to arbitrary bounded integer inputs.

    The binary protocol is a special case of minimum-propagation: "0
    spreads, 1 stays silent" is exactly "the smaller value spreads". This
    module generalises it: inputs are integers in [0, n^4] (so a value
    fits the CONGEST budget like a rank), candidates register with random
    referees carrying their input, and both candidates and referees
    re-forward their running minimum whenever it strictly improves.

    Guarantees carry over from Lemmas 2 and 3: with a non-faulty
    candidate in the committee and a common non-faulty referee per
    candidate pair, all live candidates converge to the same minimum of
    the candidates' inputs within O(log n / alpha) iterations, and that
    value is some node's input (validity).

    Cost: a node may forward once per strict improvement of its running
    minimum. With k distinct candidate input values this multiplies the
    binary protocol's O(sqrt(n) log^(3/2) n / alpha^(3/2)) bound by at
    most min(k, |C|); for uniformly random inputs the expected number of
    record improvements is harmonic, i.e. an O(log log-ish) factor in
    practice. The messages are value-sized, so bits carry an extra
    O(log n) as in Remark 1. This is an extension beyond the paper,
    ablated in experiment A2. *)

val make : Params.t -> (module Ftc_sim.Protocol.S)
(** Node inputs are clamped to [0, n^4]. Candidates decide the committee
    minimum; non-candidates stay undecided (implicit agreement). *)
