(** Fault-tolerant implicit leader election (Section IV-A of the paper).

    Every node draws a random rank from [1, n^4] (its identity) and
    self-selects as a *candidate* with probability ~6 ln n / (alpha n).
    Each candidate samples ~2 sqrt(n ln n / alpha) *referee* nodes through
    fresh random ports; candidates never talk to each other directly — all
    communication is relayed by referees, and Lemma 3 guarantees every pair
    of candidates shares a non-faulty referee w.h.p.

    The protocol then runs O(log n / alpha) iterations of four rounds:

    + {b A} (candidate → referees): propose the minimum not-yet-retired
      rank from the locally known rank list; proposing one's own rank
      marks the node as leader.
    + {b B} (referee → its candidates): relay the {e maximum} proposal
      received, flagged as owner-proposed when the proposer proposed its
      own rank. Maximum, because a larger proposal means the proposer has
      already discarded smaller, crashed ranks.
    + {b C} (candidate → referees): on an owner-proposed maximum, adopt it
      as the (confirmed) leader and echo support; on seeing one's own rank
      as the maximum, broadcast an owner confirmation; otherwise support
      the maximum if known.
    + {b D} (referee → its candidates): relay the maximum confirmation.

    A candidate whose proposed rank produces no confirmation for a full
    iteration retires that rank as crashed and moves to the next minimum
    (the paper's Step 4 timeout). Confirmed-leader adoption is monotone in
    the rank, which resolves transient split beliefs caused by partially
    lost confirmations: the largest confirmation that reaches a shared
    non-faulty referee wins.

    Reconstruction note: the IEEE supplemental pseudocode is not publicly
    available; this implementation follows the prose of Section IV-A.
    Where the prose is ambiguous we chose the reading that preserves the
    stated bounds and noted it in comments. The protocol is Monte Carlo —
    its w.h.p. failure probability is measured, not assumed, by the F7 and
    F11 experiments.

    With [explicit = true] the elected leader broadcasts its rank to all
    [n - 1] ports after the implicit phase, and every node decides
    [Follower rank] — the O(n log n / alpha)-message extension described
    at the end of Section IV-A. *)

val make : ?explicit:bool -> Params.t -> (module Ftc_sim.Protocol.S)
(** [make params] builds the protocol as a first-class module, ready for
    [Ftc_sim.Engine.Make]. *)

val calendar_rounds : Params.t -> n:int -> alpha:float -> int
(** Total rounds of the implicit calendar (preprocessing + iterations);
    [max_rounds] of the protocol, plus 2 more in explicit mode. *)
