(** A Byzantine probe for the paper's open question 3.

    The paper closes asking "whether a sub-linear message bound agreement
    protocol is possible in the presence of Byzantine node failure". This
    module demonstrates why the question is open: the crash-fault
    agreement protocol of Section V-A relies on every received 0 being
    *somebody's input*, so a single equivocating node that forges a 0
    breaks validity network-wide at sublinear cost to the attacker.

    The probe protocol behaves exactly like {!Agreement} for honest nodes
    (inputs 0/1). A node whose input is {!byzantine_input} plays the
    attacker: it always joins the committee and injects a forged 0.
    Experiment A4 measures the validity-violation probability as a
    function of the number of attackers — it jumps to ~1 with a single
    Byzantine node, confirming that crash-tolerance of the sampling
    overlay does not extend to Byzantine tolerance for free. *)

val byzantine_input : int
(** Input value marking a node as a Byzantine attacker (2). *)

val make : Params.t -> (module Ftc_sim.Protocol.S)
