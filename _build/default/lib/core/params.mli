(** Protocol parameters and the quantities derived from them.

    The paper fixes concrete constants in its analysis: each node becomes a
    candidate with probability [6 ln n / (alpha n)] (Lemma 1), each
    candidate samples [2 (n ln n / alpha)^(1/2)] referees (Lemma 3), ranks
    are drawn from [1, n^4] (footnote 4), and the iterative phase runs for
    O(log n / alpha) iterations — enough that the crashed prefix of
    candidate ranks (at most |C| <= 12 ln n / alpha w.h.p.) is exhausted.

    All constants live here as one record so the ablation experiments
    (Figure F8) can scale them and watch the guarantees degrade. *)

type t = {
  candidate_coeff : float;
      (** [c] in candidate probability [c ln n / (alpha n)]; paper: 6. *)
  referee_coeff : float;
      (** [c] in referee sample size [c (n ln n / alpha)^(1/2)]; paper: 2. *)
  iteration_coeff : float;
      (** [c] in iteration count [c ln n / alpha]; 12 matches the w.h.p.
          upper bound on the number of candidates, so there is an
          iteration to spare for every possible candidate crash. *)
  iteration_slack : int;  (** Additive iterations beyond the coefficient. *)
  rank_power : int;  (** Ranks are uniform on [1, n^rank_power]; paper: 4. *)
  quiet_iterations_to_decide : int;
      (** A candidate with a confirmed leader view that hears nothing for
          this many full iterations decides early (the run then stops on
          quiescence). Pure optimisation; never weakens safety because
          deciding does not halt a node. *)
}

val default : t

val candidate_prob : t -> n:int -> alpha:float -> float
(** Self-selection probability, clamped to [0, 1]. *)

val referee_count : t -> n:int -> alpha:float -> int
(** Referee sample size per candidate, clamped to [n - 1]. *)

val iterations : t -> n:int -> alpha:float -> int

val rank_bound : t -> n:int -> int
(** Upper end of the rank range; capped to stay within [max_int]. *)

val preprocessing_rounds : t -> n:int -> alpha:float -> int
(** Rounds reserved for referees to forward rank lists, one rank per edge
    per round: the w.h.p. upper bound on the candidate count, since a
    referee serves at most |C| candidates and relays at most |C| ranks. *)

val expected_candidates : t -> n:int -> alpha:float -> float
(** The mean candidate-set size [c ln n / alpha] (for tests and reports). *)
