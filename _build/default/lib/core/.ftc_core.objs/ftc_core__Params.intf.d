lib/core/params.mli:
