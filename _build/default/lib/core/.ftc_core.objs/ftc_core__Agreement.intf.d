lib/core/agreement.mli: Ftc_sim Params
