lib/core/leader_election.mli: Ftc_sim Params
