lib/core/min_agreement.mli: Ftc_sim Params
