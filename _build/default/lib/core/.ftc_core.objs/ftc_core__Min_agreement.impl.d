lib/core/min_agreement.ml: Ftc_rng Ftc_sim Fun List Params
