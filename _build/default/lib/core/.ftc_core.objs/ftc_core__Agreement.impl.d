lib/core/agreement.ml: Ftc_rng Ftc_sim Fun Int List Params Set
