lib/core/properties.ml: Array Ftc_sim Hashtbl List
