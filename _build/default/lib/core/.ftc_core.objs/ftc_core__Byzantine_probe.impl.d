lib/core/byzantine_probe.ml: Ftc_rng Ftc_sim Fun List Params
