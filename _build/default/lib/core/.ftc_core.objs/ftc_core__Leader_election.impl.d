lib/core/leader_election.ml: Ftc_rng Ftc_sim Fun Int List Params Set
