lib/core/byzantine_probe.mli: Ftc_sim Params
