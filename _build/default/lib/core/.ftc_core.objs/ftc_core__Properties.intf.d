lib/core/properties.mli: Ftc_sim
