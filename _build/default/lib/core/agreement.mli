(** Fault-tolerant implicit (binary) agreement (Section V-A of the paper).

    Structure as in {!Leader_election}: a random committee of
    ~6 ln n / alpha candidates, each wired to ~2 sqrt(n ln n / alpha)
    referees; Lemmas 2 and 3 give a non-faulty candidate and a common
    non-faulty referee per candidate pair w.h.p.

    The candidates are biased towards 0:

    + {b Step 0} — a candidate with input 0 sends 0 to its referees and
      decides 0; a candidate with input 1 sends 1 (merely to register as a
      candidate) and waits.
    + {b Step 1} (iterated) — a candidate receiving 0 that has not yet
      decided 0 forwards 0 to its referees once, and decides 0.
    + {b Step 2} (iterated) — a referee holding 0 that has not yet
      forwarded it sends 0 to its candidates once.

    After O(log n / alpha) two-round iterations every live candidate that
    could ever hear a 0 has heard it (at most one crash can stall the
    propagation per iteration); candidates that never saw a 0 decide 1.
    Each candidate and each referee forwards 0 at most once and all
    messages are single-bit values, giving the
    O(sqrt(n) log^(3/2) n / alpha^(3/2))-bit bound of Theorem 5.1.

    With [explicit = true], decided candidates broadcast the agreed value
    to all n-1 ports in the final round — the O(n log n / alpha)-message
    extension of Section V-A — and every node decides. *)

val make : ?explicit:bool -> Params.t -> (module Ftc_sim.Protocol.S)

val calendar_rounds : Params.t -> n:int -> alpha:float -> int
(** Rounds of the implicit calendar ([max_rounds]; +2 in explicit mode). *)
