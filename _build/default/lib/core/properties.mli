(** Post-run correctness checkers for the two problems.

    These implement Definitions 1 and 2 of the paper, with the standard
    crash-fault convention that only nodes alive at the end of the run are
    held to the specification (a node that crashed is faulty by
    definition; its last recorded output is reported but not judged).

    The protocols are Monte Carlo, so the checkers return verdicts rather
    than raising: the experiments aggregate them into empirical success
    probabilities, which is exactly what the paper's w.h.p. statements
    predict. *)

type election_report = {
  ok : bool;  (** Exactly one live leader and no live undecided node. *)
  live_leaders : int;
  live_undecided : int;
  leader : int option;  (** The unique live leader's index, when [ok]. *)
  leader_was_faulty : bool option;
      (** When a unique live leader exists: was it in the faulty set?
          Footnote 3 of the paper: the elected leader is guaranteed
          non-faulty only with probability >= alpha. *)
  crashed_leaders : int;
      (** Crashed nodes whose final state still said Elected; informative
          only. *)
}

val check_implicit_election : Ftc_sim.Engine.result -> election_report

type explicit_election_report = {
  base : election_report;
  ok : bool;  (** [base.ok], every live non-leader knows a leader rank,
                  and all of them name the same rank. *)
  live_unaware : int;  (** Live nodes that never learned the leader. *)
  distinct_named_ranks : int;
}

val check_explicit_election : Ftc_sim.Engine.result -> explicit_election_report

type agreement_report = {
  ok : bool;
      (** Some live node decided, all live deciders agree, and the common
          value is the input of some node (validity). *)
  live_deciders : int;
  live_undecided : int;
  distinct_values : int list;  (** Distinct values decided by live nodes. *)
  value : int option;  (** The common value, when consensus held. *)
  valid : bool;  (** The common value was somebody's input. *)
}

val check_implicit_agreement : inputs:int array -> Ftc_sim.Engine.result -> agreement_report

val check_explicit_agreement : inputs:int array -> Ftc_sim.Engine.result -> agreement_report
(** As {!check_implicit_agreement}, but additionally every live node must
    have decided. *)
