module Decision = Ftc_sim.Decision
module Engine = Ftc_sim.Engine

type election_report = {
  ok : bool;
  live_leaders : int;
  live_undecided : int;
  leader : int option;
  leader_was_faulty : bool option;
  crashed_leaders : int;
}

let check_implicit_election (r : Engine.result) =
  let n = Array.length r.decisions in
  let live_leaders = ref 0 and live_undecided = ref 0 and crashed_leaders = ref 0 in
  let leader = ref None in
  for i = 0 to n - 1 do
    match r.decisions.(i) with
    | Decision.Elected ->
        if r.crashed.(i) then incr crashed_leaders
        else begin
          incr live_leaders;
          leader := Some i
        end
    | Decision.Undecided -> if not r.crashed.(i) then incr live_undecided
    | Decision.Not_elected | Decision.Follower _ | Decision.Agreed _ -> ()
  done;
  let ok = !live_leaders = 1 && !live_undecided = 0 in
  {
    ok;
    live_leaders = !live_leaders;
    live_undecided = !live_undecided;
    leader = (if !live_leaders = 1 then !leader else None);
    leader_was_faulty =
      (match (!live_leaders, !leader) with 1, Some l -> Some r.faulty.(l) | _ -> None);
    crashed_leaders = !crashed_leaders;
  }

type explicit_election_report = {
  base : election_report;
  ok : bool;
  live_unaware : int;
  distinct_named_ranks : int;
}

let check_explicit_election (r : Engine.result) =
  let base = check_implicit_election r in
  let n = Array.length r.decisions in
  let live_unaware = ref 0 in
  let named = Hashtbl.create 4 in
  for i = 0 to n - 1 do
    if not r.crashed.(i) then begin
      match r.decisions.(i) with
      | Decision.Follower rank -> Hashtbl.replace named rank ()
      | Decision.Not_elected | Decision.Undecided -> incr live_unaware
      | Decision.Elected | Decision.Agreed _ -> ()
    end
  done;
  let distinct = Hashtbl.length named in
  {
    base;
    ok = base.ok && !live_unaware = 0 && distinct <= 1;
    live_unaware = !live_unaware;
    distinct_named_ranks = distinct;
  }

type agreement_report = {
  ok : bool;
  live_deciders : int;
  live_undecided : int;
  distinct_values : int list;
  value : int option;
  valid : bool;
}

let agreement_common ~inputs (r : Engine.result) =
  let n = Array.length r.decisions in
  let live_deciders = ref 0 and live_undecided = ref 0 in
  let values = Hashtbl.create 4 in
  for i = 0 to n - 1 do
    if not r.crashed.(i) then begin
      match r.decisions.(i) with
      | Decision.Agreed v ->
          incr live_deciders;
          Hashtbl.replace values v ()
      | Decision.Undecided -> incr live_undecided
      | Decision.Elected | Decision.Not_elected | Decision.Follower _ -> ()
    end
  done;
  let distinct = List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) values []) in
  let value = match distinct with [ v ] -> Some v | [] | _ :: _ :: _ -> None in
  let valid = match value with None -> false | Some v -> Array.exists (fun x -> x = v) inputs in
  (!live_deciders, !live_undecided, distinct, value, valid)

let check_implicit_agreement ~inputs (r : Engine.result) =
  let live_deciders, live_undecided, distinct_values, value, valid = agreement_common ~inputs r in
  {
    ok = live_deciders > 0 && List.length distinct_values = 1 && valid;
    live_deciders;
    live_undecided;
    distinct_values;
    value;
    valid;
  }

let check_explicit_agreement ~inputs (r : Engine.result) =
  let live_deciders, live_undecided, distinct_values, value, valid = agreement_common ~inputs r in
  {
    ok = live_deciders > 0 && live_undecided = 0 && List.length distinct_values = 1 && valid;
    live_deciders;
    live_undecided;
    distinct_values;
    value;
    valid;
  }
