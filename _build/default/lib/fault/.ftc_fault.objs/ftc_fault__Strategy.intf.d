lib/fault/strategy.mli: Ftc_sim
