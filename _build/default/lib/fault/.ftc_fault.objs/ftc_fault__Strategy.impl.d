lib/fault/strategy.ml: Array Ftc_rng Ftc_sim List
