module Adversary = Ftc_sim.Adversary
module Observation = Ftc_sim.Observation
module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

let uniform_faulty rng ~n ~f = Array.to_list (Dist.sample_without_replacement rng ~n ~k:f)

let none () = Adversary.none

let dormant () =
  {
    Adversary.name = "dormant";
    pick_faulty = uniform_faulty;
    decide_crashes = (fun _ _ -> []);
  }

let eager () =
  {
    Adversary.name = "eager";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        if view.Adversary.round = 0 then
          List.map
            (fun nv -> (nv.Adversary.node, Adversary.Drop_all))
            view.Adversary.alive_faulty
        else []);
  }

let random_crashes ?(drop_prob = 0.5) ?(horizon = 256) () =
  (* Crash rounds are drawn lazily, one geometric-free way: each alive
     faulty node crashes this round with probability 1/horizon, giving a
     near-uniform crash time over the first [horizon] rounds. *)
  let per_round_prob = 1. /. float_of_int (max 1 horizon) in
  {
    Adversary.name = "random";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun rng view ->
        List.filter_map
          (fun nv ->
            if Dist.bernoulli rng per_round_prob then
              Some (nv.Adversary.node, Adversary.Drop_random drop_prob)
            else None)
          view.Adversary.alive_faulty);
  }

let targeted_min_rank ?(period = 4) () =
  {
    Adversary.name = "targeted-min-rank";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        if view.Adversary.round mod period <> 0 then []
        else begin
          (* Find the alive faulty candidate with the smallest rank; kill
             it mid-send so only part of the committee hears from it. *)
          let best = ref None in
          List.iter
            (fun nv ->
              let obs = nv.Adversary.observation in
              match (obs.Observation.role, obs.Observation.rank) with
              | Observation.Candidate, Some rank -> (
                  match !best with
                  | Some (_, best_rank) when best_rank <= rank -> ()
                  | _ -> best := Some (nv.Adversary.node, rank))
              | _ -> ())
            view.Adversary.alive_faulty;
          match !best with
          | None -> []
          | Some (node, _) -> [ (node, Adversary.Drop_random 0.5) ]
        end);
  }

let first_send ?(budget_per_round = 3) () =
  {
    Adversary.name = "first-send";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        let taken = ref 0 in
        List.filter_map
          (fun nv ->
            if !taken < budget_per_round && nv.Adversary.pending <> [] then begin
              incr taken;
              Some (nv.Adversary.node, Adversary.Drop_random 0.5)
            end
            else None)
          view.Adversary.alive_faulty);
  }

let silence_candidates () =
  {
    Adversary.name = "silence-candidates";
    pick_faulty = uniform_faulty;
    decide_crashes =
      (fun _ view ->
        List.filter_map
          (fun nv ->
            match nv.Adversary.observation.Observation.role with
            | Observation.Candidate -> Some (nv.Adversary.node, Adversary.Drop_all)
            | Observation.Referee | Observation.Bystander | Observation.Coordinator -> None)
          view.Adversary.alive_faulty);
  }

let scheduled plan () =
  let nodes = List.sort_uniq compare (List.map (fun (v, _, _) -> v) plan) in
  {
    Adversary.name = "scheduled";
    pick_faulty = (fun _ ~n:_ ~f:_ -> nodes);
    decide_crashes =
      (fun _ view ->
        List.filter_map
          (fun (v, r, rule) -> if r = view.Adversary.round then Some (v, rule) else None)
          plan);
  }

let all () =
  [
    ("none", none);
    ("dormant", dormant);
    ("eager", eager);
    ("random", (fun () -> random_crashes ()));
    ("targeted-min-rank", (fun () -> targeted_min_rank ()));
    ("first-send", (fun () -> first_send ()));
    ("silence-candidates", silence_candidates);
  ]
