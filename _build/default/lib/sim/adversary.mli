(** The crash adversary, as specified in Section II of the paper.

    The adversary is *static* in selection: before the execution it picks
    the faulty set (at most [(1 - alpha) n] nodes). It is *adaptive in
    timing*: during the run it "can adaptively choose when and how a node
    crashes" — in the crash round, "an arbitrary subset (possibly all) of
    its messages for that round may be lost (as determined by an
    adversary)". A crashed node halts and never acts again.

    An [Adversary.t] value holds closures and may carry hidden per-run
    state (e.g. "one crash per iteration" pacing), so construct a fresh
    value for every run; the strategy constructors in [Ftc_fault] do that.

    The adversary sees everything: the protocol-published observation of
    every node plus the outgoing traffic of its own faulty nodes. This is
    the standard omniscient worst-case adversary; benign strategies simply
    ignore the view. *)

type drop_rule =
  | Drop_all  (** Lose every message of the crash round. *)
  | Drop_none  (** Crash after a fully successful send. *)
  | Drop_random of float  (** Lose each message independently with this prob. *)
  | Keep_prefix of int  (** Deliver only the first [k] messages. *)

type outgoing = { dst : int; bits : int }
(** Summary of one pending message of a faulty node. *)

type node_view = {
  node : int;
  observation : Observation.t;
  pending : outgoing list;  (** This faulty node's sends in the current round. *)
}

type round_view = {
  round : int;
  n : int;
  alive_faulty : node_view list;  (** Faulty nodes that have not crashed yet. *)
  all_observations : Observation.t array;  (** Indexed by node. *)
}

type t = {
  name : string;
  pick_faulty : Ftc_rng.Rng.t -> n:int -> f:int -> int list;
      (** Choose the faulty set before the run; must return at most [f]
          distinct node indices. *)
  decide_crashes : Ftc_rng.Rng.t -> round_view -> (int * drop_rule) list;
      (** Called every round; each returned [(node, rule)] crashes that
          (alive, faulty) node this round under the given message-loss
          rule. Returning a node not alive-and-faulty is an error the
          engine reports. *)
}

val none : t
(** The empty adversary: no faults at all (the fault-free setting of
    Kutten et al. / Augustine et al., used for the alpha = 1 baselines). *)
