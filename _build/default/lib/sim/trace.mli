(** Execution traces, for the lower-bound analyses.

    The lower-bound proofs of the paper (Theorems 4.2 and 5.2) reason about
    the *communication graph* of an execution — who sent to whom, and the
    "influence clouds" reachable from initiator nodes. Recording a trace
    lets [Ftc_analysis.Influence] compute those objects from real runs. *)

type event =
  | Send of { round : int; src : int; dst : int; bits : int; delivered : bool }
  | Crash of { round : int; node : int }

type t
(** An append-only event log. *)

val create : unit -> t
val add : t -> event -> unit
val events : t -> event list
(** Events in chronological order. *)

val length : t -> int
val pp_event : Format.formatter -> event -> unit
