(** Complexity counters for a run.

    Message complexity in the paper is "the total number of messages sent
    by all the nodes throughout the execution", so a message lost to a
    crash still counts as sent. Bits are counted separately because the
    paper states the agreement bound in message *bits* (Theorem 5.1) and
    Remark 1 notes the O(log n) factor between the two. *)

type t = {
  mutable msgs_sent : int;  (** Messages sent (delivered or lost). *)
  mutable msgs_dropped : int;  (** Messages lost to crashes. *)
  mutable bits_sent : int;  (** Total payload bits sent. *)
  mutable rounds_used : int;  (** Rounds actually executed. *)
  mutable congest_violations : int;
      (** Count of (edge, round) pairs whose traffic exceeded the budget. *)
  mutable per_round_msgs : int array;  (** Messages sent in each round. *)
}

val create : unit -> t
val record_send : t -> round:int -> bits:int -> delivered:bool -> unit
val record_violation : t -> unit
val finish : t -> rounds:int -> unit
val pp : Format.formatter -> t -> unit
