type role = Candidate | Referee | Bystander | Coordinator

type t = { role : role; rank : int option; has_decided : bool }

let bystander = { role = Bystander; rank = None; has_decided = false }

let role_to_string = function
  | Candidate -> "candidate"
  | Referee -> "referee"
  | Bystander -> "bystander"
  | Coordinator -> "coordinator"

let pp ppf t =
  Format.fprintf ppf "{role=%s; rank=%s; decided=%b}" (role_to_string t.role)
    (match t.rank with None -> "-" | Some r -> string_of_int r)
    t.has_decided
