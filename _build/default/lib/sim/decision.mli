(** Terminal outputs of a protocol node.

    Both problems in the paper are *implicit*: only a non-empty subset of
    nodes needs to decide, and [Undecided] (the paper's ⊥ state) is a legal
    final output for the rest. *)

type t =
  | Undecided  (** The ⊥ state: the node never produced an output. *)
  | Elected  (** Leader election: this node is the leader. *)
  | Not_elected  (** Leader election: this node is not the leader. *)
  | Follower of int
      (** Explicit leader election: not the leader, and knows the leader's
          identity (its rank). *)
  | Agreed of int  (** Agreement: the node decided this value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
