let bits_for v =
  if v < 0 then invalid_arg "Congest.bits_for: negative value";
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 v)

let log2_ceil n =
  if n <= 1 then 1
  else begin
    let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
    go 0 1
  end

let rank_bits ~n = 4 * log2_ceil n

let id_bits ~n = log2_ceil n

let tag_bits = 4

(* A tagged ⟨ID, rank⟩ pair is tag + id + rank = 4 + ceil(log2 n) +
   4*ceil(log2 n) bits; doubling that leaves slack for per-message framing
   without permitting any super-logarithmic batching. *)
let default_limit ~n = 2 * (tag_bits + id_bits ~n + rank_bits ~n)
