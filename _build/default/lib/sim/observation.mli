(** What the adversary may observe about a node.

    The paper's adversary is static in *selection* but adaptive in *timing*:
    it fixes the faulty set before the run, then chooses online when each
    faulty node crashes and which of its last messages are lost. Staging the
    paper's worst case ("the minimum-rank candidate crashes in each
    iteration") requires the adversary to see protocol roles and ranks, so
    protocols publish this observation record each round. An adversary for
    a weaker model is free to ignore it. *)

type role =
  | Candidate  (** Self-selected committee member. *)
  | Referee  (** Sampled as a relay by at least one candidate. *)
  | Bystander  (** Taking no active part in the protocol. *)
  | Coordinator  (** Distinguished node in coordinator-based baselines. *)

type t = {
  role : role;
  rank : int option;  (** The node's random rank, if the protocol uses ranks. *)
  has_decided : bool;
}

val bystander : t
(** Default observation: an undecided bystander with no rank. *)

val pp : Format.formatter -> t -> unit
