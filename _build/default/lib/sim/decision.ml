type t = Undecided | Elected | Not_elected | Follower of int | Agreed of int

let equal a b =
  match (a, b) with
  | Undecided, Undecided | Elected, Elected | Not_elected, Not_elected -> true
  | Follower x, Follower y | Agreed x, Agreed y -> x = y
  | (Undecided | Elected | Not_elected | Follower _ | Agreed _), _ -> false

let to_string = function
  | Undecided -> "undecided"
  | Elected -> "elected"
  | Not_elected -> "not-elected"
  | Follower r -> Printf.sprintf "follower(%d)" r
  | Agreed v -> Printf.sprintf "agreed(%d)" v

let pp ppf d = Format.pp_print_string ppf (to_string d)
