let broadcast ~n ~known_ports payload =
  let known = List.rev_map (fun p -> { Protocol.dest = Protocol.Port p; payload }) known_ports in
  let fresh = n - 1 - List.length known_ports in
  List.rev_append known
    (List.init (max 0 fresh) (fun _ -> { Protocol.dest = Protocol.Fresh_port; payload }))
