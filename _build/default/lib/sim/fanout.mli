(** Broadcast helper for KT0 protocols.

    Reaching all [n - 1] neighbours from an anonymous node means sending
    through every already-known port plus a fresh port for each remaining
    unknown peer. The engine never wires a fresh port to an already-known
    peer, so the coverage is exact and duplicate-free. *)

val broadcast : n:int -> known_ports:int list -> 'm -> 'm Protocol.action list
(** [broadcast ~n ~known_ports payload] is the action list delivering
    [payload] to every other node exactly once. *)
