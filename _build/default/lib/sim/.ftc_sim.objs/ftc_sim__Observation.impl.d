lib/sim/observation.ml: Format
