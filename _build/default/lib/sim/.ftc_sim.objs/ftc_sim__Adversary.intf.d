lib/sim/adversary.mli: Ftc_rng Observation
