lib/sim/fanout.mli: Protocol
