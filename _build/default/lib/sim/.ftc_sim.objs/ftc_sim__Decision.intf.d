lib/sim/decision.mli: Format
