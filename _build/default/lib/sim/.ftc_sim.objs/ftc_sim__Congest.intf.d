lib/sim/congest.mli:
