lib/sim/congest.ml:
