lib/sim/decision.ml: Format Printf
