lib/sim/engine.mli: Adversary Decision Metrics Observation Protocol Trace
