lib/sim/fanout.ml: List Protocol
