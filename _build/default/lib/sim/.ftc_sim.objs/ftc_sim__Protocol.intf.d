lib/sim/protocol.mli: Decision Ftc_rng Observation
