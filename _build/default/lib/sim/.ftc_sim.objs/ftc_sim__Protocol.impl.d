lib/sim/protocol.ml: Decision Ftc_rng Observation
