lib/sim/observation.mli: Format
