lib/sim/engine.ml: Adversary Array Congest Decision Format Ftc_rng Hashtbl List Metrics Observation Option Protocol Trace
