lib/sim/adversary.ml: Ftc_rng Observation
