type drop_rule = Drop_all | Drop_none | Drop_random of float | Keep_prefix of int

type outgoing = { dst : int; bits : int }

type node_view = { node : int; observation : Observation.t; pending : outgoing list }

type round_view = {
  round : int;
  n : int;
  alive_faulty : node_view list;
  all_observations : Observation.t array;
}

type t = {
  name : string;
  pick_faulty : Ftc_rng.Rng.t -> n:int -> f:int -> int list;
  decide_crashes : Ftc_rng.Rng.t -> round_view -> (int * drop_rule) list;
}

let none =
  {
    name = "none";
    pick_faulty = (fun _ ~n:_ ~f:_ -> []);
    decide_crashes = (fun _ _ -> []);
  }
