type dest = Fresh_port | Port of int | Node of int

type 'msg action = { dest : dest; payload : 'msg }

type 'msg incoming = { from_port : int; payload : 'msg }

type ctx = {
  n : int;
  alpha : float;
  input : int;
  rng : Ftc_rng.Rng.t;
  self : int option;
}

module type S = sig
  type state
  type msg

  val name : string
  val knowledge : [ `KT0 | `KT1 ]
  val msg_bits : n:int -> msg -> int
  val max_rounds : n:int -> alpha:float -> int
  val init : ctx -> state

  val step :
    ctx -> state -> round:int -> inbox:msg incoming list -> state * msg action list

  val decide : state -> Decision.t
  val observe : state -> Observation.t
end
