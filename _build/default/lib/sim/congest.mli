(** Message-size accounting for the CONGEST model.

    In the paper's CONGEST model a node may push O(log n) bits through an
    edge per round. The engine does not serialise payloads; instead each
    protocol declares the bit size of every message via [msg_bits], built
    from the helpers below, and the engine checks the per-edge-per-round
    total against {!default_limit}. Lower bounds in the paper hold even in
    LOCAL (unbounded messages), which the engine models as "no limit". *)

val bits_for : int -> int
(** [bits_for v] is the number of bits needed to write the non-negative
    integer [v] (at least 1). *)

val rank_bits : n:int -> int
(** Size of a rank drawn from [1, n^4]: [4 * ceil(log2 n)] bits. *)

val id_bits : n:int -> int
(** Size of a node identifier in [0, n): [ceil(log2 n)] bits. *)

val tag_bits : int
(** Fixed overhead we charge every message for its constructor tag. *)

val default_limit : n:int -> int
(** Per-edge per-round budget: comfortably O(log n), large enough for a
    tagged ⟨ID, rank⟩ pair — the largest message any protocol here sends —
    and small enough to catch a protocol that batches. *)
