lib/rng/xoshiro.ml: Int64 Splitmix
