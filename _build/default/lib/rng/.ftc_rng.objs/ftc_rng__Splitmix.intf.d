lib/rng/splitmix.mli:
