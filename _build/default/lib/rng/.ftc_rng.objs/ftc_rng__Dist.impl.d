lib/rng/dist.ml: Array Float Fun Hashtbl List Rng
