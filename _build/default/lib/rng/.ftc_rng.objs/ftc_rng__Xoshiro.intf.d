lib/rng/xoshiro.mli:
