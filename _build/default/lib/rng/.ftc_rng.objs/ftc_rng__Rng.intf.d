lib/rng/rng.mli:
