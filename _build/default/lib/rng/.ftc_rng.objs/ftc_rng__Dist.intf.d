lib/rng/dist.mli: Rng
