type t = Xoshiro.t

let create seed = Xoshiro.of_seed (Splitmix.mix (Int64.of_int seed))

let bits64 t = Xoshiro.next t

let split t =
  (* Derive the child seed through an extra SplitMix64 round so the child
     state is not a linear function of the parent's raw output. *)
  Xoshiro.of_seed (Splitmix.mix (Xoshiro.next t))

let split_n t n = Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* Power of two: take low bits, which are well distributed in
       xoshiro256++. *)
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (bound - 1)))
  else begin
    (* Rejection sampling on 62 bits to avoid modulo bias. *)
    let mask = (1 lsl 62) - 1 in
    let limit = mask / bound * bound in
    let rec draw () =
      let v = Int64.to_int (bits64 t) land mask in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high bits, the mantissa width of a double. *)
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let copy = Xoshiro.copy
