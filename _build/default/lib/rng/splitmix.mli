(** SplitMix64 pseudo-random number generator.

    A tiny, fast, well-distributed 64-bit generator (Steele, Lea & Flood,
    OOPSLA 2014). It is used here for two jobs: seeding {!Xoshiro} states
    and deriving statistically independent child generators in {!Rng.split}.
    SplitMix64 passes BigCrush when used as a plain stream, and its output
    function is a strong 64-bit mixer, which makes distinct seeds yield
    unrelated streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator whose stream is a pure function of
    [seed]. Distinct seeds give unrelated streams. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val mix : int64 -> int64
(** [mix x] is the stateless SplitMix64 finalizer: a bijective 64-bit
    mixing function. Useful for hashing small integers into seeds. *)
