(** Random distributions and sampling routines used by the protocols.

    The paper's algorithms are "simple, lightweight (based on sampling
    only)": nodes flip Bernoulli coins to self-select as candidates, draw
    ranks uniformly from [1, n^4], and sample referee sets uniformly without
    replacement. This module provides those primitives exactly, plus the
    sub-sampling tricks (geometric skipping, Floyd's algorithm) that keep
    the simulator's running time proportional to the number of successes
    rather than the number of coins. *)

val bernoulli : Rng.t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric : Rng.t -> float -> int
(** [geometric rng p] is the number of failures before the first success in
    independent Bernoulli([p]) trials; support 0, 1, 2, ...
    @raise Invalid_argument if [p <= 0.] or [p > 1.]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] counts successes in [n] Bernoulli([p]) trials.
    Runs in O(np + 1) expected time via geometric skipping. *)

val bernoulli_indices : Rng.t -> n:int -> p:float -> int list
(** [bernoulli_indices rng ~n ~p] returns, in increasing order, the indices
    [i] of [0..n-1] whose independent Bernoulli([p]) coin came up heads.
    Expected cost O(np + 1): this is how the harness selects candidate
    nodes without touching each of the [n] nodes. *)

val sample_without_replacement : Rng.t -> n:int -> k:int -> int array
(** [sample_without_replacement rng ~n ~k] is a uniform random [k]-subset
    of [0..n-1], in arbitrary order, by Floyd's algorithm (O(k) expected).
    @raise Invalid_argument if [k < 0] or [k > n]. *)

val shuffle : Rng.t -> 'a array -> unit
(** [shuffle rng a] permutes [a] uniformly in place (Fisher–Yates). *)

val choose : Rng.t -> 'a array -> 'a
(** [choose rng a] is a uniform element of [a].
    @raise Invalid_argument on an empty array. *)

val exponential : Rng.t -> float -> float
(** [exponential rng lambda] draws from Exp([lambda]); used by workload
    generators. @raise Invalid_argument if [lambda <= 0.]. *)
