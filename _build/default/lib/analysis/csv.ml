let escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quote then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let write ~path ~headers ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let line cells = String.concat "," (List.map escape cells) ^ "\n" in
      output_string oc (line headers);
      List.iter (fun r -> output_string oc (line r)) rows)
