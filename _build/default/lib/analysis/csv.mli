(** Minimal CSV export, so experiment series can be re-plotted outside
    the harness. *)

val write : path:string -> headers:string list -> rows:string list list -> unit
(** Quotes fields containing commas, quotes, or newlines. *)

val escape : string -> string
