(** The combinatorial objects of the lower-bound proofs (Sections IV-B
    and V-B): communication graphs, initiators, and influence clouds.

    Definitions, from the paper. The {e communication graph} C^r has an
    edge u -> v iff u sent v a message (that was delivered) in some round
    r' <= r. A node is an {e initiator} if it sends its first message
    before receiving any. Node u {e influences} w if there is a
    time-respecting directed path from u to w. The {e influence cloud} of
    an initiator u is the ordered set of nodes it influences.

    The proofs show that an algorithm sending o(sqrt(n)/alpha^(3/2))
    messages leaves, with constant probability, at least two influence
    clouds that never intersect — and two disjoint clouds elect/decide
    independently, so they err with constant probability. Experiment F9
    computes these objects on traces of message-starved protocol variants
    and watches exactly that happen. *)

type cloud = {
  initiator : int;
  members : int list;  (** In order of joining (the paper's C_u^r). *)
}

type t = {
  initiators : int list;
  clouds : cloud list;  (** One per initiator. *)
  edges : (int * int) list;  (** Distinct delivered (src, dst) pairs. *)
}

val of_trace : n:int -> Ftc_sim.Trace.t -> t
(** Builds clouds by chronological replay, so membership respects message
    timing: a node joins u's cloud when it first receives a message from
    a node already in the cloud. *)

val disjoint_cloud_count : t -> int
(** Size of the largest family of pairwise-disjoint influence clouds —
    the proofs need at least 2 (computed greedily from smallest cloud
    up, which is exact for the disjoint/overlap structure we test). *)

val deciding_clouds : t -> decided:bool array -> cloud list
(** Clouds containing at least one node with a decision — the "deciding
    trees" of Lemma 9. *)

val clouds_disjoint : cloud -> cloud -> bool
