type t = { exponent : float; log_const : float; r2 : float }

let power_law pairs =
  let k = List.length pairs in
  if k < 2 then invalid_arg "Fit.power_law: need at least 2 points";
  List.iter
    (fun (x, y) -> if x <= 0. || y <= 0. then invalid_arg "Fit.power_law: non-positive data")
    pairs;
  let logs = List.map (fun (x, y) -> (Float.log x, Float.log y)) pairs in
  let kf = float_of_int k in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. logs in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. logs in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. logs in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. logs in
  let denom = (kf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit.power_law: degenerate x values";
  let b = ((kf *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. kf in
  let ybar = sy /. kf in
  let ss_tot = List.fold_left (fun acc (_, y) -> acc +. ((y -. ybar) ** 2.)) 0. logs in
  let ss_res =
    List.fold_left (fun acc (x, y) -> acc +. ((y -. (a +. (b *. x))) ** 2.)) 0. logs
  in
  let r2 = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
  { exponent = b; log_const = a; r2 }

let power_law_divided_polylog ?(log_power = 2.5) pairs =
  power_law (List.map (fun (x, y) -> (x, y /. (Float.log x ** log_power))) pairs)

let predict t x = Float.exp (t.log_const +. (t.exponent *. Float.log x))
