(** Power-law fitting for the scaling experiments.

    The paper's bounds have the form [y = a * x^b * polylog]; the
    experiments validate the exponent [b] (0.5 in n for messages, -5/2 or
    -3/2 in alpha, ...). A least-squares line in log-log space recovers it:
    [log y = log a + b log x]. *)

type t = {
  exponent : float;  (** Fitted [b]. *)
  log_const : float;  (** Fitted [log a]. *)
  r2 : float;  (** Coefficient of determination in log space. *)
}

val power_law : (float * float) list -> t
(** [power_law pairs] fits [(x, y)] samples; all values must be positive.
    @raise Invalid_argument with fewer than 2 points or non-positive data. *)

val power_law_divided_polylog : ?log_power:float -> (float * float) list -> t
(** Fit after dividing [y] by [(ln x)^log_power] (default 2.5): removes
    the polylog factor the paper's Õ hides, sharpening the exponent in n. *)

val predict : t -> float -> float
(** [predict fit x] evaluates the fitted law at [x]. *)
