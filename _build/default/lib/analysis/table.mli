(** Plain-text table rendering for the experiment reports. *)

type align = Left | Right

val render :
  ?aligns:align list -> headers:string list -> rows:string list list -> unit -> string
(** Box-drawn ASCII table; columns sized to contents. Missing cells render
    empty; [aligns] defaults to Right for every column. *)

val render_markdown : headers:string list -> rows:string list list -> string
(** GitHub-flavoured markdown table (for EXPERIMENTS.md). *)

val fmt_float : ?digits:int -> float -> string
val fmt_int : int -> string
(** Thousands-separated integer, e.g. ["1_234_567"]. *)
