lib/analysis/fit.mli:
