lib/analysis/influence.mli: Ftc_sim
