lib/analysis/csv.mli:
