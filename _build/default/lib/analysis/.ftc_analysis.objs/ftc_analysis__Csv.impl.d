lib/analysis/csv.ml: Buffer Fun List String
