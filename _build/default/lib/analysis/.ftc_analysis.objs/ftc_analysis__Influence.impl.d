lib/analysis/influence.ml: Array Ftc_sim Hashtbl Int List Set
