lib/analysis/table.mli:
