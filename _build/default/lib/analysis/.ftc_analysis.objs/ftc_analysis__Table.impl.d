lib/analysis/table.ml: Array Buffer List Option Printf String
