type align = Left | Right

let widths headers rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length headers) rows
  in
  let w = Array.make ncols 0 in
  let feed row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  feed headers;
  List.iter feed rows;
  w

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render ?aligns ~headers ~rows () =
  let w = widths headers rows in
  let ncols = Array.length w in
  let align_of i =
    match aligns with
    | None -> Right
    | Some l -> ( match List.nth_opt l i with Some a -> a | None -> Right)
  in
  let line ch =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun c -> String.make (c + 2) ch) w)) ^ "+"
  in
  let cells row =
    let padded =
      List.init ncols (fun i ->
          let cell = Option.value ~default:"" (List.nth_opt row i) in
          " " ^ pad (align_of i) w.(i) cell ^ " ")
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  String.concat "\n"
    ((line '-' :: cells headers :: line '=' :: List.map cells rows) @ [ line '-' ])

let render_markdown ~headers ~rows =
  let row cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep = "|" ^ String.concat "|" (List.map (fun _ -> "---") headers) ^ "|" in
  String.concat "\n" (row headers :: sep :: List.map row rows)

let fmt_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let fmt_int v =
  let s = string_of_int (abs v) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf '_';
      Buffer.add_char buf c)
    s;
  (if v < 0 then "-" else "") ^ Buffer.contents buf
