(** Scaling experiments F1–F5 and F10: the message/round bounds of
    Theorems 4.1 and 5.1 and of the explicit extensions, validated as
    fitted power-law exponents over sweeps in n and alpha. *)

val f1 : Def.t  (** LE messages vs n — exponent ~ 1/2 (Thm 4.1). *)

val f2 : Def.t  (** LE messages vs alpha — exponent ~ -5/2 (Thm 4.1). *)

val f3 : Def.t  (** LE and agreement rounds — O(log n / alpha). *)

val f4 : Def.t  (** Agreement message bits vs n — exponent ~ 1/2 (Thm 5.1). *)

val f5 : Def.t  (** Agreement messages vs alpha — exponent ~ -3/2 (Thm 5.1). *)

val f10 : Def.t  (** Explicit extensions — Theta(n log n / alpha) messages. *)
