(** Shared driver for the experiments: runs a protocol (as a first-class
    module) over many seeds and aggregates results. *)

type input_gen =
  | Zeros
  | All_ones
  | Random_bits of float  (** Each input is 1 with this probability. *)
  | Exact of int array

type spec = {
  protocol : (module Ftc_sim.Protocol.S);
  n : int;
  alpha : float;
  inputs : input_gen;
  adversary : unit -> Ftc_sim.Adversary.t;
  congest : bool;  (** false = LOCAL (no per-edge bit budget). *)
  record_trace : bool;
}

val default_spec : (module Ftc_sim.Protocol.S) -> n:int -> alpha:float -> spec
(** Zero inputs, no adversary, CONGEST on, no trace. *)

type outcome = {
  result : Ftc_sim.Engine.result;
  inputs_used : int array;
  seed : int;
}

val run : spec -> seed:int -> outcome
(** Input generation is seeded by [seed], so an outcome is reproducible
    from [(spec, seed)] alone. Raises [Failure] if the engine reports
    model violations — experiments must be model-clean. *)

val run_many : spec -> seeds:int list -> outcome list

type aggregate = {
  trials : int;
  successes : int;
  success_rate : float;
  msgs : Ftc_analysis.Stats.summary;
  bits : Ftc_analysis.Stats.summary;
  rounds : Ftc_analysis.Stats.summary;
}

val aggregate : ok:(outcome -> bool) -> outcome list -> aggregate

val seeds : base:int -> count:int -> int list
