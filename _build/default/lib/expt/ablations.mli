(** Ablation experiments for the design constants and extensions.

    A1 — candidate-probability constant (Lemma 1/2): shrink the paper's
    coefficient 6 in [6 ln n / (alpha n)] and watch the election die when
    the committee stops containing a non-faulty candidate, while the
    message bill shrinks. Together with F8 (referee constant) this covers
    the two sampling knobs of the algorithm.

    A2 — the multi-valued extension: cost of {!Ftc_core.Min_agreement}
    as the number of distinct input values grows, against the binary
    protocol's baseline cost (the improvement-chain factor).

    A3 — the early-decision optimisation: the quiet-iterations threshold
    before a settled candidate fixes its output. Lower thresholds stop
    runs sooner; the ablation verifies success probability does not pay
    for it (deciding never halts a node, so safety is expected to hold
    at every setting). *)

val a1 : Def.t
val a2 : Def.t
val a3 : Def.t
