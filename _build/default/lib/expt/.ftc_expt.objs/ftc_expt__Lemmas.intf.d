lib/expt/lemmas.mli: Def
