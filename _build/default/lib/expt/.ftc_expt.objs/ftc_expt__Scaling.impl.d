lib/expt/scaling.ml: Def Float Ftc_analysis Ftc_core Ftc_fault List Printf Runner String
