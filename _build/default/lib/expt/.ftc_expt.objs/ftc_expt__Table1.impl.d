lib/expt/table1.ml: Def Ftc_analysis Ftc_baselines Ftc_core Ftc_fault Ftc_sim List Printf Runner String
