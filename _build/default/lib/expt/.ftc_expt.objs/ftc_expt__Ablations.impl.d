lib/expt/ablations.ml: Array Def Ftc_analysis Ftc_core Ftc_fault Ftc_rng List Printf Runner String
