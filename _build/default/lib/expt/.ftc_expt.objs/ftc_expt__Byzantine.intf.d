lib/expt/byzantine.mli: Def
