lib/expt/scaling.mli: Def
