lib/expt/byzantine.ml: Array Def Ftc_analysis Ftc_core Ftc_sim List Printf Runner String
