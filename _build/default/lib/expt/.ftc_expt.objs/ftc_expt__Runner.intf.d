lib/expt/runner.mli: Ftc_analysis Ftc_sim
