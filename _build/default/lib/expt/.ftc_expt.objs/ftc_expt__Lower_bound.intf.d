lib/expt/lower_bound.mli: Def
