lib/expt/gallery.mli: Def
