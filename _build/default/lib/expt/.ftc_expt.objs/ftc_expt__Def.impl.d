lib/expt/def.ml: Printf String
