lib/expt/registry.ml: Ablations Byzantine Def Gallery Lemmas List Lower_bound Scaling String Table1
