lib/expt/ablations.mli: Def
