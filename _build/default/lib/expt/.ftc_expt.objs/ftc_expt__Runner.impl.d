lib/expt/runner.ml: Array Ftc_analysis Ftc_fault Ftc_rng Ftc_sim List Printf
