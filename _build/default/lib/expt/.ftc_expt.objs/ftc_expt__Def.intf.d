lib/expt/def.mli:
