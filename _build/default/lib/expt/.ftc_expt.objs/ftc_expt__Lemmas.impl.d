lib/expt/lemmas.ml: Array Def Float Ftc_analysis Ftc_core Ftc_fault Ftc_rng Ftc_sim Fun Hashtbl List Printf Runner String
