lib/expt/registry.mli: Def
