lib/expt/gallery.ml: Def Ftc_analysis Ftc_baselines Ftc_core Ftc_fault List Printf Runner String
