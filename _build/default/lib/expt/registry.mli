(** All experiments of DESIGN.md's index, addressable by id. *)

val all : Def.t list
val find : string -> Def.t option
val ids : unit -> string list
