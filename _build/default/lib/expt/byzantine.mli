(** Experiment A4: the Byzantine probe (the paper's open question 3).

    All honest inputs are 1; [b] attackers forge a 0 through the normal
    committee machinery. Any honest node deciding 0 violates validity.
    The crash-fault protocol should collapse at b = 1 — evidence that
    sublinear *Byzantine* agreement needs genuinely new techniques, which
    is exactly why the paper leaves it open. *)

val a4 : Def.t
