(** Experiment T1: the empirical counterpart of the paper's Table I —
    "comparison with the best known agreement protocols in the same
    model". Every protocol runs on the same workloads; the table reports
    measured messages, bits, rounds, and success rate per tolerated
    crash fraction. *)

val t1 : Def.t
