(** Experiment F9: the lower bounds, watched happening.

    Theorems 4.2 and 5.2 prove that any algorithm sending
    o(sqrt(n) / alpha^(3/2)) messages fails with constant probability,
    because with too few messages the communication graph decomposes into
    at least two disjoint influence clouds that decide independently.

    We starve the paper's own protocols of messages by scaling both
    sampling constants (candidate probability and referee sample size) by
    a factor s << 1, record traces, and measure: the message count, the
    success probability, and — via [Ftc_analysis.Influence] — the number
    of pairwise-disjoint *deciding* influence clouds. The reproduction
    succeeds if runs below the Omega(sqrt(n)/alpha^(3/2)) threshold fail
    at a constant rate, with >= 2 disjoint deciding clouds in the failing
    executions, while the full-constant protocol (far above the
    threshold) succeeds. *)

val f9 : Def.t
