(** Experiments F11 and F12.

    F11 — robustness gallery: both core protocols under every adversary
    strategy, including the paper's worst case (the minimum-rank candidate
    crashing every iteration). The model claims w.h.p. correctness against
    *any* static-selection crash adversary, so every row must be near 1.

    F12 — the "surprising fact" of Section I-A: at alpha = 1 the
    fault-tolerant protocols match the fault-free sublinear bounds of
    Kutten et al. [21] (leader election) and Augustine et al. [23]
    (agreement) up to polylog factors. *)

val f11 : Def.t
val f12 : Def.t
