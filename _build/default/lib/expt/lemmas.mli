(** Experiments F6–F8: the concentration lemmas the algorithms stand on.

    F6 — Lemma 1: the candidate set has size Theta(log n / alpha), within
    [2 ln n / alpha, 12 ln n / alpha] w.h.p.
    F7 — Lemma 2 / Theorem 4.1: the elected leader is non-faulty with
    probability at least alpha (and always, under an adversary that
    crashes faulty nodes early).
    F8 — Lemma 3: every pair of candidates shares a non-faulty referee
    w.h.p. at the paper's sample size 2 sqrt(n ln n / alpha) — and the
    guarantee degrades when the sampling constant shrinks (ablation). *)

val f6 : Def.t
val f7 : Def.t
val f8 : Def.t
