(* Tests for the analysis toolkit: statistics, power-law fitting, table
   rendering, CSV escaping, and influence clouds on hand-built traces. *)

module Stats = Ftc_analysis.Stats
module Fit = Ftc_analysis.Fit
module Table = Ftc_analysis.Table
module Csv = Ftc_analysis.Csv
module Influence = Ftc_analysis.Influence
module Trace = Ftc_sim.Trace

let feq = Alcotest.(check (float 1e-9))

let test_summarize_known () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  feq "mean" 3. s.Stats.mean;
  feq "median" 3. s.Stats.median;
  feq "min" 1. s.Stats.min;
  feq "max" 5. s.Stats.max;
  feq "stddev" (sqrt 2.5) s.Stats.stddev;
  Alcotest.(check int) "count" 5 s.Stats.count

let test_summarize_singleton () =
  let s = Stats.summarize [ 7. ] in
  feq "mean" 7. s.Stats.mean;
  feq "stddev" 0. s.Stats.stddev;
  feq "p90" 7. s.Stats.p90

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize []))

let test_quantile_interpolation () =
  let a = [| 0.; 10. |] in
  feq "q=0.5 interpolates" 5. (Stats.quantile a 0.5);
  feq "q=0" 0. (Stats.quantile a 0.);
  feq "q=1" 10. (Stats.quantile a 1.)

let test_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 in
  Alcotest.(check bool) "brackets p" true (lo < 0.5 && hi > 0.5);
  Alcotest.(check bool) "within [0,1]" true (lo >= 0. && hi <= 1.);
  let lo0, _ = Stats.wilson_interval ~successes:0 ~trials:20 in
  feq "zero successes floor" 0. lo0;
  let _, hi1 = Stats.wilson_interval ~successes:20 ~trials:20 in
  Alcotest.(check bool) "full successes ceiling" true (hi1 <= 1.)

let test_fit_exact_power_law () =
  let pairs = List.map (fun x -> (x, 3. *. (x ** 0.5))) [ 10.; 100.; 1000.; 10000. ] in
  let f = Fit.power_law pairs in
  feq "exponent" 0.5 f.Fit.exponent;
  Alcotest.(check bool) "r2 = 1" true (f.Fit.r2 > 0.999999);
  feq "prediction" (3. *. sqrt 50.) (Fit.predict f 50.)

let test_fit_negative_exponent () =
  let pairs = List.map (fun x -> (x, 7. /. (x ** 1.5))) [ 0.3; 0.5; 0.7; 1.0 ] in
  let f = Fit.power_law pairs in
  feq "exponent" (-1.5) f.Fit.exponent

let test_fit_divided_polylog () =
  (* y = x^0.5 * ln^2.5 x: dividing recovers the clean exponent. *)
  let pairs =
    List.map (fun x -> (x, (x ** 0.5) *. (Float.log x ** 2.5))) [ 64.; 256.; 1024.; 4096. ]
  in
  let f = Fit.power_law_divided_polylog ~log_power:2.5 pairs in
  feq "exponent" 0.5 f.Fit.exponent

let test_fit_rejects_bad_input () =
  Alcotest.check_raises "one point" (Invalid_argument "Fit.power_law: need at least 2 points")
    (fun () -> ignore (Fit.power_law [ (1., 1.) ]));
  Alcotest.check_raises "non-positive" (Invalid_argument "Fit.power_law: non-positive data")
    (fun () -> ignore (Fit.power_law [ (1., 1.); (2., -3.) ]))

let test_table_render () =
  let s = Table.render ~headers:[ "a"; "bb" ] ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ] () in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  List.iter
    (fun cell ->
      Alcotest.(check bool) (cell ^ " present") true
        (Astring.String.is_infix ~affix:cell s))
    [ "a"; "bb"; "1"; "22"; "333"; "4" ]

let test_table_markdown () =
  let s = Table.render_markdown ~headers:[ "x"; "y" ] ~rows:[ [ "1"; "2" ] ] in
  Alcotest.(check bool) "separator row" true (Astring.String.is_infix ~affix:"|---|---|" s)

let test_fmt_int () =
  Alcotest.(check string) "grouping" "1_234_567" (Table.fmt_int 1234567);
  Alcotest.(check string) "small" "42" (Table.fmt_int 42);
  Alcotest.(check string) "negative" "-1_000" (Table.fmt_int (-1000))

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "ftc_csv" ".csv" in
  Csv.write ~path ~headers:[ "x"; "y" ] ~rows:[ [ "1"; "a,b" ] ];
  let ic = open_in path in
  let l1 = input_line ic and l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "x,y" l1;
  Alcotest.(check string) "row quoted" "1,\"a,b\"" l2

(* -- Influence clouds -- *)

let trace_of events =
  let t = Trace.create () in
  List.iter (Trace.add t) events;
  t

let send ~round ~src ~dst ?(delivered = true) () =
  Trace.Send { round; src; dst; bits = 1; delivered }

let test_influence_single_cloud () =
  (* 0 -> 1 -> 2: one initiator, cloud {0,1,2}. *)
  let t = trace_of [ send ~round:0 ~src:0 ~dst:1 (); send ~round:1 ~src:1 ~dst:2 () ] in
  let infl = Influence.of_trace ~n:4 t in
  Alcotest.(check (list int)) "initiators" [ 0 ] infl.Influence.initiators;
  (match infl.Influence.clouds with
  | [ c ] -> Alcotest.(check (list int)) "members in join order" [ 0; 1; 2 ] c.Influence.members
  | _ -> Alcotest.fail "one cloud expected");
  Alcotest.(check int) "one disjoint cloud" 1 (Influence.disjoint_cloud_count infl)

let test_influence_two_disjoint_clouds () =
  let t =
    trace_of
      [
        send ~round:0 ~src:0 ~dst:1 ();
        send ~round:0 ~src:2 ~dst:3 ();
        send ~round:1 ~src:1 ~dst:4 ();
      ]
  in
  let infl = Influence.of_trace ~n:6 t in
  Alcotest.(check (list int)) "two initiators" [ 0; 2 ] (List.sort compare infl.Influence.initiators);
  Alcotest.(check int) "two disjoint clouds" 2 (Influence.disjoint_cloud_count infl)

let test_influence_merge_not_disjoint () =
  (* Clouds of 0 and 2 overlap on node 1. *)
  let t = trace_of [ send ~round:0 ~src:0 ~dst:1 (); send ~round:0 ~src:2 ~dst:1 () ] in
  let infl = Influence.of_trace ~n:4 t in
  Alcotest.(check int) "overlapping clouds count once" 1 (Influence.disjoint_cloud_count infl)

let test_influence_receiver_not_initiator () =
  (* Node 1 receives in round 0 and sends in round 1: not an initiator. *)
  let t = trace_of [ send ~round:0 ~src:0 ~dst:1 (); send ~round:1 ~src:1 ~dst:2 () ] in
  let infl = Influence.of_trace ~n:4 t in
  Alcotest.(check bool) "1 not initiator" false (List.mem 1 infl.Influence.initiators)

let test_influence_dropped_messages_dont_spread () =
  let t = trace_of [ send ~round:0 ~src:0 ~dst:1 ~delivered:false () ] in
  let infl = Influence.of_trace ~n:4 t in
  match infl.Influence.clouds with
  | [ c ] -> Alcotest.(check (list int)) "cloud stays singleton" [ 0 ] c.Influence.members
  | _ -> Alcotest.fail "one cloud expected"

let test_influence_time_respecting () =
  (* 1 -> 2 happens before 0 -> 1, so 2 is not influenced by 0. *)
  let t = trace_of [ send ~round:0 ~src:1 ~dst:2 (); send ~round:1 ~src:0 ~dst:1 () ] in
  let infl = Influence.of_trace ~n:4 t in
  let cloud0 = List.find (fun c -> c.Influence.initiator = 0) infl.Influence.clouds in
  Alcotest.(check bool) "2 not in 0's cloud" false (List.mem 2 cloud0.Influence.members)

let test_deciding_clouds () =
  let t = trace_of [ send ~round:0 ~src:0 ~dst:1 (); send ~round:0 ~src:2 ~dst:3 () ] in
  let infl = Influence.of_trace ~n:5 t in
  let decided = [| false; true; false; false; false |] in
  let deciding = Influence.deciding_clouds infl ~decided in
  Alcotest.(check int) "only 0's cloud decides" 1 (List.length deciding);
  Alcotest.(check int) "initiator 0" 0 (List.hd deciding).Influence.initiator

let qcheck_influence_wellformed =
  (* On arbitrary random traces: every cloud starts at its initiator,
     members are unique, and initiators are exactly the send-before-
     receive nodes. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 12 in
      let* len = int_range 0 40 in
      let* events =
        list_repeat len
          (let* round = int_range 0 5 in
           let* src = int_range 0 (n - 1) in
           let* dst = int_range 0 (n - 1) in
           let* delivered = bool in
           return (round, src, dst, delivered))
      in
      return (n, events))
  in
  QCheck.Test.make ~name:"influence clouds well-formed on random traces" ~count:300
    (QCheck.make gen)
    (fun (n, events) ->
      let t = trace_of
          (List.map
             (fun (round, src, dst, delivered) ->
               send ~round ~src ~dst:(if dst = src then (dst + 1) mod n else dst) ~delivered ())
             (List.sort compare events))
      in
      let infl = Influence.of_trace ~n t in
      List.length infl.Influence.clouds = List.length infl.Influence.initiators
      && List.for_all
           (fun c ->
             List.mem c.Influence.initiator c.Influence.members
             && List.length (List.sort_uniq compare c.Influence.members)
                = List.length c.Influence.members)
           infl.Influence.clouds)

let test_clouds_disjoint_predicate () =
  let a = { Influence.initiator = 0; members = [ 0; 1 ] } in
  let b = { Influence.initiator = 2; members = [ 2; 3 ] } in
  let c = { Influence.initiator = 4; members = [ 4; 1 ] } in
  Alcotest.(check bool) "disjoint" true (Influence.clouds_disjoint a b);
  Alcotest.(check bool) "overlap" false (Influence.clouds_disjoint a c)

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize_known;
          Alcotest.test_case "singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "empty" `Quick test_summarize_empty;
          Alcotest.test_case "quantile" `Quick test_quantile_interpolation;
          Alcotest.test_case "wilson" `Quick test_wilson;
        ] );
      ( "fit",
        [
          Alcotest.test_case "exact power law" `Quick test_fit_exact_power_law;
          Alcotest.test_case "negative exponent" `Quick test_fit_negative_exponent;
          Alcotest.test_case "divided polylog" `Quick test_fit_divided_polylog;
          Alcotest.test_case "bad input" `Quick test_fit_rejects_bad_input;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "markdown" `Quick test_table_markdown;
          Alcotest.test_case "fmt_int" `Quick test_fmt_int;
          Alcotest.test_case "csv escape" `Quick test_csv_escape;
          Alcotest.test_case "csv write" `Quick test_csv_write_roundtrip;
        ] );
      ( "influence",
        [
          Alcotest.test_case "single cloud" `Quick test_influence_single_cloud;
          Alcotest.test_case "two disjoint" `Quick test_influence_two_disjoint_clouds;
          Alcotest.test_case "merge" `Quick test_influence_merge_not_disjoint;
          Alcotest.test_case "receiver not initiator" `Quick test_influence_receiver_not_initiator;
          Alcotest.test_case "drops don't spread" `Quick test_influence_dropped_messages_dont_spread;
          Alcotest.test_case "time respecting" `Quick test_influence_time_respecting;
          Alcotest.test_case "deciding clouds" `Quick test_deciding_clouds;
          Alcotest.test_case "disjoint predicate" `Quick test_clouds_disjoint_predicate;
        ] );
      ("influence-properties", List.map QCheck_alcotest.to_alcotest [ qcheck_influence_wellformed ]);
    ]
