(* Tests for the sampling distributions: correct supports, moments close
   to theory, and structural invariants (distinctness, ordering). *)

module Rng = Ftc_rng.Rng
module Dist = Ftc_rng.Dist

let rng () = Rng.create 12345

let test_bernoulli_extremes () =
  let r = rng () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Dist.bernoulli r 0.);
    Alcotest.(check bool) "p=1 always" true (Dist.bernoulli r 1.);
    Alcotest.(check bool) "p<0 never" false (Dist.bernoulli r (-0.5));
    Alcotest.(check bool) "p>1 always" true (Dist.bernoulli r 1.5)
  done

let test_bernoulli_rate () =
  let r = rng () in
  let n = 100_000 and p = 0.3 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Dist.bernoulli r p then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "rate ~ %f (got %f)" p rate) true
    (Float.abs (rate -. p) < 0.01)

let test_geometric_mean () =
  let r = rng () in
  let p = 0.25 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Dist.geometric r p
  done;
  let mean = float_of_int !sum /. float_of_int n in
  let expected = (1. -. p) /. p in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~ %f (got %f)" expected mean)
    true
    (Float.abs (mean -. expected) < 0.1)

let test_geometric_p1 () =
  let r = rng () in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 gives 0" 0 (Dist.geometric r 1.)
  done

let test_geometric_invalid () =
  let r = rng () in
  Alcotest.check_raises "p=0" (Invalid_argument "Dist.geometric: p must be in (0, 1]")
    (fun () -> ignore (Dist.geometric r 0.))

let test_binomial_moments () =
  let r = rng () in
  let n = 200 and p = 0.1 in
  let trials = 20_000 in
  let sum = ref 0 and sumsq = ref 0 in
  for _ = 1 to trials do
    let v = Dist.binomial r ~n ~p in
    Alcotest.(check bool) "support" true (v >= 0 && v <= n);
    sum := !sum + v;
    sumsq := !sumsq + (v * v)
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  let var = (float_of_int !sumsq /. float_of_int trials) -. (mean *. mean) in
  Alcotest.(check bool) (Printf.sprintf "mean ~ np (got %f)" mean) true
    (Float.abs (mean -. 20.) < 0.5);
  Alcotest.(check bool) (Printf.sprintf "var ~ np(1-p) (got %f)" var) true
    (Float.abs (var -. 18.) < 1.5)

let test_binomial_edges () =
  let r = rng () in
  Alcotest.(check int) "p=0" 0 (Dist.binomial r ~n:100 ~p:0.);
  Alcotest.(check int) "p=1" 100 (Dist.binomial r ~n:100 ~p:1.);
  Alcotest.(check int) "n=0" 0 (Dist.binomial r ~n:0 ~p:0.5)

let test_bernoulli_indices_sorted_distinct () =
  let r = rng () in
  for _ = 1 to 200 do
    let idx = Dist.bernoulli_indices r ~n:500 ~p:0.05 in
    let rec check = function
      | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "strictly increasing" true (a < b);
          check rest
      | [ a ] -> Alcotest.(check bool) "in range" true (a >= 0 && a < 500)
      | [] -> ()
    in
    check idx;
    List.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 500)) idx
  done

let test_bernoulli_indices_rate () =
  let r = rng () in
  let total = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    total := !total + List.length (Dist.bernoulli_indices r ~n:1000 ~p:0.02)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "mean ~ 20 (got %f)" mean) true
    (Float.abs (mean -. 20.) < 1.)

let test_bernoulli_indices_extremes () =
  let r = rng () in
  Alcotest.(check (list int)) "p=1 all" (List.init 5 Fun.id)
    (Dist.bernoulli_indices r ~n:5 ~p:1.);
  Alcotest.(check (list int)) "p=0 none" [] (Dist.bernoulli_indices r ~n:5 ~p:0.)

let test_swor_distinct_in_range () =
  let r = rng () in
  for _ = 1 to 500 do
    let s = Dist.sample_without_replacement r ~n:50 ~k:20 in
    Alcotest.(check int) "size" 20 (Array.length s);
    let tbl = Hashtbl.create 32 in
    Array.iter
      (fun v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < 50);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
        Hashtbl.replace tbl v ())
      s
  done

let test_swor_full () =
  let r = rng () in
  let s = Dist.sample_without_replacement r ~n:10 ~k:10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n is a permutation" (Array.init 10 Fun.id) sorted

let test_swor_uniform_inclusion () =
  (* Every element should be included with probability k/n. *)
  let r = rng () in
  let n = 20 and k = 5 in
  let counts = Array.make n 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    Array.iter (fun v -> counts.(v) <- counts.(v) + 1) (Dist.sample_without_replacement r ~n ~k)
  done;
  let expected = float_of_int trials *. float_of_int k /. float_of_int n in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d inclusion ~ k/n (got %d, want %f)" i c expected)
        true
        (Float.abs (float_of_int c -. expected) /. expected < 0.05))
    counts

let test_swor_invalid () =
  let r = rng () in
  Alcotest.check_raises "k>n" (Invalid_argument "Dist.sample_without_replacement") (fun () ->
      ignore (Dist.sample_without_replacement r ~n:5 ~k:6))

let test_shuffle_is_permutation () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Array.init 30 Fun.id in
    Dist.shuffle r a;
    let sorted = Array.copy a in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "permutation" (Array.init 30 Fun.id) sorted
  done

let test_choose () =
  let r = rng () in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Dist.choose r a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Dist.choose: empty array") (fun () ->
      ignore (Dist.choose r [||]))

let test_exponential_mean () =
  let r = rng () in
  let lambda = 2.0 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Dist.exponential r lambda in
    Alcotest.(check bool) "non-negative" true (v >= 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean ~ 0.5 (got %f)" mean) true
    (Float.abs (mean -. 0.5) < 0.02)

let qcheck_swor =
  QCheck.Test.make ~name:"sample_without_replacement: distinct, in-range, right size"
    ~count:300
    QCheck.(triple small_int (int_range 1 200) (int_range 0 200))
    (fun (seed, n, k_raw) ->
      let k = min k_raw n in
      let r = Rng.create seed in
      let s = Dist.sample_without_replacement r ~n ~k in
      let tbl = Hashtbl.create 16 in
      Array.iter (fun v -> Hashtbl.replace tbl v ()) s;
      Array.length s = k
      && Hashtbl.length tbl = k
      && Array.for_all (fun v -> v >= 0 && v < n) s)

let qcheck_binomial_support =
  QCheck.Test.make ~name:"binomial support" ~count:300
    QCheck.(triple small_int (int_range 0 500) (float_range 0. 1.))
    (fun (seed, n, p) ->
      let r = Rng.create seed in
      let v = Dist.binomial r ~n ~p in
      v >= 0 && v <= n)

let () =
  Alcotest.run "dist"
    [
      ( "bernoulli",
        [
          Alcotest.test_case "extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "rate" `Quick test_bernoulli_rate;
        ] );
      ( "geometric",
        [
          Alcotest.test_case "mean" `Quick test_geometric_mean;
          Alcotest.test_case "p=1" `Quick test_geometric_p1;
          Alcotest.test_case "invalid" `Quick test_geometric_invalid;
        ] );
      ( "binomial",
        [
          Alcotest.test_case "moments" `Quick test_binomial_moments;
          Alcotest.test_case "edges" `Quick test_binomial_edges;
        ] );
      ( "bernoulli_indices",
        [
          Alcotest.test_case "sorted distinct" `Quick test_bernoulli_indices_sorted_distinct;
          Alcotest.test_case "rate" `Quick test_bernoulli_indices_rate;
          Alcotest.test_case "extremes" `Quick test_bernoulli_indices_extremes;
        ] );
      ( "sample_without_replacement",
        [
          Alcotest.test_case "distinct in range" `Quick test_swor_distinct_in_range;
          Alcotest.test_case "full sample" `Quick test_swor_full;
          Alcotest.test_case "uniform inclusion" `Quick test_swor_uniform_inclusion;
          Alcotest.test_case "invalid" `Quick test_swor_invalid;
        ] );
      ( "misc",
        [
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_swor; qcheck_binomial_support ] );
    ]
