(* Tests for CONGEST bit accounting. *)

module Congest = Ftc_sim.Congest

let test_bits_for () =
  List.iter
    (fun (v, expected) ->
      Alcotest.(check int) (Printf.sprintf "bits_for %d" v) expected (Congest.bits_for v))
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 3); (255, 8); (256, 9); (1023, 10); (1024, 11) ]

let test_bits_for_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Congest.bits_for: negative value")
    (fun () -> ignore (Congest.bits_for (-1)))

let test_rank_bits () =
  (* Ranks live in [1, n^4]: four times the id width. *)
  Alcotest.(check int) "n=1024" 40 (Congest.rank_bits ~n:1024);
  Alcotest.(check int) "n=2" 4 (Congest.rank_bits ~n:2);
  Alcotest.(check int) "n=1000 rounds up" 40 (Congest.rank_bits ~n:1000)

let test_id_bits () =
  Alcotest.(check int) "n=1024" 10 (Congest.id_bits ~n:1024);
  Alcotest.(check int) "n=1025" 11 (Congest.id_bits ~n:1025)

let test_default_limit_logarithmic () =
  (* The budget must be Theta(log n): growing n by 2^10 adds a constant
     number of bits per factor 2. *)
  let l1 = Congest.default_limit ~n:1024 in
  let l2 = Congest.default_limit ~n:(1024 * 1024) in
  Alcotest.(check bool) "monotone" true (l2 > l1);
  Alcotest.(check bool) "logarithmic growth" true (l2 - l1 = 10 * 10)

let test_default_limit_fits_protocol_messages () =
  (* The largest message any protocol sends is a tagged ⟨rank, rank⟩
     pair; it must fit in one round's budget. *)
  List.iter
    (fun n ->
      let largest = Congest.tag_bits + (2 * Congest.rank_bits ~n) in
      Alcotest.(check bool)
        (Printf.sprintf "fits at n=%d" n)
        true
        (largest <= Congest.default_limit ~n))
    [ 2; 16; 256; 4096; 65536 ]

let () =
  Alcotest.run "congest"
    [
      ( "congest",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "bits_for negative" `Quick test_bits_for_negative;
          Alcotest.test_case "rank bits" `Quick test_rank_bits;
          Alcotest.test_case "id bits" `Quick test_id_bits;
          Alcotest.test_case "limit logarithmic" `Quick test_default_limit_logarithmic;
          Alcotest.test_case "limit fits messages" `Quick test_default_limit_fits_protocol_messages;
        ] );
    ]
