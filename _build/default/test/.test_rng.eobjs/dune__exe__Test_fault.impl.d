test/test_fault.ml: Alcotest Array Ftc_fault Ftc_rng Ftc_sim List Printf
