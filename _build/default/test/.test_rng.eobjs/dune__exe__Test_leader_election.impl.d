test/test_leader_election.ml: Alcotest Array Ftc_core Ftc_fault Ftc_sim List Printf QCheck QCheck_alcotest
