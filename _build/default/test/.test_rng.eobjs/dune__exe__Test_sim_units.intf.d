test/test_sim_units.mli:
