test/test_baselines.ml: Alcotest Array Ftc_baselines Ftc_core Ftc_fault Ftc_rng Ftc_sim Printf
