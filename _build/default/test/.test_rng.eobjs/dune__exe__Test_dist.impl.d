test/test_dist.ml: Alcotest Array Float Ftc_rng Fun Hashtbl List Printf QCheck QCheck_alcotest
