test/test_sim_units.ml: Alcotest Array Astring Format Ftc_sim List Printf
