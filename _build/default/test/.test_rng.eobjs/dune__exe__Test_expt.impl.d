test/test_expt.ml: Alcotest Array Astring Ftc_analysis Ftc_core Ftc_expt Ftc_fault List
