test/test_agreement.ml: Alcotest Array Ftc_core Ftc_fault Ftc_rng Ftc_sim List Printf QCheck QCheck_alcotest
