test/test_byzantine.mli:
