test/test_properties.ml: Alcotest Array Ftc_core Ftc_sim
