test/test_params.ml: Alcotest Float Ftc_core List Printf QCheck QCheck_alcotest
