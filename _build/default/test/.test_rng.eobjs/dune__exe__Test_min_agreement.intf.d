test/test_min_agreement.mli:
