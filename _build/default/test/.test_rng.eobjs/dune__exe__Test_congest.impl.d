test/test_congest.ml: Alcotest Ftc_sim List Printf
