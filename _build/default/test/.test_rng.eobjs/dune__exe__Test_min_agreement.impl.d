test/test_min_agreement.ml: Alcotest Array Float Ftc_core Ftc_fault Ftc_rng Ftc_sim List Printf QCheck QCheck_alcotest
