test/test_analysis.ml: Alcotest Astring Filename Float Ftc_analysis Ftc_sim List QCheck QCheck_alcotest String Sys
