test/test_byzantine.ml: Alcotest Array Ftc_core Ftc_rng Ftc_sim Printf
