test/test_leader_election.mli:
