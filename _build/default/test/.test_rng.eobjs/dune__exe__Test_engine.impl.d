test/test_engine.ml: Alcotest Array Ftc_core Ftc_fault Ftc_sim Fun List Printf QCheck QCheck_alcotest String
