test/test_integration.ml: Alcotest Array Ftc_baselines Ftc_core Ftc_fault Ftc_rng Ftc_sim List Printf
