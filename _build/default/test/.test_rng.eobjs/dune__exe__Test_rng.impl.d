test/test_rng.ml: Alcotest Array Float Ftc_rng Hashtbl Int64 List Printf QCheck QCheck_alcotest
